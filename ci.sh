#!/usr/bin/env bash
# Local CI: the tier-1 gate plus lint hygiene. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
