#!/usr/bin/env bash
# Local CI: the tier-1 gate plus lint hygiene. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

# The workspace test run includes the verification suites: the
# differential engine-vs-oracle campaign (bounded by CCS_DIFF_CASES,
# deterministic per case id) and the golden snapshot tests, which
# re-evaluate the full benchmark x layout x policy grid in checked
# (invariant-audited) mode against results/golden/.
echo "==> cargo test -q (incl. differential campaign + golden snapshots)"
CCS_DIFF_CASES="${CCS_DIFF_CASES:-200}" cargo test -q

# Fault-injection smoke: a bounded slice of the 100-cell seeded-fault
# acceptance grid (panic isolation, deterministic timeouts, bit-identity
# of the unfaulted cells). CCS_FAULT_CASES bounds the grid; the full
# 100-cell run happens when the variable is unset (as in the plain
# `cargo test` above).
echo "==> fault-injection smoke (CCS_FAULT_CASES=${CCS_FAULT_CASES:-30})"
CCS_FAULT_CASES="${CCS_FAULT_CASES:-30}" \
    cargo test --release --test fault_injection -q

# Kill-and-resume: a campaign truncated mid-run and resumed from its
# manifest must reproduce the uninterrupted run bit-identically without
# re-running finished cells.
echo "==> checkpoint kill-and-resume"
cargo test --release --test checkpoint_resume -q

# Metrics smoke: run a checked grid with metrics on and require the
# counters' CPI stack to reconcile exactly with the critical-path
# breakdown, metrics-on runs to be bit-identical to metrics-off, and
# aggregation to be independent of thread count.
echo "==> metrics observability smoke"
cargo test --release --test metrics_observability -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
