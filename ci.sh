#!/usr/bin/env bash
# Local CI: the tier-1 gate plus lint hygiene. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --workspace"
cargo build --release --workspace

# The workspace test run includes the verification suites: the
# differential engine-vs-oracle campaign (bounded by CCS_DIFF_CASES,
# deterministic per case id) and the golden snapshot tests, which
# re-evaluate the full benchmark x layout x policy grid in checked
# (invariant-audited) mode against results/golden/.
echo "==> cargo test -q (incl. differential campaign + golden snapshots)"
CCS_DIFF_CASES="${CCS_DIFF_CASES:-200}" cargo test -q

# Fault-injection smoke: a bounded slice of the 100-cell seeded-fault
# acceptance grid (panic isolation, deterministic timeouts, bit-identity
# of the unfaulted cells). CCS_FAULT_CASES bounds the grid; the full
# 100-cell run happens when the variable is unset (as in the plain
# `cargo test` above).
echo "==> fault-injection smoke (CCS_FAULT_CASES=${CCS_FAULT_CASES:-30})"
CCS_FAULT_CASES="${CCS_FAULT_CASES:-30}" \
    cargo test --release --test fault_injection -q

# Kill-and-resume: a campaign truncated mid-run and resumed from its
# manifest must reproduce the uninterrupted run bit-identically without
# re-running finished cells.
echo "==> checkpoint kill-and-resume"
cargo test --release --test checkpoint_resume -q

# Metrics smoke: run a checked grid with metrics on and require the
# counters' CPI stack to reconcile exactly with the critical-path
# breakdown, metrics-on runs to be bit-identical to metrics-off, and
# aggregation to be independent of thread count.
echo "==> metrics observability smoke"
cargo test --release --test metrics_observability -q

# Prediction-tier smoke: a bounded slice of the analytic-bounds suite
# (every case must land inside its predicted cycle/IPC envelope; the
# full 200-case run plus the whole golden corpus happens in the plain
# `cargo test` above) and the bound-mutation tests proving each
# check_bounds rule is non-vacuous. Then the approx-vs-full loadgen
# comparison, which asserts the envelope tier is measurably cheaper
# than simulation.
echo "==> predict bounds smoke (CCS_PREDICT_CASES=${CCS_PREDICT_CASES:-40})"
CCS_PREDICT_CASES="${CCS_PREDICT_CASES:-40}" \
    cargo test --release --test predict_bounds -q
cargo test --release -p ccs-verify bound -q
cargo run --release --example loadgen -- --approx --out "$(mktemp -u)" >/dev/null
echo "    envelope tier measurably cheaper than simulation"

# Serve smoke: boot the daemon on an ephemeral loopback port, run a
# small grid through the client CLI and a bounded loadgen against it,
# then drain and require a clean exit 0. The roundtrip/protocol test
# suites above prove bit-identity and fault tolerance; this stage proves
# the *shipped binaries* wire together.
echo "==> ccs-serve smoke (daemon + client grid + loadgen + drain)"
cargo build --release --example loadgen
SERVE_LOG="$(mktemp)"
target/release/ccs-serve --addr 127.0.0.1:0 >"$SERVE_LOG" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
    SERVE_ADDR="$(sed -n 's/^listening on //p' "$SERVE_LOG")"
    [ -n "$SERVE_ADDR" ] && break
    kill -0 "$SERVE_PID" 2>/dev/null || { cat "$SERVE_LOG"; exit 1; }
    sleep 0.1
done
[ -n "$SERVE_ADDR" ] || { echo "daemon never reported its address"; cat "$SERVE_LOG"; exit 1; }
CCS_LEN=1000 CCS_EPOCHS=1 CCS_SAMPLES=1 \
    target/release/grid_campaign --server "$SERVE_ADDR" >/dev/null
target/release/ccs-client --server "$SERVE_ADDR" status >/dev/null
target/release/examples/loadgen --server "$SERVE_ADDR" \
    --clients 2 --requests 2 --batch 2 --len 1000 \
    --out "$(mktemp -u)" >/dev/null
target/release/ccs-client --server "$SERVE_ADDR" drain >/dev/null
SERVE_EXIT=0
wait "$SERVE_PID" || SERVE_EXIT=$?
[ "$SERVE_EXIT" -eq 0 ] || { echo "daemon exited $SERVE_EXIT"; cat "$SERVE_LOG"; exit 1; }
rm -f "$SERVE_LOG"
echo "    daemon drained cleanly (exit 0)"

# Sharded-cluster smoke: two journaled shards, a campaign routed across
# both with `--servers`, one shard killed -9 mid-run, and the victim
# restarted from its journal. The campaign must exit 0 via ring
# failover, its manifest digests must match the in-process batch run
# bit for bit, and the reborn shard must report replayed cells.
echo "==> sharded serve smoke (2 shards + kill -9 failover + journal recovery)"
SHARD_DIR="$(mktemp -d)"
SHARD_LEN="${CCS_SHARD_LEN:-2000}"
CCS_LEN="$SHARD_LEN" CCS_EPOCHS=1 CCS_SAMPLES=1 CCS_MANIFEST="$SHARD_DIR/local.jsonl" \
    target/release/grid_campaign >/dev/null
boot_shard() { # log journal [peers]
    target/release/ccs-serve --addr 127.0.0.1:0 --journal "$2" \
        ${3:+--peers "$3"} ${4:+--recover} >"$1" 2>&1 &
}
shard_addr() { # log pid
    local addr=
    for _ in $(seq 1 100); do
        addr="$(sed -n 's/^listening on //p' "$1")"
        [ -n "$addr" ] && break
        kill -0 "$2" 2>/dev/null || { cat "$1"; return 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "shard never reported its address"; cat "$1"; return 1; }
    echo "$addr"
}
boot_shard "$SHARD_DIR/shard1.log" "$SHARD_DIR/shard1.jsonl"
SHARD1_PID=$!
SHARD1_ADDR="$(shard_addr "$SHARD_DIR/shard1.log" "$SHARD1_PID")"
boot_shard "$SHARD_DIR/shard2.log" "$SHARD_DIR/shard2.jsonl" "$SHARD1_ADDR"
SHARD2_PID=$!
SHARD2_ADDR="$(shard_addr "$SHARD_DIR/shard2.log" "$SHARD2_PID")"
CCS_LEN="$SHARD_LEN" CCS_EPOCHS=1 CCS_SAMPLES=1 \
    CCS_MANIFEST="$SHARD_DIR/cluster.jsonl" \
    target/release/grid_campaign --servers "$SHARD1_ADDR,$SHARD2_ADDR" \
    >"$SHARD_DIR/campaign.log" 2>&1 &
CAMPAIGN_PID=$!
sleep 1
kill -9 "$SHARD2_PID" 2>/dev/null || true
CAMPAIGN_EXIT=0
wait "$CAMPAIGN_PID" || CAMPAIGN_EXIT=$?
[ "$CAMPAIGN_EXIT" -eq 0 ] || {
    echo "sharded campaign exited $CAMPAIGN_EXIT despite failover"
    cat "$SHARD_DIR/campaign.log"; exit 1; }
manifest_digests() { sed -n 's/.*"key":"\([^"]*\)".*"digest":"\([^"]*\)".*/\1 \2/p' "$1" | sort; }
diff <(manifest_digests "$SHARD_DIR/local.jsonl") \
     <(manifest_digests "$SHARD_DIR/cluster.jsonl") \
    || { echo "sharded campaign digests diverge from the batch run"; exit 1; }
echo "    campaign survived the kill; digests bit-identical to the batch run"
boot_shard "$SHARD_DIR/shard3.log" "$SHARD_DIR/shard2.jsonl" "$SHARD1_ADDR" recover
SHARD3_PID=$!
SHARD3_ADDR="$(shard_addr "$SHARD_DIR/shard3.log" "$SHARD3_PID")"
RECOVERED="$(target/release/ccs-client --server "$SHARD3_ADDR" status \
    | grep -o 'recovered [0-9]*' | awk '{print $2}')"
[ "${RECOVERED:-0}" -gt 0 ] || {
    echo "reborn shard replayed nothing (recovered=${RECOVERED:-unset})"
    cat "$SHARD_DIR/shard3.log"; exit 1; }
echo "    reborn shard replayed $RECOVERED cells from its crash journal"
for pair in "$SHARD1_ADDR $SHARD1_PID" "$SHARD3_ADDR $SHARD3_PID"; do
    set -- $pair
    target/release/ccs-client --server "$1" drain >/dev/null
    SHARD_EXIT=0
    wait "$2" || SHARD_EXIT=$?
    [ "$SHARD_EXIT" -eq 0 ] || { echo "shard $1 exited $SHARD_EXIT"; exit 1; }
done
rm -rf "$SHARD_DIR"
echo "    both shards drained cleanly (exit 0)"

# Perf smoke: regenerate the grid-throughput measurement at a small
# scale (default trace length, best-of-2) into a scratch file and fail
# if the parallel executor regresses against serial. On a single-core
# host the parallel path degenerates to the serial one, so speedup is
# 1.0 +/- timer noise; multi-core hosts must actually go faster.
echo "==> grid perf smoke (bench_grid, best-of-${CCS_BENCH_REPS:-2})"
PERF_JSON="$(mktemp)"
CCS_BENCH_REPS="${CCS_BENCH_REPS:-2}" CCS_THREADS=auto CCS_BENCH_OUT="$PERF_JSON" \
    target/release/bench_grid >/dev/null
MIN_SPEEDUP=1.0
[ "$(nproc)" -le 1 ] && MIN_SPEEDUP=0.9
grep -o '"speedup": [0-9.]*' "$PERF_JSON" | awk -v min="$MIN_SPEEDUP" '
    { n += 1
      if ($2 + 0 < min + 0) { printf "    parallel speedup %s < %s\n", $2, min; bad = 1 }
      else { printf "    parallel speedup %s ok (>= %s)\n", $2, min } }
    END { if (n == 0) { print "    no speedup rows in bench output"; exit 1 }
          exit bad }' \
    || { echo "parallel grid executor regressed"; exit 1; }
rm -f "$PERF_JSON"

# Adaptive-tier smoke: both dynamic policies (the online switcher and
# ineffectuality steering) across the 12-benchmark grid in checked
# mode — zero invariant violations, bit-identical rerun, 1-vs-8-thread
# agreement, and proof the switcher/predictor actually fire. Then the
# committed exhibit regenerates at smoke scale to keep the figure path
# itself under test.
echo "==> adaptive policy smoke (checked 12-benchmark grid + exhibit)"
cargo test --release --test adaptive_policies -q
CCS_LEN=2000 target/release/adaptive_policy --threads auto >/dev/null
echo "    dynamic policies clean, deterministic, and non-vacuous"

# Scenario smoke: the seeded manifest fuzzer at a bounded budget
# (random valid scenarios -> manifest round-trip + trace validation +
# the full engine-vs-oracle differential pipeline; deterministic per
# case id, full 120-case run in the plain `cargo test` above), the
# gallery tests (all 16 committed manifests parse, the 12 benchmark
# equivalents generate bit-identical traces), and one gallery manifest
# driven through the shipped campaign binary end to end.
echo "==> scenario smoke (CCS_SCENARIO_CASES=${CCS_SCENARIO_CASES:-40})"
CCS_SCENARIO_CASES="${CCS_SCENARIO_CASES:-40}" \
    cargo test --release --test scenario_fuzz -q
cargo test --release -p ccs-scenario -q >/dev/null
CCS_LEN=1200 CCS_EPOCHS=1 CCS_SAMPLES=1 CCS_MANIFEST="$(mktemp -u)" \
    target/release/grid_campaign \
    --scenario examples/scenarios/phase_shift.toml >/dev/null
echo "    fuzzer agreed, gallery pinned, campaign ran a manifest cell grid"

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
