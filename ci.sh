#!/usr/bin/env bash
# Local CI: the tier-1 gate plus lint hygiene. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

# The workspace test run includes the verification suites: the
# differential engine-vs-oracle campaign (bounded by CCS_DIFF_CASES,
# deterministic per case id) and the golden snapshot tests, which
# re-evaluate the full benchmark x layout x policy grid in checked
# (invariant-audited) mode against results/golden/.
echo "==> cargo test -q (incl. differential campaign + golden snapshots)"
CCS_DIFF_CASES="${CCS_DIFF_CASES:-200}" cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
