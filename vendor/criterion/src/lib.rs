//! Offline vendored stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches
//! use — `criterion_group!`/`criterion_main!`, benchmark groups with
//! `sample_size`/`throughput`, `Bencher::iter` and `iter_batched` — with
//! a simple median-of-samples wall-clock measurement printed to stdout.
//! No statistics engine, plots, or baselines: enough to compare runs by
//! eye and to give the figure harness a perf baseline in CI.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hints for [`Bencher::iter_batched`] (the vendored
/// harness treats them identically).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), 10, None, f);
        self
    }
}

/// A named group sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under this group's settings.
    pub fn bench_function<F>(&mut self, name: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, name),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Collects timed iterations for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample: usize,
}

impl Bencher {
    /// Times `sample` batches of `f`, recording the mean per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up.
        black_box(f());
        for _ in 0..self.samples.capacity() {
            let start = Instant::now();
            for _ in 0..self.per_sample {
                black_box(f());
            }
            self.samples.push(start.elapsed() / self.per_sample as u32);
        }
    }

    /// Times `routine` over fresh inputs from `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples.capacity() {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        per_sample: 1,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("  {label}: no samples");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let rate = throughput.map(|t| {
        let per_sec = |n: u64| n as f64 / median.as_secs_f64();
        match t {
            Throughput::Elements(n) => format!(" ({:.0} elem/s)", per_sec(n)),
            Throughput::Bytes(n) => format!(" ({:.0} B/s)", per_sec(n)),
        }
    });
    println!(
        "  {label}: median {:?} over {} samples{}",
        median,
        b.samples.len(),
        rate.unwrap_or_default()
    );
}

/// Declares a function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($bench(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_benchers_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(3).throughput(Throughput::Elements(10));
        let mut runs = 0u32;
        g.bench_function("iter", |b| b.iter(|| runs += 1));
        g.bench_function("batched", |b| {
            b.iter_batched(|| 2u64, |x| x * 2, BatchSize::SmallInput)
        });
        g.finish();
        assert!(runs >= 3);
    }
}
