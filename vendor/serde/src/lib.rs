//! Offline vendored stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types but
//! never serializes anything at runtime (there is no serde_json or
//! similar in the dependency tree, and no generic code bounds on these
//! traits). With no network access to crates.io, this crate supplies the
//! trait *names* and no-op derive macros so the annotations compile; the
//! derives expand to nothing.
//!
//! If a future PR adds real serialization, replace this stub with the
//! actual `serde` (the API here is intentionally a strict subset).

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (never implemented or
/// required by the stub derive).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (never implemented or
/// required by the stub derive).
pub trait Deserialize<'de>: Sized {}
