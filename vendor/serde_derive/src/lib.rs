//! No-op derive macros backing the vendored `serde` stub.
//!
//! Each derive accepts the input item (including `#[serde(...)]` helper
//! attributes) and expands to nothing: the workspace only needs the
//! annotations to compile, not to generate serialization code.

use proc_macro::TokenStream;

/// Expands `#[derive(Serialize)]` to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands `#[derive(Deserialize)]` to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
