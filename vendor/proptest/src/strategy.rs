//! Value-generation strategies.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for sampling values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// A union over `arms` (panics if empty).
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.arms.len());
        self.arms[k].sample(rng)
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Samples an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The result of [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = self.end as i128;
                assert!(hi > lo, "cannot sample from empty range");
                let span = (hi - lo) as u128;
                (lo + ((rng.next_u64() as u128) % span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case("strategy-tests", 0)
    }

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut r = rng();
        let s = (0u8..6, 10usize..20);
        for _ in 0..200 {
            let (a, b) = s.sample(&mut r);
            assert!(a < 6);
            assert!((10..20).contains(&b));
        }
    }

    #[test]
    fn map_and_just_compose() {
        let mut r = rng();
        let s = Just(3u32).prop_map(|v| v * 2);
        assert_eq!(s.sample(&mut r), 6);
    }

    #[test]
    fn union_picks_every_arm() {
        let mut r = rng();
        let arms: Vec<Box<dyn Strategy<Value = u8>>> =
            vec![Box::new(Just(1u8)), Box::new(Just(2u8)), Box::new(Just(3u8))];
        let u = Union::new(arms);
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[u.sample(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
