//! `Option` strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy producing `Some` from `inner` three times out of four,
/// `None` otherwise (matching upstream's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// The result of [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.sample(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_produces_both_variants() {
        let mut rng = TestRng::for_case("option-tests", 0);
        let s = of(0u8..10);
        let samples: Vec<Option<u8>> = (0..100).map(|_| s.sample(&mut rng)).collect();
        assert!(samples.iter().any(Option::is_none));
        assert!(samples.iter().any(Option::is_some));
        assert!(samples.iter().flatten().all(|&v| v < 10));
    }
}
