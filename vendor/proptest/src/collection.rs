//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// A strategy producing a `Vec` whose length is drawn from `len` and
/// whose elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// The result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.sample(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_length_range() {
        let mut rng = TestRng::for_case("collection-tests", 0);
        let s = vec(0u32..5, 1..9);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((1..9).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }
}
