//! Offline vendored stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this crate
//! reimplements the subset of proptest the workspace's property tests
//! use: integer-range / `any` / `Just` / tuple / `prop_map` / oneof /
//! option / vec strategies, the `proptest!` test macro, and the
//! `prop_assert*` macros. Sampling is plain deterministic random testing
//! (seeded per case) — there is no shrinking; a failing case panics with
//! its case number so it can be replayed.

#![forbid(unsafe_code)]

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` item
/// becomes a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        __case,
                        __config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

/// Fails the enclosing property case if the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the enclosing property case if the two values differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Fails the enclosing property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($arm)),+];
        $crate::strategy::Union::new(arms)
    }};
}
