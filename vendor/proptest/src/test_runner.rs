//! Test configuration, per-case RNG, and case errors.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases sampled per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite quick while still
        // exploring a meaningful slice of the input space.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property case (no shrinking in the vendored runner).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic per-case generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for case `case` of the property named `name` —
    /// deterministic across runs, distinct across properties and cases.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the property name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01B3);
        }
        TestRng {
            state: h ^ ((case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..n` (panics if `n == 0`).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample below 0");
        (self.next_u64() % n as u64) as usize
    }

    /// A uniform bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_case_sensitive() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_case("p", 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_case("p", 0);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_case("p", 1);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
