//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of the `rand` API it actually uses:
//!
//! * [`SeedableRng::seed_from_u64`] construction,
//! * [`rngs::StdRng`] / [`rngs::SmallRng`] deterministic generators,
//! * [`RngExt::random_bool`] and [`RngExt::random_range`].
//!
//! Generators are xoshiro-family PRNGs seeded through SplitMix64 — not
//! cryptographic, but high-quality, fast, and fully deterministic, which
//! is all the synthetic workload models and probabilistic counters need.
//! Streams differ from upstream `rand`'s ChaCha-based `StdRng`; every
//! consumer in this workspace treats the generator as an arbitrary
//! deterministic stream, so only reproducibility matters, not the exact
//! values.

#![forbid(unsafe_code)]

use core::ops::Range;

/// A uniform random bit generator.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods over any [`Rng`].
pub trait RngExt: Rng {
    /// Samples a `bool` that is `true` with probability `p` (clamped to
    /// `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        // 53 uniform mantissa bits -> [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Samples uniformly from `range` (half-open; panics if empty).
    fn random_range<T: UniformInt>(&mut self, range: Range<T>) -> T {
        T::sample_uniform(self.next_u64(), range)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Integer types that can be sampled uniformly from a half-open range.
pub trait UniformInt: Copy {
    /// Maps 64 random bits into `range`.
    fn sample_uniform(raw: u64, range: Range<Self>) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl UniformInt for $t {
            fn sample_uniform(raw: u64, range: Range<Self>) -> Self {
                let lo = range.start as i128;
                let hi = range.end as i128;
                assert!(hi > lo, "cannot sample from empty range");
                let span = (hi - lo) as u128;
                // Modulo bias is < 2^-64 * span — irrelevant for the
                // workload models' small spans.
                (lo + ((raw as u128) % span) as i128) as Self
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The concrete generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's default generator: xoshiro256++.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// A small-state generator: xoroshiro128++.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 2],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [splitmix64(&mut sm), splitmix64(&mut sm)],
            }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, mut s1] = self.s;
            let result = s0.wrapping_add(s1).rotate_left(17).wrapping_add(s0);
            s1 ^= s0;
            self.s[0] = s0.rotate_left(49) ^ s1 ^ (s1 << 21);
            self.s[1] = s1.rotate_left(28);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{RngExt, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| super::Rng::next_u64(&mut a)).collect();
        let ys: Vec<u64> = (0..8).map(|_| super::Rng::next_u64(&mut b)).collect();
        let zs: Vec<u64> = (0..8).map(|_| super::Rng::next_u64(&mut c)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn random_range_stays_in_bounds_and_covers() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let v = rng.random_range(0u64..10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values reachable");
    }

    #[test]
    fn random_range_handles_offsets_and_signed() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let v = rng.random_range(100u32..108);
            assert!((100..108).contains(&v));
            let w = rng.random_range(-4i32..4);
            assert!((-4..4).contains(&w));
        }
    }
}
