//! Operation classes and execution latencies.
//!
//! The simulator does not interpret instruction semantics; only the
//! *operation class* matters for timing: which execution port an
//! instruction occupies, how long it takes to produce its result, and
//! whether it touches memory or redirects control flow. Latencies follow
//! the Alpha 21264 values used by the paper (e.g. a 3-cycle load-to-use).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The class of a micro-operation.
///
/// Classes are timing-equivalence classes: two dynamic instructions with
/// the same `OpClass` are indistinguishable to the timing model except for
/// their dependences and (for memory ops) their addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OpClass {
    /// Single-cycle integer ALU operation (add, compare, logical, shift).
    IntAlu,
    /// Pipelined integer multiply (7 cycles on the 21264).
    IntMul,
    /// Floating-point add/subtract/compare (4 cycles).
    FpAdd,
    /// Floating-point multiply (4 cycles).
    FpMul,
    /// Floating-point divide (12 cycles, modelled fully pipelined for
    /// simplicity — divides are rare in the integer workloads studied).
    FpDiv,
    /// Memory load. Latency is the 3-cycle load-to-use time on an L1 hit;
    /// the memory subsystem adds miss latency on top.
    Load,
    /// Memory store. Occupies a memory port; produces no register value.
    Store,
    /// Conditional branch (single-cycle compare-and-branch).
    Branch,
    /// Unconditional jump / call / return.
    Jump,
}

/// The kind of execution port an operation occupies for one cycle at issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PortKind {
    /// Integer ALU port (also used by branches and jumps).
    Int,
    /// Floating-point port.
    Fp,
    /// Memory port (loads and stores).
    Mem,
}

impl OpClass {
    /// All operation classes, in a fixed order (useful for histograms).
    pub const ALL: [OpClass; 9] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::Jump,
    ];

    /// Base execution latency in cycles, i.e. the number of cycles from
    /// issue until the result is available to a same-cluster consumer.
    ///
    /// For [`OpClass::Load`] this is the load-to-use latency on an L1 hit;
    /// cache misses add further cycles (see the memory model in `ccs-sim`).
    ///
    /// ```
    /// use ccs_isa::OpClass;
    /// assert_eq!(OpClass::IntAlu.latency(), 1);
    /// assert_eq!(OpClass::Load.latency(), 3);
    /// assert_eq!(OpClass::IntMul.latency(), 7);
    /// ```
    #[inline]
    pub const fn latency(self) -> u32 {
        match self {
            OpClass::IntAlu | OpClass::Store | OpClass::Branch | OpClass::Jump => 1,
            OpClass::IntMul => 7,
            OpClass::FpAdd | OpClass::FpMul => 4,
            OpClass::FpDiv => 12,
            OpClass::Load => 3,
        }
    }

    /// The execution port this operation contends for.
    ///
    /// ```
    /// use ccs_isa::{OpClass, PortKind};
    /// assert_eq!(OpClass::Branch.port(), PortKind::Int);
    /// assert_eq!(OpClass::Store.port(), PortKind::Mem);
    /// ```
    #[inline]
    pub const fn port(self) -> PortKind {
        match self {
            OpClass::IntAlu | OpClass::IntMul | OpClass::Branch | OpClass::Jump => PortKind::Int,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => PortKind::Fp,
            OpClass::Load | OpClass::Store => PortKind::Mem,
        }
    }

    /// Whether this operation reads or writes memory.
    #[inline]
    pub const fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether this operation can redirect control flow.
    #[inline]
    pub const fn is_control(self) -> bool {
        matches!(self, OpClass::Branch | OpClass::Jump)
    }

    /// Whether this operation produces a register value that consumers can
    /// read (stores, branches and jumps do not).
    #[inline]
    pub const fn produces_value(self) -> bool {
        !matches!(self, OpClass::Store | OpClass::Branch | OpClass::Jump)
    }

    /// A short mnemonic used in debug output and schedule dumps.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            OpClass::IntAlu => "alu",
            OpClass::IntMul => "mul",
            OpClass::FpAdd => "fadd",
            OpClass::FpMul => "fmul",
            OpClass::FpDiv => "fdiv",
            OpClass::Load => "ld",
            OpClass::Store => "st",
            OpClass::Branch => "br",
            OpClass::Jump => "jmp",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl fmt::Display for PortKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PortKind::Int => f.write_str("int"),
            PortKind::Fp => f.write_str("fp"),
            PortKind::Mem => f.write_str("mem"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_21264_model() {
        assert_eq!(OpClass::IntAlu.latency(), 1);
        assert_eq!(OpClass::IntMul.latency(), 7);
        assert_eq!(OpClass::FpAdd.latency(), 4);
        assert_eq!(OpClass::FpMul.latency(), 4);
        assert_eq!(OpClass::FpDiv.latency(), 12);
        assert_eq!(OpClass::Load.latency(), 3);
        assert_eq!(OpClass::Store.latency(), 1);
        assert_eq!(OpClass::Branch.latency(), 1);
    }

    #[test]
    fn ports_partition_op_classes() {
        let mut int = 0;
        let mut fp = 0;
        let mut mem = 0;
        for op in OpClass::ALL {
            match op.port() {
                PortKind::Int => int += 1,
                PortKind::Fp => fp += 1,
                PortKind::Mem => mem += 1,
            }
        }
        assert_eq!(int, 4);
        assert_eq!(fp, 3);
        assert_eq!(mem, 2);
    }

    #[test]
    fn memory_ops_use_mem_port() {
        for op in OpClass::ALL {
            assert_eq!(op.is_mem(), op.port() == PortKind::Mem);
        }
    }

    #[test]
    fn control_ops_do_not_produce_values() {
        assert!(!OpClass::Branch.produces_value());
        assert!(!OpClass::Jump.produces_value());
        assert!(!OpClass::Store.produces_value());
        assert!(OpClass::Load.produces_value());
        assert!(OpClass::IntAlu.produces_value());
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in OpClass::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {}", op);
        }
    }

    #[test]
    fn display_matches_mnemonic() {
        for op in OpClass::ALL {
            assert_eq!(op.to_string(), op.mnemonic());
        }
    }

    #[test]
    fn all_latencies_positive() {
        for op in OpClass::ALL {
            assert!(op.latency() >= 1);
        }
    }
}
