//! Machine and cluster configuration.
//!
//! [`MachineConfig`] describes one machine in the family the paper studies:
//! an 8-wide out-of-order superscalar whose execution core is partitioned
//! into 1, 2, 4 or 8 clusters. The baseline parameters follow Table 1 of
//! the paper; [`ClusterLayout`] selects the partitioning, with per-cluster
//! resources derived by dividing the aggregate resources and rounding
//! partial resources up (footnote 1: each cluster in the 8x1w machine
//! still has a memory port and a floating point ALU).

use crate::op::PortKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The cluster partitioning of the machine's execution core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ClusterLayout {
    /// Monolithic baseline: one 8-wide cluster.
    C1x8w,
    /// Two 4-wide clusters.
    C2x4w,
    /// Four 2-wide clusters (the configuration in Figure 1).
    C4x2w,
    /// Eight 1-wide clusters.
    C8x1w,
}

impl ClusterLayout {
    /// All layouts studied by the paper, monolithic first.
    pub const ALL: [ClusterLayout; 4] = [
        ClusterLayout::C1x8w,
        ClusterLayout::C2x4w,
        ClusterLayout::C4x2w,
        ClusterLayout::C8x1w,
    ];

    /// The clustered (non-monolithic) layouts, in paper order (2, 4, 8).
    pub const CLUSTERED: [ClusterLayout; 3] = [
        ClusterLayout::C2x4w,
        ClusterLayout::C4x2w,
        ClusterLayout::C8x1w,
    ];

    /// Number of clusters.
    #[inline]
    pub const fn clusters(self) -> usize {
        match self {
            ClusterLayout::C1x8w => 1,
            ClusterLayout::C2x4w => 2,
            ClusterLayout::C4x2w => 4,
            ClusterLayout::C8x1w => 8,
        }
    }

    /// Issue width of each cluster.
    #[inline]
    pub const fn cluster_width(self) -> usize {
        8 / self.clusters()
    }

    /// The layout's conventional name in the paper (`1x8w`, `2x4w`, ...).
    pub const fn name(self) -> &'static str {
        match self {
            ClusterLayout::C1x8w => "1x8w",
            ClusterLayout::C2x4w => "2x4w",
            ClusterLayout::C4x2w => "4x2w",
            ClusterLayout::C8x1w => "8x1w",
        }
    }
}

impl fmt::Display for ClusterLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Front-end parameters (Table 1, "Front-end" row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontEndConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: usize,
    /// Pipeline stages from fetch to dispatch; a branch-misprediction
    /// redirect costs this many cycles of refill.
    pub depth_to_dispatch: u32,
    /// gshare global-history bits.
    pub gshare_history_bits: u32,
    /// Entries in the decoupling buffer between the front-end pipe and
    /// dispatch. When the buffer fills, fetch stalls.
    pub skid_buffer: usize,
    /// Whether a fetch group ends at a taken branch. The paper models a
    /// high-bandwidth front end; the default (`false`) lets a group span
    /// correctly-predicted taken branches.
    pub break_on_taken: bool,
}

impl Default for FrontEndConfig {
    fn default() -> Self {
        FrontEndConfig {
            fetch_width: 8,
            depth_to_dispatch: 13,
            gshare_history_bits: 16,
            skid_buffer: 64,
            break_on_taken: false,
        }
    }
}

/// A finite second-level cache backed by main memory.
///
/// The paper's headline experiments use an infinite 20-cycle L2 "to
/// reduce simulation times", but §2.1 notes they *verified* the CPI
/// breakdowns against runs with a finite L2 and a 200-cycle memory; this
/// configuration reproduces that verification setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct L2Config {
    /// L2 capacity in bytes.
    pub bytes: usize,
    /// L2 associativity.
    pub ways: usize,
    /// L2 line size in bytes.
    pub line_bytes: usize,
    /// Additional cycles an L2 miss pays to reach main memory.
    pub memory_latency: u32,
}

impl Default for L2Config {
    fn default() -> Self {
        L2Config {
            bytes: 512 * 1024,
            ways: 8,
            line_bytes: 64,
            memory_latency: 200,
        }
    }
}

/// Memory-hierarchy parameters (Table 1, "Memory" row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// L1 data cache size in bytes (32 KB).
    pub l1_bytes: usize,
    /// L1 associativity (4-way).
    pub l1_ways: usize,
    /// L1 line size in bytes.
    pub l1_line_bytes: usize,
    /// Additional cycles an L1 miss pays to reach the L2.
    pub l2_latency: u32,
    /// Finite L2 + main memory behind the L1 miss path; `None` models the
    /// paper's infinite L2 (every L1 miss costs exactly `l2_latency`).
    pub l2: Option<L2Config>,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig {
            l1_bytes: 32 * 1024,
            l1_ways: 4,
            l1_line_bytes: 64,
            l2_latency: 20,
            l2: None,
        }
    }
}

impl MemoryConfig {
    /// Number of sets in the L1.
    pub fn l1_sets(&self) -> usize {
        self.l1_bytes / (self.l1_ways * self.l1_line_bytes)
    }

    /// The §2.1 verification configuration: finite 512 KB L2 with a
    /// 200-cycle memory behind it.
    pub fn with_finite_l2(mut self) -> Self {
        self.l2 = Some(L2Config::default());
        self
    }
}

/// Per-cluster resources, derived from a [`ClusterLayout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Scheduling-window entries at this cluster (aggregate 128 divided
    /// among the clusters).
    pub window_entries: usize,
    /// Instructions the cluster can issue per cycle.
    pub issue_width: usize,
    /// Integer issue slots per cycle.
    pub int_ports: usize,
    /// Floating-point issue slots per cycle.
    pub fp_ports: usize,
    /// Memory issue slots per cycle.
    pub mem_ports: usize,
}

impl ClusterConfig {
    /// Issue slots of the given kind per cycle.
    #[inline]
    pub const fn ports(&self, kind: PortKind) -> usize {
        match kind {
            PortKind::Int => self.int_ports,
            PortKind::Fp => self.fp_ports,
            PortKind::Mem => self.mem_ports,
        }
    }
}

/// Errors produced when validating a [`MachineConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The aggregate window is not divisible by the cluster count.
    WindowNotDivisible {
        /// Aggregate window entries.
        window: usize,
        /// Number of clusters.
        clusters: usize,
    },
    /// The ROB is smaller than the aggregate window.
    RobSmallerThanWindow {
        /// ROB entries.
        rob: usize,
        /// Aggregate window entries.
        window: usize,
    },
    /// The inter-cluster forwarding latency is zero on a clustered machine.
    ZeroForwardingLatency,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::WindowNotDivisible { window, clusters } => write!(
                f,
                "window of {window} entries does not divide among {clusters} clusters"
            ),
            ConfigError::RobSmallerThanWindow { rob, window } => {
                write!(f, "ROB of {rob} entries is smaller than the {window}-entry window")
            }
            ConfigError::ZeroForwardingLatency => {
                write!(f, "clustered machine requires a forwarding latency of at least 1 cycle")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full configuration of one simulated machine.
///
/// ```
/// use ccs_isa::{ClusterLayout, MachineConfig};
/// let m = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C8x1w);
/// assert_eq!(m.cluster_count(), 8);
/// assert_eq!(m.cluster.window_entries, 16);
/// // Partial resources round up: every 1-wide cluster keeps a memory port
/// // and an FP ALU (footnote 1 of the paper).
/// assert_eq!(m.cluster.mem_ports, 1);
/// assert_eq!(m.cluster.fp_ports, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// The cluster partitioning.
    pub layout: ClusterLayout,
    /// Front-end parameters.
    pub front_end: FrontEndConfig,
    /// Aggregate scheduling-window entries (128).
    pub window_total: usize,
    /// Reorder-buffer entries (256).
    pub rob_entries: usize,
    /// Instructions committed per cycle.
    pub commit_width: usize,
    /// Aggregate integer issue slots per cycle (8).
    pub int_total: usize,
    /// Aggregate floating-point issue slots per cycle (4).
    pub fp_total: usize,
    /// Aggregate memory issue slots per cycle (4).
    pub mem_total: usize,
    /// Inter-cluster forwarding latency in cycles (the paper shows results
    /// for 2; 1–4 were modelled).
    pub forward_latency: u32,
    /// Values each cluster can broadcast onto the global bypass network
    /// per cycle. `None` models the paper's assumption of "enough capacity
    /// to support peak execution rates"; `Some(b)` serializes broadcasts,
    /// the limited-bandwidth extension the paper leaves to future work.
    pub forward_bandwidth: Option<u32>,
    /// Memory hierarchy.
    pub memory: MemoryConfig,
    /// Derived per-cluster resources.
    pub cluster: ClusterConfig,
}

impl MachineConfig {
    /// The monolithic baseline of Table 1: 8-wide, 128-entry window,
    /// 256-entry ROB, 13-stage front end, 16-bit gshare, 32 KB 4-way L1,
    /// 20-cycle infinite L2, 2-cycle inter-cluster forwarding latency
    /// (irrelevant for the monolithic layout but inherited by
    /// [`with_layout`](Self::with_layout)).
    pub fn micro05_baseline() -> Self {
        Self::build(
            ClusterLayout::C1x8w,
            FrontEndConfig::default(),
            128,
            256,
            8,
            8,
            4,
            4,
            2,
            MemoryConfig::default(),
        )
        .expect("baseline parameters are valid")
    }

    /// Builds and validates a configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the window does not divide among the
    /// clusters, the ROB is smaller than the window, or a clustered layout
    /// is given a zero forwarding latency.
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        layout: ClusterLayout,
        front_end: FrontEndConfig,
        window_total: usize,
        rob_entries: usize,
        commit_width: usize,
        int_total: usize,
        fp_total: usize,
        mem_total: usize,
        forward_latency: u32,
        memory: MemoryConfig,
    ) -> Result<Self, ConfigError> {
        let n = layout.clusters();
        if !window_total.is_multiple_of(n) {
            return Err(ConfigError::WindowNotDivisible {
                window: window_total,
                clusters: n,
            });
        }
        if rob_entries < window_total {
            return Err(ConfigError::RobSmallerThanWindow {
                rob: rob_entries,
                window: window_total,
            });
        }
        if n > 1 && forward_latency == 0 {
            return Err(ConfigError::ZeroForwardingLatency);
        }
        let cluster = ClusterConfig {
            window_entries: window_total / n,
            issue_width: layout.cluster_width(),
            int_ports: int_total.div_ceil(n),
            fp_ports: fp_total.div_ceil(n),
            mem_ports: mem_total.div_ceil(n),
        };
        Ok(MachineConfig {
            layout,
            front_end,
            window_total,
            rob_entries,
            commit_width,
            int_total,
            fp_total,
            mem_total,
            forward_latency,
            forward_bandwidth: None,
            memory,
            cluster,
        })
    }

    /// Returns the same machine with a different cluster partitioning.
    ///
    /// # Panics
    ///
    /// Panics if the aggregate window does not divide among the new
    /// layout's clusters (it always does for the paper's parameters).
    #[must_use]
    pub fn with_layout(&self, layout: ClusterLayout) -> Self {
        let mut cfg = Self::build(
            layout,
            self.front_end,
            self.window_total,
            self.rob_entries,
            self.commit_width,
            self.int_total,
            self.fp_total,
            self.mem_total,
            self.forward_latency,
            self.memory,
        )
        // Invariant: `self` was already validated by `build`, and
        // re-dividing validated aggregate resources over any of the four
        // paper layouts (1/2/4/8 clusters) cannot fail.
        .expect("window divides among the paper's layouts");
        cfg.forward_bandwidth = self.forward_bandwidth;
        cfg
    }

    /// Returns the same machine with a different inter-cluster forwarding
    /// latency (the paper models 1–4 cycles).
    #[must_use]
    pub fn with_forward_latency(&self, cycles: u32) -> Self {
        let mut cfg = *self;
        cfg.forward_latency = cycles;
        cfg
    }

    /// Returns the same machine with a per-cluster broadcast bandwidth
    /// limit on the global bypass network (`None` = unlimited).
    ///
    /// # Panics
    ///
    /// Panics if a zero bandwidth is given.
    #[must_use]
    pub fn with_forward_bandwidth(&self, per_cluster_per_cycle: Option<u32>) -> Self {
        assert!(
            per_cluster_per_cycle.is_none_or(|b| b >= 1),
            "forward bandwidth must be at least 1"
        );
        let mut cfg = *self;
        cfg.forward_bandwidth = per_cluster_per_cycle;
        cfg
    }

    /// Returns the same machine with the §2.1 verification memory system
    /// (finite 512 KB L2, 200-cycle memory).
    #[must_use]
    pub fn with_finite_l2(&self) -> Self {
        let mut cfg = *self;
        cfg.memory = cfg.memory.with_finite_l2();
        cfg
    }

    /// Number of clusters.
    #[inline]
    pub fn cluster_count(&self) -> usize {
        self.layout.clusters()
    }

    /// Whether the machine is monolithic (a single cluster).
    #[inline]
    pub fn is_monolithic(&self) -> bool {
        self.cluster_count() == 1
    }

    /// The forwarding latency between two clusters: zero within a cluster,
    /// [`forward_latency`](Self::forward_latency) cycles across clusters.
    #[inline]
    pub fn forwarding_between(&self, from: usize, to: usize) -> u32 {
        if from == to {
            0
        } else {
            self.forward_latency
        }
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::micro05_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_1() {
        let m = MachineConfig::micro05_baseline();
        assert_eq!(m.front_end.fetch_width, 8);
        assert_eq!(m.front_end.depth_to_dispatch, 13);
        assert_eq!(m.front_end.gshare_history_bits, 16);
        assert_eq!(m.window_total, 128);
        assert_eq!(m.rob_entries, 256);
        assert_eq!(m.int_total, 8);
        assert_eq!(m.fp_total, 4);
        assert_eq!(m.mem_total, 4);
        assert_eq!(m.memory.l1_bytes, 32 * 1024);
        assert_eq!(m.memory.l1_ways, 4);
        assert_eq!(m.memory.l2_latency, 20);
        assert_eq!(m.forward_latency, 2);
    }

    #[test]
    fn layout_resources_divide_and_round_up() {
        let base = MachineConfig::micro05_baseline();

        let c2 = base.with_layout(ClusterLayout::C2x4w);
        assert_eq!(c2.cluster.window_entries, 64);
        assert_eq!(c2.cluster.issue_width, 4);
        assert_eq!(c2.cluster.int_ports, 4);
        assert_eq!(c2.cluster.fp_ports, 2);
        assert_eq!(c2.cluster.mem_ports, 2);

        let c4 = base.with_layout(ClusterLayout::C4x2w);
        assert_eq!(c4.cluster.window_entries, 32);
        assert_eq!(c4.cluster.issue_width, 2);
        assert_eq!(c4.cluster.int_ports, 2);
        assert_eq!(c4.cluster.fp_ports, 1);
        assert_eq!(c4.cluster.mem_ports, 1);

        let c8 = base.with_layout(ClusterLayout::C8x1w);
        assert_eq!(c8.cluster.window_entries, 16);
        assert_eq!(c8.cluster.issue_width, 1);
        assert_eq!(c8.cluster.int_ports, 1);
        // Footnote 1: partial resources round up.
        assert_eq!(c8.cluster.fp_ports, 1);
        assert_eq!(c8.cluster.mem_ports, 1);
    }

    #[test]
    fn forwarding_is_zero_within_cluster() {
        let m = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
        assert_eq!(m.forwarding_between(2, 2), 0);
        assert_eq!(m.forwarding_between(0, 3), 2);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let err = MachineConfig::build(
            ClusterLayout::C8x1w,
            FrontEndConfig::default(),
            100,
            256,
            8,
            8,
            4,
            4,
            2,
            MemoryConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ConfigError::WindowNotDivisible { .. }));

        let err = MachineConfig::build(
            ClusterLayout::C1x8w,
            FrontEndConfig::default(),
            128,
            64,
            8,
            8,
            4,
            4,
            2,
            MemoryConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, ConfigError::RobSmallerThanWindow { .. }));

        let err = MachineConfig::build(
            ClusterLayout::C2x4w,
            FrontEndConfig::default(),
            128,
            256,
            8,
            8,
            4,
            4,
            0,
            MemoryConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::ZeroForwardingLatency);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn layout_names() {
        assert_eq!(ClusterLayout::C1x8w.to_string(), "1x8w");
        assert_eq!(ClusterLayout::C8x1w.name(), "8x1w");
        assert_eq!(ClusterLayout::ALL.len(), 4);
        assert_eq!(ClusterLayout::CLUSTERED.len(), 3);
    }

    #[test]
    fn l1_sets_derived_from_geometry() {
        let mem = MemoryConfig::default();
        assert_eq!(mem.l1_sets(), 32 * 1024 / (4 * 64));
    }

    #[test]
    fn forward_latency_override() {
        let m = MachineConfig::micro05_baseline()
            .with_layout(ClusterLayout::C2x4w)
            .with_forward_latency(4);
        assert_eq!(m.forwarding_between(0, 1), 4);
    }

    #[test]
    fn ports_accessor_matches_fields() {
        let c = MachineConfig::micro05_baseline().cluster;
        assert_eq!(c.ports(PortKind::Int), c.int_ports);
        assert_eq!(c.ports(PortKind::Fp), c.fp_ports);
        assert_eq!(c.ports(PortKind::Mem), c.mem_ports);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn any_layout() -> impl Strategy<Value = ClusterLayout> {
        prop_oneof![
            Just(ClusterLayout::C1x8w),
            Just(ClusterLayout::C2x4w),
            Just(ClusterLayout::C4x2w),
            Just(ClusterLayout::C8x1w),
        ]
    }

    proptest! {
        #[test]
        fn build_is_total_and_consistent(
            layout in any_layout(),
            window_exp in 3u32..10,        // 8..=512 entries
            rob_extra in 0usize..512,
            fwd in 0u32..6,
        ) {
            let window = 1usize << window_exp;
            let rob = window + rob_extra;
            let result = MachineConfig::build(
                layout,
                FrontEndConfig::default(),
                window,
                rob,
                8,
                8,
                4,
                4,
                fwd,
                MemoryConfig::default(),
            );
            match result {
                Ok(cfg) => {
                    // Power-of-two windows always divide the layouts.
                    prop_assert_eq!(
                        cfg.cluster.window_entries * cfg.cluster_count(),
                        window
                    );
                    // Ports cover the aggregate with round-up.
                    prop_assert!(cfg.cluster.int_ports * cfg.cluster_count() >= 8);
                    prop_assert!(cfg.cluster.fp_ports * cfg.cluster_count() >= 4);
                    prop_assert!(cfg.cluster.mem_ports * cfg.cluster_count() >= 4);
                    prop_assert!(cfg.rob_entries >= cfg.window_total);
                    // Forwarding is symmetric in shape.
                    for a in 0..cfg.cluster_count() {
                        for b in 0..cfg.cluster_count() {
                            prop_assert_eq!(
                                cfg.forwarding_between(a, b),
                                cfg.forwarding_between(b, a)
                            );
                            if a == b {
                                prop_assert_eq!(cfg.forwarding_between(a, b), 0);
                            }
                        }
                    }
                }
                Err(e) => {
                    // Only the documented failure cases occur.
                    let documented = matches!(
                        e,
                        ConfigError::ZeroForwardingLatency
                            | ConfigError::WindowNotDivisible { .. }
                            | ConfigError::RobSmallerThanWindow { .. }
                    );
                    prop_assert!(documented);
                    // Zero-latency failures only on clustered layouts.
                    if e == ConfigError::ZeroForwardingLatency {
                        prop_assert!(layout.clusters() > 1 && fwd == 0);
                    }
                }
            }
        }

        #[test]
        fn layout_switching_preserves_aggregates(layout in any_layout()) {
            let base = MachineConfig::micro05_baseline();
            let m = base.with_layout(layout);
            prop_assert_eq!(m.window_total, base.window_total);
            prop_assert_eq!(m.rob_entries, base.rob_entries);
            prop_assert_eq!(m.int_total, base.int_total);
            prop_assert_eq!(m.cluster.issue_width * m.cluster_count(), 8);
        }
    }
}
