//! Architectural registers.
//!
//! The trace generators allocate values into a flat architectural register
//! file of 32 integer and 32 floating-point registers, mirroring the Alpha.
//! Register identity is what the dependence-based steering policies key on
//! ("both instructions consume from the same source register"), so the
//! register file is part of the public vocabulary rather than an internal
//! detail of the trace builder.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of integer architectural registers.
pub const INT_REG_COUNT: u16 = 32;
/// Total number of architectural registers (integer + floating point).
pub const TOTAL_REG_COUNT: u16 = 64;

/// The class of an architectural register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegClass {
    /// Integer register (`r0`–`r31`).
    Int,
    /// Floating-point register (`f0`–`f31`).
    Fp,
}

/// An architectural register identifier.
///
/// Registers `0..32` are integer registers, `32..64` floating point.
///
/// ```
/// use ccs_isa::{ArchReg, RegClass};
/// let r = ArchReg::int(5);
/// assert_eq!(r.class(), RegClass::Int);
/// assert_eq!(r.to_string(), "r5");
/// let f = ArchReg::fp(3);
/// assert_eq!(f.class(), RegClass::Fp);
/// assert_eq!(f.to_string(), "f3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArchReg(u16);

impl ArchReg {
    /// Creates an integer register.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[inline]
    pub const fn int(n: u16) -> Self {
        assert!(n < INT_REG_COUNT);
        ArchReg(n)
    }

    /// Creates a floating-point register.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    #[inline]
    pub const fn fp(n: u16) -> Self {
        assert!(n < INT_REG_COUNT);
        ArchReg(INT_REG_COUNT + n)
    }

    /// Creates a register from its flat index in `0..64`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 64`.
    #[inline]
    pub const fn from_index(idx: u16) -> Self {
        assert!(idx < TOTAL_REG_COUNT);
        ArchReg(idx)
    }

    /// The flat index of this register in `0..64`.
    #[inline]
    pub const fn index(self) -> u16 {
        self.0
    }

    /// The register's class.
    #[inline]
    pub const fn class(self) -> RegClass {
        if self.0 < INT_REG_COUNT {
            RegClass::Int
        } else {
            RegClass::Fp
        }
    }

    /// The register's number within its class (`0..32`).
    #[inline]
    pub const fn number(self) -> u16 {
        self.0 % INT_REG_COUNT
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class() {
            RegClass::Int => write!(f, "r{}", self.number()),
            RegClass::Fp => write!(f, "f{}", self.number()),
        }
    }
}

/// A small map from architectural registers to values of type `T`.
///
/// Used as a rename table (register → producing dynamic instruction) by the
/// trace builder, the steering logic and the critical-path analysis.
///
/// ```
/// use ccs_isa::{ArchReg, RegFile};
/// let mut rf: RegFile<u32> = RegFile::new();
/// rf.set(ArchReg::int(1), 42);
/// assert_eq!(rf.get(ArchReg::int(1)), Some(&42));
/// assert_eq!(rf.get(ArchReg::int(2)), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegFile<T> {
    slots: Vec<Option<T>>,
}

impl<T> RegFile<T> {
    /// Creates a register file with every register unset.
    pub fn new() -> Self {
        let mut slots = Vec::with_capacity(TOTAL_REG_COUNT as usize);
        slots.resize_with(TOTAL_REG_COUNT as usize, || None);
        RegFile { slots }
    }

    /// Returns the value for `reg`, if one has been set.
    #[inline]
    pub fn get(&self, reg: ArchReg) -> Option<&T> {
        self.slots[reg.index() as usize].as_ref()
    }

    /// Sets the value for `reg`, returning the previous value.
    #[inline]
    pub fn set(&mut self, reg: ArchReg, value: T) -> Option<T> {
        self.slots[reg.index() as usize].replace(value)
    }

    /// Clears the value for `reg`, returning it.
    #[inline]
    pub fn clear(&mut self, reg: ArchReg) -> Option<T> {
        self.slots[reg.index() as usize].take()
    }

    /// Clears every register.
    pub fn clear_all(&mut self) {
        for slot in &mut self.slots {
            *slot = None;
        }
    }

    /// Iterates over the registers that currently hold a value.
    pub fn iter(&self) -> impl Iterator<Item = (ArchReg, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.as_ref().map(|v| (ArchReg::from_index(i as u16), v)))
    }
}

impl<T> Default for RegFile<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_and_fp_registers_do_not_collide() {
        assert_ne!(ArchReg::int(0), ArchReg::fp(0));
        assert_eq!(ArchReg::int(0).index(), 0);
        assert_eq!(ArchReg::fp(0).index(), 32);
    }

    #[test]
    fn class_and_number_round_trip() {
        for i in 0..TOTAL_REG_COUNT {
            let r = ArchReg::from_index(i);
            let rebuilt = match r.class() {
                RegClass::Int => ArchReg::int(r.number()),
                RegClass::Fp => ArchReg::fp(r.number()),
            };
            assert_eq!(r, rebuilt);
        }
    }

    #[test]
    #[should_panic]
    fn int_register_out_of_range_panics() {
        let _ = ArchReg::int(32);
    }

    #[test]
    #[should_panic]
    fn flat_index_out_of_range_panics() {
        let _ = ArchReg::from_index(64);
    }

    #[test]
    fn regfile_set_get_clear() {
        let mut rf: RegFile<&str> = RegFile::new();
        assert_eq!(rf.set(ArchReg::int(3), "a"), None);
        assert_eq!(rf.set(ArchReg::int(3), "b"), Some("a"));
        assert_eq!(rf.get(ArchReg::int(3)), Some(&"b"));
        assert_eq!(rf.clear(ArchReg::int(3)), Some("b"));
        assert_eq!(rf.get(ArchReg::int(3)), None);
    }

    #[test]
    fn regfile_iter_visits_only_set_registers() {
        let mut rf: RegFile<u8> = RegFile::new();
        rf.set(ArchReg::int(1), 10);
        rf.set(ArchReg::fp(2), 20);
        let mut got: Vec<_> = rf.iter().map(|(r, &v)| (r.to_string(), v)).collect();
        got.sort();
        assert_eq!(got, vec![("f2".to_string(), 20), ("r1".to_string(), 10)]);
    }

    #[test]
    fn regfile_clear_all() {
        let mut rf: RegFile<u8> = RegFile::new();
        for i in 0..TOTAL_REG_COUNT {
            rf.set(ArchReg::from_index(i), 1);
        }
        rf.clear_all();
        assert_eq!(rf.iter().count(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ArchReg::int(31).to_string(), "r31");
        assert_eq!(ArchReg::fp(31).to_string(), "f31");
    }
}
