//! Alpha-flavoured micro-op ISA and machine configuration types.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace: operation classes and their latencies (modelled after the
//! Alpha 21264, as in the paper), architectural registers, static
//! instructions, and the machine/cluster configuration types that describe
//! the monolithic baseline (`1x8w`) and its clustered partitionings
//! (`2x4w`, `4x2w`, `8x1w`).
//!
//! # Example
//!
//! ```
//! use ccs_isa::{MachineConfig, ClusterLayout, OpClass};
//!
//! let baseline = MachineConfig::micro05_baseline();
//! assert_eq!(baseline.cluster_count(), 1);
//!
//! let clustered = baseline.with_layout(ClusterLayout::C4x2w);
//! assert_eq!(clustered.cluster_count(), 4);
//! assert_eq!(clustered.cluster.window_entries, 32);
//! assert_eq!(OpClass::Load.latency(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod inst;
mod op;
mod reg;

pub use config::{
    ClusterConfig, ClusterLayout, ConfigError, FrontEndConfig, MachineConfig, MemoryConfig,
};
pub use inst::{BranchClass, BranchInfo, Pc, StaticInst};
pub use op::{OpClass, PortKind};
pub use reg::{ArchReg, RegClass, RegFile, INT_REG_COUNT, TOTAL_REG_COUNT};
