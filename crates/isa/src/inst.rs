//! Static instruction representation.
//!
//! A *static* instruction is a PC-identified operation template: its class,
//! source registers and destination register. Dynamic instances of static
//! instructions (with resolved dependences, addresses and branch outcomes)
//! live in the `ccs-trace` crate. The criticality predictors in
//! `ccs-predictors` are indexed by [`Pc`], because the paper's likelihood
//! of criticality is a property of the *static* instruction.

use crate::op::OpClass;
use crate::reg::ArchReg;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A program counter value identifying a static instruction.
///
/// ```
/// use ccs_isa::Pc;
/// let pc = Pc::new(0x1200);
/// assert_eq!(pc.next().raw(), 0x1204);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Pc(u64);

impl Pc {
    /// Instruction size in bytes (fixed-width, Alpha-style).
    pub const INST_BYTES: u64 = 4;

    /// Creates a PC from a raw address.
    #[inline]
    pub const fn new(addr: u64) -> Self {
        Pc(addr)
    }

    /// The raw address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The PC of the next sequential instruction.
    #[inline]
    pub const fn next(self) -> Pc {
        Pc(self.0 + Self::INST_BYTES)
    }

    /// The PC `n` instructions later.
    #[inline]
    pub const fn offset(self, n: u64) -> Pc {
        Pc(self.0 + n * Self::INST_BYTES)
    }
}

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Pc {
    fn from(addr: u64) -> Self {
        Pc(addr)
    }
}

/// How a control-flow instruction behaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchClass {
    /// Conditional branch whose direction is predicted by the branch
    /// predictor.
    Conditional,
    /// Unconditional direct jump (always taken, direction trivially known).
    Unconditional,
}

/// The dynamic outcome of a control-flow instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchInfo {
    /// The branch's class.
    pub class: BranchClass,
    /// Whether the branch was taken in this dynamic instance.
    pub taken: bool,
}

impl BranchInfo {
    /// A taken/not-taken conditional branch outcome.
    pub const fn conditional(taken: bool) -> Self {
        BranchInfo {
            class: BranchClass::Conditional,
            taken,
        }
    }

    /// An unconditional (always taken) jump outcome.
    pub const fn unconditional() -> Self {
        BranchInfo {
            class: BranchClass::Unconditional,
            taken: true,
        }
    }
}

/// A static instruction: operation class plus register operands.
///
/// Up to two source registers and an optional destination, which is the
/// operand shape of the Alpha integer ISA the paper compiles for.
///
/// ```
/// use ccs_isa::{ArchReg, OpClass, Pc, StaticInst};
/// let add = StaticInst::new(Pc::new(0x100), OpClass::IntAlu)
///     .with_srcs([Some(ArchReg::int(1)), Some(ArchReg::int(2))])
///     .with_dst(ArchReg::int(3));
/// assert_eq!(add.src_count(), 2);
/// assert!(add.is_dyadic());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StaticInst {
    /// The instruction's PC.
    pub pc: Pc,
    /// The operation class.
    pub op: OpClass,
    /// Source registers (up to two).
    pub srcs: [Option<ArchReg>; 2],
    /// Destination register, if the instruction produces a value.
    pub dst: Option<ArchReg>,
}

impl StaticInst {
    /// Creates an instruction with no operands.
    pub const fn new(pc: Pc, op: OpClass) -> Self {
        StaticInst {
            pc,
            op,
            srcs: [None, None],
            dst: None,
        }
    }

    /// Sets the source registers.
    #[must_use]
    pub const fn with_srcs(mut self, srcs: [Option<ArchReg>; 2]) -> Self {
        self.srcs = srcs;
        self
    }

    /// Sets a single (first) source register.
    #[must_use]
    pub const fn with_src(mut self, src: ArchReg) -> Self {
        self.srcs = [Some(src), None];
        self
    }

    /// Sets the destination register.
    ///
    /// # Panics
    ///
    /// Panics if the operation class does not produce a value
    /// (stores, branches, jumps).
    #[must_use]
    pub fn with_dst(mut self, dst: ArchReg) -> Self {
        assert!(
            self.op.produces_value(),
            "{} does not produce a register value",
            self.op
        );
        self.dst = Some(dst);
        self
    }

    /// The number of source operands.
    #[inline]
    pub fn src_count(&self) -> usize {
        self.srcs.iter().filter(|s| s.is_some()).count()
    }

    /// Whether the instruction has two source operands — the *dyadic*
    /// shape at which convergent dataflow (§2.2 of the paper) occurs.
    #[inline]
    pub fn is_dyadic(&self) -> bool {
        self.src_count() == 2
    }

    /// Iterates over the present source registers.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().filter_map(|s| *s)
    }
}

impl fmt::Display for StaticInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.pc, self.op)?;
        if let Some(dst) = self.dst {
            write!(f, " {dst}")?;
        }
        let mut first = self.dst.is_none();
        for src in self.sources() {
            if first {
                write!(f, " {src}")?;
                first = false;
            } else {
                write!(f, ", {src}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_arithmetic() {
        let pc = Pc::new(0x1000);
        assert_eq!(pc.next(), Pc::new(0x1004));
        assert_eq!(pc.offset(4), Pc::new(0x1010));
        assert_eq!(Pc::from(8u64).raw(), 8);
    }

    #[test]
    fn pc_display_is_hex() {
        assert_eq!(Pc::new(0xff).to_string(), "0xff");
    }

    #[test]
    fn static_inst_builders() {
        let inst = StaticInst::new(Pc::new(0), OpClass::IntAlu)
            .with_srcs([Some(ArchReg::int(1)), Some(ArchReg::int(2))])
            .with_dst(ArchReg::int(3));
        assert_eq!(inst.src_count(), 2);
        assert!(inst.is_dyadic());
        assert_eq!(inst.dst, Some(ArchReg::int(3)));
        assert_eq!(inst.sources().count(), 2);
    }

    #[test]
    fn monadic_inst_is_not_dyadic() {
        let inst = StaticInst::new(Pc::new(0), OpClass::Load).with_src(ArchReg::int(1));
        assert_eq!(inst.src_count(), 1);
        assert!(!inst.is_dyadic());
    }

    #[test]
    #[should_panic]
    fn store_cannot_have_dst() {
        let _ = StaticInst::new(Pc::new(0), OpClass::Store).with_dst(ArchReg::int(0));
    }

    #[test]
    fn branch_info_constructors() {
        let b = BranchInfo::conditional(true);
        assert!(b.taken);
        assert_eq!(b.class, BranchClass::Conditional);
        let j = BranchInfo::unconditional();
        assert!(j.taken);
        assert_eq!(j.class, BranchClass::Unconditional);
    }

    #[test]
    fn display_includes_operands() {
        let inst = StaticInst::new(Pc::new(0x40), OpClass::IntAlu)
            .with_srcs([Some(ArchReg::int(1)), Some(ArchReg::int(2))])
            .with_dst(ArchReg::int(3));
        let s = inst.to_string();
        assert!(s.contains("alu"));
        assert!(s.contains("r3"));
        assert!(s.contains("r1"));
        assert!(s.contains("r2"));
    }
}
