//! Region-based joint placement and slotting.

use ccs_isa::{MachineConfig, PortKind};
use ccs_sim::SimResult;
use ccs_trace::Trace;
use serde::{Deserialize, Serialize};

/// What the scheduler knows when prioritizing instructions (§4's
/// knowledge ablation).
#[derive(Debug, Clone, PartialEq)]
pub enum PriorityMode {
    /// Exact future knowledge: dataflow height within the region, with
    /// precedence for the terminating mispredicted branch's backward
    /// slice — the §2.2 configuration.
    DataflowHeight,
    /// An externally supplied priority per dynamic instruction (e.g. LoC
    /// values or binary criticality from a trained predictor), replacing
    /// the scheduler's future knowledge.
    PerInst(Vec<i64>),
}

/// Configuration of a list-scheduling run.
#[derive(Debug, Clone, PartialEq)]
pub struct ListScheduleConfig {
    /// The (possibly clustered) machine being scheduled for.
    pub machine: MachineConfig,
    /// Maximum region size. Regions are split at mispredicted branches;
    /// this cap bounds regions in stretches with no mispredictions,
    /// introducing extra (conservative) barriers — consistent with the
    /// paper's conservative span summation (footnote 2).
    pub max_region: usize,
    /// The priority knowledge mode.
    pub priority: PriorityMode,
    /// Record every instruction's placement (for schedule inspection and
    /// legality checking).
    pub record_placements: bool,
}

impl ListScheduleConfig {
    /// The §2.2 configuration for a machine: height priorities, regions
    /// capped at 512 instructions.
    pub fn new(machine: MachineConfig) -> Self {
        ListScheduleConfig {
            machine,
            max_region: 512,
            priority: PriorityMode::DataflowHeight,
            record_placements: false,
        }
    }

    /// Enables placement recording.
    #[must_use]
    pub fn with_placements(mut self) -> Self {
        self.record_placements = true;
        self
    }

    /// Replaces the priority knowledge (the §4 ablation).
    #[must_use]
    pub fn with_priority(mut self, priority: PriorityMode) -> Self {
        self.priority = priority;
        self
    }

    /// Replaces the region cap.
    #[must_use]
    pub fn with_max_region(mut self, max_region: usize) -> Self {
        assert!(max_region >= 2, "regions must allow at least two instructions");
        self.max_region = max_region;
        self
    }
}

/// One instruction's placement in the idealized schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Region index the instruction was scheduled in.
    pub region: u32,
    /// Issue cycle, relative to the region's start.
    pub issue: u64,
    /// Completion cycle, relative to the region's start.
    pub finish: u64,
    /// The cluster assigned.
    pub cluster: u32,
}

/// The outcome of list-scheduling a trace onto a machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ListScheduleResult {
    /// Total schedule length in cycles (sum of region spans plus
    /// misprediction redelivery between regions).
    pub cycles: u64,
    /// Instructions scheduled.
    pub instructions: usize,
    /// Number of regions.
    pub regions: usize,
    /// Operand deliveries that crossed clusters.
    pub cross_cluster_values: u64,
    /// Per-instruction placements (when
    /// [`record_placements`](ListScheduleConfig::record_placements) is
    /// set), parallel to the trace.
    pub placements: Option<Vec<Placement>>,
}

impl ListScheduleResult {
    /// Cycles per instruction of the idealized schedule.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.cycles as f64 / self.instructions as f64
    }

    /// Cross-cluster operand deliveries per instruction.
    pub fn global_values_per_inst(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.cross_cluster_values as f64 / self.instructions as f64
    }
}

/// List-schedules `trace` onto `cfg.machine`, using the monolithic
/// execution `mono` for the front-end availability constraints,
/// misprediction locations and observed memory latencies.
///
/// # Panics
///
/// Panics if `mono` is not a monolithic-machine result for `trace`.
pub fn list_schedule(
    trace: &Trace,
    mono: &SimResult,
    cfg: &ListScheduleConfig,
) -> ListScheduleResult {
    assert!(
        mono.config.is_monolithic(),
        "the reference execution must come from the 1x8w machine"
    );
    assert_eq!(trace.len(), mono.records.len(), "trace/result mismatch");

    let n = trace.len();
    let machine = &cfg.machine;
    let clusters = machine.cluster_count();
    // Initial front-end fill.
    let mut total: u64 = machine.front_end.depth_to_dispatch as u64 + 1;
    let mut regions = 0usize;
    let mut cross_values: u64 = 0;

    let mut placements = cfg
        .record_placements
        .then(|| Vec::with_capacity(n));
    if n == 0 {
        return ListScheduleResult {
            cycles: 0,
            instructions: 0,
            regions: 0,
            cross_cluster_values: 0,
            placements,
        };
    }

    let mut start = 0usize;
    while start < n {
        // Region ends at the first mispredicted branch or the size cap.
        let mut end = start;
        let mut mispredict_end = false;
        while end < n {
            let i = end;
            end += 1;
            if mono.records[i].mispredicted {
                mispredict_end = true;
                break;
            }
            if end - start >= cfg.max_region {
                break;
            }
        }
        let region_id = regions as u32;
        regions += 1;
        let (span, crossings) = schedule_region(
            trace,
            mono,
            cfg,
            start,
            end,
            region_id,
            placements.as_mut(),
        );
        total += span;
        cross_values += crossings;
        if mispredict_end {
            // Redirect and refill the front-end pipe.
            total += machine.front_end.depth_to_dispatch as u64 + 1;
        }
        start = end;
    }

    let _ = clusters;
    ListScheduleResult {
        cycles: total,
        instructions: n,
        regions,
        cross_cluster_values: cross_values,
        placements,
    }
}

/// Schedules one region; returns (span, cross-cluster deliveries).
fn schedule_region(
    trace: &Trace,
    mono: &SimResult,
    cfg: &ListScheduleConfig,
    start: usize,
    end: usize,
    region_id: u32,
    placements: Option<&mut Vec<Placement>>,
) -> (u64, u64) {
    let machine = &cfg.machine;
    let clusters = machine.cluster_count();
    let n = end - start;
    let insts = &trace.as_slice()[start..end];
    let recs = &mono.records[start..end];

    // Local dependence structure (region-internal only; earlier regions
    // act as barriers — live-ins are available at region start).
    let local_dep = |d: ccs_trace::DynIdx| -> Option<usize> {
        let di = d.index();
        (di >= start).then(|| di - start)
    };

    // Latencies as observed on the monolithic machine (includes misses).
    let lat: Vec<u64> = recs.iter().map(|r| r.exec_latency()).collect();

    // Dataflow heights (consumers always have larger local index).
    let mut height: Vec<u64> = lat.clone();
    for i in (0..n).rev() {
        for d in insts[i].producers().filter_map(local_dep) {
            let h = height[i] + lat[d];
            if h > height[d] {
                height[d] = h;
            }
        }
    }

    // Backward slice of a terminating mispredicted branch.
    let mut on_slice = vec![false; n];
    if n > 0 && recs[n - 1].mispredicted {
        let mut stack = vec![n - 1];
        on_slice[n - 1] = true;
        while let Some(i) = stack.pop() {
            for d in insts[i].producers().filter_map(local_dep) {
                if !on_slice[d] {
                    on_slice[d] = true;
                    stack.push(d);
                }
            }
        }
    }

    let priority: Vec<i64> = match &cfg.priority {
        PriorityMode::DataflowHeight => (0..n)
            .map(|i| height[i] as i64 + if on_slice[i] { 1 << 40 } else { 0 })
            .collect(),
        PriorityMode::PerInst(p) => {
            assert_eq!(p.len(), trace.len(), "per-instruction priorities must cover the trace");
            (0..n).map(|i| p[start + i]).collect()
        }
    };

    // Front-end availability, relative to the region's first fetch.
    let base_fetch = recs[0].fetch;
    let lb: Vec<u64> = recs.iter().map(|r| r.fetch - base_fetch).collect();

    let mut finish: Vec<Option<u64>> = vec![None; n];
    let mut placed: Vec<usize> = vec![0; n];
    let mut scheduled = 0usize;
    let mut crossings: u64 = 0;
    let mut t: u64 = 0;
    let span_guard = 64 * n as u64 + lat.iter().sum::<u64>() + lb.last().copied().unwrap_or(0) + 64;

    let mut width_used = vec![0usize; clusters];
    let mut int_used = vec![0usize; clusters];
    let mut fp_used = vec![0usize; clusters];
    let mut mem_used = vec![0usize; clusters];

    // Candidate scratch, rebuilt each cycle.
    let mut cands: Vec<usize> = Vec::with_capacity(n);

    while scheduled < n {
        assert!(t <= span_guard, "list scheduler failed to converge");
        width_used.iter_mut().for_each(|x| *x = 0);
        int_used.iter_mut().for_each(|x| *x = 0);
        fp_used.iter_mut().for_each(|x| *x = 0);
        mem_used.iter_mut().for_each(|x| *x = 0);

        cands.clear();
        'outer: for i in 0..n {
            if finish[i].is_some() || lb[i] > t {
                continue;
            }
            for d in insts[i].producers().filter_map(local_dep) {
                if finish[d].is_none() {
                    continue 'outer;
                }
            }
            cands.push(i);
        }
        // Highest priority first; ties oldest-first.
        cands.sort_by_key(|&i| (std::cmp::Reverse(priority[i]), i));

        for &i in &cands {
            let port = insts[i].op().port();
            // Per-cluster earliest start given operand placement.
            let mut best: Option<(usize, bool, usize)> = None; // (cluster, has_producer, load)
            for c in 0..clusters {
                if width_used[c] >= machine.cluster.issue_width {
                    continue;
                }
                let (used, cap) = match port {
                    PortKind::Int => (int_used[c], machine.cluster.int_ports),
                    PortKind::Fp => (fp_used[c], machine.cluster.fp_ports),
                    PortKind::Mem => (mem_used[c], machine.cluster.mem_ports),
                };
                if used >= cap {
                    continue;
                }
                let mut est: u64 = 0;
                let mut has_producer = false;
                for d in insts[i].producers().filter_map(local_dep) {
                    // Invariant: candidates are only considered once every
                    // producer is scheduled (the ready-set construction
                    // filters on finished deps).
                    let f = finish[d].expect("deps scheduled");
                    let fwd = machine.forwarding_between(placed[d], c) as u64;
                    est = est.max(f + fwd);
                    if placed[d] == c {
                        has_producer = true;
                    }
                }
                if est > t {
                    continue;
                }
                // Prefer clusters holding a producer (locality), then the
                // least-loaded this cycle.
                let better = match best {
                    None => true,
                    Some((_, best_has, best_load)) => {
                        (has_producer && !best_has)
                            || (has_producer == best_has && width_used[c] < best_load)
                    }
                };
                if better {
                    best = Some((c, has_producer, width_used[c]));
                }
            }
            if let Some((c, _, _)) = best {
                finish[i] = Some(t + lat[i]);
                placed[i] = c;
                width_used[c] += 1;
                match port {
                    PortKind::Int => int_used[c] += 1,
                    PortKind::Fp => fp_used[c] += 1,
                    PortKind::Mem => mem_used[c] += 1,
                }
                for d in insts[i].producers().filter_map(local_dep) {
                    if placed[d] != c {
                        crossings += 1;
                    }
                }
                scheduled += 1;
            }
        }
        t += 1;
    }

    if let Some(out) = placements {
        for i in 0..n {
            let f = finish[i].expect("all instructions scheduled");
            out.push(Placement {
                region: region_id,
                issue: f - lat[i],
                finish: f,
                cluster: placed[i] as u32,
            });
        }
    }
    let span = finish.iter().map(|f| f.unwrap()).max().unwrap_or(0);
    (span, crossings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_isa::{ArchReg, ClusterLayout, OpClass, Pc, StaticInst};
    use ccs_sim::{policies::LeastLoaded, simulate};
    use ccs_trace::{Benchmark, TraceBuilder};

    fn mono_run(trace: &Trace) -> SimResult {
        let cfg = MachineConfig::micro05_baseline();
        simulate(&cfg, trace, &mut LeastLoaded).unwrap()
    }

    fn schedule(trace: &Trace, mono: &SimResult, layout: ClusterLayout) -> ListScheduleResult {
        let machine = MachineConfig::micro05_baseline().with_layout(layout);
        list_schedule(trace, mono, &ListScheduleConfig::new(machine))
    }

    #[test]
    fn serial_chain_schedules_at_chain_length() {
        let mut b = TraceBuilder::new();
        let r = ArchReg::int(1);
        for i in 0..400u64 {
            b.push_simple(
                StaticInst::new(Pc::new(4 * (i % 8)), OpClass::IntAlu)
                    .with_src(r)
                    .with_dst(r),
            );
        }
        let trace = b.finish();
        let mono = mono_run(&trace);
        // On every layout, the ideal schedule keeps the chain on one
        // cluster: span ≈ chain length, no crossings.
        for layout in ClusterLayout::ALL {
            let r = schedule(&trace, &mono, layout);
            assert_eq!(r.cross_cluster_values, 0, "{layout}");
            assert!(
                (r.cycles as f64) < 1.2 * 400.0 + 40.0,
                "{layout}: {} cycles",
                r.cycles
            );
        }
    }

    #[test]
    fn clustered_ideal_schedules_stay_close_to_monolithic() {
        // The paper's headline potential result (Figure 2): within a few
        // percent for every benchmark-flavoured workload.
        for bench in [Benchmark::Gap, Benchmark::Vpr, Benchmark::Gcc, Benchmark::Eon] {
            let trace = bench.generate(1, 4_000);
            let mono = mono_run(&trace);
            let base = schedule(&trace, &mono, ClusterLayout::C1x8w);
            for layout in ClusterLayout::CLUSTERED {
                let clus = schedule(&trace, &mono, layout);
                let norm = clus.cycles as f64 / base.cycles as f64;
                assert!(
                    norm < 1.15,
                    "{bench} {layout}: normalized {norm:.3}"
                );
                assert!(norm >= 0.999, "{bench} {layout}: clustered beat monolithic? {norm:.3}");
            }
        }
    }

    #[test]
    fn ideal_normalized_penalty_beats_runtime_policy_penalty() {
        // The §2 comparison is between *normalized* penalties: the ideal
        // schedule's clustering loss (Figure 2) is far below a runtime
        // policy's (Figure 4). Absolute spans are conservative (regions
        // are barriers, footnote 2) and cannot be compared directly.
        let trace = Benchmark::Vpr.generate(2, 4_000);
        let mono = mono_run(&trace);
        let machine = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C8x1w);
        let runtime = simulate(&machine, &trace, &mut LeastLoaded).unwrap();
        let runtime_norm = runtime.cycles as f64 / mono.cycles as f64;
        let ideal_mono = schedule(&trace, &mono, ClusterLayout::C1x8w);
        let ideal = list_schedule(&trace, &mono, &ListScheduleConfig::new(machine));
        let ideal_norm = ideal.cycles as f64 / ideal_mono.cycles as f64;
        assert!(
            ideal_norm < runtime_norm,
            "ideal penalty {ideal_norm:.3} vs runtime {runtime_norm:.3}"
        );
    }

    #[test]
    fn forwarding_latency_sweep_degrades_gracefully() {
        // Footnote 3: even at 4-cycle forwarding, idealized loss stays
        // small.
        let trace = Benchmark::Gap.generate(4, 3_000);
        let mono = mono_run(&trace);
        let mk = |lat: u32| {
            MachineConfig::micro05_baseline()
                .with_layout(ClusterLayout::C4x2w)
                .with_forward_latency(lat)
        };
        let base = schedule(&trace, &mono, ClusterLayout::C1x8w);
        let l2 = list_schedule(&trace, &mono, &ListScheduleConfig::new(mk(2)));
        let l4 = list_schedule(&trace, &mono, &ListScheduleConfig::new(mk(4)));
        assert!(l4.cycles >= l2.cycles);
        assert!((l4.cycles as f64 / base.cycles as f64) < 1.15);
    }

    #[test]
    fn per_inst_priorities_are_respected() {
        let trace = Benchmark::Vpr.generate(5, 2_000);
        let mono = mono_run(&trace);
        let machine = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C8x1w);
        let exact = list_schedule(&trace, &mono, &ListScheduleConfig::new(machine));
        // A degenerate priority (all zero) is a legal knowledge mode and
        // schedules everything, just possibly slower.
        let blind = list_schedule(
            &trace,
            &mono,
            &ListScheduleConfig::new(machine)
                .with_priority(PriorityMode::PerInst(vec![0; trace.len()])),
        );
        assert_eq!(blind.instructions, trace.len());
        // List scheduling is a heuristic, so blind priorities can
        // occasionally tie or marginally beat informed ones on a given
        // trace; they must not be dramatically better.
        assert!(
            blind.cycles as f64 >= exact.cycles as f64 * 0.95,
            "blind {} vs exact {}",
            blind.cycles,
            exact.cycles
        );
    }

    #[test]
    fn empty_trace() {
        let trace = TraceBuilder::new().finish();
        let mono = mono_run(&trace);
        let r = schedule(&trace, &mono, ClusterLayout::C4x2w);
        assert_eq!(r.cycles, 0);
        assert_eq!(r.cpi(), 0.0);
        assert_eq!(r.global_values_per_inst(), 0.0);
    }

    #[test]
    fn region_cap_is_respected_and_conservative() {
        let trace = Benchmark::Gzip.generate(1, 3_000);
        let mono = mono_run(&trace);
        let machine = MachineConfig::micro05_baseline();
        let small = list_schedule(
            &trace,
            &mono,
            &ListScheduleConfig::new(machine).with_max_region(64),
        );
        let large = list_schedule(
            &trace,
            &mono,
            &ListScheduleConfig::new(machine).with_max_region(1024),
        );
        assert!(small.regions > large.regions);
        // More barriers can only lengthen the estimate.
        assert!(small.cycles >= large.cycles);
    }

    #[test]
    #[should_panic]
    fn clustered_reference_is_rejected() {
        let trace = Benchmark::Gap.generate(1, 500);
        let machine = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C2x4w);
        let clustered = simulate(&machine, &trace, &mut LeastLoaded).unwrap();
        let _ = list_schedule(&trace, &clustered, &ListScheduleConfig::new(machine));
    }
}
