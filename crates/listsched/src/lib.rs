//! The idealized list scheduler of §2.2.
//!
//! The paper's *potential* study takes the trace of instructions retiring
//! from the monolithic (`1x8w`) machine and rebuilds, offline, a joint
//! cluster placement + issue slotting for each clustered configuration —
//! with a global view of all in-flight instructions and exact future
//! knowledge. The resulting schedule length bounds what any steering and
//! scheduling policy could achieve on that hardware, and comes out within
//! ~2% of the monolithic machine: clustering's IPC penalty is an artifact
//! of policies, not hardware (the paper's first contribution).
//!
//! Faithfulness to the paper's construction:
//!
//! * The trace is split into regions at mispredicted branches (footnote
//!   2); summing region spans gives a conservative runtime estimate.
//! * Instructions cannot be scheduled before they were dispatched into
//!   the window of the real machine (front-end constraint), and the
//!   misprediction redirect latency is observed between regions.
//! * Per-cycle issue constraints (cluster width and int/fp/mem ports) and
//!   the inter-cluster forwarding penalty are enforced.
//! * Priority is dataflow height with precedence for the terminating
//!   mispredicted branch's backward slice; locality is respected by
//!   preferring clusters holding a producer. §4's variants replace this
//!   exact knowledge with LoC-only or binary-criticality priorities
//!   ([`PriorityMode`]).
//!
//! # Example
//!
//! ```
//! use ccs_isa::{ClusterLayout, MachineConfig};
//! use ccs_listsched::{list_schedule, ListScheduleConfig};
//! use ccs_sim::{policies::LeastLoaded, simulate};
//! use ccs_trace::Benchmark;
//!
//! let trace = Benchmark::Gap.generate(1, 3_000);
//! let mono_cfg = MachineConfig::micro05_baseline();
//! let mono = simulate(&mono_cfg, &trace, &mut LeastLoaded).unwrap();
//!
//! let ideal_mono = list_schedule(&trace, &mono,
//!     &ListScheduleConfig::new(mono_cfg));
//! let ideal_4x2 = list_schedule(&trace, &mono,
//!     &ListScheduleConfig::new(mono_cfg.with_layout(ClusterLayout::C4x2w)));
//! // The idealized clustered schedule is close to the idealized
//! // monolithic one.
//! let normalized = ideal_4x2.cycles as f64 / ideal_mono.cycles as f64;
//! assert!(normalized < 1.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod scheduler;

pub use scheduler::{list_schedule, ListScheduleConfig, ListScheduleResult, Placement, PriorityMode};
