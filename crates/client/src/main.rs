//! The `ccs-client` CLI.
//!
//! ```text
//! ccs-client [--server HOST:PORT] grid [--bench NAME]... [--len N]
//!            [--samples N] [--seed N] [--epochs N] [--retries N]
//! ccs-client [--server HOST:PORT] status
//! ccs-client [--server HOST:PORT] metrics
//! ccs-client [--server HOST:PORT] drain
//! ```
//!
//! The server address defaults to `$CCS_SERVER`, then
//! `127.0.0.1:7405`. `grid` submits the same benchmark × clustered
//! layout × policy-ladder grid the batch `grid_campaign` binary runs,
//! streams per-cell results as they finish, and exits with the same
//! codes: `0` all ok, `1` any failure/timeout, `2` incomplete.

use ccs_client::Client;
use ccs_core::PolicyKind;
use ccs_isa::ClusterLayout;
use ccs_serve::WireCellSpec;
use ccs_trace::Benchmark;

const DEFAULT_SERVER: &str = "127.0.0.1:7405";

fn usage() -> ! {
    eprintln!(
        "usage: ccs-client [--server HOST:PORT] <grid|status|metrics|drain> [grid flags]\n\
         \x20 grid flags: [--bench NAME]... [--len N] [--samples N] [--seed N] [--epochs N] [--retries N]"
    );
    std::process::exit(2)
}

struct GridFlags {
    benches: Vec<Benchmark>,
    len: usize,
    samples: u64,
    seed: u64,
    epochs: u32,
    retries: u32,
}

impl Default for GridFlags {
    fn default() -> Self {
        GridFlags {
            benches: Benchmark::ALL.to_vec(),
            len: 20_000,
            samples: 1,
            seed: 1,
            epochs: 2,
            retries: 5,
        }
    }
}

/// The same grid the batch `grid_campaign` binary builds: every
/// benchmark × clustered layout × policy ladder, with the proactive bar
/// only on the 8-cluster machine (paper Figure 14).
fn build_grid(flags: &GridFlags) -> Vec<WireCellSpec> {
    let mut cells = Vec::new();
    for &bench in &flags.benches {
        for layout in ClusterLayout::CLUSTERED {
            for policy in PolicyKind::LADDER {
                if policy == PolicyKind::Proactive && layout != ClusterLayout::C8x1w {
                    continue;
                }
                for k in 0..flags.samples.max(1) {
                    let seed = flags.seed + 1_000 * k;
                    cells.push(
                        WireCellSpec::new(bench, seed, flags.len, layout, policy)
                            .with_epochs(flags.epochs),
                    );
                }
            }
        }
    }
    cells
}

fn parse_bench(name: &str) -> Benchmark {
    Benchmark::ALL
        .into_iter()
        .find(|b| b.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown benchmark {name:?}");
            usage()
        })
}

fn main() {
    let mut server = std::env::var("CCS_SERVER").unwrap_or_else(|_| DEFAULT_SERVER.to_string());
    let mut command: Option<String> = None;
    let mut flags = GridFlags::default();
    let mut benches_given = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("{arg} needs a {what}");
                usage()
            })
        };
        match arg.as_str() {
            "--server" => server = value("HOST:PORT"),
            "--bench" => {
                if !benches_given {
                    flags.benches.clear();
                    benches_given = true;
                }
                let bench = parse_bench(&value("NAME"));
                flags.benches.push(bench);
            }
            "--len" => flags.len = parse_num(&arg, &value("count")) as usize,
            "--samples" => flags.samples = parse_num(&arg, &value("count")),
            "--seed" => flags.seed = parse_num(&arg, &value("seed")),
            "--epochs" => flags.epochs = parse_num(&arg, &value("count")) as u32,
            "--retries" => flags.retries = parse_num(&arg, &value("count")) as u32,
            "--help" | "-h" => usage(),
            "grid" | "status" | "metrics" | "drain" if command.is_none() => {
                command = Some(arg.clone())
            }
            other => {
                eprintln!("unexpected argument {other:?}");
                usage()
            }
        }
    }
    let Some(command) = command else { usage() };

    let mut client = match Client::connect(&server) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ccs-client: {e}");
            std::process::exit(2);
        }
    };

    let code = match command.as_str() {
        "grid" => run_grid(&mut client, &flags),
        "status" => run_status(&mut client),
        "metrics" => run_metrics(&mut client),
        "drain" => run_drain(&mut client),
        _ => usage(),
    };
    std::process::exit(code);
}

fn parse_num(flag: &str, value: &str) -> u64 {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: not a number: {value:?}");
        usage()
    })
}

fn run_grid(client: &mut Client, flags: &GridFlags) -> i32 {
    let cells = build_grid(flags);
    println!("submitting {} cells", cells.len());
    let outcome = client.submit_grid_with_retry(&cells, flags.retries, |record| {
        let detail = if record.is_ok() {
            format!("CPI {:.4}{}", record.cpi(), if record.cached { " (cached)" } else { "" })
        } else {
            record.error.clone().unwrap_or_default()
        };
        println!("cell {:>4}  {:7}  {}  {detail}", record.index, record.status, record.key);
    });
    match outcome {
        Ok(outcome) => {
            println!(
                "grid done: {} ok, {} failed, {} timed out, {} cached",
                outcome.ok, outcome.failed, outcome.timed_out, outcome.cached
            );
            outcome.exit_code()
        }
        Err(e) => {
            eprintln!("ccs-client: {e}");
            2
        }
    }
}

fn run_status(client: &mut Client) -> i32 {
    match client.status() {
        Ok(s) => {
            println!(
                "protocol v{} draining={} queue {}/{} workers {}\n\
                 cache {}/{} (hits {} misses {})\n\
                 admitted {} evaluated {} busy-rejects {} protocol-errors {}\n\
                 approx-answered {} recovered {} peer-hits {}",
                s.protocol,
                s.draining,
                s.queue_depth,
                s.queue_capacity,
                s.workers,
                s.cache_len,
                s.cache_capacity,
                s.cache_hits,
                s.cache_misses,
                s.cells_admitted,
                s.cells_evaluated,
                s.admission_rejects,
                s.protocol_errors,
                s.approx_answered,
                s.recovered,
                s.peer_hits,
            );
            0
        }
        Err(e) => {
            eprintln!("ccs-client: {e}");
            2
        }
    }
}

fn run_metrics(client: &mut Client) -> i32 {
    match client.metrics_json() {
        Ok(json) => {
            println!("{json}");
            0
        }
        Err(e) => {
            eprintln!("ccs-client: {e}");
            2
        }
    }
}

fn run_drain(client: &mut Client) -> i32 {
    match client.drain() {
        Ok(pending) => {
            println!("draining ({pending} cells pending)");
            0
        }
        Err(e) => {
            eprintln!("ccs-client: {e}");
            2
        }
    }
}
