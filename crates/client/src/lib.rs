//! Client library for the `ccs-serve` daemon.
//!
//! [`Client`] wraps one TCP connection: it frames requests, streams
//! per-cell replies in completion order, and reassembles them into
//! input order. Backpressure is surfaced, not hidden —
//! [`Client::submit_grid`] returns the server's typed busy reply as
//! [`CcsError::Rejected`] with the retry hint, and
//! [`Client::submit_grid_with_retry`] layers bounded honor-the-hint
//! retries on top for callers that just want the grid done.
//!
//! [`GridOutcome::exit_code`] mirrors the batch `grid_campaign` binary:
//! `0` all cells ok, `1` any cell failed or timed out, `2` incomplete
//! (the connection died mid-grid).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ccs_core::CcsError;
use ccs_serve::{FrameReader, Request, Response, ServeError, StatusReply, WireCellRecord, WireCellSpec};
use std::net::TcpStream;
use std::time::Duration;

/// One connection to a serve daemon.
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    next_id: u64,
}

/// What an approximate submission came back with.
///
/// A cache hit on the daemon still answers exactly — an analytic
/// envelope is never a downgrade from a simulated result already in
/// hand — so callers must be ready for either shape.
#[derive(Debug, Clone)]
pub enum ApproxAnswer {
    /// The daemon had the simulated result cached and returned it.
    Exact(WireCellRecord),
    /// The daemon answered with `ccs-predict`'s analytic envelope
    /// without simulating. Escalate by re-submitting via
    /// [`Client::submit_cell`].
    Envelope {
        /// The cell's checkpoint key.
        key: String,
        /// Sound lower bound on simulated cycles.
        cycles_lo: u64,
        /// Sound upper bound on simulated cycles.
        cycles_hi: u64,
        /// Sound upper bound on achieved IPC.
        ipc_hi: f64,
        /// Envelope confidence grade (`high`/`medium`/`low`).
        confidence: String,
    },
}

/// What a grid submission produced, reassembled into input order.
#[derive(Debug, Clone)]
pub struct GridOutcome {
    /// Per-cell records in submission order; `None` where the daemon
    /// never answered (connection lost mid-grid).
    pub records: Vec<Option<WireCellRecord>>,
    /// Cells that completed (`ok`).
    pub ok: usize,
    /// Cells that failed.
    pub failed: usize,
    /// Cells that timed out.
    pub timed_out: usize,
    /// Cells answered from the daemon's result cache.
    pub cached: usize,
}

impl GridOutcome {
    /// Whether every cell was answered.
    pub fn is_complete(&self) -> bool {
        self.records.iter().all(Option::is_some)
    }

    /// `grid_campaign`-compatible exit code: `0` every cell ok, `1` any
    /// cell failed or timed out, `2` incomplete.
    pub fn exit_code(&self) -> i32 {
        if !self.is_complete() {
            2
        } else if self.failed > 0 || self.timed_out > 0 {
            1
        } else {
            0
        }
    }
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `127.0.0.1:7405`).
    ///
    /// # Errors
    ///
    /// [`CcsError::Protocol`] when the connection cannot be made.
    pub fn connect(addr: &str) -> Result<Client, CcsError> {
        let stream = TcpStream::connect(addr).map_err(|e| CcsError::Protocol {
            message: format!("connect {addr}: {e}"),
        })?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            reader: FrameReader::new(),
            next_id: 1,
        })
    }

    fn send(&mut self, request: &Request) -> Result<(), ServeError> {
        ccs_serve::write_frame(&mut self.stream, &request.encode())
    }

    fn recv(&mut self) -> Result<Response, ServeError> {
        let payload = self.reader.read_frame(&mut self.stream)?;
        Response::decode(&payload)
    }

    /// Lifts server-side reject/busy/error replies into the error
    /// taxonomy so submission loops can match on one shape.
    fn refusal(response: Response) -> CcsError {
        match response {
            Response::Busy { retry_after_ms } => CcsError::Rejected {
                reason: "server busy".into(),
                retry_after_ms: Some(retry_after_ms),
            },
            Response::Rejected { reason } => CcsError::Rejected {
                reason,
                retry_after_ms: None,
            },
            Response::Error { message } => CcsError::Protocol { message },
            other => CcsError::Protocol {
                message: format!("unexpected reply: {other:?}"),
            },
        }
    }

    /// Submits one cell and waits for its record.
    ///
    /// # Errors
    ///
    /// [`CcsError::Rejected`] on busy/draining replies,
    /// [`CcsError::Protocol`] on transport or protocol failures.
    pub fn submit_cell(&mut self, cell: &WireCellSpec) -> Result<WireCellRecord, CcsError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Request::SubmitCell {
            id,
            cell: cell.clone(),
            approx: false,
        })
        .map_err(CcsError::from)?;
        match self.recv().map_err(CcsError::from)? {
            Response::Cell { record, .. } => Ok(record),
            other => Err(Self::refusal(other)),
        }
    }

    /// Submits one cell with the `approx` flag: the daemon answers from
    /// its cache when it can (exact), and with the analytic
    /// `[cycles_lo, cycles_hi]` / IPC-ceiling envelope otherwise —
    /// without ever queueing a simulation.
    ///
    /// # Errors
    ///
    /// [`CcsError::Rejected`] on busy/draining replies,
    /// [`CcsError::Protocol`] on transport or protocol failures.
    pub fn submit_cell_approx(&mut self, cell: &WireCellSpec) -> Result<ApproxAnswer, CcsError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Request::SubmitCell {
            id,
            cell: cell.clone(),
            approx: true,
        })
        .map_err(CcsError::from)?;
        match self.recv().map_err(CcsError::from)? {
            Response::Cell { record, .. } => Ok(ApproxAnswer::Exact(record)),
            Response::Approx {
                key,
                cycles_lo,
                cycles_hi,
                ipc_hi_bits,
                confidence,
                ..
            } => Ok(ApproxAnswer::Envelope {
                key,
                cycles_lo,
                cycles_hi,
                ipc_hi: f64::from_bits(ipc_hi_bits),
                confidence,
            }),
            other => Err(Self::refusal(other)),
        }
    }

    /// Submits a grid and streams per-cell records through `on_cell` in
    /// completion order (cache hits arrive first) until the daemon's
    /// `grid_done`.
    ///
    /// # Errors
    ///
    /// [`CcsError::Rejected`] when the daemon refused the whole
    /// submission (backpressure or draining — nothing ran);
    /// [`CcsError::Protocol`] on transport or protocol failures.
    pub fn submit_grid(
        &mut self,
        cells: &[WireCellSpec],
        mut on_cell: impl FnMut(&WireCellRecord),
    ) -> Result<GridOutcome, CcsError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Request::SubmitGrid {
            id,
            cells: cells.to_vec(),
        })
        .map_err(CcsError::from)?;
        let mut outcome = GridOutcome {
            records: vec![None; cells.len()],
            ok: 0,
            failed: 0,
            timed_out: 0,
            cached: 0,
        };
        loop {
            match self.recv().map_err(CcsError::from)? {
                Response::Cell { id: rid, record } if rid == id => {
                    on_cell(&record);
                    match record.status.as_str() {
                        "ok" => outcome.ok += 1,
                        "TIMEOUT" => outcome.timed_out += 1,
                        _ => outcome.failed += 1,
                    }
                    if record.cached {
                        outcome.cached += 1;
                    }
                    if let Some(slot) = outcome.records.get_mut(record.index) {
                        *slot = Some(record);
                    }
                }
                Response::GridDone { id: rid, .. } if rid == id => return Ok(outcome),
                other => return Err(Self::refusal(other)),
            }
        }
    }

    /// [`submit_grid`](Self::submit_grid) with bounded backoff: busy
    /// replies are retried up to `max_attempts` times, sleeping the
    /// server's hint (capped at one second) between attempts. Draining
    /// rejects are returned immediately — the daemon is going away, and
    /// retrying into it only delays the caller's own failure handling.
    ///
    /// # Errors
    ///
    /// As for [`submit_grid`](Self::submit_grid); a final busy reply
    /// after `max_attempts` is returned as-is.
    pub fn submit_grid_with_retry(
        &mut self,
        cells: &[WireCellSpec],
        max_attempts: u32,
        mut on_cell: impl FnMut(&WireCellRecord),
    ) -> Result<GridOutcome, CcsError> {
        let mut attempt = 0;
        loop {
            attempt += 1;
            match self.submit_grid(cells, &mut on_cell) {
                Err(CcsError::Rejected {
                    reason,
                    retry_after_ms: Some(hint),
                }) if attempt < max_attempts.max(1) => {
                    let _ = reason;
                    std::thread::sleep(Duration::from_millis(hint.clamp(1, 1_000)));
                }
                other => return other,
            }
        }
    }

    /// Fetches the daemon's status.
    ///
    /// # Errors
    ///
    /// [`CcsError::Protocol`] on transport/protocol failures.
    pub fn status(&mut self) -> Result<StatusReply, CcsError> {
        self.send(&Request::Status).map_err(CcsError::from)?;
        match self.recv().map_err(CcsError::from)? {
            Response::Status(s) => Ok(s),
            other => Err(Self::refusal(other)),
        }
    }

    /// Fetches the daemon's full metrics as rendered JSON.
    ///
    /// # Errors
    ///
    /// [`CcsError::Protocol`] on transport/protocol failures.
    pub fn metrics_json(&mut self) -> Result<String, CcsError> {
        self.send(&Request::Metrics).map_err(CcsError::from)?;
        match self.recv().map_err(CcsError::from)? {
            Response::Metrics { json } => Ok(json),
            other => Err(Self::refusal(other)),
        }
    }

    /// Asks the daemon to drain: finish in-flight cells, refuse new
    /// submissions, then exit. Returns the number of cells that were
    /// still pending at the request.
    ///
    /// # Errors
    ///
    /// [`CcsError::Protocol`] on transport/protocol failures.
    pub fn drain(&mut self) -> Result<u64, CcsError> {
        self.send(&Request::Drain).map_err(CcsError::from)?;
        match self.recv().map_err(CcsError::from)? {
            Response::Draining { pending } => Ok(pending),
            other => Err(Self::refusal(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(index: usize, status: &str, cached: bool) -> WireCellRecord {
        WireCellRecord {
            index,
            key: format!("k{index}"),
            status: status.into(),
            attempts: 1,
            cycles: 100,
            cpi_bits: 0,
            digest: 0,
            cached,
            error: None,
        }
    }

    #[test]
    fn exit_codes_mirror_grid_campaign() {
        let complete_ok = GridOutcome {
            records: vec![Some(record(0, "ok", false))],
            ok: 1,
            failed: 0,
            timed_out: 0,
            cached: 0,
        };
        assert_eq!(complete_ok.exit_code(), 0);
        let with_failure = GridOutcome {
            records: vec![Some(record(0, "FAILED", false))],
            ok: 0,
            failed: 1,
            timed_out: 0,
            cached: 0,
        };
        assert_eq!(with_failure.exit_code(), 1);
        let incomplete = GridOutcome {
            records: vec![None],
            ok: 0,
            failed: 0,
            timed_out: 0,
            cached: 0,
        };
        assert_eq!(incomplete.exit_code(), 2);
        assert!(!incomplete.is_complete());
    }
}
