//! Client library for the `ccs-serve` daemon.
//!
//! [`Client`] wraps one TCP connection: it frames requests, streams
//! per-cell replies in completion order, and reassembles them into
//! input order. Backpressure is surfaced, not hidden —
//! [`Client::submit_grid`] returns the server's typed busy reply as
//! [`CcsError::Rejected`] with the retry hint, and
//! [`Client::submit_grid_with_retry`] layers bounded honor-the-hint
//! retries on top for callers that just want the grid done.
//!
//! [`GridOutcome::exit_code`] mirrors the batch `grid_campaign` binary:
//! `0` all cells ok, `1` any cell failed or timed out, `2` incomplete
//! (the connection died mid-grid).
//!
//! For multi-daemon campaigns, [`ClusterClient`] routes each cell to
//! its owning shard on a consistent-hash [`ShardMap`](ccs_core::ShardMap)
//! and fails unanswered cells over along the ring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;

pub use cluster::{ClusterClient, ClusterOutcome};

use ccs_core::CcsError;
use ccs_serve::{
    FrameReader, Poll, Request, Response, ServeError, StatusReply, WireCellRecord, WireCellSpec,
};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// One connection to a serve daemon.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    reader: FrameReader,
    next_id: u64,
    reply_timeout: Option<Duration>,
}

/// Bounded, jittered exponential backoff for busy retries.
///
/// Each busy reply sleeps `jitter(min(cap, max(server_hint,
/// base << attempt)))` where `jitter` draws uniformly from the upper
/// half of the window (an xorshift64* stream seeded by `seed`, so two
/// clients retrying the same saturated daemon desynchronize instead of
/// hammering it in lockstep). Retries stop at `max_attempts` or when
/// `deadline` of wall-clock time has elapsed across *all* attempts,
/// whichever comes first, with a typed
/// [`CcsError::RetriesExhausted`] carrying the final refusal.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Submission attempts before giving up (≥ 1).
    pub max_attempts: u32,
    /// Backoff floor for the first retry.
    pub base: Duration,
    /// Backoff ceiling regardless of attempt count or server hint.
    pub cap: Duration,
    /// Total wall-clock budget across all attempts and sleeps.
    pub deadline: Option<Duration>,
    /// Jitter stream seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            deadline: Some(Duration::from_secs(30)),
            seed: 0x5eed_c1ea_11ed,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (1-based), honoring the
    /// server's busy hint as a floor and `cap` as a ceiling.
    pub fn backoff(&self, rng: &mut u64, attempt: u32, hint_ms: u64) -> Duration {
        let shift = attempt.saturating_sub(1).min(20);
        let exp = self
            .base
            .saturating_mul(1u32 << shift)
            .max(Duration::from_millis(hint_ms))
            .min(self.cap);
        // Upper-half jitter keeps a real backoff while decorrelating
        // concurrent clients.
        let nanos = ccs_serve::saturating_nanos(exp);
        let jittered = nanos / 2 + xorshift64star(rng) % (nanos / 2 + 1);
        Duration::from_nanos(jittered.max(1))
    }
}

/// xorshift64* — tiny, seedable, and good enough for backoff jitter.
fn xorshift64star(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

/// What an approximate submission came back with.
///
/// A cache hit on the daemon still answers exactly — an analytic
/// envelope is never a downgrade from a simulated result already in
/// hand — so callers must be ready for either shape.
#[derive(Debug, Clone)]
pub enum ApproxAnswer {
    /// The daemon had the simulated result cached and returned it.
    Exact(WireCellRecord),
    /// The daemon answered with `ccs-predict`'s analytic envelope
    /// without simulating. Escalate by re-submitting via
    /// [`Client::submit_cell`].
    Envelope {
        /// The cell's checkpoint key.
        key: String,
        /// Sound lower bound on simulated cycles.
        cycles_lo: u64,
        /// Sound upper bound on simulated cycles.
        cycles_hi: u64,
        /// Sound upper bound on achieved IPC.
        ipc_hi: f64,
        /// Envelope confidence grade (`high`/`medium`/`low`).
        confidence: String,
    },
}

/// What a grid submission produced, reassembled into input order.
#[derive(Debug, Clone)]
pub struct GridOutcome {
    /// Per-cell records in submission order; `None` where the daemon
    /// never answered (connection lost mid-grid).
    pub records: Vec<Option<WireCellRecord>>,
    /// Cells that completed (`ok`).
    pub ok: usize,
    /// Cells that failed.
    pub failed: usize,
    /// Cells that timed out.
    pub timed_out: usize,
    /// Cells answered from the daemon's result cache.
    pub cached: usize,
}

impl GridOutcome {
    /// Whether every cell was answered.
    pub fn is_complete(&self) -> bool {
        self.records.iter().all(Option::is_some)
    }

    /// `grid_campaign`-compatible exit code: `0` every cell ok, `1` any
    /// cell failed or timed out, `2` incomplete.
    pub fn exit_code(&self) -> i32 {
        if !self.is_complete() {
            2
        } else if self.failed > 0 || self.timed_out > 0 {
            1
        } else {
            0
        }
    }
}

impl Client {
    /// Connects to a daemon at `addr` (e.g. `127.0.0.1:7405`).
    ///
    /// # Errors
    ///
    /// [`CcsError::Protocol`] when the connection cannot be made.
    pub fn connect(addr: &str) -> Result<Client, CcsError> {
        let stream = TcpStream::connect(addr).map_err(|e| CcsError::Protocol {
            message: format!("connect {addr}: {e}"),
        })?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            reader: FrameReader::new(),
            next_id: 1,
            reply_timeout: None,
        })
    }

    /// [`connect`](Self::connect) with a bound on connection
    /// establishment, so a dead shard costs `timeout` instead of the
    /// OS's (tens-of-seconds) TCP default.
    ///
    /// # Errors
    ///
    /// [`CcsError::Timeout`] when no resolved address answered in time,
    /// [`CcsError::Protocol`] when the address does not resolve.
    pub fn connect_with_timeout(addr: &str, timeout: Duration) -> Result<Client, CcsError> {
        let resolved: Vec<_> = addr
            .to_socket_addrs()
            .map_err(|e| CcsError::Protocol {
                message: format!("resolve {addr}: {e}"),
            })?
            .collect();
        if resolved.is_empty() {
            return Err(CcsError::Protocol {
                message: format!("resolve {addr}: no addresses"),
            });
        }
        let mut last: Option<std::io::Error> = None;
        for sock in resolved {
            match TcpStream::connect_timeout(&sock, timeout) {
                Ok(stream) => {
                    let _ = stream.set_nodelay(true);
                    return Ok(Client {
                        stream,
                        reader: FrameReader::new(),
                        next_id: 1,
                        reply_timeout: None,
                    });
                }
                Err(e) => last = Some(e),
            }
        }
        let err = last.expect("at least one address was tried");
        if matches!(
            err.kind(),
            std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
        ) {
            Err(CcsError::Timeout {
                what: format!("connect to {addr} within {} ms", timeout.as_millis()),
            })
        } else {
            Err(CcsError::Protocol {
                message: format!("connect {addr}: {err}"),
            })
        }
    }

    /// Bounds every reply wait: a daemon that accepts a request but
    /// never answers (hung accept thread, stalled worker) turns into
    /// [`CcsError::Timeout`] instead of blocking the campaign forever.
    #[must_use]
    pub fn with_reply_timeout(mut self, timeout: Duration) -> Self {
        self.reply_timeout = Some(timeout);
        // Short read timeout so the poll loop can check the deadline;
        // the FrameReader preserves partial frames across timeouts.
        let _ = self
            .stream
            .set_read_timeout(Some(timeout.min(Duration::from_millis(100)).max(Duration::from_millis(1))));
        self
    }

    fn send(&mut self, request: &Request) -> Result<(), ServeError> {
        ccs_serve::write_frame(&mut self.stream, &request.encode())
    }

    fn recv(&mut self) -> Result<Response, ServeError> {
        let payload = match self.reply_timeout {
            // `read_frame` blocks until a whole frame or EOF.
            None => self.reader.read_frame(&mut self.stream)?,
            Some(limit) => {
                let deadline = Instant::now() + limit;
                loop {
                    match self.reader.poll(&mut self.stream)? {
                        Poll::Frame(payload) => break payload,
                        Poll::Pending => {
                            if Instant::now() >= deadline {
                                return Err(ServeError::Timeout {
                                    what: format!("reply within {} ms", limit.as_millis()),
                                });
                            }
                        }
                        Poll::Closed => return Err(ServeError::Closed),
                    }
                }
            }
        };
        Response::decode(&payload)
    }

    /// Lifts server-side reject/busy/error replies into the error
    /// taxonomy so submission loops can match on one shape.
    fn refusal(response: Response) -> CcsError {
        match response {
            Response::Busy { retry_after_ms } => CcsError::Rejected {
                reason: "server busy".into(),
                retry_after_ms: Some(retry_after_ms),
            },
            Response::Rejected { reason } => CcsError::Rejected {
                reason,
                retry_after_ms: None,
            },
            Response::Error { message } => CcsError::Protocol { message },
            other => CcsError::Protocol {
                message: format!("unexpected reply: {other:?}"),
            },
        }
    }

    /// Submits one cell and waits for its record.
    ///
    /// # Errors
    ///
    /// [`CcsError::Rejected`] on busy/draining replies,
    /// [`CcsError::Protocol`] on transport or protocol failures.
    pub fn submit_cell(&mut self, cell: &WireCellSpec) -> Result<WireCellRecord, CcsError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Request::SubmitCell {
            id,
            cell: cell.clone(),
            approx: false,
        })
        .map_err(CcsError::from)?;
        match self.recv().map_err(CcsError::from)? {
            Response::Cell { record, .. } => Ok(record),
            other => Err(Self::refusal(other)),
        }
    }

    /// Submits one cell with the `approx` flag: the daemon answers from
    /// its cache when it can (exact), and with the analytic
    /// `[cycles_lo, cycles_hi]` / IPC-ceiling envelope otherwise —
    /// without ever queueing a simulation.
    ///
    /// # Errors
    ///
    /// [`CcsError::Rejected`] on busy/draining replies,
    /// [`CcsError::Protocol`] on transport or protocol failures.
    pub fn submit_cell_approx(&mut self, cell: &WireCellSpec) -> Result<ApproxAnswer, CcsError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Request::SubmitCell {
            id,
            cell: cell.clone(),
            approx: true,
        })
        .map_err(CcsError::from)?;
        match self.recv().map_err(CcsError::from)? {
            Response::Cell { record, .. } => Ok(ApproxAnswer::Exact(record)),
            Response::Approx {
                key,
                cycles_lo,
                cycles_hi,
                ipc_hi_bits,
                confidence,
                ..
            } => Ok(ApproxAnswer::Envelope {
                key,
                cycles_lo,
                cycles_hi,
                ipc_hi: f64::from_bits(ipc_hi_bits),
                confidence,
            }),
            other => Err(Self::refusal(other)),
        }
    }

    /// Submits a grid and streams per-cell records through `on_cell` in
    /// completion order (cache hits arrive first) until the daemon's
    /// `grid_done`.
    ///
    /// # Errors
    ///
    /// [`CcsError::Rejected`] when the daemon refused the whole
    /// submission (backpressure or draining — nothing ran);
    /// [`CcsError::Protocol`] on transport or protocol failures.
    pub fn submit_grid(
        &mut self,
        cells: &[WireCellSpec],
        mut on_cell: impl FnMut(&WireCellRecord),
    ) -> Result<GridOutcome, CcsError> {
        let id = self.next_id;
        self.next_id += 1;
        self.send(&Request::SubmitGrid {
            id,
            cells: cells.to_vec(),
        })
        .map_err(CcsError::from)?;
        let mut outcome = GridOutcome {
            records: vec![None; cells.len()],
            ok: 0,
            failed: 0,
            timed_out: 0,
            cached: 0,
        };
        loop {
            match self.recv().map_err(CcsError::from)? {
                Response::Cell { id: rid, record } if rid == id => {
                    on_cell(&record);
                    match record.status.as_str() {
                        "ok" => outcome.ok += 1,
                        "TIMEOUT" => outcome.timed_out += 1,
                        _ => outcome.failed += 1,
                    }
                    if record.cached {
                        outcome.cached += 1;
                    }
                    if let Some(slot) = outcome.records.get_mut(record.index) {
                        *slot = Some(record);
                    }
                }
                Response::GridDone { id: rid, .. } if rid == id => return Ok(outcome),
                other => return Err(Self::refusal(other)),
            }
        }
    }

    /// [`submit_grid`](Self::submit_grid) with the default
    /// [`RetryPolicy`] bounded to `max_attempts`. Draining rejects are
    /// returned immediately — the daemon is going away, and retrying
    /// into it only delays the caller's own failure handling.
    ///
    /// # Errors
    ///
    /// As for [`submit_grid`](Self::submit_grid);
    /// [`CcsError::RetriesExhausted`] once the attempt or wall-clock
    /// budget is spent on busy replies.
    pub fn submit_grid_with_retry(
        &mut self,
        cells: &[WireCellSpec],
        max_attempts: u32,
        on_cell: impl FnMut(&WireCellRecord),
    ) -> Result<GridOutcome, CcsError> {
        let policy = RetryPolicy {
            max_attempts: max_attempts.max(1),
            ..RetryPolicy::default()
        };
        self.submit_grid_with_policy(cells, &policy, on_cell)
    }

    /// [`submit_grid`](Self::submit_grid) under an explicit
    /// [`RetryPolicy`]: busy replies sleep a capped, jittered
    /// exponential backoff (the server's hint as a floor) and retry
    /// until the policy's attempt count or total wall-clock deadline is
    /// spent.
    ///
    /// # Errors
    ///
    /// As for [`submit_grid`](Self::submit_grid);
    /// [`CcsError::RetriesExhausted`] when busy replies outlast the
    /// policy.
    pub fn submit_grid_with_policy(
        &mut self,
        cells: &[WireCellSpec],
        policy: &RetryPolicy,
        mut on_cell: impl FnMut(&WireCellRecord),
    ) -> Result<GridOutcome, CcsError> {
        let started = Instant::now();
        let mut rng = policy.seed;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.submit_grid(cells, &mut on_cell) {
                Err(CcsError::Rejected {
                    reason,
                    retry_after_ms: Some(hint),
                }) => {
                    let sleep = policy.backoff(&mut rng, attempt, hint);
                    let exhausted = attempt >= policy.max_attempts.max(1);
                    let over_deadline = policy
                        .deadline
                        .is_some_and(|d| started.elapsed() + sleep >= d);
                    if exhausted || over_deadline {
                        return Err(CcsError::RetriesExhausted {
                            attempts: attempt,
                            elapsed_ms: ccs_serve::saturating_millis(started.elapsed()),
                            last: format!("server busy: {reason} (hint {hint} ms)"),
                        });
                    }
                    std::thread::sleep(sleep);
                }
                other => return other,
            }
        }
    }

    /// Fetches the daemon's status.
    ///
    /// # Errors
    ///
    /// [`CcsError::Protocol`] on transport/protocol failures.
    pub fn status(&mut self) -> Result<StatusReply, CcsError> {
        self.send(&Request::Status).map_err(CcsError::from)?;
        match self.recv().map_err(CcsError::from)? {
            Response::Status(s) => Ok(s),
            other => Err(Self::refusal(other)),
        }
    }

    /// Fetches the daemon's full metrics as rendered JSON.
    ///
    /// # Errors
    ///
    /// [`CcsError::Protocol`] on transport/protocol failures.
    pub fn metrics_json(&mut self) -> Result<String, CcsError> {
        self.send(&Request::Metrics).map_err(CcsError::from)?;
        match self.recv().map_err(CcsError::from)? {
            Response::Metrics { json } => Ok(json),
            other => Err(Self::refusal(other)),
        }
    }

    /// Asks the daemon to drain: finish in-flight cells, refuse new
    /// submissions, then exit. Returns the number of cells that were
    /// still pending at the request.
    ///
    /// # Errors
    ///
    /// [`CcsError::Protocol`] on transport/protocol failures.
    pub fn drain(&mut self) -> Result<u64, CcsError> {
        self.send(&Request::Drain).map_err(CcsError::from)?;
        match self.recv().map_err(CcsError::from)? {
            Response::Draining { pending } => Ok(pending),
            other => Err(Self::refusal(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(index: usize, status: &str, cached: bool) -> WireCellRecord {
        WireCellRecord {
            index,
            key: format!("k{index}"),
            status: status.into(),
            attempts: 1,
            cycles: 100,
            cpi_bits: 0,
            digest: 0,
            cached,
            error: None,
        }
    }

    #[test]
    fn exit_codes_mirror_grid_campaign() {
        let complete_ok = GridOutcome {
            records: vec![Some(record(0, "ok", false))],
            ok: 1,
            failed: 0,
            timed_out: 0,
            cached: 0,
        };
        assert_eq!(complete_ok.exit_code(), 0);
        let with_failure = GridOutcome {
            records: vec![Some(record(0, "FAILED", false))],
            ok: 0,
            failed: 1,
            timed_out: 0,
            cached: 0,
        };
        assert_eq!(with_failure.exit_code(), 1);
        let incomplete = GridOutcome {
            records: vec![None],
            ok: 0,
            failed: 0,
            timed_out: 0,
            cached: 0,
        };
        assert_eq!(incomplete.exit_code(), 2);
        assert!(!incomplete.is_complete());
    }

    #[test]
    fn backoff_grows_honors_hint_and_respects_cap() {
        let policy = RetryPolicy {
            max_attempts: 10,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            deadline: None,
            seed: 7,
        };
        let mut rng = policy.seed;
        // Attempt 1 with no hint: jittered within (5, 10] ms.
        let first = policy.backoff(&mut rng, 1, 0);
        assert!(first > Duration::from_millis(4) && first <= Duration::from_millis(10));
        // A server hint above the exponential window becomes the floor.
        let hinted = policy.backoff(&mut rng, 1, 200);
        assert!(hinted > Duration::from_millis(99) && hinted <= Duration::from_millis(200));
        // Deep attempts and huge hints are clipped to the cap.
        let capped = policy.backoff(&mut rng, 30, 60_000);
        assert!(capped <= Duration::from_millis(500));
        assert!(capped > Duration::from_millis(249), "upper-half jitter");
    }

    #[test]
    fn backoff_jitter_decorrelates_two_seeds() {
        let a = RetryPolicy {
            seed: 1,
            ..RetryPolicy::default()
        };
        let b = RetryPolicy {
            seed: 2,
            ..RetryPolicy::default()
        };
        let (mut ra, mut rb) = (a.seed, b.seed);
        let sleeps_a: Vec<_> = (1..=6).map(|n| a.backoff(&mut ra, n, 0)).collect();
        let sleeps_b: Vec<_> = (1..=6).map(|n| b.backoff(&mut rb, n, 0)).collect();
        assert_ne!(sleeps_a, sleeps_b, "different seeds, different schedules");
        let (mut ra2, mut rb2) = (1u64, 1u64);
        let again: Vec<_> = (1..=6).map(|n| a.backoff(&mut ra2, n, 0)).collect();
        let same: Vec<_> = (1..=6).map(|n| a.backoff(&mut rb2, n, 0)).collect();
        assert_eq!(again, same, "same seed, same schedule — retries are replayable");
    }

    #[test]
    fn connect_with_timeout_reports_dead_shards_quickly() {
        // A port from the ephemeral range with nothing bound: either a
        // fast refusal (Protocol) or the timeout — never a hang.
        let started = Instant::now();
        let err = Client::connect_with_timeout("127.0.0.1:1", Duration::from_millis(300))
            .expect_err("nothing listens on port 1");
        assert!(started.elapsed() < Duration::from_secs(5));
        match err {
            CcsError::Protocol { .. } | CcsError::Timeout { .. } => {}
            other => panic!("unexpected error shape: {other:?}"),
        }
    }
}
