//! Multi-shard campaign submission with consistent-hash routing and
//! ring failover.
//!
//! A [`ClusterClient`] holds a [`ShardMap`] over N daemon addresses and
//! submits a grid in *waves*: wave 0 sends every cell to the shard that
//! owns its [`cell_key`](ccs_core::cell_key); any cell left unanswered
//! — the shard refused the connection, the connection died mid-grid,
//! the reply timed out, or busy retries were exhausted — rides wave 1
//! to its next ring successor, and so on for at most one wave per
//! shard. Because every client computes the same ring, re-placement
//! under failure is deterministic: two clients draining the same
//! campaign against the same degraded cluster route identically.
//!
//! Results are bit-identical wherever they land — every shard runs the
//! same deterministic evaluator — so failover changes *where* a cell is
//! computed, never *what* it answers. [`ClusterOutcome`] records which
//! shard served each cell and how many cells needed failover, so tests
//! and campaign logs can assert on placement.

use crate::{Client, GridOutcome, RetryPolicy};
use ccs_core::{cell_key, CcsError, ShardMap};
use ccs_serve::{WireCellRecord, WireCellSpec};
use std::time::Duration;

/// What a sharded grid submission produced.
#[derive(Debug, Clone)]
pub struct ClusterOutcome {
    /// Per-cell records in submission order; `None` where no shard
    /// answered within the wave budget.
    pub records: Vec<Option<WireCellRecord>>,
    /// The shard address that answered each cell.
    pub served_by: Vec<Option<String>>,
    /// Cells that completed (`ok`).
    pub ok: usize,
    /// Cells that failed.
    pub failed: usize,
    /// Cells that timed out (simulation deadline, not transport).
    pub timed_out: usize,
    /// Cells answered from a shard's result cache.
    pub cached: usize,
    /// Cells answered by a shard other than their ring owner.
    pub failovers: usize,
    /// Submission waves used (1 = no failover needed).
    pub waves: usize,
    /// The topology fingerprint the placement was computed under.
    pub map_version: u64,
}

impl ClusterOutcome {
    /// Whether every cell was answered by some shard.
    pub fn is_complete(&self) -> bool {
        self.records.iter().all(Option::is_some)
    }

    /// `grid_campaign`-compatible exit code: `0` every cell ok, `1` any
    /// cell failed or timed out, `2` incomplete.
    pub fn exit_code(&self) -> i32 {
        if !self.is_complete() {
            2
        } else if self.failed > 0 || self.timed_out > 0 {
            1
        } else {
            0
        }
    }
}

/// A sharded submission client: one [`ShardMap`], one connection per
/// shard per wave.
#[derive(Debug, Clone)]
pub struct ClusterClient {
    map: ShardMap,
    connect_timeout: Duration,
    reply_timeout: Duration,
    retry: RetryPolicy,
}

impl ClusterClient {
    /// A cluster client over `map` with defaults suited to local
    /// shards: 1 s connects, 60 s replies (cells are whole
    /// simulations), default busy retries.
    pub fn new(map: ShardMap) -> Self {
        ClusterClient {
            map,
            connect_timeout: Duration::from_secs(1),
            reply_timeout: Duration::from_secs(60),
            retry: RetryPolicy::default(),
        }
    }

    /// Overrides the connection-establishment bound.
    #[must_use]
    pub fn with_connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Overrides the per-reply wait bound.
    #[must_use]
    pub fn with_reply_timeout(mut self, timeout: Duration) -> Self {
        self.reply_timeout = timeout;
        self
    }

    /// Overrides the busy-retry policy used inside each wave.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The routing table.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Submits `cells` across the cluster, streaming every answered
    /// record through `on_cell` (with its *campaign* index) as it
    /// arrives. Shards within a wave are driven concurrently, one
    /// thread per shard.
    ///
    /// # Errors
    ///
    /// [`CcsError::Protocol`] when a cell names an unknown
    /// benchmark/layout/policy (nothing was submitted). Shard failures
    /// are *not* errors — they surface as `None` records in the
    /// [`ClusterOutcome`] after failover is exhausted.
    pub fn submit_grid(
        &self,
        cells: &[WireCellSpec],
        on_cell: impl Fn(&WireCellRecord) + Sync,
    ) -> Result<ClusterOutcome, CcsError> {
        // Placement is computed once, up front, so a mid-campaign shard
        // death cannot change where the surviving cells were routed.
        let mut routes: Vec<Vec<String>> = Vec::with_capacity(cells.len());
        for spec in cells {
            let cell = spec.to_cell().map_err(CcsError::from)?;
            let key = cell_key(&cell);
            routes.push(
                self.map
                    .successors(&key)
                    .into_iter()
                    .map(String::from)
                    .collect(),
            );
        }

        let mut records: Vec<Option<WireCellRecord>> = vec![None; cells.len()];
        let mut served_by: Vec<Option<String>> = vec![None; cells.len()];
        let mut pending: Vec<usize> = (0..cells.len()).collect();
        let mut waves = 0usize;
        let mut rng = self.retry.seed ^ self.map.version();

        // `wave` is a failover round counter — it picks each pending
        // cell's wave-th ring successor and scales the backoff — not an
        // iteration over `routes`, so the iterator form doesn't fit.
        #[allow(clippy::needless_range_loop)]
        for wave in 0..self.map.len() {
            if pending.is_empty() {
                break;
            }
            waves += 1;
            // Group this wave's pending cells by their wave-th ring
            // choice.
            let mut groups: Vec<(String, Vec<usize>)> = Vec::new();
            for &idx in &pending {
                let addr = routes[idx][wave].clone();
                match groups.iter_mut().find(|(a, _)| *a == addr) {
                    Some((_, indices)) => indices.push(idx),
                    None => groups.push((addr, vec![idx])),
                }
            }

            let answered: Vec<Vec<(usize, WireCellRecord)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = groups
                    .iter()
                    .map(|(addr, indices)| {
                        let on_cell = &on_cell;
                        scope.spawn(move || {
                            self.drive_shard(addr, indices, cells, on_cell)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_default())
                    .collect()
            });

            for (group, got) in groups.iter().zip(answered) {
                for (idx, record) in got {
                    served_by[idx] = Some(group.0.clone());
                    records[idx] = Some(record);
                }
            }
            pending.retain(|&idx| records[idx].is_none());
            if !pending.is_empty() && wave + 1 < self.map.len() {
                // Brief jittered pause before re-placing, so a restarting
                // shard's successors are not hit in the same instant the
                // failure was detected.
                std::thread::sleep(self.retry.backoff(&mut rng, wave as u32 + 1, 0));
            }
        }

        let mut outcome = ClusterOutcome {
            records,
            served_by,
            ok: 0,
            failed: 0,
            timed_out: 0,
            cached: 0,
            failovers: 0,
            waves,
            map_version: self.map.version(),
        };
        for (idx, record) in outcome.records.iter().enumerate() {
            let Some(record) = record else { continue };
            match record.status.as_str() {
                "ok" => outcome.ok += 1,
                "TIMEOUT" => outcome.timed_out += 1,
                _ => outcome.failed += 1,
            }
            if record.cached {
                outcome.cached += 1;
            }
            if outcome.served_by[idx].as_deref() != Some(routes[idx][0].as_str()) {
                outcome.failovers += 1;
            }
        }
        Ok(outcome)
    }

    /// One shard, one wave: connect, submit the sub-grid, stream
    /// replies re-indexed to campaign positions. Any failure returns
    /// whatever was answered before it; the caller re-places the rest.
    fn drive_shard(
        &self,
        addr: &str,
        indices: &[usize],
        cells: &[WireCellSpec],
        on_cell: &(impl Fn(&WireCellRecord) + Sync),
    ) -> Vec<(usize, WireCellRecord)> {
        let Ok(client) = Client::connect_with_timeout(addr, self.connect_timeout) else {
            return Vec::new();
        };
        let mut client = client.with_reply_timeout(self.reply_timeout);
        let specs: Vec<WireCellSpec> = indices.iter().map(|&i| cells[i].clone()).collect();
        let mut got: Vec<(usize, WireCellRecord)> = Vec::with_capacity(indices.len());
        let result: Result<GridOutcome, CcsError> =
            client.submit_grid_with_policy(&specs, &self.retry, |record| {
                if let Some(&global) = indices.get(record.index) {
                    let mut record = record.clone();
                    record.index = global;
                    on_cell(&record);
                    got.push((global, record));
                }
            });
        // On a clean outcome the stream already delivered everything
        // answerable; on any error (`Busy` exhaustion, transport death,
        // reply timeout) the partial `got` is still valid — those cells
        // were answered before the failure.
        let _ = result;
        got
    }
}
