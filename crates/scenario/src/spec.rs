//! The scenario data model: what a workload *is*, independent of how it
//! is written down ([`manifest`](crate::manifest)) or executed
//! ([`engine`](crate::engine)).

use crate::error::ScenarioError;
use ccs_isa::OpClass;
use ccs_trace::{BranchBehavior, Benchmark};

/// Architectural registers available to one phase's emitters (the
/// pattern library's `RegAlloc` hands out 31 before panicking).
pub const PHASE_REG_BUDGET: usize = 31;

/// A complete declarative workload: a named sequence of phases, each a
/// set of dataflow emitters driven by a schedule, optionally split
/// across SMT-style threads and interleaved.
///
/// Scenarios are *data*: two scenarios with equal fields render to the
/// same canonical manifest, fingerprint to the same [`SourceId`]
/// (`ccs_trace::SourceId`), and generate bit-identical traces.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Display name; also the cell-key prefix for scenario cells.
    pub name: String,
    /// Multi-thread interleaving policy. `None` means the default
    /// round-robin with quantum 1 (only relevant when phases use more
    /// than one thread).
    pub interleave: Option<Interleave>,
    /// Phases in program order. Phase `k`'s RNG stream is derived from
    /// `seed.wrapping_add(k) ^ salt`, so a single zero-salt phase at
    /// thread 0 reproduces a plain workload generator exactly.
    pub phases: Vec<Phase>,
}

/// How multi-thread scenarios merge their per-thread streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interleave {
    /// Merge discipline.
    pub mode: InterleaveMode,
    /// Instructions taken from a thread per turn in
    /// [`InterleaveMode::Block`] mode; ignored (always 1) in
    /// round-robin mode.
    pub quantum: u32,
}

/// SMT-style fetch interleaving discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterleaveMode {
    /// One instruction per thread per turn.
    RoundRobin,
    /// `quantum` instructions per thread per turn (block multithreading).
    Block,
}

/// One phase: a fresh register namespace, a set of emitters, and the
/// schedule that drives them until the phase's length target is met.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// XORed into the phase's RNG seed; benchmark-equivalent manifests
    /// use the generator's own seed perturbation here.
    pub salt: u64,
    /// Relative share of the scenario's requested length (≥ 1).
    pub weight: u32,
    /// SMT thread this phase belongs to. Thread ids must be contiguous
    /// from 0.
    pub thread: u32,
    /// Emission order: each step names an emitter and a repeat count.
    pub schedule: Vec<Step>,
    /// Emitters in *construction* order — this fixes register
    /// allocation, so reordering emitters changes the generated trace.
    pub emitters: Vec<EmitterSpec>,
}

/// One schedule step: emit `reps` instances of the named emitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Emitter id within the phase.
    pub id: String,
    /// Instances per pass (≥ 1).
    pub reps: u32,
}

/// A named, placed dataflow emitter.
#[derive(Debug, Clone, PartialEq)]
pub struct EmitterSpec {
    /// Phase-unique id referenced by schedule steps.
    pub id: String,
    /// Base PC of the emitter's static instructions.
    pub pc: u64,
    /// Which dataflow primitive, with its parameters.
    pub kind: EmitterKind,
}

/// The dataflow primitives of the pattern library, in manifest form.
#[derive(Debug, Clone, PartialEq)]
pub enum EmitterKind {
    /// A serial dependence chain of `len` static links (ILP ≈ 1).
    Chain {
        /// Static body length (≥ 1).
        len: u32,
    },
    /// Convergent dyadic dataflow: two load-headed arms converging at a
    /// branch (Figure 3 of the paper).
    Hammock {
        /// Operations per arm (≥ 1).
        arm: u32,
        /// Behaviour of the converging branch.
        branch: BranchSpec,
        /// Bytes touched by the arm loads (locality knob, ≥ 1).
        region: u64,
    },
    /// Spine-and-ribs loop (Figure 7): a loop-carried spine with ribs
    /// that end in stores and a hard branch.
    SpineRibs {
        /// Spine operations per iteration (≥ 1).
        spine: u32,
        /// Rib operations per iteration (≥ 1).
        rib: u32,
        /// Behaviour of the hard rib branch.
        branch: BranchSpec,
        /// Loop trip count (≥ 1).
        trip: u32,
    },
    /// Divergent early-exit scan loop (Figure 12).
    Divergent {
        /// Early-exit probability per iteration, in `[0, 1]`.
        exit_prob: f64,
        /// Counted-exit trip count (≥ 1).
        trip: u32,
        /// Bytes of the scanned array (≥ 1).
        region: u64,
    },
    /// Pointer chase: load-to-load recurrence with poor locality.
    Chase {
        /// Bytes of the walked structure (≥ 1).
        region: u64,
        /// Loop trip count (≥ 1).
        trip: u32,
    },
    /// `width` independent dependence chains advanced round-robin
    /// (available ILP ≈ width).
    Chains {
        /// Number of chains (≥ 1); each costs one register.
        width: u32,
        /// Link operation; must produce a value.
        op: OpSpec,
        /// Address stream, required iff `op` is a memory operation.
        addrs: Option<AddrSpec>,
    },
    /// Pairwise reduction over `width` leaves — divergence that
    /// re-converges.
    Tree {
        /// Leaf count, `2..=8` (rounded to a power of two internally).
        width: u32,
    },
    /// `units` compute→compare→branch triples with cycling behaviours
    /// (dense irregular control).
    Branchy {
        /// Triples per pass (≥ 1).
        units: u32,
        /// Branch behaviours, cycled across units (non-empty).
        behaviors: Vec<BranchSpec>,
    },
    /// A single store fed by its own address stream.
    Store {
        /// Address stream of the store.
        addrs: AddrSpec,
    },
    /// A lone loop back-edge branch (control-flow density filler).
    BackEdge {
        /// Loop trip count (≥ 1).
        trip: u32,
    },
}

/// Branch direction processes, mirroring
/// [`BranchBehavior`](ccs_trace::BranchBehavior) in manifest form.
#[derive(Debug, Clone, PartialEq)]
pub enum BranchSpec {
    /// Taken with independent probability `p ∈ [0, 1]`.
    Bernoulli(f64),
    /// Taken `trip - 1` times then not taken, repeating (`trip ≥ 1`).
    LoopExit(u32),
    /// Always taken.
    Always,
    /// Never taken.
    Never,
    /// Alternates taken / not-taken.
    Alternating,
    /// Repeating direction pattern (`len ∈ 1..=32`, bits beyond `len`
    /// must be zero so the canonical rendering is unique).
    Pattern {
        /// Outcome bits, LSB first.
        bits: u32,
        /// Period length.
        len: u8,
    },
}

impl BranchSpec {
    /// The trace-layer behaviour this spec denotes.
    pub fn to_behavior(&self) -> BranchBehavior {
        match *self {
            BranchSpec::Bernoulli(p) => BranchBehavior::Bernoulli(p),
            BranchSpec::LoopExit(trip) => BranchBehavior::LoopExit(trip),
            BranchSpec::Always => BranchBehavior::AlwaysTaken,
            BranchSpec::Never => BranchBehavior::NeverTaken,
            BranchSpec::Alternating => BranchBehavior::Alternating,
            BranchSpec::Pattern { bits, len } => BranchBehavior::Pattern { bits, len },
        }
    }
}

/// Value-producing operation classes a [`EmitterKind::Chains`] emitter
/// may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpSpec {
    /// Integer ALU op (1-cycle).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// FP add.
    FpAdd,
    /// FP multiply.
    FpMul,
    /// FP divide.
    FpDiv,
    /// Load (requires an address stream).
    Load,
}

impl OpSpec {
    /// The ISA operation class.
    pub fn to_op_class(self) -> OpClass {
        match self {
            OpSpec::IntAlu => OpClass::IntAlu,
            OpSpec::IntMul => OpClass::IntMul,
            OpSpec::FpAdd => OpClass::FpAdd,
            OpSpec::FpMul => OpClass::FpMul,
            OpSpec::FpDiv => OpClass::FpDiv,
            OpSpec::Load => OpClass::Load,
        }
    }

    /// Whether the op reads memory (and therefore needs addresses).
    pub fn is_mem(self) -> bool {
        matches!(self, OpSpec::Load)
    }
}

/// Effective-address processes, mirroring
/// [`AddrStream`](ccs_trace::AddrStream) in manifest form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AddrSpec {
    /// Sequential walk `base + i·stride mod len`.
    Stream {
        /// First address.
        base: u64,
        /// Bytes between accesses (≥ 1).
        stride: u64,
        /// Region size before wrapping (≥ 1).
        len: u64,
    },
    /// Uniformly random inside `[base, base + len)`.
    RandomIn {
        /// Region base.
        base: u64,
        /// Region size (≥ 1).
        len: u64,
    },
    /// One fixed address.
    Fixed {
        /// The address.
        addr: u64,
    },
}

impl AddrSpec {
    /// The trace-layer stream this spec denotes.
    pub fn to_stream(&self) -> ccs_trace::AddrStream {
        match *self {
            AddrSpec::Stream { base, stride, len } => ccs_trace::AddrStream::stream(base, stride, len),
            AddrSpec::RandomIn { base, len } => ccs_trace::AddrStream::random_in(base, len),
            AddrSpec::Fixed { addr } => ccs_trace::AddrStream::Fixed(addr),
        }
    }
}

impl EmitterKind {
    /// Architectural registers this emitter allocates at construction.
    pub fn reg_cost(&self) -> usize {
        match *self {
            EmitterKind::Chain { .. } => 1,
            EmitterKind::Hammock { .. } => 3,
            EmitterKind::SpineRibs { .. } => 3,
            EmitterKind::Divergent { .. } => 5,
            EmitterKind::Chase { .. } => 2,
            EmitterKind::Chains { width, .. } => width as usize,
            EmitterKind::Tree { width } => 1 + (width as usize).next_power_of_two().clamp(2, 8),
            EmitterKind::Branchy { .. } => 2,
            EmitterKind::Store { .. } => 1,
            EmitterKind::BackEdge { .. } => 1,
        }
    }

    /// The manifest `kind` tag.
    pub fn kind_name(&self) -> &'static str {
        match self {
            EmitterKind::Chain { .. } => "chain",
            EmitterKind::Hammock { .. } => "hammock",
            EmitterKind::SpineRibs { .. } => "spine_ribs",
            EmitterKind::Divergent { .. } => "divergent",
            EmitterKind::Chase { .. } => "chase",
            EmitterKind::Chains { .. } => "chains",
            EmitterKind::Tree { .. } => "tree",
            EmitterKind::Branchy { .. } => "branchy",
            EmitterKind::Store { .. } => "store",
            EmitterKind::BackEdge { .. } => "back_edge",
        }
    }
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 64
        && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_' || c == '-')
}

fn valid_id(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 32
        && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

fn check_branch(what: &str, spec: &BranchSpec) -> Result<(), ScenarioError> {
    match *spec {
        BranchSpec::Bernoulli(p) => {
            if !(0.0..=1.0).contains(&p) {
                return Err(ScenarioError::invalid(
                    what,
                    format!("bernoulli probability {p} is outside [0, 1]"),
                ));
            }
        }
        BranchSpec::LoopExit(trip) => {
            if trip == 0 {
                return Err(ScenarioError::invalid(what, "loop_exit trip must be ≥ 1"));
            }
        }
        BranchSpec::Pattern { bits, len } => {
            if len == 0 || len > 32 {
                return Err(ScenarioError::invalid(what, "pattern length must be in 1..=32"));
            }
            if len < 32 && bits >> len != 0 {
                return Err(ScenarioError::invalid(
                    what,
                    "pattern bits beyond the period must be zero",
                ));
            }
        }
        BranchSpec::Always | BranchSpec::Never | BranchSpec::Alternating => {}
    }
    Ok(())
}

fn check_addrs(what: &str, spec: &AddrSpec) -> Result<(), ScenarioError> {
    match *spec {
        AddrSpec::Stream { stride, len, .. } => {
            if stride == 0 || len == 0 {
                return Err(ScenarioError::invalid(what, "stream stride and len must be ≥ 1"));
            }
        }
        AddrSpec::RandomIn { len, .. } => {
            if len == 0 {
                return Err(ScenarioError::invalid(what, "random_in len must be ≥ 1"));
            }
        }
        AddrSpec::Fixed { .. } => {}
    }
    Ok(())
}

fn check_kind(what: &str, kind: &EmitterKind) -> Result<(), ScenarioError> {
    let positive = |name: &str, v: u64| -> Result<(), ScenarioError> {
        if v == 0 {
            Err(ScenarioError::invalid(what, format!("{name} must be ≥ 1")))
        } else {
            Ok(())
        }
    };
    match kind {
        EmitterKind::Chain { len } => positive("len", u64::from(*len)),
        EmitterKind::Hammock { arm, branch, region } => {
            positive("arm", u64::from(*arm))?;
            positive("region", *region)?;
            check_branch(what, branch)
        }
        EmitterKind::SpineRibs { spine, rib, branch, trip } => {
            positive("spine", u64::from(*spine))?;
            positive("rib", u64::from(*rib))?;
            positive("trip", u64::from(*trip))?;
            check_branch(what, branch)
        }
        EmitterKind::Divergent { exit_prob, trip, region } => {
            if !(0.0..=1.0).contains(exit_prob) {
                return Err(ScenarioError::invalid(
                    what,
                    format!("exit_prob {exit_prob} is outside [0, 1]"),
                ));
            }
            positive("trip", u64::from(*trip))?;
            positive("region", *region)
        }
        EmitterKind::Chase { region, trip } => {
            positive("region", *region)?;
            positive("trip", u64::from(*trip))
        }
        EmitterKind::Chains { width, op, addrs } => {
            positive("width", u64::from(*width))?;
            match (op.is_mem(), addrs) {
                (true, None) => Err(ScenarioError::invalid(
                    what,
                    "memory chains require an addrs stream",
                )),
                (false, Some(_)) => Err(ScenarioError::invalid(
                    what,
                    format!("op {op:?} does not access memory; drop the addrs key"),
                )),
                (_, Some(a)) => check_addrs(what, a),
                (false, None) => Ok(()),
            }
        }
        EmitterKind::Tree { width } => {
            if !(2..=8).contains(width) {
                return Err(ScenarioError::invalid(what, "tree width must be in 2..=8"));
            }
            Ok(())
        }
        EmitterKind::Branchy { units, behaviors } => {
            positive("units", u64::from(*units))?;
            if behaviors.is_empty() {
                return Err(ScenarioError::invalid(what, "branchy needs at least one behaviour"));
            }
            for bh in behaviors {
                check_branch(what, bh)?;
            }
            Ok(())
        }
        EmitterKind::Store { addrs } => check_addrs(what, addrs),
        EmitterKind::BackEdge { trip } => positive("trip", u64::from(*trip)),
    }
}

impl Phase {
    /// An empty thread-0 phase with salt 0 and weight 1.
    pub fn new() -> Self {
        Phase {
            salt: 0,
            weight: 1,
            thread: 0,
            schedule: Vec::new(),
            emitters: Vec::new(),
        }
    }

    /// Sets the RNG salt.
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// Sets the length-share weight.
    pub fn with_weight(mut self, weight: u32) -> Self {
        self.weight = weight;
        self
    }

    /// Assigns the phase to an SMT thread.
    pub fn with_thread(mut self, thread: u32) -> Self {
        self.thread = thread;
        self
    }

    /// Appends an emitter (construction order = register order).
    pub fn with_emitter(mut self, id: &str, pc: u64, kind: EmitterKind) -> Self {
        self.emitters.push(EmitterSpec {
            id: id.to_string(),
            pc,
            kind,
        });
        self
    }

    /// Appends a schedule step.
    pub fn with_step(mut self, id: &str, reps: u32) -> Self {
        self.schedule.push(Step {
            id: id.to_string(),
            reps,
        });
        self
    }

    fn validate(&self, k: usize) -> Result<(), ScenarioError> {
        let what = format!("phase {k}");
        if self.weight == 0 {
            return Err(ScenarioError::invalid(&what, "weight must be ≥ 1"));
        }
        if self.emitters.is_empty() {
            return Err(ScenarioError::invalid(&what, "a phase needs at least one emitter"));
        }
        if self.schedule.is_empty() {
            return Err(ScenarioError::invalid(&what, "a phase needs a non-empty schedule"));
        }
        let mut budget = 0usize;
        for e in &self.emitters {
            let ewhat = format!("{what} emitter '{}'", e.id);
            if !valid_id(&e.id) {
                return Err(ScenarioError::invalid(
                    &ewhat,
                    "ids are non-empty [a-z0-9_] strings of at most 32 chars",
                ));
            }
            if self.emitters.iter().filter(|o| o.id == e.id).count() > 1 {
                return Err(ScenarioError::invalid(&ewhat, "duplicate emitter id"));
            }
            check_kind(&ewhat, &e.kind)?;
            budget += e.kind.reg_cost();
        }
        if budget > PHASE_REG_BUDGET {
            return Err(ScenarioError::invalid(
                &what,
                format!("emitters need {budget} registers, budget is {PHASE_REG_BUDGET}"),
            ));
        }
        for s in &self.schedule {
            if s.reps == 0 {
                return Err(ScenarioError::invalid(
                    &what,
                    format!("schedule step '{}' has zero reps", s.id),
                ));
            }
            if !self.emitters.iter().any(|e| e.id == s.id) {
                return Err(ScenarioError::invalid(
                    &what,
                    format!("schedule references unknown emitter '{}'", s.id),
                ));
            }
        }
        Ok(())
    }
}

impl Default for Phase {
    fn default() -> Self {
        Phase::new()
    }
}

impl Scenario {
    /// A new, empty scenario. Add phases with
    /// [`with_phase`](Self::with_phase) or [`with_mix`](Self::with_mix).
    pub fn new(name: &str) -> Self {
        Scenario {
            name: name.to_string(),
            interleave: None,
            phases: Vec::new(),
        }
    }

    /// Sets the multi-thread interleaving policy.
    pub fn with_interleave(mut self, mode: InterleaveMode, quantum: u32) -> Self {
        self.interleave = Some(Interleave { mode, quantum });
        self
    }

    /// Appends a phase.
    pub fn with_phase(mut self, phase: Phase) -> Self {
        self.phases.push(phase);
        self
    }

    /// Appends a single-thread phase mixing the given primitives: entry
    /// `k` becomes emitter `m{k}` at PC `0x1000 + 0x100·k`, scheduled
    /// with its repeat count, in order.
    pub fn with_mix(self, salt: u64, entries: &[(EmitterKind, u32)]) -> Self {
        let mut phase = Phase::new().with_salt(salt);
        for (k, (kind, reps)) in entries.iter().enumerate() {
            let id = format!("m{k}");
            phase = phase
                .with_emitter(&id, 0x1000 + 0x100 * k as u64, kind.clone())
                .with_step(&id, *reps);
        }
        self.with_phase(phase)
    }

    /// Number of SMT threads the phases span (max thread id + 1).
    pub fn thread_count(&self) -> usize {
        self.phases.iter().map(|p| p.thread as usize + 1).max().unwrap_or(1)
    }

    /// Checks every structural and range constraint, returning the
    /// first violation as a typed error.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if !valid_name(&self.name) {
            return Err(ScenarioError::invalid(
                "name",
                "names are non-empty [a-z0-9_-] strings of at most 64 chars",
            ));
        }
        if self.phases.is_empty() {
            return Err(ScenarioError::invalid("phases", "a scenario needs at least one phase"));
        }
        if let Some(il) = &self.interleave {
            if il.quantum == 0 {
                return Err(ScenarioError::invalid("interleave", "quantum must be ≥ 1"));
            }
        }
        let threads = self.thread_count();
        for t in 0..threads as u32 {
            if !self.phases.iter().any(|p| p.thread == t) {
                return Err(ScenarioError::invalid(
                    "phases",
                    format!("thread ids must be contiguous from 0; thread {t} has no phase"),
                ));
            }
        }
        for (k, phase) in self.phases.iter().enumerate() {
            phase.validate(k)?;
        }
        Ok(())
    }

    /// The scenario that reproduces `bench` **bit-identically**: one
    /// zero-thread phase whose salt equals the generator's own seed
    /// perturbation and whose emitters/schedule mirror the hard-coded
    /// composition in `ccs-trace`'s workload module.
    pub fn benchmark_equivalent(bench: Benchmark) -> Scenario {
        let salt = (bench as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let phase = benchmark_phase(bench).with_salt(salt);
        Scenario::new(bench.name()).with_phase(phase)
    }
}

/// The emitter composition of one benchmark model, without its salt.
fn benchmark_phase(bench: Benchmark) -> Phase {
    use BranchSpec::{Alternating, Always, Bernoulli, LoopExit};
    use EmitterKind::*;
    match bench {
        Benchmark::Bzip2 => Phase::new()
            .with_emitter("h1", 0x1000, Hammock { arm: 2, branch: Bernoulli(0.18), region: 1 << 15 })
            .with_emitter("h2", 0x1100, Hammock { arm: 1, branch: Bernoulli(0.06), region: 1 << 13 })
            .with_emitter("chain", 0x1200, Chain { len: 3 })
            .with_emitter("back", 0x1300, BackEdge { trip: 48 })
            .with_step("h1", 1)
            .with_step("h2", 1)
            .with_step("chain", 3)
            .with_step("back", 1),
        Benchmark::Crafty => Phase::new()
            .with_emitter("h", 0x2000, Hammock { arm: 3, branch: Bernoulli(0.12), region: 1 << 14 })
            .with_emitter(
                "bb",
                0x2100,
                Branchy {
                    units: 4,
                    behaviors: vec![Bernoulli(0.05), LoopExit(6), Bernoulli(0.30), Always],
                },
            )
            .with_emitter("tree", 0x2200, Tree { width: 4 })
            .with_step("h", 1)
            .with_step("bb", 1)
            .with_step("tree", 1),
        Benchmark::Eon => Phase::new()
            .with_emitter("fp", 0x3000, Chains { width: 4, op: OpSpec::FpMul, addrs: None })
            .with_emitter("int", 0x3100, Chains { width: 4, op: OpSpec::IntAlu, addrs: None })
            .with_emitter(
                "loads",
                0x3200,
                Chains {
                    width: 2,
                    op: OpSpec::Load,
                    addrs: Some(AddrSpec::Stream { base: 0x60_0000, stride: 8, len: 1 << 13 }),
                },
            )
            .with_emitter("back", 0x3300, BackEdge { trip: 16 })
            .with_step("loads", 1)
            .with_step("fp", 1)
            .with_step("int", 1)
            .with_step("back", 1),
        Benchmark::Gap => Phase::new()
            .with_emitter(
                "sr",
                0x4000,
                SpineRibs { spine: 4, rib: 2, branch: Bernoulli(0.10), trip: 40 },
            )
            .with_emitter("chain", 0x4100, Chain { len: 4 })
            .with_step("sr", 1)
            .with_step("chain", 4),
        Benchmark::Gcc => Phase::new()
            .with_emitter(
                "bb1",
                0x5000,
                Branchy {
                    units: 5,
                    behaviors: vec![
                        Bernoulli(0.40),
                        Bernoulli(0.10),
                        LoopExit(3),
                        Bernoulli(0.25),
                        Alternating,
                    ],
                },
            )
            .with_emitter("d", 0x5100, Divergent { exit_prob: 0.08, trip: 12, region: 1 << 16 })
            .with_emitter("h", 0x5200, Hammock { arm: 1, branch: Bernoulli(0.35), region: 1 << 16 })
            .with_step("bb1", 1)
            .with_step("d", 1)
            .with_step("h", 1),
        Benchmark::Gzip => Phase::new()
            .with_emitter("chain", 0x6000, Chain { len: 6 })
            .with_emitter("side", 0x6100, Chains { width: 2, op: OpSpec::IntAlu, addrs: None })
            .with_emitter(
                "loads",
                0x6200,
                Chains {
                    width: 1,
                    op: OpSpec::Load,
                    addrs: Some(AddrSpec::Stream { base: 0x70_0000, stride: 4, len: 1 << 14 }),
                },
            )
            .with_emitter("back", 0x6300, BackEdge { trip: 96 })
            .with_step("chain", 12)
            .with_step("side", 1)
            .with_step("loads", 1)
            .with_step("back", 1),
        Benchmark::Mcf => Phase::new()
            .with_emitter("chase", 0x7000, Chase { region: 16 << 20, trip: 64 })
            .with_emitter("side", 0x7100, Chains { width: 2, op: OpSpec::IntAlu, addrs: None })
            .with_emitter("h", 0x7200, Hammock { arm: 1, branch: Bernoulli(0.20), region: 8 << 20 })
            .with_step("chase", 1)
            .with_step("side", 1)
            .with_step("chase", 1)
            .with_step("h", 1),
        Benchmark::Parser => Phase::new()
            .with_emitter("d", 0x8000, Divergent { exit_prob: 0.05, trip: 24, region: 1 << 15 })
            .with_emitter(
                "bb",
                0x8100,
                Branchy {
                    units: 3,
                    behaviors: vec![Bernoulli(0.15), Bernoulli(0.45), LoopExit(5)],
                },
            )
            .with_emitter("chain", 0x8200, Chain { len: 2 })
            .with_step("d", 3)
            .with_step("bb", 1)
            .with_step("chain", 2),
        Benchmark::Perl => Phase::new()
            .with_emitter(
                "sr",
                0x9000,
                SpineRibs { spine: 3, rib: 4, branch: Bernoulli(0.35), trip: 32 },
            )
            .with_emitter("h", 0x9100, Hammock { arm: 2, branch: Bernoulli(0.10), region: 1 << 14 })
            .with_step("sr", 1)
            .with_step("h", 1),
        Benchmark::Twolf => Phase::new()
            .with_emitter(
                "sr",
                0xA000,
                SpineRibs { spine: 2, rib: 3, branch: Bernoulli(0.40), trip: 20 },
            )
            .with_emitter(
                "loads",
                0xA100,
                Chains {
                    width: 2,
                    op: OpSpec::Load,
                    addrs: Some(AddrSpec::RandomIn { base: 0x80_0000, len: 1 << 19 }),
                },
            )
            .with_emitter("tree", 0xA200, Tree { width: 4 })
            .with_step("sr", 1)
            .with_step("loads", 1)
            .with_step("tree", 1),
        Benchmark::Vortex => Phase::new()
            .with_emitter("int", 0xB000, Chains { width: 6, op: OpSpec::IntAlu, addrs: None })
            .with_emitter(
                "loads",
                0xB100,
                Chains {
                    width: 2,
                    op: OpSpec::Load,
                    addrs: Some(AddrSpec::Stream { base: 0x90_0000, stride: 8, len: 1 << 13 }),
                },
            )
            .with_emitter(
                "st",
                0xB200,
                Store { addrs: AddrSpec::Stream { base: 0xA0_0000, stride: 8, len: 1 << 13 } },
            )
            .with_emitter(
                "bb",
                0xB300,
                Branchy { units: 2, behaviors: vec![Bernoulli(0.02), LoopExit(10)] },
            )
            .with_step("int", 1)
            .with_step("loads", 1)
            .with_step("st", 1)
            .with_step("bb", 1),
        Benchmark::Vpr => Phase::new()
            .with_emitter(
                "sr",
                0xC000,
                SpineRibs { spine: 2, rib: 3, branch: Bernoulli(0.50), trip: 64 },
            )
            .with_emitter("tree", 0xC100, Tree { width: 8 })
            .with_step("sr", 4)
            .with_step("tree", 1),
    }
}
