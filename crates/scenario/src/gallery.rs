//! The committed manifest gallery under `examples/scenarios/`.
//!
//! Sixteen named manifests double as documentation and test corpus:
//! the twelve benchmark-equivalents (each pinned bit-identical to its
//! hard-coded model) plus four showcase scenarios — a phase-shifting
//! composite, round-robin and block SMT interleaves, and an ILP ladder.
//! Each file carries an intent header; the body is the canonical
//! rendering, so `Scenario::from_manifest(text).to_manifest()`
//! reproduces it byte-for-byte (minus comments).
//!
//! Regenerate after changing the data model with:
//! `cargo test -p ccs-scenario regenerate_gallery_files -- --ignored`

use crate::spec::{
    AddrSpec, BranchSpec, EmitterKind, InterleaveMode, OpSpec, Phase, Scenario,
};
use ccs_trace::Benchmark;

/// One named gallery manifest.
#[derive(Debug, Clone, Copy)]
pub struct GalleryEntry {
    /// Scenario name (matches the manifest's `name` field).
    pub name: &'static str,
    /// Full manifest text as committed under `examples/scenarios/`.
    pub text: &'static str,
}

macro_rules! entry {
    ($name:literal) => {
        GalleryEntry {
            name: $name,
            text: include_str!(concat!("../../../examples/scenarios/", $name, ".toml")),
        }
    };
}

/// Every committed gallery manifest, benchmark equivalents first.
pub const GALLERY: &[GalleryEntry] = &[
    entry!("bzip2"),
    entry!("crafty"),
    entry!("eon"),
    entry!("gap"),
    entry!("gcc"),
    entry!("gzip"),
    entry!("mcf"),
    entry!("parser"),
    entry!("perl"),
    entry!("twolf"),
    entry!("vortex"),
    entry!("vpr"),
    entry!("phase_shift"),
    entry!("smt_roundrobin"),
    entry!("smt_block"),
    entry!("ilp_ladder"),
];

/// A three-phase composite that shifts character mid-trace:
/// execute-critical chains, then memory-bound pointer chasing, then
/// branchy control — predictor-retraining stress.
fn phase_shift() -> Scenario {
    Scenario::new("phase_shift")
        .with_phase(
            Phase::new()
                .with_weight(2)
                .with_emitter("chain", 0x1000, EmitterKind::Chain { len: 6 })
                .with_emitter("back", 0x1100, EmitterKind::BackEdge { trip: 64 })
                .with_step("chain", 12)
                .with_step("back", 1),
        )
        .with_phase(
            Phase::new()
                .with_salt(0x51)
                .with_emitter("chase", 0x2000, EmitterKind::Chase { region: 8 << 20, trip: 32 })
                .with_emitter(
                    "side",
                    0x2100,
                    EmitterKind::Chains { width: 2, op: OpSpec::IntAlu, addrs: None },
                )
                .with_step("chase", 1)
                .with_step("side", 1),
        )
        .with_phase(
            Phase::new()
                .with_salt(0x52)
                .with_emitter(
                    "bb",
                    0x3000,
                    EmitterKind::Branchy {
                        units: 4,
                        behaviors: vec![
                            BranchSpec::Bernoulli(0.35),
                            BranchSpec::LoopExit(4),
                            BranchSpec::Alternating,
                            BranchSpec::Bernoulli(0.1),
                        ],
                    },
                )
                .with_emitter(
                    "h",
                    0x3100,
                    EmitterKind::Hammock {
                        arm: 1,
                        branch: BranchSpec::Bernoulli(0.25),
                        region: 1 << 16,
                    },
                )
                .with_step("bb", 1)
                .with_step("h", 1),
        )
}

/// Two threads interleaved one instruction at a time: a serial chain
/// against convergent work — per-thread criticality under SMT fetch.
fn smt_roundrobin() -> Scenario {
    Scenario::new("smt_roundrobin")
        .with_interleave(InterleaveMode::RoundRobin, 1)
        .with_phase(
            Phase::new()
                .with_thread(0)
                .with_emitter("chain", 0x1000, EmitterKind::Chain { len: 5 })
                .with_step("chain", 5),
        )
        .with_phase(
            Phase::new()
                .with_thread(1)
                .with_salt(1)
                .with_emitter("tree", 0x2000, EmitterKind::Tree { width: 8 })
                .with_emitter(
                    "h",
                    0x2100,
                    EmitterKind::Hammock {
                        arm: 2,
                        branch: BranchSpec::Bernoulli(0.15),
                        region: 1 << 14,
                    },
                )
                .with_step("tree", 1)
                .with_step("h", 1),
        )
}

/// Block multithreading, 32-instruction quanta: a memory-bound chaser
/// sharing the pipeline with high-ILP integer work.
fn smt_block() -> Scenario {
    Scenario::new("smt_block")
        .with_interleave(InterleaveMode::Block, 32)
        .with_phase(
            Phase::new()
                .with_thread(0)
                .with_emitter("chase", 0x1000, EmitterKind::Chase { region: 4 << 20, trip: 48 })
                .with_step("chase", 1),
        )
        .with_phase(
            Phase::new()
                .with_thread(1)
                .with_salt(2)
                .with_emitter(
                    "int",
                    0x2000,
                    EmitterKind::Chains { width: 6, op: OpSpec::IntAlu, addrs: None },
                )
                .with_emitter(
                    "loads",
                    0x2100,
                    EmitterKind::Chains {
                        width: 2,
                        op: OpSpec::Load,
                        addrs: Some(AddrSpec::Stream {
                            base: 0x30_0000,
                            stride: 8,
                            len: 1 << 13,
                        }),
                    },
                )
                .with_step("int", 1)
                .with_step("loads", 1),
        )
}

/// Four equal phases stepping available ILP through 1, 2, 4, 8
/// independent chains — sweeps the clustering cost from serial to wide.
fn ilp_ladder() -> Scenario {
    let mut s = Scenario::new("ilp_ladder");
    for (k, width) in [1u32, 2, 4, 8].into_iter().enumerate() {
        let base = 0x1000 + 0x1000 * k as u64;
        s = s.with_phase(
            Phase::new()
                .with_salt(k as u64)
                .with_emitter(
                    "c",
                    base,
                    EmitterKind::Chains { width, op: OpSpec::IntAlu, addrs: None },
                )
                .with_emitter("back", base + 0x100, EmitterKind::BackEdge { trip: 32 })
                .with_step("c", 1)
                .with_step("back", 1),
        );
    }
    s
}

/// The four showcase scenarios that are not benchmark equivalents.
pub fn extras() -> Vec<Scenario> {
    vec![phase_shift(), smt_roundrobin(), smt_block(), ilp_ladder()]
}

/// The scenario a gallery entry must parse to, by name.
pub fn expected(name: &str) -> Option<Scenario> {
    Benchmark::ALL
        .iter()
        .find(|b| b.name() == name)
        .map(|&b| Scenario::benchmark_equivalent(b))
        .or_else(|| extras().into_iter().find(|s| s.name == name))
}

/// The documented intent of a gallery scenario — the comment header
/// committed atop its manifest file (empty for unknown names).
pub fn intent(name: &str) -> &'static str {
    match name {
        "bzip2" => "Benchmark equivalent: convergent dyadic hammocks feeding branches (Figure 3).",
        "crafty" => "Benchmark equivalent: convergent compares under dense, predictable control.",
        "eon" => "Benchmark equivalent: high-ILP floating point, near-perfect prediction.",
        "gap" => "Benchmark equivalent: arithmetic spines with moderate ribs.",
        "gcc" => "Benchmark equivalent: dense irregular control, many mispredicts.",
        "gzip" => "Benchmark equivalent: long serial chains; execute-critical (Figure 9).",
        "mcf" => "Benchmark equivalent: pointer chasing, memory-latency bound.",
        "parser" => "Benchmark equivalent: divergent early-exit scans (Figure 12).",
        "perl" => "Benchmark equivalent: interpreter dispatch spine, hard rib branches.",
        "twolf" => "Benchmark equivalent: spine-and-ribs with poor-locality loads.",
        "vortex" => "Benchmark equivalent: high-ILP, store-heavy, predictable.",
        "vpr" => "Benchmark equivalent: spine-and-ribs with criticality ties (Figure 7).",
        "phase_shift" => {
            "Character shifts mid-trace: serial chains, then pointer chasing, then branchy\ncontrol. Stresses predictor retraining across register barriers."
        }
        "smt_roundrobin" => {
            "Two SMT threads merged one instruction per turn: a serial chain competing\nwith convergent reduction work for cluster issue slots."
        }
        "smt_block" => {
            "Block multithreading with 32-instruction quanta: a memory-bound pointer\nchaser sharing the pipeline with wide, predictable integer ILP."
        }
        "ilp_ladder" => {
            "Available ILP steps through 1, 2, 4, 8 independent chains across four equal\nphases — sweeps clustering cost from fully serial to wide."
        }
        _ => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_expected() -> Vec<Scenario> {
        let mut v: Vec<Scenario> = Benchmark::ALL
            .iter()
            .map(|&b| Scenario::benchmark_equivalent(b))
            .collect();
        v.extend(extras());
        v
    }

    #[test]
    fn gallery_is_complete_and_canonical() {
        assert!(GALLERY.len() >= 12, "gallery must hold at least 12 manifests");
        for e in GALLERY {
            let parsed = Scenario::from_manifest(e.text)
                .unwrap_or_else(|err| panic!("{}: gallery manifest rejected: {err}", e.name));
            assert_eq!(parsed.name, e.name, "file name and manifest name disagree");
            let want = expected(e.name)
                .unwrap_or_else(|| panic!("{}: no expected scenario", e.name));
            assert_eq!(parsed, want, "{}: committed file drifted from source", e.name);
            // The committed body is the canonical rendering.
            assert!(
                e.text.contains(&want.to_manifest()),
                "{}: file body is not canonical; regenerate the gallery",
                e.name
            );
        }
        let mut names: Vec<&str> = GALLERY.iter().map(|e| e.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), GALLERY.len(), "duplicate gallery names");
    }

    #[test]
    fn gallery_subsumes_benchmarks_bit_identically() {
        // THE subsumption pin: the twelve committed manifests generate
        // the same traces as the hard-coded models, instruction for
        // instruction.
        for bench in Benchmark::ALL {
            let entry = GALLERY
                .iter()
                .find(|e| e.name == bench.name())
                .unwrap_or_else(|| panic!("{bench}: missing gallery manifest"));
            let scenario = Scenario::from_manifest(entry.text).unwrap();
            let direct = bench.generate(11, 2_000);
            let via = scenario.generate(11, 2_000);
            assert_eq!(direct.len(), via.len(), "{bench}: length drift");
            for (i, (x, y)) in direct.as_slice().iter().zip(via.as_slice()).enumerate() {
                assert_eq!(x, y, "{bench}: divergence at instruction {i}");
            }
        }
    }

    #[test]
    fn gallery_extras_generate_valid_traces() {
        for s in extras() {
            let t = s
                .try_generate(3, 2_000)
                .unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert!(t.len() >= 2_000, "{}: too short", s.name);
            t.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
        }
    }

    #[test]
    #[ignore = "writes the committed gallery files; run after data-model changes"]
    fn regenerate_gallery_files() {
        let dir =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/scenarios");
        std::fs::create_dir_all(&dir).expect("create examples/scenarios");
        for s in all_expected() {
            let mut text = String::new();
            for line in intent(&s.name).lines() {
                text.push_str("# ");
                text.push_str(line);
                text.push('\n');
            }
            text.push('\n');
            text.push_str(&s.to_manifest());
            std::fs::write(dir.join(format!("{}.toml", s.name)), text).expect("write manifest");
        }
    }
}
