//! Declarative workload scenarios for the clustering-criticality study.
//!
//! The twelve benchmark models in `ccs-trace` are hard-coded
//! compositions of the pattern library's dataflow primitives. This
//! crate makes that composition *data*: a [`Scenario`] names a sequence
//! of phases, each mixing emitters (dependence chains, hammocks,
//! spine-and-ribs loops, divergent scans, pointer chases, …) under a
//! schedule, optionally spread across SMT-style threads and interleaved
//! round-robin or in blocks. Scenarios are built programmatically
//! (`Scenario::new(..).with_mix(..)`), or written as a small TOML-like
//! manifest ([`Scenario::from_manifest`]) that round-trips through the
//! canonical renderer ([`Scenario::to_manifest`]).
//!
//! Scenarios are first-class cell inputs: [`Scenario::register`] puts a
//! generator into `ccs-trace`'s content-addressed [`SourceRegistry`]
//! (`ccs_trace::SourceRegistry`) under the FNV-1a fingerprint of the
//! canonical manifest, and grid cells carry that `SourceId` so the
//! cache, checkpoint, and shard-routing layers key on scenario content.
//!
//! The hard-coded models remain the ground truth:
//! [`Scenario::benchmark_equivalent`] re-expresses each of the twelve
//! as a manifest that generates **bit-identical** traces, pinned by
//! test.
//!
//! # Example
//!
//! ```
//! use ccs_scenario::{EmitterKind, BranchSpec, Scenario};
//!
//! let s = Scenario::new("hot-chain")
//!     .with_mix(0, &[
//!         (EmitterKind::Chain { len: 6 }, 8),
//!         (EmitterKind::Hammock {
//!             arm: 2,
//!             branch: BranchSpec::Bernoulli(0.2),
//!             region: 1 << 14,
//!         }, 1),
//!     ]);
//! let trace = s.try_generate(1, 2_000).unwrap();
//! assert!(trace.len() >= 2_000);
//!
//! // Manifests round-trip through the canonical renderer.
//! let text = s.to_manifest();
//! assert_eq!(Scenario::from_manifest(&text).unwrap(), s);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod error;
pub mod gallery;
mod manifest;
mod spec;

pub use error::ScenarioError;
pub use spec::{
    AddrSpec, BranchSpec, EmitterKind, EmitterSpec, Interleave, InterleaveMode, OpSpec, Phase,
    Scenario, Step, PHASE_REG_BUDGET,
};

use ccs_trace::{fnv1a, SourceId, SourceRegistry};

impl Scenario {
    /// Renders the canonical manifest text (fixed key order and number
    /// formatting): equal scenarios render byte-identically, so this is
    /// the fingerprinted form.
    pub fn to_manifest(&self) -> String {
        manifest::to_manifest(self)
    }

    /// Parses manifest text into a validated scenario.
    ///
    /// # Errors
    ///
    /// Returns a typed [`ScenarioError`] for syntax errors, unknown
    /// keys, ill-typed values, and semantic violations.
    pub fn from_manifest(text: &str) -> Result<Scenario, ScenarioError> {
        manifest::from_manifest(text)
    }

    /// FNV-1a fingerprint of the canonical manifest — the raw value of
    /// the [`SourceId`] this scenario registers under.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(self.to_manifest().as_bytes())
    }

    /// Validates the scenario and registers its generator in the
    /// process-global trace-source registry, returning the
    /// content-addressed [`SourceId`] grid cells carry. Registration is
    /// idempotent: the same scenario always maps to the same id.
    ///
    /// # Errors
    ///
    /// Returns the first validation error; nothing is registered then.
    pub fn register(&self) -> Result<SourceId, ScenarioError> {
        self.validate()?;
        let text = self.to_manifest();
        let generator = self.clone();
        Ok(SourceRegistry::global().register(
            &self.name,
            &text,
            Box::new(move |seed, len| generator.generate(seed, len)),
        ))
    }
}

/// Parses and registers a manifest in one step, returning the scenario
/// and its [`SourceId`]. The convenience entry point for CLI flags and
/// wire decoding.
///
/// # Errors
///
/// Returns a typed [`ScenarioError`] if the manifest fails to parse or
/// validate.
pub fn register_manifest(text: &str) -> Result<(Scenario, SourceId), ScenarioError> {
    let scenario = Scenario::from_manifest(text)?;
    let id = scenario.register()?;
    Ok((scenario, id))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_trace::Benchmark;

    #[test]
    fn manifest_round_trips_for_every_benchmark_equivalent() {
        for bench in Benchmark::ALL {
            let s = Scenario::benchmark_equivalent(bench);
            let text = s.to_manifest();
            let back = Scenario::from_manifest(&text).unwrap_or_else(|e| {
                panic!("{bench}: canonical manifest failed to parse: {e}\n{text}")
            });
            assert_eq!(back, s, "{bench}: round-trip changed the scenario");
            // Canonical rendering is a fixed point.
            assert_eq!(back.to_manifest(), text);
        }
    }

    #[test]
    fn fingerprint_is_field_order_independent() {
        let canonical = Scenario::benchmark_equivalent(Benchmark::Gzip).to_manifest();
        // Shuffle the emitter keys of one section: same scenario, same
        // fingerprint, because the fingerprint hashes the *canonical*
        // rendering, not the input text.
        let reordered = canonical.replace(
            "id = \"chain\"\nkind = \"chain\"\npc = 0x6000\nlen = 6\n",
            "len = 6\npc = 0x6000\nkind = \"chain\"\nid = \"chain\"\n",
        );
        assert_ne!(canonical, reordered, "test must actually reorder fields");
        let a = Scenario::from_manifest(&canonical).unwrap();
        let b = Scenario::from_manifest(&reordered).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn registration_is_content_addressed_and_generates() {
        let s = Scenario::new("reg-test").with_mix(0, &[(EmitterKind::Chain { len: 2 }, 1)]);
        let id1 = s.register().unwrap();
        let id2 = s.register().unwrap();
        assert_eq!(id1, id2);
        assert_eq!(id1.raw(), s.fingerprint());
        let (s2, id3) = register_manifest(&s.to_manifest()).unwrap();
        assert_eq!(s2, s);
        assert_eq!(id3, id1);
        let t = SourceRegistry::global().trace(id1, 9, 500);
        assert!(t.len() >= 500);
        t.validate().unwrap();
        // The registry-produced trace matches in-process generation.
        let direct = s.generate(9, 500);
        assert_eq!(t.len(), direct.len());
        for (x, y) in t.as_slice().iter().zip(direct.as_slice()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn malformed_manifests_yield_typed_errors() {
        // Unknown key.
        let text = "name = \"x\"\n\n[[phase]]\nschedule = \"c\"\nbogus = 3\n\n[[phase.emit]]\nid = \"c\"\nkind = \"chain\"\npc = 0x1000\nlen = 1\n";
        match Scenario::from_manifest(text) {
            Err(ScenarioError::UnknownKey { key, section, .. }) => {
                assert_eq!(key, "bogus");
                assert_eq!(section, "phase");
            }
            other => panic!("expected UnknownKey, got {other:?}"),
        }
        // Out-of-range branch probability.
        let text = "name = \"x\"\n\n[[phase]]\nschedule = \"h\"\n\n[[phase.emit]]\nid = \"h\"\nkind = \"hammock\"\npc = 0x1000\narm = 1\nbranch = \"bernoulli:1.5\"\nregion = 0x100\n";
        match Scenario::from_manifest(text) {
            Err(ScenarioError::Invalid { message, .. }) => {
                assert!(message.contains("outside [0, 1]"), "{message}");
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
        // Zero-width phase (no emitters / empty schedule).
        let text = "name = \"x\"\n\n[[phase]]\nschedule = \"\"\n";
        assert!(Scenario::from_manifest(text).is_err());
        // Syntax error with a line number.
        let text = "name = \"x\"\nnot a key value\n";
        match Scenario::from_manifest(text) {
            Err(ScenarioError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected Parse, got {other:?}"),
        }
        // Bad value type.
        let text = "name = \"x\"\n\n[[phase]]\nschedule = 7\n\n[[phase.emit]]\nid = \"c\"\nkind = \"chain\"\npc = 0x1000\nlen = 1\n";
        assert!(matches!(
            Scenario::from_manifest(text),
            Err(ScenarioError::BadValue { .. })
        ));
    }

    #[test]
    fn smt_manifests_round_trip() {
        let s = Scenario::new("smt-rr")
            .with_interleave(InterleaveMode::Block, 16)
            .with_phase(
                Phase::new()
                    .with_thread(0)
                    .with_emitter("c", 0x1000, EmitterKind::Chain { len: 3 })
                    .with_step("c", 2),
            )
            .with_phase(
                Phase::new()
                    .with_thread(1)
                    .with_salt(0xDEAD_BEEF)
                    .with_emitter(
                        "t",
                        0x2000,
                        EmitterKind::Tree { width: 4 },
                    )
                    .with_step("t", 1),
            );
        let text = s.to_manifest();
        assert_eq!(Scenario::from_manifest(&text).unwrap(), s);
    }
}
