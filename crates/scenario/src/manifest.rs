//! The hand-rolled, std-only manifest format: a small TOML subset.
//!
//! One scenario per file:
//!
//! ```toml
//! name = "example"
//!
//! [interleave]          # optional; only meaningful with threads > 1
//! mode = "block"        # "roundrobin" | "block"
//! quantum = 64
//!
//! [[phase]]
//! salt = 0x0            # optional, default 0
//! weight = 1            # optional, default 1
//! thread = 0            # optional, default 0
//! schedule = "h, chain*3"
//!
//! [[phase.emit]]
//! id = "h"
//! kind = "hammock"
//! pc = 0x1000
//! arm = 2
//! branch = "bernoulli:0.18"
//! region = 0x8000
//!
//! [[phase.emit]]
//! id = "chain"
//! kind = "chain"
//! pc = 0x1200
//! len = 3
//! ```
//!
//! `#` starts a comment (outside quotes). Integers are decimal or
//! `0x`-hex. Branch processes are strings (`"bernoulli:0.5"`,
//! `"loop_exit:6"`, `"always"`, `"never"`, `"alternating"`,
//! `"pattern:0x5:3"`), as are address streams
//! (`"stream:base:stride:len"`, `"random_in:base:len"`,
//! `"fixed:addr"`).
//!
//! [`to_manifest`] renders the **canonical** form: fixed key order,
//! hex for addresses/salts, decimal for counts, shortest-round-trip
//! floats. Canonical text is what gets FNV-fingerprinted into the cell
//! key, so reordering fields in a hand-written file changes nothing
//! downstream: parse → same [`Scenario`] → same canonical text → same
//! fingerprint.

use crate::error::ScenarioError;
use crate::spec::{
    AddrSpec, BranchSpec, EmitterKind, EmitterSpec, Interleave, InterleaveMode, OpSpec, Phase,
    Scenario, Step,
};
use std::collections::HashMap;
use std::fmt::Write as _;

// ---------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------

fn render_branch(b: &BranchSpec) -> String {
    match b {
        BranchSpec::Bernoulli(p) => format!("bernoulli:{p:?}"),
        BranchSpec::LoopExit(t) => format!("loop_exit:{t}"),
        BranchSpec::Always => "always".to_string(),
        BranchSpec::Never => "never".to_string(),
        BranchSpec::Alternating => "alternating".to_string(),
        BranchSpec::Pattern { bits, len } => format!("pattern:{bits:#x}:{len}"),
    }
}

fn render_addrs(a: &AddrSpec) -> String {
    match a {
        AddrSpec::Stream { base, stride, len } => format!("stream:{base:#x}:{stride:#x}:{len:#x}"),
        AddrSpec::RandomIn { base, len } => format!("random_in:{base:#x}:{len:#x}"),
        AddrSpec::Fixed { addr } => format!("fixed:{addr:#x}"),
    }
}

fn render_op(op: OpSpec) -> &'static str {
    match op {
        OpSpec::IntAlu => "int_alu",
        OpSpec::IntMul => "int_mul",
        OpSpec::FpAdd => "fp_add",
        OpSpec::FpMul => "fp_mul",
        OpSpec::FpDiv => "fp_div",
        OpSpec::Load => "load",
    }
}

fn render_schedule(schedule: &[Step]) -> String {
    schedule
        .iter()
        .map(|s| {
            if s.reps == 1 {
                s.id.clone()
            } else {
                format!("{}*{}", s.id, s.reps)
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders the canonical manifest text of `scenario`. This is the form
/// that is fingerprinted: equal scenarios render byte-identically.
pub fn to_manifest(scenario: &Scenario) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "name = \"{}\"", scenario.name);
    if let Some(Interleave { mode, quantum }) = &scenario.interleave {
        let mode = match mode {
            InterleaveMode::RoundRobin => "roundrobin",
            InterleaveMode::Block => "block",
        };
        let _ = writeln!(out, "\n[interleave]\nmode = \"{mode}\"\nquantum = {quantum}");
    }
    for phase in &scenario.phases {
        let _ = writeln!(
            out,
            "\n[[phase]]\nsalt = {:#x}\nweight = {}\nthread = {}\nschedule = \"{}\"",
            phase.salt,
            phase.weight,
            phase.thread,
            render_schedule(&phase.schedule)
        );
        for e in &phase.emitters {
            let _ = writeln!(
                out,
                "\n[[phase.emit]]\nid = \"{}\"\nkind = \"{}\"\npc = {:#x}",
                e.id,
                e.kind.kind_name(),
                e.pc
            );
            match &e.kind {
                EmitterKind::Chain { len } => {
                    let _ = writeln!(out, "len = {len}");
                }
                EmitterKind::Hammock { arm, branch, region } => {
                    let _ = writeln!(
                        out,
                        "arm = {arm}\nbranch = \"{}\"\nregion = {region:#x}",
                        render_branch(branch)
                    );
                }
                EmitterKind::SpineRibs { spine, rib, branch, trip } => {
                    let _ = writeln!(
                        out,
                        "spine = {spine}\nrib = {rib}\nbranch = \"{}\"\ntrip = {trip}",
                        render_branch(branch)
                    );
                }
                EmitterKind::Divergent { exit_prob, trip, region } => {
                    let _ = writeln!(
                        out,
                        "exit_prob = {exit_prob:?}\ntrip = {trip}\nregion = {region:#x}"
                    );
                }
                EmitterKind::Chase { region, trip } => {
                    let _ = writeln!(out, "region = {region:#x}\ntrip = {trip}");
                }
                EmitterKind::Chains { width, op, addrs } => {
                    let _ = writeln!(out, "width = {width}\nop = \"{}\"", render_op(*op));
                    if let Some(a) = addrs {
                        let _ = writeln!(out, "addrs = \"{}\"", render_addrs(a));
                    }
                }
                EmitterKind::Tree { width } => {
                    let _ = writeln!(out, "width = {width}");
                }
                EmitterKind::Branchy { units, behaviors } => {
                    let list = behaviors
                        .iter()
                        .map(|b| format!("\"{}\"", render_branch(b)))
                        .collect::<Vec<_>>()
                        .join(", ");
                    let _ = writeln!(out, "units = {units}\nbehaviors = [{list}]");
                }
                EmitterKind::Store { addrs } => {
                    let _ = writeln!(out, "addrs = \"{}\"", render_addrs(addrs));
                }
                EmitterKind::BackEdge { trip } => {
                    let _ = writeln!(out, "trip = {trip}");
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Val {
    Str(String),
    List(Vec<String>),
    Int(u64),
    Float(f64),
}

impl Val {
    fn type_name(&self) -> &'static str {
        match self {
            Val::Str(_) => "string",
            Val::List(_) => "list",
            Val::Int(_) => "integer",
            Val::Float(_) => "float",
        }
    }
}

struct Entry {
    val: Val,
    line: usize,
}

/// The key-value pairs of one section instance, with duplicate
/// detection and leftover (= unknown key) reporting.
#[derive(Default)]
struct Table {
    entries: HashMap<String, Entry>,
}

impl Table {
    fn insert(&mut self, key: String, val: Val, line: usize) -> Result<(), ScenarioError> {
        if self.entries.contains_key(&key) {
            return Err(ScenarioError::parse(line, format!("duplicate key '{key}'")));
        }
        self.entries.insert(key, Entry { val, line });
        Ok(())
    }

    fn take(&mut self, key: &str) -> Option<Entry> {
        self.entries.remove(key)
    }

    fn take_str(&mut self, key: &str) -> Result<Option<(String, usize)>, ScenarioError> {
        match self.take(key) {
            None => Ok(None),
            Some(Entry { val: Val::Str(s), line }) => Ok(Some((s, line))),
            Some(Entry { val, line }) => Err(ScenarioError::bad_value(
                line,
                key,
                format!("expected a string, got a {}", val.type_name()),
            )),
        }
    }

    fn take_u64(&mut self, key: &str) -> Result<Option<(u64, usize)>, ScenarioError> {
        match self.take(key) {
            None => Ok(None),
            Some(Entry { val: Val::Int(n), line }) => Ok(Some((n, line))),
            Some(Entry { val, line }) => Err(ScenarioError::bad_value(
                line,
                key,
                format!("expected an integer, got a {}", val.type_name()),
            )),
        }
    }

    fn take_u32(&mut self, key: &str) -> Result<Option<(u32, usize)>, ScenarioError> {
        match self.take_u64(key)? {
            None => Ok(None),
            Some((n, line)) => u32::try_from(n)
                .map(|v| Some((v, line)))
                .map_err(|_| ScenarioError::bad_value(line, key, format!("{n} does not fit u32"))),
        }
    }

    fn take_f64(&mut self, key: &str) -> Result<Option<(f64, usize)>, ScenarioError> {
        match self.take(key) {
            None => Ok(None),
            Some(Entry { val: Val::Float(x), line }) => Ok(Some((x, line))),
            Some(Entry { val: Val::Int(n), line }) => Ok(Some((n as f64, line))),
            Some(Entry { val, line }) => Err(ScenarioError::bad_value(
                line,
                key,
                format!("expected a number, got a {}", val.type_name()),
            )),
        }
    }

    fn take_list(&mut self, key: &str) -> Result<Option<(Vec<String>, usize)>, ScenarioError> {
        match self.take(key) {
            None => Ok(None),
            Some(Entry { val: Val::List(v), line }) => Ok(Some((v, line))),
            Some(Entry { val, line }) => Err(ScenarioError::bad_value(
                line,
                key,
                format!("expected a list of strings, got a {}", val.type_name()),
            )),
        }
    }

    /// Errors on the first leftover (unconsumed = unknown) key.
    fn expect_empty(&self, section: &'static str) -> Result<(), ScenarioError> {
        if let Some((key, entry)) = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.line)
        {
            return Err(ScenarioError::UnknownKey {
                line: entry.line,
                section,
                key: key.clone(),
            });
        }
        Ok(())
    }

    fn require_str(&mut self, key: &str, line: usize) -> Result<(String, usize), ScenarioError> {
        self.take_str(key)?
            .ok_or_else(|| ScenarioError::parse(line, format!("missing required key '{key}'")))
    }

    fn require_u64(&mut self, key: &str, line: usize) -> Result<(u64, usize), ScenarioError> {
        self.take_u64(key)?
            .ok_or_else(|| ScenarioError::parse(line, format!("missing required key '{key}'")))
    }

    fn require_u32(&mut self, key: &str, line: usize) -> Result<(u32, usize), ScenarioError> {
        self.take_u32(key)?
            .ok_or_else(|| ScenarioError::parse(line, format!("missing required key '{key}'")))
    }

    fn require_f64(&mut self, key: &str, line: usize) -> Result<(f64, usize), ScenarioError> {
        self.take_f64(key)?
            .ok_or_else(|| ScenarioError::parse(line, format!("missing required key '{key}'")))
    }
}

/// Strips the comment part of a line: everything from the first `#`
/// that is not inside a double-quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_number(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else {
        s.replace('_', "").parse().ok()
    }
}

fn parse_value(raw: &str, line: usize) -> Result<Val, ScenarioError> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(ScenarioError::parse(line, "missing value after '='"));
    }
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(end) = rest.find('"') else {
            return Err(ScenarioError::parse(line, "unterminated string"));
        };
        if !rest[end + 1..].trim().is_empty() {
            return Err(ScenarioError::parse(line, "trailing characters after string"));
        }
        return Ok(Val::Str(rest[..end].to_string()));
    }
    if let Some(rest) = raw.strip_prefix('[') {
        let Some(inner) = rest.strip_suffix(']') else {
            return Err(ScenarioError::parse(line, "unterminated list"));
        };
        let inner = inner.trim();
        let mut items = Vec::new();
        if !inner.is_empty() {
            for item in inner.split(',') {
                let item = item.trim();
                let Some(s) = item
                    .strip_prefix('"')
                    .and_then(|i| i.strip_suffix('"'))
                else {
                    return Err(ScenarioError::parse(
                        line,
                        "lists hold double-quoted strings",
                    ));
                };
                items.push(s.to_string());
            }
        }
        return Ok(Val::List(items));
    }
    if let Some(n) = parse_number(raw) {
        return Ok(Val::Int(n));
    }
    if let Ok(x) = raw.parse::<f64>() {
        if x.is_finite() {
            return Ok(Val::Float(x));
        }
    }
    Err(ScenarioError::parse(line, format!("unparseable value '{raw}'")))
}

fn parse_branch(s: &str, key: &str, line: usize) -> Result<BranchSpec, ScenarioError> {
    let mut parts = s.split(':');
    let head = parts.next().unwrap_or("");
    let rest: Vec<&str> = parts.collect();
    let arity = |n: usize| -> Result<(), ScenarioError> {
        if rest.len() == n {
            Ok(())
        } else {
            Err(ScenarioError::bad_value(
                line,
                key,
                format!("'{head}' takes {n} parameter(s), got {}", rest.len()),
            ))
        }
    };
    match head {
        "bernoulli" => {
            arity(1)?;
            let p: f64 = rest[0].parse().map_err(|_| {
                ScenarioError::bad_value(line, key, format!("bad probability '{}'", rest[0]))
            })?;
            Ok(BranchSpec::Bernoulli(p))
        }
        "loop_exit" => {
            arity(1)?;
            let trip = parse_number(rest[0])
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| {
                    ScenarioError::bad_value(line, key, format!("bad trip count '{}'", rest[0]))
                })?;
            Ok(BranchSpec::LoopExit(trip))
        }
        "always" => {
            arity(0)?;
            Ok(BranchSpec::Always)
        }
        "never" => {
            arity(0)?;
            Ok(BranchSpec::Never)
        }
        "alternating" => {
            arity(0)?;
            Ok(BranchSpec::Alternating)
        }
        "pattern" => {
            arity(2)?;
            let bits = parse_number(rest[0])
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| {
                    ScenarioError::bad_value(line, key, format!("bad pattern bits '{}'", rest[0]))
                })?;
            let len = parse_number(rest[1])
                .and_then(|n| u8::try_from(n).ok())
                .ok_or_else(|| {
                    ScenarioError::bad_value(line, key, format!("bad pattern length '{}'", rest[1]))
                })?;
            Ok(BranchSpec::Pattern { bits, len })
        }
        other => Err(ScenarioError::bad_value(
            line,
            key,
            format!("unknown branch process '{other}'"),
        )),
    }
}

fn parse_addrs(s: &str, key: &str, line: usize) -> Result<AddrSpec, ScenarioError> {
    let parts: Vec<&str> = s.split(':').collect();
    let num = |p: &str| -> Result<u64, ScenarioError> {
        parse_number(p)
            .ok_or_else(|| ScenarioError::bad_value(line, key, format!("bad number '{p}'")))
    };
    match parts.as_slice() {
        ["stream", base, stride, len] => Ok(AddrSpec::Stream {
            base: num(base)?,
            stride: num(stride)?,
            len: num(len)?,
        }),
        ["random_in", base, len] => Ok(AddrSpec::RandomIn {
            base: num(base)?,
            len: num(len)?,
        }),
        ["fixed", addr] => Ok(AddrSpec::Fixed { addr: num(addr)? }),
        _ => Err(ScenarioError::bad_value(
            line,
            key,
            format!("unknown address stream '{s}'"),
        )),
    }
}

fn parse_op(s: &str, key: &str, line: usize) -> Result<OpSpec, ScenarioError> {
    match s {
        "int_alu" => Ok(OpSpec::IntAlu),
        "int_mul" => Ok(OpSpec::IntMul),
        "fp_add" => Ok(OpSpec::FpAdd),
        "fp_mul" => Ok(OpSpec::FpMul),
        "fp_div" => Ok(OpSpec::FpDiv),
        "load" => Ok(OpSpec::Load),
        other => Err(ScenarioError::bad_value(
            line,
            key,
            format!("unknown op '{other}' (chains ops must produce a value)"),
        )),
    }
}

fn parse_schedule(s: &str, line: usize) -> Result<Vec<Step>, ScenarioError> {
    let mut steps = Vec::new();
    for item in s.split(',') {
        let item = item.trim();
        if item.is_empty() {
            return Err(ScenarioError::bad_value(line, "schedule", "empty step"));
        }
        let (id, reps) = match item.split_once('*') {
            None => (item, 1),
            Some((id, reps)) => {
                let reps = parse_number(reps.trim())
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| {
                        ScenarioError::bad_value(
                            line,
                            "schedule",
                            format!("bad repeat count in '{item}'"),
                        )
                    })?;
                (id.trim(), reps)
            }
        };
        steps.push(Step {
            id: id.to_string(),
            reps,
        });
    }
    Ok(steps)
}

fn finish_emit(mut table: Table, header_line: usize) -> Result<EmitterSpec, ScenarioError> {
    let (id, _) = table.require_str("id", header_line)?;
    let (kind_name, kind_line) = table.require_str("kind", header_line)?;
    let (pc, _) = table.require_u64("pc", header_line)?;
    let branch = |t: &mut Table| -> Result<BranchSpec, ScenarioError> {
        let (s, line) = t.require_str("branch", header_line)?;
        parse_branch(&s, "branch", line)
    };
    let addrs_opt = |t: &mut Table| -> Result<Option<AddrSpec>, ScenarioError> {
        match t.take_str("addrs")? {
            None => Ok(None),
            Some((s, line)) => parse_addrs(&s, "addrs", line).map(Some),
        }
    };
    let kind = match kind_name.as_str() {
        "chain" => EmitterKind::Chain {
            len: table.require_u32("len", header_line)?.0,
        },
        "hammock" => {
            let arm = table.require_u32("arm", header_line)?.0;
            let branch = branch(&mut table)?;
            let region = table.require_u64("region", header_line)?.0;
            EmitterKind::Hammock { arm, branch, region }
        }
        "spine_ribs" => {
            let spine = table.require_u32("spine", header_line)?.0;
            let rib = table.require_u32("rib", header_line)?.0;
            let branch = branch(&mut table)?;
            let trip = table.require_u32("trip", header_line)?.0;
            EmitterKind::SpineRibs { spine, rib, branch, trip }
        }
        "divergent" => {
            let exit_prob = table.require_f64("exit_prob", header_line)?.0;
            let trip = table.require_u32("trip", header_line)?.0;
            let region = table.require_u64("region", header_line)?.0;
            EmitterKind::Divergent { exit_prob, trip, region }
        }
        "chase" => {
            let region = table.require_u64("region", header_line)?.0;
            let trip = table.require_u32("trip", header_line)?.0;
            EmitterKind::Chase { region, trip }
        }
        "chains" => {
            let width = table.require_u32("width", header_line)?.0;
            let (op, op_line) = table.require_str("op", header_line)?;
            let op = parse_op(&op, "op", op_line)?;
            let addrs = addrs_opt(&mut table)?;
            EmitterKind::Chains { width, op, addrs }
        }
        "tree" => EmitterKind::Tree {
            width: table.require_u32("width", header_line)?.0,
        },
        "branchy" => {
            let units = table.require_u32("units", header_line)?.0;
            let (items, list_line) = table
                .take_list("behaviors")?
                .ok_or_else(|| {
                    ScenarioError::parse(header_line, "missing required key 'behaviors'")
                })?;
            let behaviors = items
                .iter()
                .map(|s| parse_branch(s, "behaviors", list_line))
                .collect::<Result<Vec<_>, _>>()?;
            EmitterKind::Branchy { units, behaviors }
        }
        "store" => {
            let (s, line) = table.require_str("addrs", header_line)?;
            EmitterKind::Store {
                addrs: parse_addrs(&s, "addrs", line)?,
            }
        }
        "back_edge" => EmitterKind::BackEdge {
            trip: table.require_u32("trip", header_line)?.0,
        },
        other => {
            return Err(ScenarioError::bad_value(
                kind_line,
                "kind",
                format!("unknown emitter kind '{other}'"),
            ))
        }
    };
    table.expect_empty("phase.emit")?;
    Ok(EmitterSpec { id, pc, kind })
}

struct PhaseDraft {
    header_line: usize,
    table: Table,
    emits: Vec<(usize, Table)>,
}

fn finish_phase(mut draft: PhaseDraft) -> Result<Phase, ScenarioError> {
    let salt = draft.table.take_u64("salt")?.map(|(v, _)| v).unwrap_or(0);
    let weight = draft.table.take_u32("weight")?.map(|(v, _)| v).unwrap_or(1);
    let thread = draft.table.take_u32("thread")?.map(|(v, _)| v).unwrap_or(0);
    let (schedule_text, schedule_line) = draft.table.require_str("schedule", draft.header_line)?;
    draft.table.expect_empty("phase")?;
    let schedule = parse_schedule(&schedule_text, schedule_line)?;
    let emitters = draft
        .emits
        .into_iter()
        .map(|(line, table)| finish_emit(table, line))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Phase {
        salt,
        weight,
        thread,
        schedule,
        emitters,
    })
}

/// Parses manifest text into a validated [`Scenario`].
pub fn from_manifest(text: &str) -> Result<Scenario, ScenarioError> {
    enum Section {
        Root,
        Interleave,
        Phase,
        Emit,
    }
    let mut section = Section::Root;
    let mut root = Table::default();
    let mut interleave: Option<(usize, Table)> = None;
    let mut phases: Vec<PhaseDraft> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let stripped = strip_comment(raw).trim();
        if stripped.is_empty() {
            continue;
        }
        match stripped {
            "[interleave]" => {
                if interleave.is_some() {
                    return Err(ScenarioError::parse(line, "duplicate [interleave] section"));
                }
                interleave = Some((line, Table::default()));
                section = Section::Interleave;
                continue;
            }
            "[[phase]]" => {
                phases.push(PhaseDraft {
                    header_line: line,
                    table: Table::default(),
                    emits: Vec::new(),
                });
                section = Section::Phase;
                continue;
            }
            "[[phase.emit]]" => {
                let Some(phase) = phases.last_mut() else {
                    return Err(ScenarioError::parse(
                        line,
                        "[[phase.emit]] must follow a [[phase]] section",
                    ));
                };
                phase.emits.push((line, Table::default()));
                section = Section::Emit;
                continue;
            }
            s if s.starts_with('[') => {
                return Err(ScenarioError::parse(line, format!("unknown section '{s}'")));
            }
            _ => {}
        }
        let Some((key, value)) = stripped.split_once('=') else {
            return Err(ScenarioError::parse(line, "expected 'key = value'"));
        };
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(ScenarioError::parse(line, format!("bad key '{key}'")));
        }
        let val = parse_value(value, line)?;
        match section {
            Section::Root => root.insert(key.to_string(), val, line)?,
            Section::Interleave => {
                let (_, table) = interleave.as_mut().expect("section implies table");
                table.insert(key.to_string(), val, line)?;
            }
            Section::Phase => {
                let table = &mut phases.last_mut().expect("section implies phase").table;
                table.insert(key.to_string(), val, line)?;
            }
            Section::Emit => {
                let phase = phases.last_mut().expect("section implies phase");
                let (_, table) = phase.emits.last_mut().expect("section implies emit");
                table.insert(key.to_string(), val, line)?;
            }
        }
    }

    let (name, _) = root.require_str("name", 1)?;
    root.expect_empty("scenario")?;
    let interleave = match interleave {
        None => None,
        Some((header_line, mut table)) => {
            let (mode, mode_line) = table.require_str("mode", header_line)?;
            let mode = match mode.as_str() {
                "roundrobin" => InterleaveMode::RoundRobin,
                "block" => InterleaveMode::Block,
                other => {
                    return Err(ScenarioError::bad_value(
                        mode_line,
                        "mode",
                        format!("unknown mode '{other}' (roundrobin | block)"),
                    ))
                }
            };
            let quantum = table.take_u32("quantum")?.map(|(v, _)| v).unwrap_or(1);
            table.expect_empty("interleave")?;
            Some(Interleave { mode, quantum })
        }
    };
    let phases = phases
        .into_iter()
        .map(finish_phase)
        .collect::<Result<Vec<_>, _>>()?;
    let scenario = Scenario {
        name,
        interleave,
        phases,
    };
    scenario.validate()?;
    Ok(scenario)
}
