//! Scenario execution: turns a validated [`Scenario`] into a dynamic
//! trace, deterministically for a given seed.
//!
//! The engine reproduces the generation discipline of the hard-coded
//! benchmark models in `ccs-trace` exactly: per phase, a fresh register
//! allocator, emitters constructed in declaration order (fixing
//! register assignment), and whole schedule passes until the phase's
//! length target is met. Phase `k` draws from
//! `StdRng::seed_from_u64(seed.wrapping_add(k) ^ salt ^ thread_tweak)`,
//! so a single zero-thread phase whose salt equals a benchmark's seed
//! perturbation generates that benchmark's trace **bit-identically**.
//!
//! Multi-thread scenarios build one trace per thread and then merge
//! them SMT-style (round-robin or block interleaving), rebasing PCs by
//! `thread << 32` and addresses by `thread << 40` so the merged trace
//! keeps per-thread static footprints and address spaces disjoint.

use crate::error::ScenarioError;
use crate::spec::{EmitterKind, EmitterSpec, InterleaveMode, Phase, Scenario};
use ccs_isa::{BranchInfo, OpClass, Pc, StaticInst};
use ccs_trace::patterns::{
    BranchyBlock, ConvergentHammock, DepChain, DivergentLoop, DivergentLoopConfig, HammockConfig,
    ParallelChains, PointerChase, ReductionTree, RegAlloc, SpineRibs, SpineRibsConfig,
};
use ccs_trace::{
    AddrState, BranchBehavior, BranchState, DynIdx, DynInst, Trace, TraceBuilder, MAX_TRACE_LEN,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mixed into thread `t > 0`'s phase seeds so sibling threads running
/// the same phase composition draw distinct streams.
const THREAD_TWEAK: u64 = 0xA076_1D64_78BD_642F;

/// A constructed emitter instance: the spec's parameters bound to the
/// pattern library's stateful objects.
enum Built {
    Chain(DepChain),
    Hammock(ConvergentHammock),
    SpineRibs(SpineRibs),
    Divergent(DivergentLoop),
    Chase(PointerChase),
    Chains(ParallelChains, Option<AddrState>),
    Tree(ReductionTree),
    Branchy(BranchyBlock),
    Store { inst: StaticInst, addrs: AddrState },
    BackEdge { inst: StaticInst, state: BranchState },
}

fn build_emitter(spec: &EmitterSpec, regs: &mut RegAlloc) -> Built {
    let pc = Pc::new(spec.pc);
    match &spec.kind {
        EmitterKind::Chain { len } => Built::Chain(DepChain::new(pc, regs, *len as usize)),
        EmitterKind::Hammock { arm, branch, region } => Built::Hammock(ConvergentHammock::new(
            pc,
            regs,
            HammockConfig {
                arm_len: *arm as usize,
                branch: branch.to_behavior(),
                region: *region,
            },
        )),
        EmitterKind::SpineRibs { spine, rib, branch, trip } => Built::SpineRibs(SpineRibs::new(
            pc,
            regs,
            SpineRibsConfig {
                spine_len: *spine as usize,
                rib_len: *rib as usize,
                rib_branch: branch.to_behavior(),
                trip: *trip,
            },
        )),
        EmitterKind::Divergent { exit_prob, trip, region } => Built::Divergent(DivergentLoop::new(
            pc,
            regs,
            DivergentLoopConfig {
                exit_prob: *exit_prob,
                trip: *trip,
                region: *region,
            },
        )),
        EmitterKind::Chase { region, trip } => {
            Built::Chase(PointerChase::new(pc, regs, *region, *trip))
        }
        EmitterKind::Chains { width, op, addrs } => Built::Chains(
            ParallelChains::new(pc, regs, *width as usize, op.to_op_class()),
            addrs.as_ref().map(|a| a.to_stream().into_state()),
        ),
        EmitterKind::Tree { width } => Built::Tree(ReductionTree::new(pc, regs, *width as usize)),
        EmitterKind::Branchy { units, behaviors } => {
            let behaviors: Vec<BranchBehavior> =
                behaviors.iter().map(|b| b.to_behavior()).collect();
            Built::Branchy(BranchyBlock::new(pc, regs, *units as usize, &behaviors))
        }
        EmitterKind::Store { addrs } => {
            let r = regs.alloc();
            Built::Store {
                inst: StaticInst::new(pc, OpClass::Store).with_src(r),
                addrs: addrs.to_stream().into_state(),
            }
        }
        EmitterKind::BackEdge { trip } => {
            let r = regs.alloc();
            Built::BackEdge {
                inst: StaticInst::new(pc, OpClass::Branch).with_src(r),
                state: BranchBehavior::loop_exit(*trip).into_state(),
            }
        }
    }
}

impl Built {
    /// Emits one instance of the primitive (one chain link, one hammock,
    /// one schedule unit …) into the builder.
    fn emit_once(&mut self, b: &mut TraceBuilder, rng: &mut StdRng) {
        match self {
            Built::Chain(c) => {
                c.emit(b, 1);
            }
            Built::Hammock(h) => {
                h.emit(b, rng);
            }
            Built::SpineRibs(s) => {
                s.emit(b, rng);
            }
            Built::Divergent(d) => {
                d.emit(b, rng);
            }
            Built::Chase(p) => p.emit(b, rng),
            Built::Chains(c, addrs) => c.emit(b, addrs.as_mut(), rng),
            Built::Tree(t) => t.emit(b),
            Built::Branchy(bb) => bb.emit(b, rng),
            Built::Store { inst, addrs } => {
                let a = addrs.next(rng);
                b.push_mem(*inst, a);
            }
            Built::BackEdge { inst, state } => {
                let taken = state.next(rng);
                b.push_branch(*inst, BranchInfo::conditional(taken));
            }
        }
    }
}

/// The RNG seed of global phase `k` on its thread.
fn phase_seed(seed: u64, k: usize, phase: &Phase) -> u64 {
    let mut s = seed.wrapping_add(k as u64) ^ phase.salt;
    if phase.thread > 0 {
        s ^= u64::from(phase.thread).wrapping_mul(THREAD_TWEAK);
    }
    s
}

/// Emits one phase into `b` until it has grown by at least `target`
/// instructions, in whole schedule passes.
fn emit_phase(b: &mut TraceBuilder, phase: &Phase, k: usize, seed: u64, target: usize) {
    let mut rng = StdRng::seed_from_u64(phase_seed(seed, k, phase));
    let mut regs = RegAlloc::new();
    let mut built: Vec<Built> = phase
        .emitters
        .iter()
        .map(|e| build_emitter(e, &mut regs))
        .collect();
    // Validation guarantees every step id resolves.
    let steps: Vec<(usize, u32)> = phase
        .schedule
        .iter()
        .map(|s| {
            let pos = phase
                .emitters
                .iter()
                .position(|e| e.id == s.id)
                .expect("validated schedule ids resolve");
            (pos, s.reps)
        })
        .collect();
    let goal = b.len() + target;
    while b.len() < goal {
        for &(pos, reps) in &steps {
            for _ in 0..reps {
                built[pos].emit_once(b, &mut rng);
            }
        }
    }
}

/// Splits `total` across `weights`, flooring each share and giving the
/// remainder to the last phase; every share is at least 1 so no phase
/// silently vanishes.
fn split_by_weight(total: usize, weights: &[u32]) -> Vec<usize> {
    let sum: u128 = weights.iter().map(|&w| u128::from(w)).sum();
    let mut shares: Vec<usize> = weights
        .iter()
        .map(|&w| ((total as u128 * u128::from(w)) / sum) as usize)
        .collect();
    let assigned: usize = shares.iter().sum();
    if let Some(last) = shares.last_mut() {
        *last += total.saturating_sub(assigned);
    }
    for s in &mut shares {
        *s = (*s).max(1);
    }
    shares
}

/// Merges per-thread instruction streams SMT-style, `quantum`
/// instructions per thread per turn, rebasing PCs and addresses so the
/// threads' static footprints and address spaces stay disjoint.
fn interleave_lanes(lanes: Vec<Vec<DynInst>>, quantum: usize) -> Trace {
    let total: usize = lanes.iter().map(Vec::len).sum();
    let mut merged: Vec<DynInst> = Vec::with_capacity(total);
    let mut maps: Vec<Vec<u32>> = lanes.iter().map(|l| vec![0u32; l.len()]).collect();
    let mut cursors = vec![0usize; lanes.len()];
    while merged.len() < total {
        for (t, lane) in lanes.iter().enumerate() {
            let take = quantum.min(lane.len() - cursors[t]);
            for _ in 0..take {
                let old = cursors[t];
                cursors[t] += 1;
                let mut inst = lane[old];
                inst.inst.pc = Pc::new(inst.inst.pc.raw() | ((t as u64) << 32));
                if let Some(a) = inst.mem_addr {
                    inst.mem_addr = Some(a | ((t as u64) << 40));
                }
                for d in inst.deps.iter_mut() {
                    // Per-thread deps point backward, so the map entry
                    // was filled on an earlier turn.
                    if let Some(dep) = *d {
                        *d = Some(DynIdx::new(maps[t][dep.index()]));
                    }
                }
                maps[t][old] = merged.len() as u32;
                merged.push(inst);
            }
        }
    }
    // Thread-local register deps stay positionally consistent under the
    // merge, so the result passes `Trace::validate`; memory deps are
    // recomputed lazily on the merged order.
    Trace::from_insts(merged)
}

impl Scenario {
    /// Generates a dynamic trace of at least `min_len` instructions,
    /// deterministically for a given `seed`, validating the scenario and
    /// the length first.
    ///
    /// # Errors
    ///
    /// Returns the first [`ScenarioError`] from [`validate`]
    /// (`Scenario::validate`), or an `Invalid` error if `min_len` is
    /// zero or exceeds `ccs_trace::MAX_TRACE_LEN`.
    pub fn try_generate(&self, seed: u64, min_len: usize) -> Result<Trace, ScenarioError> {
        self.validate()?;
        if min_len == 0 {
            return Err(ScenarioError::invalid("min_len", "must be at least 1"));
        }
        if min_len > MAX_TRACE_LEN {
            return Err(ScenarioError::invalid(
                "min_len",
                format!("{min_len} exceeds the {MAX_TRACE_LEN}-instruction cap"),
            ));
        }
        let threads = self.thread_count();
        if threads == 1 {
            let weights: Vec<u32> = self.phases.iter().map(|p| p.weight).collect();
            let targets = split_by_weight(min_len, &weights);
            let mut b = TraceBuilder::new();
            for (k, (phase, target)) in self.phases.iter().zip(targets).enumerate() {
                if k > 0 {
                    // A register barrier between phases: a context
                    // change, exactly like `ccs_trace::phased`.
                    b.barrier();
                }
                emit_phase(&mut b, phase, k, seed, target);
            }
            return Ok(b.finish());
        }
        let per_thread = min_len.div_ceil(threads);
        let mut lanes: Vec<Vec<DynInst>> = Vec::with_capacity(threads);
        for t in 0..threads as u32 {
            let indices: Vec<usize> = self
                .phases
                .iter()
                .enumerate()
                .filter(|(_, p)| p.thread == t)
                .map(|(k, _)| k)
                .collect();
            let weights: Vec<u32> = indices.iter().map(|&k| self.phases[k].weight).collect();
            let targets = split_by_weight(per_thread, &weights);
            let mut b = TraceBuilder::new();
            for (j, (&k, target)) in indices.iter().zip(targets).enumerate() {
                if j > 0 {
                    b.barrier();
                }
                emit_phase(&mut b, &self.phases[k], k, seed, target);
            }
            lanes.push(b.finish().as_slice().to_vec());
        }
        let quantum = match &self.interleave {
            Some(il) if il.mode == InterleaveMode::Block => il.quantum as usize,
            _ => 1,
        };
        Ok(interleave_lanes(lanes, quantum))
    }

    /// Panicking form of [`try_generate`](Self::try_generate), matching
    /// the `SourceGenerator` signature the trace-source registry wants.
    ///
    /// # Panics
    ///
    /// Panics on an invalid scenario or length; registration validates
    /// first, so only a programming error reaches this.
    pub fn generate(&self, seed: u64, min_len: usize) -> Trace {
        self.try_generate(seed, min_len)
            .unwrap_or_else(|e| panic!("scenario '{}' failed to generate: {e}", self.name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::BranchSpec;
    use ccs_trace::Benchmark;

    #[test]
    fn benchmark_equivalents_are_bit_identical() {
        for bench in Benchmark::ALL {
            let scenario = Scenario::benchmark_equivalent(bench);
            for seed in [1u64, 42] {
                let direct = bench.generate(seed, 3_000);
                let via = scenario.generate(seed, 3_000);
                assert_eq!(
                    direct.len(),
                    via.len(),
                    "{bench}: length mismatch at seed {seed}"
                );
                for (i, (x, y)) in direct.as_slice().iter().zip(via.as_slice()).enumerate() {
                    assert_eq!(x, y, "{bench}: divergence at instruction {i}, seed {seed}");
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic_and_valid() {
        let s = Scenario::new("det")
            .with_mix(
                7,
                &[
                    (EmitterKind::Chain { len: 4 }, 2),
                    (
                        EmitterKind::Hammock {
                            arm: 2,
                            branch: BranchSpec::Bernoulli(0.3),
                            region: 1 << 14,
                        },
                        1,
                    ),
                ],
            );
        let a = s.generate(3, 2_000);
        let b = s.generate(3, 2_000);
        assert!(a.len() >= 2_000);
        a.validate().unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn phases_are_weighted_and_barriered() {
        let s = Scenario::new("weighted")
            .with_phase(
                Phase::new()
                    .with_weight(3)
                    .with_emitter("c", 0x1000, EmitterKind::Chain { len: 2 })
                    .with_step("c", 1),
            )
            .with_phase(
                Phase::new()
                    .with_weight(1)
                    .with_emitter("c", 0x2000, EmitterKind::Chain { len: 2 })
                    .with_step("c", 1),
            );
        let t = s.generate(1, 4_000);
        t.validate().unwrap();
        let lo = t
            .as_slice()
            .iter()
            .filter(|i| i.pc().raw() < 0x2000)
            .count();
        let hi = t.len() - lo;
        assert!((2_900..=3_100).contains(&lo), "phase 0 got {lo} of {}", t.len());
        assert!(hi >= 900, "phase 1 got {hi}");
        // The barrier cleared bindings: phase 1's first chain link has
        // no producer from phase 0.
        let first_hi = t
            .iter()
            .find(|(_, i)| i.pc().raw() >= 0x2000)
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(t[first_hi].producers().count(), 0);
    }

    #[test]
    fn smt_merge_interleaves_and_validates() {
        let chain = |pc: u64| {
            Phase::new()
                .with_emitter("c", pc, EmitterKind::Chain { len: 3 })
                .with_step("c", 1)
        };
        let s = Scenario::new("smt")
            .with_interleave(InterleaveMode::RoundRobin, 1)
            .with_phase(chain(0x1000).with_thread(0))
            .with_phase(chain(0x1000).with_thread(1));
        let t = s.generate(5, 1_000);
        t.validate().unwrap();
        assert!(t.len() >= 1_000);
        // Both threads' rebased PC spaces appear, strictly alternating
        // at quantum 1 while both lanes drain.
        let t0 = t.as_slice()[0].pc().raw();
        let t1 = t.as_slice()[1].pc().raw();
        assert_eq!(t0 >> 32, 0);
        assert_eq!(t1 >> 32, 1);
        // Sibling threads draw different RNG streams (thread tweak).
        let s_single = Scenario::new("single").with_phase(chain(0x1000));
        let lone = s_single.generate(5, 500);
        assert!(lone.validate().is_ok());
    }

    #[test]
    fn block_interleave_respects_quantum() {
        let chain = |pc: u64, th: u32| {
            Phase::new()
                .with_thread(th)
                .with_emitter("c", pc, EmitterKind::Chain { len: 1 })
                .with_step("c", 1)
        };
        let s = Scenario::new("blocky")
            .with_interleave(InterleaveMode::Block, 8)
            .with_phase(chain(0x1000, 0))
            .with_phase(chain(0x1000, 1));
        let t = s.generate(9, 640);
        t.validate().unwrap();
        // The first 8 instructions come from thread 0, the next 8 from
        // thread 1.
        for i in 0..8 {
            assert_eq!(t.as_slice()[i].pc().raw() >> 32, 0, "slot {i}");
            assert_eq!(t.as_slice()[8 + i].pc().raw() >> 32, 1, "slot {}", 8 + i);
        }
    }

    #[test]
    fn generation_errors_are_typed() {
        let s = Scenario::new("ok").with_mix(0, &[(EmitterKind::Chain { len: 1 }, 1)]);
        assert!(matches!(
            s.try_generate(1, 0),
            Err(ScenarioError::Invalid { .. })
        ));
        assert!(matches!(
            s.try_generate(1, MAX_TRACE_LEN + 1),
            Err(ScenarioError::Invalid { .. })
        ));
        let bad = Scenario::new("bad");
        assert!(bad.try_generate(1, 100).is_err());
    }

    #[test]
    fn split_by_weight_conserves_and_floors() {
        assert_eq!(split_by_weight(100, &[1]), vec![100]);
        assert_eq!(split_by_weight(100, &[3, 1]), vec![75, 25]);
        assert_eq!(split_by_weight(10, &[1, 1, 1]), vec![3, 3, 4]);
        // Every phase gets at least one instruction.
        assert_eq!(split_by_weight(1, &[1, 1000]), vec![1, 1]);
    }
}
