//! Typed scenario errors: every malformed manifest or invalid
//! parameter degrades into a structured, printable failure instead of a
//! panic, so grid campaigns and the wire protocol can report it.

use std::fmt;

/// Everything that can go wrong parsing, validating, or generating a
/// scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The manifest text is not syntactically well-formed.
    Parse {
        /// 1-based manifest line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A key that no section of the manifest format defines.
    UnknownKey {
        /// 1-based manifest line.
        line: usize,
        /// The section the key appeared in (`scenario`, `interleave`,
        /// `phase`, or `phase.emit`).
        section: &'static str,
        /// The offending key.
        key: String,
    },
    /// A known key whose value is the wrong type or shape.
    BadValue {
        /// 1-based manifest line.
        line: usize,
        /// The key being assigned.
        key: String,
        /// What was expected.
        message: String,
    },
    /// A structurally well-formed scenario that violates a semantic
    /// constraint (range, budget, reference, …).
    Invalid {
        /// Which part of the scenario is wrong.
        what: String,
        /// The violated constraint.
        message: String,
    },
}

impl ScenarioError {
    /// A semantic-validation error.
    pub fn invalid(what: impl Into<String>, message: impl Into<String>) -> Self {
        ScenarioError::Invalid {
            what: what.into(),
            message: message.into(),
        }
    }

    pub(crate) fn parse(line: usize, message: impl Into<String>) -> Self {
        ScenarioError::Parse {
            line,
            message: message.into(),
        }
    }

    pub(crate) fn bad_value(line: usize, key: &str, message: impl Into<String>) -> Self {
        ScenarioError::BadValue {
            line,
            key: key.to_string(),
            message: message.into(),
        }
    }
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse { line, message } => {
                write!(f, "manifest line {line}: {message}")
            }
            ScenarioError::UnknownKey { line, section, key } => {
                write!(f, "manifest line {line}: unknown key '{key}' in [{section}]")
            }
            ScenarioError::BadValue { line, key, message } => {
                write!(f, "manifest line {line}: bad value for '{key}': {message}")
            }
            ScenarioError::Invalid { what, message } => {
                write!(f, "invalid scenario: {what}: {message}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}
