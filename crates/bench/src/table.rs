//! Minimal text-table formatting for harness reports.

use std::fmt;

/// A right-aligned text table with a header row.
///
/// ```
/// use ccs_bench::TextTable;
/// let mut t = TextTable::new(vec!["bench".into(), "cpi".into()]);
/// t.row(vec!["vpr".into(), "1.234".into()]);
/// let s = t.to_string();
/// assert!(s.contains("vpr"));
/// assert!(s.contains("1.234"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        TextTable {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (k, (cell, w)) in row.iter().zip(&widths).enumerate() {
                if k == 0 {
                    write!(f, "{cell:<w$}")?;
                } else {
                    write!(f, "  {cell:>w$}")?;
                }
            }
            writeln!(f)
        };
        print_row(f, &self.header)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_aligned_columns() {
        let mut t = TextTable::new(vec!["a".into(), "value".into()]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "2.5".into()]);
        let s = t.to_string();
        assert!(s.contains("longer"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // All lines equally wide (up to trailing content).
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(vec!["a".into()]);
        t.row(vec!["x".into(), "y".into()]);
    }
}
