//! The figure harness: code that regenerates every table and figure of
//! the paper's evaluation.
//!
//! Each exhibit has a library function in [`figures`] producing a
//! printable report, and a binary (`src/bin/…`) that runs it:
//!
//! | Binary | Paper exhibit |
//! |---|---|
//! | `tab1_config` | Table 1 — machine parameters |
//! | `fig2_idealized` | Figure 2 — idealized list scheduling (plus the footnote-3 latency sweep) |
//! | `fig4_focused` | Figure 4 — focused steering & scheduling |
//! | `fig5_breakdown` | Figure 5 — critical-path CPI breakdown |
//! | `fig6_lost_cycles` | Figure 6 — classified contention & forwarding events |
//! | `fig8_loc_dist` | Figure 8 — distribution of LoC values |
//! | `fig14_policies` | Figure 14 — the policy ladder |
//! | `fig15_ilp` | Figure 15 — achieved vs available ILP |
//! | `sec2_global_comm` | §2.1 — global values per instruction |
//! | `sec4_listsched_loc` | §4 — list scheduler with LoC / binary knowledge |
//! | `sec6_consumers` | §6 — producer/consumer criticality statistics |
//! | `all_figures` | everything above, in order |
//!
//! Trace length and seeds are controlled by [`HarnessOptions`]
//! (environment variables `CCS_LEN`, `CCS_SEED`, `CCS_EPOCHS`), so the
//! harness can be scaled from smoke-test to full runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
mod obsreport;
mod options;
mod report;
mod table;

pub use obsreport::cpi_stack_report;
pub use options::{scenario_target, server_target, servers_target, HarnessOptions};
pub use report::{grid_benchmark_json, make_report};
pub use table::TextTable;
