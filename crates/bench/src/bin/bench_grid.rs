//! Measures grid-executor throughput (one row per trace length, serial
//! vs parallel) and writes `results/BENCH_grid.json`, printing the JSON
//! to stdout.
//!
//! The same measurement rides along with `make_report`; this binary
//! exists so CI's perf-smoke stage — and anyone re-checking the
//! executor's scaling — can regenerate the artifact without paying for
//! the full figure suite. Row selection and repetitions come from
//! `CCS_BENCH_LENS` / `CCS_BENCH_REPS` (see
//! [`grid_benchmark_json`](ccs_bench::grid_benchmark_json)); the output
//! path via `CCS_BENCH_OUT` (CI points it at a scratch file so a smoke
//! run never clobbers the committed artifact).
use ccs_bench::{grid_benchmark_json, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_env_and_args();
    let json = grid_benchmark_json(&opts);
    print!("{json}");

    let path = std::env::var("CCS_BENCH_OUT").map_or_else(
        |_| std::path::Path::new("results").join("BENCH_grid.json"),
        std::path::PathBuf::from,
    );
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("note: could not write {}: {e}", path.display()),
    }
}
