//! Regenerates Figure 8 (distribution of LoC values).
use ccs_bench::HarnessOptions;

fn main() {
    let fig = ccs_bench::figures::fig8(&HarnessOptions::from_env());
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", fig.to_csv());
    } else {
        println!("{fig}");
    }
}
