//! Regenerates Figure 4 (focused steering and scheduling).
use ccs_bench::HarnessOptions;

fn main() {
    let fig = ccs_bench::figures::fig4(&HarnessOptions::from_env());
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", fig.to_csv());
    } else {
        println!("{fig}");
    }
}
