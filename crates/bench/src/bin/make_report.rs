//! Runs the headline exhibits and writes a markdown reproduction report
//! to stdout (redirect into `results/REPORT.md`), plus grid-executor
//! throughput measurements to `results/BENCH_grid.json` when the
//! `results/` directory exists.
use ccs_bench::{grid_benchmark_json, make_report, HarnessOptions};

fn main() {
    let opts = HarnessOptions::from_env_and_args();
    print!("{}", make_report(&opts));

    let json = grid_benchmark_json(&opts);
    let path = std::path::Path::new("results").join("BENCH_grid.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("note: could not write {}: {e}", path.display()),
    }
}
