//! Runs the headline exhibits and writes a markdown reproduction report
//! to stdout (redirect into `results/REPORT.md`).
use ccs_bench::{make_report, HarnessOptions};

fn main() {
    print!("{}", make_report(&HarnessOptions::from_env()));
}
