//! Regenerates Figure 14 (the policy ladder).
use ccs_bench::HarnessOptions;

fn main() {
    let fig = ccs_bench::figures::fig14(&HarnessOptions::from_env());
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", fig.to_csv());
    } else {
        println!("{fig}");
    }
}
