//! Prints Table 1 (baseline machine parameters).
fn main() {
    println!("{}", ccs_bench::figures::tab1());
}
