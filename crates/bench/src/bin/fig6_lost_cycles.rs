//! Regenerates Figure 6 (classified contention and forwarding events).
use ccs_bench::HarnessOptions;

fn main() {
    println!("{}", ccs_bench::figures::fig6(&HarnessOptions::from_env()));
}
