//! Regenerates the adaptive-steering exhibit (online policy switching
//! and ineffectuality steering vs every static rung, per benchmark).
use ccs_bench::HarnessOptions;

fn main() {
    let exhibit = ccs_bench::figures::adaptive_exhibit(&HarnessOptions::from_env_and_args());
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", exhibit.to_csv());
    } else {
        println!("{exhibit}");
    }
}
