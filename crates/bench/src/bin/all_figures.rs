//! Regenerates every table and figure of the paper, in order.
//!
//! Each exhibit runs isolated: a panic inside one figure is caught,
//! annotated, and the remaining figures still render. The process exits
//! nonzero if any exhibit failed, so CI notices partial output.
use ccs_bench::{cpi_stack_report, figures, HarnessOptions};
use ccs_core::{GridRequest, PolicyKind};
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_obs::StageTimers;
use ccs_trace::{Benchmark, TraceStore};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

fn main() {
    let opts = HarnessOptions::from_env_and_args();
    println!(
        "clustercrit — full reproduction run ({opts:?}, {} grid workers)\n",
        opts.effective_threads()
    );
    let start = Instant::now();
    let cells_before = ccs_core::cells_run();
    let mut timers = StageTimers::new();
    let sep = "=".repeat(78);
    let mut failed: Vec<&'static str> = Vec::new();
    let mut show = |name: &'static str, render: &dyn Fn() -> String| {
        match catch_unwind(AssertUnwindSafe(render)) {
            Ok(text) => println!("{sep}\n{text}"),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                println!("{sep}\nFIGURE FAILED: {name}: {msg}");
                failed.push(name);
            }
        }
    };
    // Warm the shared trace cache up front so trace generation is
    // charged to its own stage instead of the first figure to miss.
    timers.time("trace-gen", || {
        for bench in Benchmark::ALL {
            for seed in opts.sample_seeds() {
                TraceStore::global().get(bench, seed, opts.len);
            }
        }
    });
    let figures_start = Instant::now();
    show("tab1", &|| figures::tab1().to_string());
    show("fig2", &|| figures::fig2(&opts).to_string());
    show("fig2_latency_sweep", &|| {
        figures::fig2_latency_sweep(&opts).to_string()
    });
    show("fig3", &|| figures::fig3(&opts).to_string());
    show("fig4", &|| figures::fig4(&opts).to_string());
    show("fig5", &|| figures::fig5(&opts).to_string());
    show("fig6", &|| figures::fig6(&opts).to_string());
    show("fig8", &|| figures::fig8(&opts).to_string());
    show("fig14", &|| figures::fig14(&opts).to_string());
    show("adaptive_policy", &|| {
        figures::adaptive_exhibit(&opts).to_string()
    });
    show("fig15", &|| figures::fig15(&opts).to_string());
    show("sec2_global_comm", &|| {
        figures::sec2_global_comm(&opts).to_string()
    });
    show("sec4_listsched", &|| figures::sec4_listsched(&opts).to_string());
    show("sec6_consumers", &|| figures::sec6_consumers(&opts).to_string());
    show("slack_distribution", &|| {
        figures::slack_distribution(&opts).to_string()
    });
    show("finite_l2_check", &|| figures::finite_l2_check(&opts).to_string());
    show("ablate_stall_threshold", &|| {
        figures::ablate_stall_threshold(&opts).to_string()
    });
    show("ablate_loc_levels", &|| {
        figures::ablate_loc_levels(&opts).to_string()
    });
    show("ablate_interconnect", &|| {
        figures::ablate_interconnect(&opts).to_string()
    });
    show("ablate_proactive", &|| {
        figures::ablate_proactive(&opts).to_string()
    });
    show("ablate_window", &|| figures::ablate_window(&opts).to_string());
    show("scenario_gallery", &|| {
        figures::scenario_exhibit(&opts).to_string()
    });
    timers.add("simulate+analysis", figures_start.elapsed());

    // With --metrics, run one metered reference grid (the Figure 4 core:
    // every benchmark on each clustered layout under focused steering)
    // and print the reconciled CPI stack it implies.
    if opts.metrics {
        let report = timers.time("metrics-grid", || {
            let specs = GridRequest::new(MachineConfig::micro05_baseline(), opts.len)
                .benchmarks(Benchmark::ALL)
                .layouts(ClusterLayout::CLUSTERED)
                .policies([PolicyKind::Focused])
                .options(opts.run_options())
                .build();
            let results =
                ccs_core::run_grid_resilient(&specs, opts.effective_threads(), &opts.resilience());
            cpi_stack_report(&results)
        });
        println!("{sep}\n{report}");
        if report.contains("FAILED") {
            failed.push("metrics_cpi_stack");
        }
    }

    let elapsed = start.elapsed();
    let cells = ccs_core::cells_run() - cells_before;
    let store = TraceStore::global();
    println!("{sep}");
    println!(
        "total wall-clock: {:.2}s on {} threads — {} grid cells ({:.1} cells/sec), \
         trace cache: {} traces, {} hits / {} misses",
        elapsed.as_secs_f64(),
        opts.effective_threads(),
        cells,
        cells as f64 / elapsed.as_secs_f64().max(1e-9),
        store.len(),
        store.hits(),
        store.misses(),
    );
    println!("stage timings:\n{timers}");
    if !failed.is_empty() {
        eprintln!("{} exhibit(s) failed: {}", failed.len(), failed.join(", "));
        std::process::exit(1);
    }
}
