//! Regenerates every table and figure of the paper, in order.
use ccs_bench::{figures, HarnessOptions};
use ccs_trace::TraceStore;
use std::time::Instant;

fn main() {
    let opts = HarnessOptions::from_env_and_args();
    println!(
        "clustercrit — full reproduction run ({opts:?}, {} grid workers)\n",
        opts.effective_threads()
    );
    let start = Instant::now();
    let cells_before = ccs_core::cells_run();
    let sep = "=".repeat(78);
    println!("{sep}\n{}", figures::tab1());
    println!("{sep}\n{}", figures::fig2(&opts));
    println!("{sep}\n{}", figures::fig2_latency_sweep(&opts));
    println!("{sep}\n{}", figures::fig3(&opts));
    println!("{sep}\n{}", figures::fig4(&opts));
    println!("{sep}\n{}", figures::fig5(&opts));
    println!("{sep}\n{}", figures::fig6(&opts));
    println!("{sep}\n{}", figures::fig8(&opts));
    println!("{sep}\n{}", figures::fig14(&opts));
    println!("{sep}\n{}", figures::fig15(&opts));
    println!("{sep}\n{}", figures::sec2_global_comm(&opts));
    println!("{sep}\n{}", figures::sec4_listsched(&opts));
    println!("{sep}\n{}", figures::sec6_consumers(&opts));
    println!("{sep}\n{}", figures::slack_distribution(&opts));
    println!("{sep}\n{}", figures::finite_l2_check(&opts));
    println!("{sep}\n{}", figures::ablate_stall_threshold(&opts));
    println!("{sep}\n{}", figures::ablate_loc_levels(&opts));
    println!("{sep}\n{}", figures::ablate_interconnect(&opts));
    println!("{sep}\n{}", figures::ablate_proactive(&opts));
    println!("{sep}\n{}", figures::ablate_window(&opts));

    let elapsed = start.elapsed();
    let cells = ccs_core::cells_run() - cells_before;
    let store = TraceStore::global();
    println!("{sep}");
    println!(
        "total wall-clock: {:.2}s on {} threads — {} grid cells ({:.1} cells/sec), \
         trace cache: {} traces, {} hits / {} misses",
        elapsed.as_secs_f64(),
        opts.effective_threads(),
        cells,
        cells as f64 / elapsed.as_secs_f64().max(1e-9),
        store.len(),
        store.hits(),
        store.misses(),
    );
}
