//! Regenerates the §6 producer/consumer criticality statistics.
use ccs_bench::HarnessOptions;

fn main() {
    println!("{}", ccs_bench::figures::sec6_consumers(&HarnessOptions::from_env()));
}
