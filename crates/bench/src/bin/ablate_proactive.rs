//! Sweeps the §6/§7 proactive load-balancing override thresholds.
use ccs_bench::HarnessOptions;

fn main() {
    println!("{}", ccs_bench::figures::ablate_proactive(&HarnessOptions::from_env()));
}
