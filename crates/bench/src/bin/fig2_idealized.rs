//! Regenerates Figure 2 (idealized list scheduling). Pass
//! `--latency-sweep` for the footnote-3 forwarding-latency sweep.
use ccs_bench::HarnessOptions;

fn main() {
    let opts = HarnessOptions::from_env();
    if std::env::args().any(|a| a == "--latency-sweep") {
        println!("{}", ccs_bench::figures::fig2_latency_sweep(&opts));
    } else if std::env::args().any(|a| a == "--csv") {
        print!("{}", ccs_bench::figures::fig2(&opts).to_csv());
    } else {
        println!("{}", ccs_bench::figures::fig2(&opts));
    }
}
