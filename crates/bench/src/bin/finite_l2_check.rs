//! Reruns the §2.1 memory-system verification (infinite vs finite L2).
use ccs_bench::HarnessOptions;

fn main() {
    println!("{}", ccs_bench::figures::finite_l2_check(&HarnessOptions::from_env()));
}
