//! Runs the full benchmark × layout × policy grid as a *checkpointed
//! campaign*: every finished cell is streamed to an append-only JSONL
//! manifest, failed or hung cells are isolated and annotated instead of
//! taking the run down, and `--resume` (or `CCS_RESUME=1`) picks an
//! interrupted campaign back up without re-running finished cells.
//!
//! Exit code: `0` when every cell completed, `1` when any cell failed
//! or timed out, `2` when the campaign is still incomplete.
//!
//! `--predict-order` (or `CCS_PREDICT_ORDER=1`) orders the pending
//! cells best-first by their `ccs-predict` analytic cycle bound —
//! longest predicted cells start first, which tightens the parallel
//! tail and makes a truncated/killed campaign finish the expensive
//! cells earliest — and records each cell's predicted envelope in its
//! manifest record. Ordering is metadata-only: every simulated bit is
//! identical with it on or off.
//!
//! With `--server HOST:PORT` (or `CCS_SERVER`) the same grid is
//! submitted to a running `ccs-serve` daemon instead of being evaluated
//! in-process; results stream back per cell and the exit codes are
//! unchanged. Checkpointing and `--resume` are the daemon's business in
//! that mode (it caches and journals server-side), so the manifest is
//! not written.
//!
//! With `--scenario FILE` (or `CCS_SCENARIO`) the campaign runs one
//! `ccs-scenario` manifest instead of the twelve benchmarks: the file
//! is parsed, validated, and registered content-addressed, and the same
//! layout × policy × seed sweep runs over the scenario workload. Works
//! in-process, against `--server`, and sharded across `--servers` (the
//! manifest travels in the wire cells, so remote daemons re-register
//! the identical source).
//!
//! With `--servers A,B,C` (or `CCS_SERVERS`) the grid is *sharded*:
//! each cell routes to the daemon owning its key on a consistent-hash
//! ring, and cells a shard fails to answer ride the ring to the next
//! successor. Results are bit-identical wherever a cell lands. In this
//! mode `CCS_MANIFEST` (when set) receives one checkpoint-record JSON
//! line per answered cell, sorted by key, so scripts can diff a sharded
//! campaign's digests against a local or single-daemon run.

use ccs_bench::{
    cpi_stack_report, scenario_target, server_target, servers_target, HarnessOptions, TextTable,
};
use ccs_client::{Client, ClusterClient};
use ccs_core::checkpoint::{run_campaign, CampaignOptions, CheckpointRecord};
use ccs_core::{fetch_cell_trace, CellSpec, PolicyKind, ShardMap};
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_obs::StageTimers;
use ccs_serve::WireCellSpec;
use ccs_trace::{Benchmark, TraceStore};

/// The workload column of the campaign tables: the scenario's
/// registered name for scenario cells, the benchmark for the rest.
fn workload_col(spec: &CellSpec) -> String {
    if spec.scenario.is_some() {
        spec.workload_label()
    } else {
        format!("{:?}", spec.benchmark)
    }
}

/// Submits the specs to a serve daemon and renders the same table the
/// in-process path prints. Exit codes mirror the local campaign.
fn run_against_server(server: &str, specs: &[CellSpec]) -> i32 {
    let mut cells = Vec::with_capacity(specs.len());
    for spec in specs {
        match WireCellSpec::from_cell(spec) {
            Ok(cell) => cells.push(cell),
            Err(e) => {
                eprintln!("cell not wire-addressable: {e}");
                return 3;
            }
        }
    }
    let mut client = match Client::connect(server) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("grid_campaign: {e}");
            return 3;
        }
    };
    println!("grid campaign: {} cells via server {server}", cells.len());
    let outcome = match client.submit_grid_with_retry(&cells, 10, |_| {}) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("grid_campaign: {e}");
            return 3;
        }
    };
    let mut table = TextTable::new(
        ["bench", "layout", "policy", "seed", "status", "att", "CPI / error"]
            .map(String::from)
            .to_vec(),
    );
    for (spec, record) in specs.iter().zip(&outcome.records) {
        let (status, attempts, detail) = match record {
            Some(r) => (
                r.status.clone(),
                r.attempts.to_string(),
                if r.is_ok() {
                    format!("{:.4}{}", r.cpi(), if r.cached { " (cached)" } else { "" })
                } else {
                    r.error.clone().unwrap_or_default()
                },
            ),
            None => ("UNFINISHED".to_string(), "-".to_string(), String::new()),
        };
        table.row(vec![
            workload_col(spec),
            format!("{:?}", spec.config.layout),
            format!("{:?}", spec.policy),
            spec.sample_seed.to_string(),
            status,
            attempts,
            detail,
        ]);
    }
    println!("{table}");
    println!(
        "server grid done: {} ok, {} failed, {} timed out, {} cached",
        outcome.ok, outcome.failed, outcome.timed_out, outcome.cached
    );
    outcome.exit_code()
}

/// Shards the specs across a daemon cluster with ring failover and
/// renders the same table. Exit codes mirror the local campaign.
fn run_against_cluster(servers: &[String], specs: &[CellSpec], manifest: Option<&str>) -> i32 {
    let mut cells = Vec::with_capacity(specs.len());
    for spec in specs {
        match WireCellSpec::from_cell(spec) {
            Ok(cell) => cells.push(cell),
            Err(e) => {
                eprintln!("cell not wire-addressable: {e}");
                return 3;
            }
        }
    }
    let map = match ShardMap::new(servers) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("grid_campaign: {e}");
            return 3;
        }
    };
    println!(
        "grid campaign: {} cells via {} shards (ring v{:016x})",
        cells.len(),
        map.len(),
        map.version()
    );
    let cluster = ClusterClient::new(map);
    let outcome = match cluster.submit_grid(&cells, |_| {}) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("grid_campaign: {e}");
            return 3;
        }
    };
    let mut table = TextTable::new(
        ["bench", "layout", "policy", "seed", "status", "shard", "CPI / error"]
            .map(String::from)
            .to_vec(),
    );
    for (i, (spec, record)) in specs.iter().zip(&outcome.records).enumerate() {
        let shard = outcome.served_by[i].clone().unwrap_or_else(|| "-".into());
        let (status, detail) = match record {
            Some(r) => (
                r.status.clone(),
                if r.is_ok() {
                    format!("{:.4}{}", r.cpi(), if r.cached { " (cached)" } else { "" })
                } else {
                    r.error.clone().unwrap_or_default()
                },
            ),
            None => ("UNFINISHED".to_string(), String::new()),
        };
        table.row(vec![
            workload_col(spec),
            format!("{:?}", spec.config.layout),
            format!("{:?}", spec.policy),
            spec.sample_seed.to_string(),
            status,
            shard,
            detail,
        ]);
    }
    println!("{table}");
    if let Some(path) = manifest {
        let mut lines: Vec<String> = outcome
            .records
            .iter()
            .flatten()
            .map(|r| r.to_checkpoint().to_json_line())
            .collect();
        lines.sort_unstable();
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, lines.join("\n") + "\n") {
            eprintln!("grid_campaign: manifest {path}: {e}");
            return 3;
        }
        println!("wrote {} records to {path}", lines.len());
    }
    println!(
        "cluster grid done: {} ok, {} failed, {} timed out, {} cached; \
         {} failovers across {} waves",
        outcome.ok, outcome.failed, outcome.timed_out, outcome.cached,
        outcome.failovers, outcome.waves
    );
    outcome.exit_code()
}

fn main() {
    let opts = HarnessOptions::from_env_and_args();
    let manifest = std::env::var("CCS_MANIFEST")
        .unwrap_or_else(|_| "results/checkpoints/grid_campaign.jsonl".to_string());

    let mut timers = StageTimers::new();
    let base = MachineConfig::micro05_baseline();
    let run_opts = opts.run_options();
    let seeds = opts.sample_seeds();

    // With --scenario FILE (or CCS_SCENARIO), the campaign sweeps the
    // same layout × policy × seed axes over one registered scenario
    // workload instead of the twelve benchmarks.
    let scenario = scenario_target().map(|path| {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("grid_campaign: scenario {path}: {e}");
                std::process::exit(3);
            }
        };
        match ccs_scenario::register_manifest(&text) {
            Ok((scenario, id)) => {
                println!("scenario workload: {} ({id})", scenario.name);
                id
            }
            Err(e) => {
                eprintln!("grid_campaign: scenario {path}: {e}");
                std::process::exit(3);
            }
        }
    });

    let mut specs = Vec::new();
    if let Some(id) = scenario {
        for layout in ClusterLayout::CLUSTERED {
            for policy in PolicyKind::LADDER {
                if policy == PolicyKind::Proactive && layout != ClusterLayout::C8x1w {
                    continue;
                }
                for &seed in &seeds {
                    specs.push(CellSpec::for_scenario(
                        base.with_layout(layout),
                        id,
                        seed,
                        opts.len,
                        policy,
                        run_opts,
                    ));
                }
            }
        }
    } else {
        for bench in Benchmark::ALL {
            for layout in ClusterLayout::CLUSTERED {
                for policy in PolicyKind::LADDER {
                    // Like the paper's Figure 14, the proactive bar exists
                    // only on the 8-cluster machine.
                    if policy == PolicyKind::Proactive && layout != ClusterLayout::C8x1w {
                        continue;
                    }
                    for &seed in &seeds {
                        specs.push(CellSpec::new(
                            base.with_layout(layout),
                            bench,
                            seed,
                            opts.len,
                            policy,
                            run_opts,
                        ));
                    }
                }
            }
        }
    }

    if let Some(servers) = servers_target() {
        let manifest = std::env::var("CCS_MANIFEST").ok();
        std::process::exit(run_against_cluster(&servers, &specs, manifest.as_deref()));
    }
    if let Some(server) = server_target() {
        std::process::exit(run_against_server(&server, &specs));
    }

    println!(
        "grid campaign: {} cells, manifest {manifest}{}{}",
        specs.len(),
        if opts.resume { " (resuming)" } else { "" },
        if opts.predict_order {
            " (predict-ordered)"
        } else {
            ""
        }
    );
    // Warm the shared trace cache so trace generation is charged to its
    // own stage rather than the first cells to touch each workload.
    timers.time("trace-gen", || {
        let mut warmed = std::collections::HashSet::new();
        for spec in &specs {
            if warmed.insert((spec.scenario, spec.benchmark, spec.sample_seed, spec.len)) {
                fetch_cell_trace(TraceStore::global(), spec);
            }
        }
    });
    let campaign = CampaignOptions::new(&manifest)
        .with_resume(opts.resume)
        .with_predict_order(opts.predict_order);
    let threads = opts.threads_for(specs.len());
    let report = timers.time("simulate", || {
        run_campaign(&specs, threads, &opts.resilience(), &campaign)
    });
    let report = match report {
        Ok(report) => report,
        Err(e) => {
            eprintln!("campaign aborted: {e}");
            std::process::exit(3);
        }
    };

    let mut table = TextTable::new(
        ["bench", "layout", "policy", "seed", "status", "att", "CPI / error"]
            .map(String::from)
            .to_vec(),
    );
    for (spec, record) in specs.iter().zip(&report.records) {
        let (status, attempts, detail) = match record {
            Some(r) => (r.status.clone(), r.attempts.to_string(), describe(r)),
            None => ("UNFINISHED".to_string(), "-".to_string(), String::new()),
        };
        table.row(vec![
            workload_col(spec),
            format!("{:?}", spec.config.layout),
            format!("{:?}", spec.policy),
            spec.sample_seed.to_string(),
            status,
            attempts,
            detail,
        ]);
    }
    println!("{table}");

    // With --metrics, aggregate the in-process cells' counters into a
    // reconciled CPI stack. Cells skipped on resume contribute no
    // metrics (the manifest records only their digest), so the stack
    // covers the cells this invocation ran.
    if opts.metrics {
        let ran: Vec<_> = report.results.iter().flatten().cloned().collect();
        let stack_report = timers.time("analysis", || cpi_stack_report(&ran));
        println!("{stack_report}");
    }

    println!("{}", report.summary());
    println!("stage timings:\n{timers}");
    std::process::exit(report.exit_code());
}

/// The CPI for completed cells, the (truncated) error for failed ones.
fn describe(record: &CheckpointRecord) -> String {
    if record.is_ok() {
        format!("{:.4}", f64::from_bits(record.cpi_bits))
    } else {
        let err = record.error.as_deref().unwrap_or("unknown error");
        let mut short: String = err.chars().take(60).collect();
        if short.len() < err.len() {
            short.push('…');
        }
        short
    }
}
