//! Sweeps per-cluster broadcast bandwidth on the global bypass network.
use ccs_bench::HarnessOptions;

fn main() {
    println!("{}", ccs_bench::figures::ablate_interconnect(&HarnessOptions::from_env()));
}
