//! Quantifies the §4 argument that slack is a poor static metric.
use ccs_bench::HarnessOptions;

fn main() {
    println!("{}", ccs_bench::figures::slack_distribution(&HarnessOptions::from_env()));
}
