//! Regenerates Figure 15 (achieved vs available ILP on the 8x1w machine).
use ccs_bench::HarnessOptions;

fn main() {
    let fig = ccs_bench::figures::fig15(&HarnessOptions::from_env());
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", fig.to_csv());
    } else {
        println!("{fig}");
    }
}
