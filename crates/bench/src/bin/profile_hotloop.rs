//! Quick hot-loop profiling: engine vs critical-path analysis cost at
//! large trace lengths (`CCS_LEN`), for perf work. Not part of CI.
//!
//! Reports best-of-`CCS_REPS` (default 5) wall times — the minimum is
//! the robust estimator on a shared/noisy host.

use ccs_core::{run_cell, PolicyKind, RunOptions};
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_sim::simulate;
use ccs_trace::Benchmark;
use std::time::Instant;

fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let v = f();
        best = best.min(t0.elapsed().as_secs_f64());
        out = Some(v);
    }
    (best, out.expect("reps >= 1"))
}

fn main() {
    let len: usize = std::env::var("CCS_LEN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let reps: usize = std::env::var("CCS_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let trace = Benchmark::Gcc.generate(1, len);
    for layout in [ClusterLayout::C2x4w, ClusterLayout::C4x2w, ClusterLayout::C8x1w] {
        let cfg = MachineConfig::micro05_baseline().with_layout(layout);
        let (sim_secs, result) = best_of(reps, || {
            let mut policy = ccs_core::PaperPolicy::from_config(
                PolicyKind::Focused.config(),
                ccs_core::PredictorBank::new(ccs_core::LocMode::Quantized16, 0xC1A5),
                "focused",
            );
            simulate(&cfg, &trace, &mut policy).unwrap()
        });
        let (ll_secs, _) = best_of(reps, || {
            simulate(&cfg, &trace, &mut ccs_sim::policies::LeastLoaded).unwrap()
        });
        let (an_secs, analysis) = best_of(reps, || ccs_critpath::analyze(&trace, &result));
        let (cell_secs, _) = best_of(reps, || {
            run_cell(&cfg, &trace, PolicyKind::Focused, &RunOptions::default()).unwrap()
        });
        println!(
            "{layout}: len={len} cycles={} sim={sim_secs:.3}s ({:.1} Minst/s) ll={ll_secs:.3}s analyze={an_secs:.3}s cell(2ep)={cell_secs:.3}s bd={}",
            result.cycles,
            len as f64 / sim_secs / 1e6,
            analysis.breakdown.total() == result.cycles,
        );
    }
}
