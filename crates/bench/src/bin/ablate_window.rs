//! Sweeps the aggregate scheduling-window size.
use ccs_bench::HarnessOptions;

fn main() {
    println!("{}", ccs_bench::figures::ablate_window(&HarnessOptions::from_env()));
}
