//! Regenerates the §4 list-scheduler criticality-knowledge ablation.
use ccs_bench::HarnessOptions;

fn main() {
    println!("{}", ccs_bench::figures::sec4_listsched(&HarnessOptions::from_env()));
}
