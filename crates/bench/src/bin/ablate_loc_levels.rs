//! Sweeps the LoC counter precision around the §7 4-bit design point.
use ccs_bench::HarnessOptions;

fn main() {
    println!("{}", ccs_bench::figures::ablate_loc_levels(&HarnessOptions::from_env()));
}
