//! Regenerates the §2.1 global-communication statistics.
use ccs_bench::HarnessOptions;

fn main() {
    println!("{}", ccs_bench::figures::sec2_global_comm(&HarnessOptions::from_env()));
}
