//! Regenerates the scenario-gallery exhibit (every committed manifest
//! under the static steering ladder).
use ccs_bench::HarnessOptions;

fn main() {
    let fig = ccs_bench::figures::scenario_exhibit(&HarnessOptions::from_env_and_args());
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", fig.to_csv());
    } else {
        println!("{fig}");
    }
}
