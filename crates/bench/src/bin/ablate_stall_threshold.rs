//! Sweeps the §5 stall-over-steer LoC threshold around the paper's 30%.
use ccs_bench::HarnessOptions;

fn main() {
    println!("{}", ccs_bench::figures::ablate_stall_threshold(&HarnessOptions::from_env()));
}
