//! Regenerates Figure 5 (critical-path CPI breakdown).
use ccs_bench::HarnessOptions;

fn main() {
    println!("{}", ccs_bench::figures::fig5(&HarnessOptions::from_env()));
}
