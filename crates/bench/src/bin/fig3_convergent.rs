//! Regenerates Figure 3 (convergent dataflow on each cluster width).
use ccs_bench::HarnessOptions;

fn main() {
    println!("{}", ccs_bench::figures::fig3(&HarnessOptions::from_env()));
}
