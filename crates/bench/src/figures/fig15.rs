//! Figure 15: achieved vs available ILP on the 8x1w machine.

use super::{csv_num, trace_for};
use crate::{HarnessOptions, TextTable};
use ccs_core::{run_cell, PolicyKind};
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_sim::IlpCensus;
use ccs_trace::Benchmark;
use std::fmt;

/// Figure 15 data: the merged ready/issued census over all benchmarks on
/// the 8x1w machine under the full policy ladder.
#[derive(Debug, Clone)]
pub struct Fig15 {
    /// The merged census.
    pub census: IlpCensus,
}

/// Computes Figure 15.
pub fn fig15(opts: &HarnessOptions) -> Fig15 {
    let machine = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C8x1w);
    let run_opts = opts.run_options();
    let mut census = IlpCensus::default();
    for bench in Benchmark::ALL {
        let trace = trace_for(bench, opts);
        let cell = run_cell(&machine, &trace, PolicyKind::Proactive, &run_opts)
            .expect("8x1w proactive run");
        census.merge(&cell.result.ilp);
    }
    Fig15 { census }
}

impl Fig15 {
    /// Renders the census as CSV (`available,cycles,achieved`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("available,cycles,achieved\n");
        for (a, cycles, achieved) in self.census.series() {
            out.push_str(&format!("{a},{cycles},{}\n", csv_num(achieved)));
        }
        out
    }
}

impl fmt::Display for Fig15 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 15 — achieved vs available ILP, 8x1w machine (all benchmarks,\n\
             full policy ladder)\n"
        )?;
        let mut t = TextTable::new(vec![
            "available".into(),
            "cycles".into(),
            "achieved".into(),
            "".into(),
        ]);
        let cap = self.census.max_available().min(24);
        for a in 1..=cap {
            if let Some(ach) = self.census.achieved_at(a) {
                t.row(vec![
                    a.to_string(),
                    self.census.cycles_at(a).to_string(),
                    format!("{ach:.2}"),
                    "*".repeat((ach * 2.0).round() as usize),
                ]);
            }
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "\nPaper: achieved ILP tracks available ILP when ILP is low (each chain\n\
             gets its own cluster) and saturates below 8 when available ILP is near\n\
             the machine width — the distributed-steering shortfall — recovering as\n\
             available ILP rises well past the width."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15_census_shape() {
        let f = fig15(&HarnessOptions::smoke());
        // Low available ILP is achieved nearly fully.
        let a1 = f.census.achieved_at(1).expect("ILP-1 cycles exist");
        assert!(a1 > 0.8, "achieved at 1 = {a1}");
        // Achieved can never exceed the 8-wide aggregate.
        for (_, _, ach) in f.census.series() {
            assert!(ach <= 8.0 + 1e-9);
        }
        // Somewhere near the machine width the machine falls short.
        if let Some(a8) = f.census.achieved_at(8) {
            assert!(a8 < 8.0, "achieved at 8 = {a8}");
        }
    }
}
