//! Text-section results: §2.1 global communication, §4 list-scheduler
//! knowledge ablation, §6 consumer statistics.

use super::{mean, mono_result, ratio, trace_for};
use crate::{HarnessOptions, TextTable};
use ccs_core::{run_cell, PolicyKind};
use ccs_critpath::{analyze, analyze_consumers};
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_listsched::{list_schedule, ListScheduleConfig, PriorityMode};
use ccs_predictors::{BinaryCriticality, CriticalityPredictor, ExactLoc, LocEstimator};
use ccs_trace::Benchmark;
use std::fmt;

/// §2.1: cross-cluster value deliveries per instruction.
#[derive(Debug, Clone)]
pub struct Sec2 {
    /// `(layout, focused policy, full ladder)` global values/instruction,
    /// averaged across benchmarks.
    pub rows: Vec<(ClusterLayout, f64, f64)>,
}

/// Computes the §2.1 global-communication statistics.
pub fn sec2_global_comm(opts: &HarnessOptions) -> Sec2 {
    let base_cfg = MachineConfig::micro05_baseline();
    let run_opts = opts.run_options();
    let mut rows = Vec::new();
    for layout in ClusterLayout::CLUSTERED {
        let machine = base_cfg.with_layout(layout);
        let mut focused = Vec::new();
        let mut ladder = Vec::new();
        for bench in Benchmark::ALL {
            let trace = trace_for(bench, opts);
            let fc = run_cell(&machine, &trace, PolicyKind::Focused, &run_opts)
                .expect("focused cell");
            let best = PolicyKind::best_for(layout.clusters());
            let lc = run_cell(&machine, &trace, best, &run_opts).expect("ladder cell");
            focused.push(fc.result.global_values_per_inst());
            ladder.push(lc.result.global_values_per_inst());
        }
        rows.push((layout, mean(focused), mean(ladder)));
    }
    Sec2 { rows }
}

impl fmt::Display for Sec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "§2.1 — global values communicated per instruction\n")?;
        let mut t = TextTable::new(vec![
            "layout".into(),
            "focused (baseline)".into(),
            "our policies".into(),
        ]);
        for (layout, focused, ladder) in &self.rows {
            t.row(vec![
                layout.to_string(),
                format!("{focused:.3}"),
                format!("{ladder:.3}"),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "\nPaper: 0.12 / 0.2 / 0.25 global values per instruction on the 2-, 4-\n\
             and 8-cluster machines, in all cases slightly less than the baseline."
        )
    }
}

/// §4: the idealized list scheduler with degraded criticality knowledge.
#[derive(Debug, Clone)]
pub struct Sec4 {
    /// `(layout, [exact height, LoC-only, binary-criticality])` average
    /// normalized CPI across benchmarks.
    pub rows: Vec<(ClusterLayout, [f64; 3])>,
}

/// Computes the §4 list-scheduler knowledge ablation.
pub fn sec4_listsched(opts: &HarnessOptions) -> Sec4 {
    let base_cfg = MachineConfig::micro05_baseline();
    // Per benchmark: trace, monolithic run, LoC/binary tables trained on
    // the monolithic critical path (the "average previous criticality"
    // knowledge of §4).
    struct Prep {
        trace: std::sync::Arc<ccs_trace::Trace>,
        mono: ccs_sim::SimResult,
        loc_priority: Vec<i64>,
        binary_priority: Vec<i64>,
    }
    let preps: Vec<Prep> = Benchmark::ALL
        .iter()
        .map(|&bench| {
            let trace = trace_for(bench, opts);
            let mono = mono_result(&trace);
            let cp = analyze(&trace, &mono);
            let mut loc = ExactLoc::new();
            let mut binary = BinaryCriticality::new();
            for (i, inst) in trace.iter() {
                loc.train(inst.pc(), cp.e_critical[i.index()]);
                binary.train(inst.pc(), cp.e_critical[i.index()]);
            }
            let loc_priority = trace
                .iter()
                .map(|(_, inst)| loc.level(inst.pc(), 16) as i64)
                .collect();
            let binary_priority = trace
                .iter()
                .map(|(_, inst)| binary.predict(inst.pc()) as i64)
                .collect();
            Prep {
                trace,
                mono,
                loc_priority,
                binary_priority,
            }
        })
        .collect();

    let mut rows = Vec::new();
    for layout in ClusterLayout::CLUSTERED {
        let machine = base_cfg.with_layout(layout);
        let mut norms = [Vec::new(), Vec::new(), Vec::new()];
        for p in &preps {
            let base =
                list_schedule(&p.trace, &p.mono, &ListScheduleConfig::new(base_cfg));
            let modes = [
                PriorityMode::DataflowHeight,
                PriorityMode::PerInst(p.loc_priority.clone()),
                PriorityMode::PerInst(p.binary_priority.clone()),
            ];
            for (k, mode) in modes.into_iter().enumerate() {
                let r = list_schedule(
                    &p.trace,
                    &p.mono,
                    &ListScheduleConfig::new(machine).with_priority(mode),
                );
                norms[k].push(ratio(
                    r.cycles as f64,
                    base.cycles as f64,
                    "sec4 idealized 1x8w cycles",
                ));
            }
        }
        rows.push((
            layout,
            [
                mean(norms[0].iter().copied()),
                mean(norms[1].iter().copied()),
                mean(norms[2].iter().copied()),
            ],
        ));
    }
    Sec4 { rows }
}

impl fmt::Display for Sec4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§4 — idealized list scheduler with degraded criticality knowledge\n\
             (average normalized CPI vs idealized 1x8w)\n"
        )?;
        let mut t = TextTable::new(vec![
            "layout".into(),
            "exact height".into(),
            "LoC only".into(),
            "binary".into(),
        ]);
        for (layout, n) in &self.rows {
            t.row(vec![
                layout.to_string(),
                format!("{:.3}", n[0]),
                format!("{:.3}", n[1]),
                format!("{:.3}", n[2]),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "\nPaper: replacing exact knowledge with LoC moves losses only from\n\
             ~1%/2% to 1.5%/2.7% (4x2w/8x1w), while binary criticality degrades\n\
             them to 1.5%/5%/9.8% — LoC carries most of the useful signal."
        )
    }
}

/// §6: producer/consumer criticality statistics, per benchmark.
#[derive(Debug, Clone)]
pub struct Sec6 {
    /// `(benchmark, unique-MCC fraction, MCC-not-first fraction,
    /// bimodality)`.
    pub rows: Vec<(Benchmark, f64, f64, f64)>,
}

impl Sec6 {
    /// Average unique-MCC fraction (paper: ~80%).
    pub fn average_unique(&self) -> f64 {
        mean(self.rows.iter().map(|r| r.1))
    }

    /// Average MCC-not-first fraction (paper: >50%).
    pub fn average_not_first(&self) -> f64 {
        mean(self.rows.iter().map(|r| r.2))
    }
}

/// Computes the §6 consumer statistics (4x2w machine, focused policy).
pub fn sec6_consumers(opts: &HarnessOptions) -> Sec6 {
    let machine = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
    let run_opts = opts.run_options();
    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        let trace = trace_for(bench, opts);
        let cell = run_cell(&machine, &trace, PolicyKind::Focused, &run_opts)
            .expect("focused cell");
        let c = analyze_consumers(&trace, &cell.result, &cell.analysis.e_critical);
        rows.push((
            bench,
            c.unique_mcc_fraction,
            c.mcc_not_first_fraction,
            c.bimodality(),
        ));
    }
    Sec6 { rows }
}

impl fmt::Display for Sec6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "§6 — producer/consumer criticality statistics\n")?;
        let mut t = TextTable::new(vec![
            "bench".into(),
            "unique MCC".into(),
            "MCC not first".into(),
            "bimodality".into(),
        ]);
        for (bench, unique, not_first, bimodal) in &self.rows {
            t.row(vec![
                bench.to_string(),
                format!("{:.0}%", 100.0 * unique),
                format!("{:.0}%", 100.0 * not_first),
                format!("{:.0}%", 100.0 * bimodal),
            ]);
        }
        t.row(vec![
            "AVE".into(),
            format!("{:.0}%", 100.0 * self.average_unique()),
            format!("{:.0}%", 100.0 * self.average_not_first()),
            format!(
                "{:.0}%",
                100.0 * mean(self.rows.iter().map(|r| r.3))
            ),
        ]);
        write!(f, "{t}")?;
        writeln!(
            f,
            "\nPaper: ~80% of values have a statically unique most-critical\n\
             consumer; consumers are bimodal; >50% of critical multi-consumer\n\
             values do not have their most critical consumer first in fetch order."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sec2_smoke() {
        let s = sec2_global_comm(&HarnessOptions::smoke());
        assert_eq!(s.rows.len(), 3);
        for (layout, focused, ladder) in &s.rows {
            assert!(*focused >= 0.0 && *focused < 2.0, "{layout} focused {focused}");
            assert!(*ladder >= 0.0 && *ladder < 2.0);
        }
        // More clusters ⇒ more global communication.
        assert!(s.rows[2].1 >= s.rows[0].1 * 0.8);
    }

    #[test]
    fn sec4_knowledge_ordering() {
        let s = sec4_listsched(&HarnessOptions::smoke());
        assert_eq!(s.rows.len(), 3);
        for (layout, n) in &s.rows {
            // Binary knowledge should not beat LoC by a meaningful margin.
            assert!(
                n[2] >= n[1] - 0.02,
                "{layout}: binary {} vs LoC {}",
                n[2],
                n[1]
            );
        }
    }

    #[test]
    fn sec6_statistics_in_range() {
        let s = sec6_consumers(&HarnessOptions::smoke());
        assert_eq!(s.rows.len(), 12);
        let unique = s.average_unique();
        assert!(unique > 0.4, "unique MCC average {unique}");
        for (_, u, nf, b) in &s.rows {
            assert!((0.0..=1.0).contains(u));
            assert!((0.0..=1.0).contains(nf));
            assert!((0.0..=1.0).contains(b));
        }
    }
}
