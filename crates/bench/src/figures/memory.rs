//! The §2.1 memory-system verification: infinite L2 vs finite L2 with a
//! 200-cycle memory.
//!
//! The paper simulates an infinite 20-cycle L2 "to reduce simulation
//! times and cache warm-up times" and reports having *verified* that the
//! CPI breakdowns match runs with a finite L2 and 200-cycle memory,
//! "except for a somewhat smaller CPI contribution from memory" — so the
//! infinite-L2 results conservatively overestimate clustering's impact.
//! This module reruns that verification.

use super::trace_for;
use crate::{HarnessOptions, TextTable};
use ccs_core::{run_cell, PolicyKind};
use ccs_critpath::CostCategory;
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_trace::Benchmark;
use std::fmt;

/// One machine's breakdown shares under both memory systems.
#[derive(Debug, Clone)]
pub struct MemoryVerificationRow {
    /// The benchmark.
    pub bench: Benchmark,
    /// Memory-latency share of runtime with the infinite L2.
    pub mem_share_infinite: f64,
    /// Memory-latency share of runtime with the finite L2 + 200-cycle
    /// memory.
    pub mem_share_finite: f64,
    /// Clustering share (fwd delay + contention) with the infinite L2.
    pub clustering_share_infinite: f64,
    /// Clustering share with the finite memory system.
    pub clustering_share_finite: f64,
}

/// The §2.1 verification data (8x1w machine, focused policy).
#[derive(Debug, Clone)]
pub struct MemoryVerification {
    /// Per-benchmark shares.
    pub rows: Vec<MemoryVerificationRow>,
}

/// Runs the memory-system verification.
pub fn finite_l2_check(opts: &HarnessOptions) -> MemoryVerification {
    let run_opts = opts.run_options();
    let machine = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C8x1w);
    let machine_finite = machine.with_finite_l2();
    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        let trace = trace_for(bench, opts);
        let inf = run_cell(&machine, &trace, PolicyKind::Focused, &run_opts)
            .expect("infinite-L2 cell");
        let fin = run_cell(&machine_finite, &trace, PolicyKind::Focused, &run_opts)
            .expect("finite-L2 cell");
        let share = |cell: &ccs_core::CellOutcome, cat: CostCategory| {
            cell.analysis.breakdown.get(cat) as f64 / cell.result.cycles as f64
        };
        let clustering = |cell: &ccs_core::CellOutcome| {
            share(cell, CostCategory::FwdDelay) + share(cell, CostCategory::Contention)
        };
        rows.push(MemoryVerificationRow {
            bench,
            mem_share_infinite: share(&inf, CostCategory::MemLatency),
            mem_share_finite: share(&fin, CostCategory::MemLatency),
            clustering_share_infinite: clustering(&inf),
            clustering_share_finite: clustering(&fin),
        });
    }
    MemoryVerification { rows }
}

impl fmt::Display for MemoryVerification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§2.1 verification — infinite 20-cycle L2 vs finite 512 KB L2 +\n\
             200-cycle memory (8x1w, focused; shares of total runtime)\n"
        )?;
        let mut t = TextTable::new(vec![
            "bench".into(),
            "mem% (inf)".into(),
            "mem% (finite)".into(),
            "cluster% (inf)".into(),
            "cluster% (finite)".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.bench.to_string(),
                format!("{:.1}", 100.0 * r.mem_share_infinite),
                format!("{:.1}", 100.0 * r.mem_share_finite),
                format!("{:.1}", 100.0 * r.clustering_share_infinite),
                format!("{:.1}", 100.0 * r.clustering_share_finite),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "\nPaper: breakdowns are very similar except a smaller memory\n\
             contribution under the infinite L2 — so infinite-L2 results\n\
             (conservatively) overestimate clustering's relative impact."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_memory_grows_the_memory_share() {
        let v = finite_l2_check(&HarnessOptions::smoke());
        assert_eq!(v.rows.len(), 12);
        // On the memory-bound benchmark the effect must be visible.
        let mcf = v
            .rows
            .iter()
            .find(|r| r.bench == Benchmark::Mcf)
            .expect("mcf present");
        assert!(
            mcf.mem_share_finite > mcf.mem_share_infinite,
            "mcf mem share: finite {:.3} vs infinite {:.3}",
            mcf.mem_share_finite,
            mcf.mem_share_infinite
        );
        // And the clustering share shrinks (or stays) when memory grows —
        // the paper's conservatism argument.
        assert!(
            mcf.clustering_share_finite <= mcf.clustering_share_infinite + 0.02,
            "clustering share grew: {:.3} vs {:.3}",
            mcf.clustering_share_finite,
            mcf.clustering_share_infinite
        );
    }
}
