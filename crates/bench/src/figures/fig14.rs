//! Figure 14: the policy ladder — focused, +LoC, +stall-over-steer,
//! +proactive.

use super::{csv_num, mean, ratio};
use crate::{HarnessOptions, TextTable};
use ccs_core::{run_grid, CellSpec, PolicyKind};
use ccs_critpath::CostCategory;
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_trace::Benchmark;
use std::fmt;

/// One bar of Figure 14.
#[derive(Debug, Clone)]
pub struct Fig14Bar {
    /// The benchmark.
    pub bench: Benchmark,
    /// The machine layout.
    pub layout: ClusterLayout,
    /// The policy.
    pub policy: PolicyKind,
    /// CPI normalized to the monolithic machine with LoC scheduling.
    pub normalized_cpi: f64,
    /// Normalized forwarding-delay component.
    pub fwd: f64,
    /// Normalized contention component.
    pub contention: f64,
}

/// Figure 14 data.
#[derive(Debug, Clone)]
pub struct Fig14 {
    /// All bars, grouped by benchmark, layout, then ladder order.
    pub bars: Vec<Fig14Bar>,
}

impl Fig14 {
    /// Average normalized CPI for one (layout, policy) pair.
    pub fn average(&self, layout: ClusterLayout, policy: PolicyKind) -> f64 {
        mean(
            self.bars
                .iter()
                .filter(|b| b.layout == layout && b.policy == policy)
                .map(|b| b.normalized_cpi),
        )
    }

    /// Fraction of the focused policy's clustering penalty removed by the
    /// paper's final policy composition on `layout` (the paper reports
    /// 42/57/66% for 2/4/8 clusters; proactive load balancing applies
    /// only to the 8-cluster machine).
    pub fn penalty_reduction(&self, layout: ClusterLayout) -> f64 {
        let focused = self.average(layout, PolicyKind::Focused) - 1.0;
        let best_kind = PolicyKind::best_for(layout.clusters());
        let best = self.average(layout, best_kind) - 1.0;
        if focused <= 0.0 {
            0.0
        } else {
            (focused - best) / focused
        }
    }
}

/// Whether the ladder evaluates `policy` on `layout` (like the paper,
/// the `p` bar exists only for the 8-cluster machine).
fn ladder_cell(layout: ClusterLayout, policy: PolicyKind) -> bool {
    policy != PolicyKind::Proactive || layout == ClusterLayout::C8x1w
}

/// Computes Figure 14 on the parallel grid executor.
pub fn fig14(opts: &HarnessOptions) -> Fig14 {
    let base_cfg = MachineConfig::micro05_baseline();
    let run_opts = opts.run_options();
    let seeds = opts.sample_seeds();
    let samples = seeds.len() as f64;
    // Enumerate every cell — per benchmark: the monolithic FocusedLoc
    // normalization references (the paper's Figure 14 baseline), then
    // the ladder cells — and fan the whole grid out at once.
    let mut specs = Vec::new();
    for bench in Benchmark::ALL {
        for &seed in &seeds {
            specs.push(CellSpec::new(
                base_cfg,
                bench,
                seed,
                opts.len,
                PolicyKind::FocusedLoc,
                run_opts,
            ));
        }
        for layout in ClusterLayout::CLUSTERED {
            let machine = base_cfg.with_layout(layout);
            for policy in PolicyKind::LADDER {
                if !ladder_cell(layout, policy) {
                    continue;
                }
                for &seed in &seeds {
                    specs.push(CellSpec::new(
                        machine, bench, seed, opts.len, policy, run_opts,
                    ));
                }
            }
        }
    }
    let mut results = run_grid(&specs, opts.effective_threads()).into_iter();

    // Consume the results in the exact enumeration order.
    let mut bars = Vec::new();
    for bench in Benchmark::ALL {
        let mono_cpis: Vec<f64> = seeds
            .iter()
            .map(|_| results.next().expect("mono reference cell").cpi())
            .collect();
        for layout in ClusterLayout::CLUSTERED {
            for policy in PolicyKind::LADDER {
                if !ladder_cell(layout, policy) {
                    continue;
                }
                let mut bar = Fig14Bar {
                    bench,
                    layout,
                    policy,
                    normalized_cpi: 0.0,
                    fwd: 0.0,
                    contention: 0.0,
                };
                for &mono_cpi in &mono_cpis {
                    let cell = results.next().expect("ladder cell");
                    let outcome = cell.expect_outcome();
                    let insts = outcome.result.instructions();
                    bar.normalized_cpi +=
                        ratio(outcome.cpi(), mono_cpi, "fig14 monolithic CPI") / samples;
                    bar.fwd += outcome
                        .analysis
                        .breakdown
                        .cpi_component(CostCategory::FwdDelay, insts)
                        / mono_cpi
                        / samples;
                    bar.contention += outcome
                        .analysis
                        .breakdown
                        .cpi_component(CostCategory::Contention, insts)
                        / mono_cpi
                        / samples;
                }
                bars.push(bar);
            }
        }
    }
    Fig14 { bars }
}

impl Fig14 {
    /// Renders the bars as CSV
    /// (`bench,layout,policy,normalized_cpi,fwd,contention`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bench,layout,policy,normalized_cpi,fwd,contention\n");
        for b in &self.bars {
            out.push_str(&format!(
                "{},{},{},{},{},{}\n",
                b.bench,
                b.layout,
                b.policy.bar_label(),
                csv_num(b.normalized_cpi),
                csv_num(b.fwd),
                csv_num(b.contention)
            ));
        }
        out
    }
}

impl fmt::Display for Fig14 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 14 — the policy ladder (normalized CPI vs monolithic with LoC\n\
             scheduling; f = focused, l = +LoC, s = +stall-over-steer, p = +proactive)\n"
        )?;
        let mut t = TextTable::new(vec![
            "bench".into(),
            "layout".into(),
            "f".into(),
            "l".into(),
            "s".into(),
            "p".into(),
            "p:fwd".into(),
            "p:cont".into(),
        ]);
        for bench in Benchmark::ALL {
            for layout in ClusterLayout::CLUSTERED {
                let bars: Vec<&Fig14Bar> = self
                    .bars
                    .iter()
                    .filter(|b| b.bench == bench && b.layout == layout)
                    .collect();
                if bars.len() < 3 {
                    continue;
                }
                let last = bars.last().expect("non-empty bar group");
                t.row(vec![
                    bench.to_string(),
                    layout.to_string(),
                    format!("{:.3}", bars[0].normalized_cpi),
                    format!("{:.3}", bars[1].normalized_cpi),
                    format!("{:.3}", bars[2].normalized_cpi),
                    bars.get(3)
                        .map_or_else(|| "-".to_string(), |b| format!("{:.3}", b.normalized_cpi)),
                    format!("{:.3}", last.fwd),
                    format!("{:.3}", last.contention),
                ]);
            }
        }
        write!(f, "{t}")?;
        writeln!(f)?;
        let mut avg = TextTable::new(vec![
            "layout".into(),
            "f".into(),
            "l".into(),
            "s".into(),
            "p".into(),
            "penalty cut".into(),
        ]);
        for layout in ClusterLayout::CLUSTERED {
            let p = if layout == ClusterLayout::C8x1w {
                format!("{:.3}", self.average(layout, PolicyKind::Proactive))
            } else {
                "-".to_string()
            };
            avg.row(vec![
                layout.to_string(),
                format!("{:.3}", self.average(layout, PolicyKind::Focused)),
                format!("{:.3}", self.average(layout, PolicyKind::FocusedLoc)),
                format!("{:.3}", self.average(layout, PolicyKind::StallOverSteer)),
                p,
                format!("{:.0}%", 100.0 * self.penalty_reduction(layout)),
            ]);
        }
        write!(f, "{avg}")?;
        writeln!(
            f,
            "\nPaper: the three policies cut the clustering penalty by 42/57/66%\n\
             on 2/4/8 clusters, bringing all configurations within 2/4/6% of the\n\
             monolithic machine."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_ladder_improves_on_average() {
        let f = fig14(&HarnessOptions::smoke());
        // 3 bars on the wide layouts, 4 on 8x1w, per benchmark.
        assert_eq!(f.bars.len(), 12 * (3 + 3 + 4));
        for layout in ClusterLayout::CLUSTERED {
            let focused = f.average(layout, PolicyKind::Focused);
            let best = f.average(layout, PolicyKind::best_for(layout.clusters()));
            assert!(
                best <= focused + 0.02,
                "{layout}: ladder should not hurt on average ({best} vs {focused})"
            );
        }
        // On the 8-cluster machine, the ladder must visibly help.
        let cut = f.penalty_reduction(ClusterLayout::C8x1w);
        assert!(cut > 0.0, "8x1w penalty reduction {cut}");
    }
}
