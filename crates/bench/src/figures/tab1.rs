//! Table 1: the baseline machine parameters.

use crate::TextTable;
use ccs_isa::{ClusterLayout, MachineConfig};
use std::fmt;

/// Table 1 data: the baseline configuration plus the derived per-cluster
/// resources of each layout.
#[derive(Debug, Clone)]
pub struct Tab1 {
    /// The baseline machine.
    pub baseline: MachineConfig,
}

/// Produces Table 1.
pub fn tab1() -> Tab1 {
    Tab1 {
        baseline: MachineConfig::micro05_baseline(),
    }
}

impl fmt::Display for Tab1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = &self.baseline;
        writeln!(f, "Table 1 — baseline (monolithic) machine parameters\n")?;
        writeln!(
            f,
            "Front-end: {}-wide, {} stages to dispatch, gshare with {} bits of\n\
             global history, perfect instruction cache.",
            m.front_end.fetch_width, m.front_end.depth_to_dispatch, m.front_end.gshare_history_bits
        )?;
        writeln!(
            f,
            "Issue:     {}-entry scheduling window, {}-entry ROB.",
            m.window_total, m.rob_entries
        )?;
        writeln!(
            f,
            "Execute:   up to {} instructions per clock ({} int, {} fp, {} mem);\n\
             Alpha 21264 latencies (3-cycle load-to-use); perfect disambiguation.",
            m.commit_width, m.int_total, m.fp_total, m.mem_total
        )?;
        writeln!(
            f,
            "Memory:    {} KB {}-way L1, {}-cycle infinite L2; inter-cluster\n\
             forwarding latency {} cycles.\n",
            m.memory.l1_bytes / 1024,
            m.memory.l1_ways,
            m.memory.l2_latency,
            m.forward_latency
        )?;
        let mut t = TextTable::new(vec![
            "layout".into(),
            "clusters".into(),
            "window/cluster".into(),
            "issue".into(),
            "int".into(),
            "fp".into(),
            "mem".into(),
        ]);
        for layout in ClusterLayout::ALL {
            let c = m.with_layout(layout);
            t.row(vec![
                layout.to_string(),
                c.cluster_count().to_string(),
                c.cluster.window_entries.to_string(),
                c.cluster.issue_width.to_string(),
                c.cluster.int_ports.to_string(),
                c.cluster.fp_ports.to_string(),
                c.cluster.mem_ports.to_string(),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab1_prints_the_paper_parameters() {
        let s = tab1().to_string();
        assert!(s.contains("128-entry scheduling window"));
        assert!(s.contains("256-entry ROB"));
        assert!(s.contains("16 bits"));
        assert!(s.contains("32 KB 4-way"));
        assert!(s.contains("8x1w"));
    }
}
