//! Figure 3: convergent dataflow's cost on each cluster width.

use super::ratio;
use crate::{HarnessOptions, TextTable};
use ccs_isa::{ClusterLayout, MachineConfig, Pc};
use ccs_listsched::{list_schedule, ListScheduleConfig};
use ccs_sim::{policies::LeastLoaded, simulate};
use ccs_trace::patterns::{ConvergentHammock, HammockConfig, RegAlloc};
use ccs_trace::{BranchBehavior, TraceBuilder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Figure 3 data: the idealized schedule of back-to-back bzip2 hammocks
/// on each layout, normalized to the idealized monolithic schedule.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// `(layout, normalized ideal CPI, cross-cluster values per instance)`.
    pub rows: Vec<(ClusterLayout, f64, f64)>,
    /// Instances of the hammock in the trace.
    pub instances: usize,
}

/// Computes Figure 3.
pub fn fig3(opts: &HarnessOptions) -> Fig3 {
    let mut regs = RegAlloc::new();
    let mut hammock = ConvergentHammock::new(
        Pc::new(0x1000),
        &mut regs,
        HammockConfig {
            arm_len: 2,
            branch: BranchBehavior::NeverTaken,
            region: 1 << 12,
        },
    );
    let mut b = TraceBuilder::new();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let instances = (opts.len / hammock.body_len()).max(64);
    for _ in 0..instances {
        hammock.emit(&mut b, &mut rng);
    }
    let trace = b.finish();
    let mono_cfg = MachineConfig::micro05_baseline();
    let mono = simulate(&mono_cfg, &trace, &mut LeastLoaded).expect("monolithic run");
    let base = list_schedule(&trace, &mono, &ListScheduleConfig::new(mono_cfg));
    let rows = ClusterLayout::ALL
        .into_iter()
        .map(|layout| {
            let machine = mono_cfg.with_layout(layout);
            let ideal = list_schedule(&trace, &mono, &ListScheduleConfig::new(machine));
            (
                layout,
                ratio(
                    ideal.cycles as f64,
                    base.cycles as f64,
                    "fig3 idealized monolithic cycles",
                ),
                ideal.cross_cluster_values as f64 / instances as f64,
            )
        })
        .collect();
    Fig3 { rows, instances }
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 3 — convergent dataflow (the bzip2 hammock), idealized\n\
             schedule per layout ({} instances)\n",
            self.instances
        )?;
        let mut t = TextTable::new(vec![
            "layout".into(),
            "norm. ideal CPI".into(),
            "crossings/instance".into(),
        ]);
        for (layout, norm, crossings) in &self.rows {
            t.row(vec![
                layout.to_string(),
                format!("{norm:.3}"),
                format!("{crossings:.2}"),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "\nPaper: 1-wide clusters inevitably pay one forwarding delay per\n\
             hammock (or contention); 2-wide clusters with one memory port pay a\n\
             cycle of port contention; 4-wide clusters with two memory ports run\n\
             it at full speed."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_monolithic_is_the_reference() {
        let f = fig3(&HarnessOptions::smoke());
        assert_eq!(f.rows.len(), 4);
        let (layout, norm, crossings) = f.rows[0];
        assert_eq!(layout, ClusterLayout::C1x8w);
        assert!((norm - 1.0).abs() < 1e-9);
        assert_eq!(crossings, 0.0);
        // Narrow clusters pay a little, not a lot (§2.2: the effect is
        // fundamental but small).
        for (l, n, _) in &f.rows[1..] {
            assert!(*n >= 0.999 && *n < 1.25, "{l}: {n}");
        }
    }
}
