//! Figure 5: critical-path CPI breakdown under focused steering.

use super::trace_for;
use crate::{HarnessOptions, TextTable};
use ccs_core::{run_cell, CellOutcome, PolicyKind};
use ccs_critpath::CostCategory;
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_trace::Benchmark;
use std::fmt;

/// One stacked bar of Figure 5: the CPI contribution of each critical-path
/// category, normalized to the monolithic machine's CPI.
#[derive(Debug, Clone)]
pub struct Fig5Bar {
    /// The benchmark.
    pub bench: Benchmark,
    /// The machine layout.
    pub layout: ClusterLayout,
    /// `(category, normalized CPI component)`, in display order.
    pub components: Vec<(CostCategory, f64)>,
}

impl Fig5Bar {
    /// The bar's total (the configuration's normalized CPI).
    pub fn total(&self) -> f64 {
        self.components.iter().map(|&(_, v)| v).sum()
    }

    /// One component.
    pub fn get(&self, cat: CostCategory) -> f64 {
        self.components
            .iter()
            .find(|&&(c, _)| c == cat)
            .map_or(0.0, |&(_, v)| v)
    }
}

/// Figure 5 data.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// All bars, grouped by benchmark then layout (1, 2, 4, 8).
    pub bars: Vec<Fig5Bar>,
}

fn bar(bench: Benchmark, cell: &CellOutcome, mono_cpi: f64) -> Fig5Bar {
    let insts = cell.result.instructions();
    let components = CostCategory::ALL
        .into_iter()
        .map(|cat| {
            (
                cat,
                cell.analysis.breakdown.cpi_component(cat, insts) / mono_cpi,
            )
        })
        .collect();
    Fig5Bar {
        bench,
        layout: cell.result.config.layout,
        components,
    }
}

/// Computes Figure 5.
pub fn fig5(opts: &HarnessOptions) -> Fig5 {
    let base_cfg = MachineConfig::micro05_baseline();
    let run_opts = opts.run_options();
    let mut bars = Vec::new();
    for bench in Benchmark::ALL {
        let trace = trace_for(bench, opts);
        let mono = run_cell(&base_cfg, &trace, PolicyKind::Focused, &run_opts)
            .expect("monolithic focused run");
        let mono_cpi = mono.cpi();
        bars.push(bar(bench, &mono, mono_cpi));
        for layout in ClusterLayout::CLUSTERED {
            let machine = base_cfg.with_layout(layout);
            let cell = run_cell(&machine, &trace, PolicyKind::Focused, &run_opts)
                .expect("clustered focused run");
            bars.push(bar(bench, &cell, mono_cpi));
        }
    }
    Fig5 { bars }
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 5 — critical-path breakdown, focused policy (components of\n\
             normalized CPI; every row sums to that configuration's normalized CPI)\n"
        )?;
        let mut header = vec!["bench".to_string(), "layout".to_string()];
        header.extend(CostCategory::ALL.iter().map(|c| c.label().to_string()));
        header.push("total".into());
        let mut t = TextTable::new(header);
        for b in &self.bars {
            let mut row = vec![b.bench.to_string(), b.layout.to_string()];
            row.extend(b.components.iter().map(|&(_, v)| format!("{v:.3}")));
            row.push(format!("{:.3}", b.total()));
            t.row(row);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "\nPaper: clustering shifts the path toward fwd-delay and contention and\n\
             from fetch- to execute-criticality as the back end falls behind."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_bars_sum_to_normalized_cpi() {
        let opts = HarnessOptions::smoke();
        let f = fig5(&opts);
        assert_eq!(f.bars.len(), 12 * 4);
        for b in &f.bars {
            assert!(b.total() > 0.5, "{:?} total {}", b.bench, b.total());
            if b.layout == ClusterLayout::C1x8w {
                assert!((b.total() - 1.0).abs() < 1e-6, "mono bar sums to 1");
                assert_eq!(b.get(CostCategory::FwdDelay), 0.0);
            }
        }
        // Clustering categories appear on the 8x1w bars somewhere.
        let clustered_cost: f64 = f
            .bars
            .iter()
            .filter(|b| b.layout == ClusterLayout::C8x1w)
            .map(|b| b.get(CostCategory::FwdDelay) + b.get(CostCategory::Contention))
            .sum();
        assert!(clustered_cost > 0.0);
    }
}
