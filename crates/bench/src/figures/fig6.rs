//! Figure 6: where the lost cycles went — classified contention and
//! forwarding events on the critical path.

use super::trace_for;
use crate::{HarnessOptions, TextTable};
use ccs_core::{run_cell, PolicyKind};
use ccs_critpath::EventTotals;
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_trace::Benchmark;
use std::fmt;

/// Figure 6 data: per (benchmark, layout) event totals under the focused
/// policy.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// `(benchmark, layout, totals)`.
    pub rows: Vec<(Benchmark, ClusterLayout, EventTotals)>,
}

impl Fig6 {
    /// Fraction of all critical contention events that hit
    /// predicted-critical instructions (the paper: up to two-thirds).
    pub fn contention_critical_fraction(&self) -> f64 {
        let (crit, total) = self.rows.iter().fold((0u64, 0u64), |(c, t), (_, _, e)| {
            (c + e.contention_predicted_critical, t + e.contention_total())
        });
        if total == 0 {
            0.0
        } else {
            crit as f64 / total as f64
        }
    }

    /// Fraction of all critical forwarding events caused by load-balance
    /// steering (the paper: the dominant cause).
    pub fn forwarding_load_balance_fraction(&self) -> f64 {
        let (lb, total) = self.rows.iter().fold((0u64, 0u64), |(l, t), (_, _, e)| {
            (l + e.forwarding_load_balance, t + e.forwarding_total())
        });
        if total == 0 {
            0.0
        } else {
            lb as f64 / total as f64
        }
    }
}

/// Computes Figure 6.
pub fn fig6(opts: &HarnessOptions) -> Fig6 {
    let base_cfg = MachineConfig::micro05_baseline();
    let run_opts = opts.run_options();
    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        let trace = trace_for(bench, opts);
        for layout in ClusterLayout::CLUSTERED {
            let machine = base_cfg.with_layout(layout);
            let cell = run_cell(&machine, &trace, PolicyKind::Focused, &run_opts)
                .expect("clustered focused run");
            rows.push((bench, layout, cell.analysis.event_totals()));
        }
    }
    Fig6 { rows }
}

impl fmt::Display for Fig6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 6 — classified lost-cycle events on the critical path (focused)\n"
        )?;
        writeln!(f, "(a) contention stalls     (b) forwarding delays")?;
        let mut t = TextTable::new(vec![
            "bench".into(),
            "layout".into(),
            "cont:critical".into(),
            "cont:other".into(),
            "fwd:load-bal".into(),
            "fwd:dyadic".into(),
            "fwd:other".into(),
        ]);
        for (bench, layout, e) in &self.rows {
            t.row(vec![
                bench.to_string(),
                layout.to_string(),
                e.contention_predicted_critical.to_string(),
                e.contention_other.to_string(),
                e.forwarding_load_balance.to_string(),
                e.forwarding_dyadic.to_string(),
                e.forwarding_other.to_string(),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "\naggregate: {:.0}% of critical contention hits predicted-critical \
             instructions;\n{:.0}% of critical forwarding comes from load-balance \
             steering.",
            100.0 * self.contention_critical_fraction(),
            100.0 * self.forwarding_load_balance_fraction()
        )?;
        writeln!(
            f,
            "Paper: up to two-thirds of contention hits predicted-critical\n\
             instructions; load-balance steering dominates forwarding except in\n\
             bzip2/crafty where dyadic convergence does."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_classifications_populate() {
        let f = fig6(&HarnessOptions::smoke());
        assert_eq!(f.rows.len(), 36);
        let any_contention = f.rows.iter().any(|(_, _, e)| e.contention_total() > 0);
        let any_forwarding = f.rows.iter().any(|(_, _, e)| e.forwarding_total() > 0);
        assert!(any_contention && any_forwarding);
        // Both headline fractions are meaningful.
        let cf = f.contention_critical_fraction();
        let lf = f.forwarding_load_balance_fraction();
        assert!((0.0..=1.0).contains(&cf));
        assert!((0.0..=1.0).contains(&lf));
    }
}
