//! One module per paper exhibit.
//!
//! Every function takes [`HarnessOptions`] and
//! returns a displayable report; the `src/bin` binaries are thin wrappers.

mod ablate;
mod adaptive;
mod fig14;
mod fig15;
mod fig2;
mod fig3;
mod fig4;
mod fig5;
mod fig6;
mod fig8;
mod memory;
mod scenarios;
mod sections;
mod slackfig;
mod tab1;

pub use ablate::{
    ablate_interconnect, ablate_loc_levels, ablate_proactive, ablate_stall_threshold,
    ablate_window, InterconnectAblation, LocLevelsAblation, ProactiveAblation,
    StallThresholdAblation, WindowAblation,
};
pub use adaptive::{
    adaptive_exhibit, AdaptiveBar, AdaptiveExhibit, EXHIBIT_POLICIES, STATIC_POLICIES,
};
pub use fig14::{fig14, Fig14};
pub use fig15::{fig15, Fig15};
pub use fig2::{fig2, fig2_latency_sweep, Fig2, Fig2LatencySweep};
pub use fig3::{fig3, Fig3};
pub use fig4::{fig4, Fig4};
pub use fig5::{fig5, Fig5};
pub use fig6::{fig6, Fig6};
pub use fig8::{fig8, Fig8};
pub use memory::{finite_l2_check, MemoryVerification, MemoryVerificationRow};
pub use scenarios::{scenario_exhibit, ScenarioBar, ScenarioExhibit, SCENARIO_POLICIES};
pub use sections::{sec2_global_comm, sec4_listsched, sec6_consumers, Sec2, Sec4, Sec6};
pub use slackfig::{slack_distribution, SlackDistribution, SlackRow};
pub use tab1::{tab1, Tab1};

use crate::HarnessOptions;
use ccs_core::CcsError;
use ccs_isa::MachineConfig;
use ccs_sim::{policies::LeastLoaded, simulate, SimResult};
use ccs_trace::{Benchmark, Trace, TraceStore};
use std::sync::Arc;

/// The harness trace for one benchmark (the first sample), from the
/// process-wide [`TraceStore`] — generated once, shared by every figure
/// and every grid worker.
pub(crate) fn trace_for(bench: Benchmark, opts: &HarnessOptions) -> Arc<Trace> {
    TraceStore::global().get(bench, opts.seed, opts.len)
}

/// Runs the reference monolithic execution (policy-free baseline used by
/// the idealized studies).
pub(crate) fn mono_result(trace: &Trace) -> SimResult {
    let cfg = MachineConfig::micro05_baseline();
    simulate(&cfg, trace, &mut LeastLoaded).expect("monolithic baseline cannot deadlock")
}

/// Arithmetic mean, rejecting empty series with a typed error. An
/// exhibit averaging zero cells would silently report 0.0 — a harness
/// bug, not a number.
pub(crate) fn try_mean(values: impl IntoIterator<Item = f64>) -> Result<f64, CcsError> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        return Err(CcsError::EmptyInput {
            what: "figure series to average",
        });
    }
    Ok(sum / n as f64)
}

/// Arithmetic mean over a series the caller guarantees non-empty.
/// Figure code builds each series from a fixed benchmark/layout
/// enumeration, so an empty one is a bug; the panic is isolated per
/// exhibit by the `all_figures` driver.
pub(crate) fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    try_mean(values).expect("mean of an empty figure series")
}

/// `numerator / baseline`, rejecting a zero or non-finite baseline with
/// a typed error. Figure normalizations divide by a baseline's cycle or
/// CPI measurement; if that baseline degenerated (a zero-length cell, a
/// propagated NaN), a silent division would print NaN/inf into the
/// exhibit instead of failing at the source.
pub(crate) fn try_ratio(
    numerator: f64,
    baseline: f64,
    what: &'static str,
) -> Result<f64, CcsError> {
    if baseline == 0.0 || !baseline.is_finite() {
        return Err(CcsError::DegenerateBaseline {
            what,
            value: baseline,
        });
    }
    let r = numerator / baseline;
    if !r.is_finite() {
        return Err(CcsError::DegenerateBaseline { what, value: r });
    }
    Ok(r)
}

/// [`try_ratio`] for series the caller guarantees non-degenerate (fixed
/// enumerations over successful cells). The panic is isolated per
/// exhibit by the `all_figures` driver.
pub(crate) fn ratio(numerator: f64, baseline: f64, what: &'static str) -> f64 {
    try_ratio(numerator, baseline, what).expect("degenerate figure baseline")
}

/// Formats one numeric CSV cell to four decimals, refusing non-finite
/// values. `{:.4}` happily prints `NaN` or `inf` into an artifact that
/// downstream plotting would then parse; a non-finite value reaching a
/// renderer is an upstream harness bug and must fail here, at the last
/// gate before the artifact.
pub(crate) fn csv_num(v: f64) -> String {
    assert!(v.is_finite(), "non-finite value in CSV output: {v}");
    format!("{v:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_values() {
        assert_eq!(mean([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean([4.0]), 4.0);
    }

    #[test]
    #[should_panic(expected = "mean of an empty figure series")]
    fn mean_of_empty_series_is_a_bug() {
        let _ = mean([]);
    }

    #[test]
    fn try_mean_reports_empty_series_as_a_typed_error() {
        assert_eq!(try_mean([2.0, 4.0]).unwrap(), 3.0);
        let err = try_mean([]).unwrap_err();
        assert!(matches!(err, CcsError::EmptyInput { .. }));
        assert!(err.to_string().contains("figure series"));
    }

    #[test]
    fn try_ratio_rejects_degenerate_baselines() {
        assert_eq!(try_ratio(3.0, 2.0, "test").unwrap(), 1.5);
        for bad in [0.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = try_ratio(1.0, bad, "test").unwrap_err();
            assert!(matches!(err, CcsError::DegenerateBaseline { .. }), "{bad}");
        }
        // A NaN numerator over a finite baseline is also caught.
        assert!(try_ratio(f64::NAN, 2.0, "test").is_err());
    }

    #[test]
    #[should_panic(expected = "degenerate figure baseline")]
    fn ratio_panics_on_zero_baseline() {
        let _ = ratio(1.0, 0.0, "test");
    }

    #[test]
    fn csv_num_formats_finite_values() {
        assert_eq!(csv_num(1.0), "1.0000");
        assert_eq!(csv_num(0.12345), "0.1235");
    }

    #[test]
    #[should_panic(expected = "non-finite value in CSV output")]
    fn csv_num_refuses_nan() {
        let _ = csv_num(f64::NAN);
    }

    #[test]
    fn trace_and_mono_helpers() {
        let opts = HarnessOptions::smoke();
        let t = trace_for(Benchmark::Gap, &opts);
        assert!(t.len() >= opts.len);
        let m = mono_result(&t);
        assert!(m.cpi() > 0.0);
    }
}
