//! One module per paper exhibit.
//!
//! Every function takes [`HarnessOptions`] and
//! returns a displayable report; the `src/bin` binaries are thin wrappers.

mod ablate;
mod fig14;
mod fig15;
mod fig2;
mod fig3;
mod fig4;
mod fig5;
mod fig6;
mod fig8;
mod memory;
mod sections;
mod slackfig;
mod tab1;

pub use ablate::{
    ablate_interconnect, ablate_loc_levels, ablate_proactive, ablate_stall_threshold,
    ablate_window, InterconnectAblation, LocLevelsAblation, ProactiveAblation,
    StallThresholdAblation, WindowAblation,
};
pub use fig14::{fig14, Fig14};
pub use fig15::{fig15, Fig15};
pub use fig2::{fig2, fig2_latency_sweep, Fig2, Fig2LatencySweep};
pub use fig3::{fig3, Fig3};
pub use fig4::{fig4, Fig4};
pub use fig5::{fig5, Fig5};
pub use fig6::{fig6, Fig6};
pub use fig8::{fig8, Fig8};
pub use memory::{finite_l2_check, MemoryVerification, MemoryVerificationRow};
pub use sections::{sec2_global_comm, sec4_listsched, sec6_consumers, Sec2, Sec4, Sec6};
pub use slackfig::{slack_distribution, SlackDistribution, SlackRow};
pub use tab1::{tab1, Tab1};

use crate::HarnessOptions;
use ccs_core::CcsError;
use ccs_isa::MachineConfig;
use ccs_sim::{policies::LeastLoaded, simulate, SimResult};
use ccs_trace::{Benchmark, Trace, TraceStore};
use std::sync::Arc;

/// The harness trace for one benchmark (the first sample), from the
/// process-wide [`TraceStore`] — generated once, shared by every figure
/// and every grid worker.
pub(crate) fn trace_for(bench: Benchmark, opts: &HarnessOptions) -> Arc<Trace> {
    TraceStore::global().get(bench, opts.seed, opts.len)
}

/// Runs the reference monolithic execution (policy-free baseline used by
/// the idealized studies).
pub(crate) fn mono_result(trace: &Trace) -> SimResult {
    let cfg = MachineConfig::micro05_baseline();
    simulate(&cfg, trace, &mut LeastLoaded).expect("monolithic baseline cannot deadlock")
}

/// Arithmetic mean, rejecting empty series with a typed error. An
/// exhibit averaging zero cells would silently report 0.0 — a harness
/// bug, not a number.
pub(crate) fn try_mean(values: impl IntoIterator<Item = f64>) -> Result<f64, CcsError> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        return Err(CcsError::EmptyInput {
            what: "figure series to average",
        });
    }
    Ok(sum / n as f64)
}

/// Arithmetic mean over a series the caller guarantees non-empty.
/// Figure code builds each series from a fixed benchmark/layout
/// enumeration, so an empty one is a bug; the panic is isolated per
/// exhibit by the `all_figures` driver.
pub(crate) fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    try_mean(values).expect("mean of an empty figure series")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_values() {
        assert_eq!(mean([1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean([4.0]), 4.0);
    }

    #[test]
    #[should_panic(expected = "mean of an empty figure series")]
    fn mean_of_empty_series_is_a_bug() {
        let _ = mean([]);
    }

    #[test]
    fn try_mean_reports_empty_series_as_a_typed_error() {
        assert_eq!(try_mean([2.0, 4.0]).unwrap(), 3.0);
        let err = try_mean([]).unwrap_err();
        assert!(matches!(err, CcsError::EmptyInput { .. }));
        assert!(err.to_string().contains("figure series"));
    }

    #[test]
    fn trace_and_mono_helpers() {
        let opts = HarnessOptions::smoke();
        let t = trace_for(Benchmark::Gap, &opts);
        assert!(t.len() >= opts.len);
        let m = mono_result(&t);
        assert!(m.cpi() > 0.0);
    }
}
