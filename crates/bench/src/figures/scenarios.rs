//! The scenario-gallery exhibit: every committed `examples/scenarios/`
//! manifest evaluated on each clustered layout under the static steering
//! ladder, with the hindsight-best static policy called out per cell.
//!
//! The paper's figures sweep twelve fixed benchmark models; the
//! scenario DSL makes workloads *data*, and this exhibit answers the
//! natural question for each gallery entry: which static rung wins on
//! this dataflow shape, and by how much? Because the twelve
//! benchmark-equivalent manifests generate bit-identical traces, their
//! rows double as a cross-check against the benchmark figures; the four
//! showcase scenarios (phase shifting, SMT interleaves, the ILP ladder)
//! cover shapes the fixed models cannot express.

use super::csv_num;
use crate::{HarnessOptions, TextTable};
use ccs_core::{run_grid, CellSpec, PolicyKind};
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_scenario::gallery;
use std::fmt;

/// The static rungs the gallery is swept over — the ladder without the
/// proactive rung, which the paper applies only to the 8-cluster
/// machine and which would leave holes in a uniform table.
pub const SCENARIO_POLICIES: [PolicyKind; 4] = [
    PolicyKind::Dependence,
    PolicyKind::Focused,
    PolicyKind::FocusedLoc,
    PolicyKind::StallOverSteer,
];

/// One bar: a scenario × layout × policy cell's measured CPI.
#[derive(Debug, Clone)]
pub struct ScenarioBar {
    /// The gallery scenario's name.
    pub name: &'static str,
    /// The machine layout.
    pub layout: ClusterLayout,
    /// The steering policy.
    pub policy: PolicyKind,
    /// Measured CPI of the cell.
    pub cpi: f64,
}

/// The scenario-gallery comparison data.
#[derive(Debug, Clone)]
pub struct ScenarioExhibit {
    /// All bars, grouped by gallery order, layout, then
    /// [`SCENARIO_POLICIES`] order.
    pub bars: Vec<ScenarioBar>,
}

impl ScenarioExhibit {
    /// The CPI of one cell.
    pub fn cell(&self, name: &str, layout: ClusterLayout, policy: PolicyKind) -> f64 {
        self.bars
            .iter()
            .find(|b| b.name == name && b.layout == layout && b.policy == policy)
            .map(|b| b.cpi)
            .unwrap_or(f64::NAN)
    }

    /// The best (lowest-CPI) static rung for one scenario × layout.
    pub fn best(&self, name: &str, layout: ClusterLayout) -> (PolicyKind, f64) {
        SCENARIO_POLICIES
            .into_iter()
            .map(|p| (p, self.cell(name, layout, p)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("static policy pool is non-empty")
    }

    /// Renders the bars as CSV (`scenario,layout,policy,cpi`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("scenario,layout,policy,cpi\n");
        for b in &self.bars {
            out.push_str(&format!(
                "{},{},{},{}\n",
                b.name,
                b.layout,
                b.policy.name(),
                csv_num(b.cpi)
            ));
        }
        out
    }
}

/// Computes the exhibit on the parallel grid executor: every gallery
/// manifest is registered (content-addressed, so re-running is free)
/// and swept over the clustered layouts under [`SCENARIO_POLICIES`].
pub fn scenario_exhibit(opts: &HarnessOptions) -> ScenarioExhibit {
    let base = MachineConfig::micro05_baseline();
    let run_opts = opts.run_options();
    let mut specs = Vec::new();
    for entry in gallery::GALLERY {
        let (_, id) = ccs_scenario::register_manifest(entry.text)
            .unwrap_or_else(|e| panic!("{}: committed gallery manifest rejected: {e}", entry.name));
        for layout in ClusterLayout::CLUSTERED {
            for policy in SCENARIO_POLICIES {
                specs.push(CellSpec::for_scenario(
                    base.with_layout(layout),
                    id,
                    opts.seed,
                    opts.len,
                    policy,
                    run_opts,
                ));
            }
        }
    }
    let mut results = run_grid(&specs, opts.effective_threads()).into_iter();
    let mut bars = Vec::new();
    for entry in gallery::GALLERY {
        for layout in ClusterLayout::CLUSTERED {
            for policy in SCENARIO_POLICIES {
                let cell = results.next().expect("scenario exhibit cell");
                bars.push(ScenarioBar {
                    name: entry.name,
                    layout,
                    policy,
                    cpi: cell.cpi(),
                });
            }
        }
    }
    ScenarioExhibit { bars }
}

impl fmt::Display for ScenarioExhibit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Scenario gallery under the static steering ladder (measured CPI;\n\
             d/f/l/s = dependence, focused, focused+LoC, stall-over-steer;\n\
             best = hindsight-best static rung per cell)\n"
        )?;
        let mut t = TextTable::new(vec![
            "scenario".into(),
            "layout".into(),
            "d".into(),
            "f".into(),
            "l".into(),
            "s".into(),
            "best".into(),
        ]);
        for entry in gallery::GALLERY {
            for layout in ClusterLayout::CLUSTERED {
                let (best_kind, best) = self.best(entry.name, layout);
                let mut row = vec![entry.name.to_string(), layout.to_string()];
                for policy in SCENARIO_POLICIES {
                    row.push(format!("{:.3}", self.cell(entry.name, layout, policy)));
                }
                row.push(format!("{best:.3}{}", best_kind.bar_label()));
                t.row(row);
            }
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "\nThe first twelve scenarios are the benchmark-equivalent manifests\n\
             (bit-identical traces, pinned by test); the last four exercise\n\
             shapes the fixed models cannot express:"
        )?;
        for entry in &gallery::GALLERY[12..] {
            let first_line = gallery::intent(entry.name).lines().next().unwrap_or("");
            writeln!(f, "  {:>14}: {first_line}", entry.name)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhibit_covers_the_gallery_and_matches_benchmark_cells() {
        let opts = HarnessOptions::smoke();
        let e = scenario_exhibit(&opts);
        assert_eq!(
            e.bars.len(),
            gallery::GALLERY.len() * ClusterLayout::CLUSTERED.len() * SCENARIO_POLICIES.len()
        );
        for b in &e.bars {
            assert!(
                b.cpi.is_finite() && b.cpi > 0.0,
                "{} {} {}: degenerate CPI {}",
                b.name,
                b.layout,
                b.policy.name(),
                b.cpi
            );
        }
        // A benchmark-equivalent scenario cell must measure exactly what
        // the benchmark cell measures — same trace, same machine, same
        // policy, so the same bits.
        let bench_spec = CellSpec::new(
            MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w),
            ccs_trace::Benchmark::Gzip,
            opts.seed,
            opts.len,
            PolicyKind::Focused,
            opts.run_options(),
        );
        let direct = bench_spec.run().cpi();
        let via = e.cell("gzip", ClusterLayout::C4x2w, PolicyKind::Focused);
        assert_eq!(
            direct.to_bits(),
            via.to_bits(),
            "scenario-subsumption must hold through the exhibit"
        );
    }
}
