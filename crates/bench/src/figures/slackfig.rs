//! The §4 slack discussion, quantified.
//!
//! The paper argues that *slack* — though a richer signal than binary
//! criticality — is impractical as a static steering metric because it is
//! a per-instance quantity with huge per-static-instruction variance:
//! "branches, when mispredicted, have no slack; when predicted correctly
//! their slack is very large, limited only by the size of the instruction
//! window." This exhibit measures exactly that.

use super::{mean, trace_for};
use crate::{HarnessOptions, TextTable};
use ccs_critpath::analyze_slack;
use ccs_isa::MachineConfig;
use ccs_sim::{policies::LeastLoaded, simulate};
use ccs_trace::Benchmark;
use std::fmt;

/// Slack statistics for one benchmark on the monolithic machine.
#[derive(Debug, Clone)]
pub struct SlackRow {
    /// The benchmark.
    pub bench: Benchmark,
    /// Fraction of dynamic instructions with zero slack.
    pub zero_fraction: f64,
    /// Mean slack in cycles.
    pub mean_slack: f64,
    /// Mean slack of mispredicted branch instances.
    pub mispredicted_branch_slack: f64,
    /// Mean slack of correctly-predicted branch instances.
    pub correct_branch_slack: f64,
}

/// The slack exhibit.
#[derive(Debug, Clone)]
pub struct SlackDistribution {
    /// Per-benchmark statistics.
    pub rows: Vec<SlackRow>,
}

/// Computes per-benchmark slack statistics.
pub fn slack_distribution(opts: &HarnessOptions) -> SlackDistribution {
    let cfg = MachineConfig::micro05_baseline();
    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        let trace = trace_for(bench, opts);
        let result = simulate(&cfg, &trace, &mut LeastLoaded).expect("monolithic run");
        let slack = analyze_slack(&trace, &result);
        let mut mis = Vec::new();
        let mut cor = Vec::new();
        for (i, rec) in result.records.iter().enumerate() {
            if trace.as_slice()[i].is_conditional_branch() {
                if rec.mispredicted {
                    mis.push(slack.slack[i] as f64);
                } else {
                    cor.push(slack.slack[i] as f64);
                }
            }
        }
        rows.push(SlackRow {
            bench,
            zero_fraction: slack.zero_slack_count() as f64 / trace.len().max(1) as f64,
            mean_slack: slack.mean(),
            mispredicted_branch_slack: mean(mis),
            correct_branch_slack: mean(cor),
        });
    }
    SlackDistribution { rows }
}

impl fmt::Display for SlackDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "§4 — slack as a (poor) static metric: per-instance slack on the\n\
             monolithic machine\n"
        )?;
        let mut t = TextTable::new(vec![
            "bench".into(),
            "zero-slack %".into(),
            "mean slack".into(),
            "br slack (mispred)".into(),
            "br slack (correct)".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.bench.to_string(),
                format!("{:.1}", 100.0 * r.zero_fraction),
                format!("{:.1}", r.mean_slack),
                format!("{:.1}", r.mispredicted_branch_slack),
                format!("{:.1}", r.correct_branch_slack),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "\nThe same static branch has near-zero slack when mispredicted and\n\
             enormous slack when predicted correctly — per-static slack is a\n\
             histogram, not a number, which is why the paper builds LoC instead."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn branch_slack_split_is_visible() {
        let s = slack_distribution(&HarnessOptions::smoke());
        assert_eq!(s.rows.len(), 12);
        // Averaged across benchmarks, mispredicted branches must have far
        // less slack than correctly predicted ones.
        let mis = mean(s.rows.iter().map(|r| r.mispredicted_branch_slack));
        let cor = mean(s.rows.iter().map(|r| r.correct_branch_slack));
        assert!(mis < cor, "mispredicted {mis:.1} vs correct {cor:.1}");
        for r in &s.rows {
            assert!((0.0..=1.0).contains(&r.zero_fraction));
        }
    }
}
