//! Figure 2: idealized list scheduling across cluster configurations.

use super::{csv_num, mean, mono_result, ratio, trace_for};
use crate::{HarnessOptions, TextTable};
use ccs_core::parallel_map;
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_listsched::{list_schedule, ListScheduleConfig};
use ccs_trace::{Benchmark, TraceStore};
use std::fmt;

/// Figure 2 data: per-benchmark normalized CPI of the idealized schedule
/// on the 2-, 4- and 8-cluster machines, normalized to the idealized
/// 1x8w schedule.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// `(benchmark, [2x4w, 4x2w, 8x1w] normalized CPI)`.
    pub rows: Vec<(Benchmark, [f64; 3])>,
    /// Per-layout averages.
    pub average: [f64; 3],
}

/// Computes Figure 2. The list-scheduling study does not go through
/// [`run_cell`](ccs_core::run_cell), so it parallelizes over
/// `(benchmark, sample)` pairs with the grid executor's ordered
/// [`parallel_map`]; each pair is deterministic in isolation.
pub fn fig2(opts: &HarnessOptions) -> Fig2 {
    let base_cfg = MachineConfig::micro05_baseline();
    let seeds = opts.sample_seeds();
    let pairs: Vec<(Benchmark, u64)> = Benchmark::ALL
        .into_iter()
        .flat_map(|b| seeds.iter().map(move |&s| (b, s)))
        .collect();
    let per_pair = parallel_map(&pairs, opts.effective_threads(), |&(bench, seed)| {
        let trace = TraceStore::global().get(bench, seed, opts.len);
        let mono = mono_result(&trace);
        let ideal_mono = list_schedule(&trace, &mono, &ListScheduleConfig::new(base_cfg));
        let mut norms = [0.0; 3];
        for (k, layout) in ClusterLayout::CLUSTERED.into_iter().enumerate() {
            let machine = base_cfg.with_layout(layout);
            let ideal = list_schedule(&trace, &mono, &ListScheduleConfig::new(machine));
            norms[k] = ratio(
                ideal.cycles as f64,
                ideal_mono.cycles as f64,
                "fig2 idealized 1x8w cycles",
            );
        }
        norms
    });
    let mut rows = Vec::new();
    for (chunk, bench) in per_pair.chunks(seeds.len()).zip(Benchmark::ALL) {
        let mut norms = [0.0; 3];
        for sample in chunk {
            for (n, s) in norms.iter_mut().zip(sample) {
                *n += s / seeds.len() as f64;
            }
        }
        rows.push((bench, norms));
    }
    let average = [
        mean(rows.iter().map(|r| r.1[0])),
        mean(rows.iter().map(|r| r.1[1])),
        mean(rows.iter().map(|r| r.1[2])),
    ];
    Fig2 { rows, average }
}

impl Fig2 {
    /// Renders the figure's data as CSV (`bench,2x4w,4x2w,8x1w`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bench,2x4w,4x2w,8x1w\n");
        for (bench, n) in &self.rows {
            out.push_str(&format!(
                "{bench},{},{},{}\n",
                csv_num(n[0]),
                csv_num(n[1]),
                csv_num(n[2])
            ));
        }
        out.push_str(&format!(
            "AVE,{},{},{}\n",
            csv_num(self.average[0]),
            csv_num(self.average[1]),
            csv_num(self.average[2])
        ));
        out
    }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 2 — idealized list scheduling (normalized CPI vs idealized 1x8w)\n"
        )?;
        let mut t = TextTable::new(vec![
            "bench".into(),
            "2x4w".into(),
            "4x2w".into(),
            "8x1w".into(),
        ]);
        for (bench, n) in &self.rows {
            t.row(vec![
                bench.to_string(),
                format!("{:.3}", n[0]),
                format!("{:.3}", n[1]),
                format!("{:.3}", n[2]),
            ]);
        }
        t.row(vec![
            "AVE".into(),
            format!("{:.3}", self.average[0]),
            format!("{:.3}", self.average[1]),
            format!("{:.3}", self.average[2]),
        ]);
        write!(f, "{t}")?;
        writeln!(
            f,
            "\nPaper: all clustered configurations average < 2% slower than 1x8w;\n\
             bzip2/crafty/vpr stand out on 8x1w due to convergent dataflow."
        )
    }
}

/// Footnote 3: the same study swept over inter-cluster forwarding
/// latencies 1–4.
#[derive(Debug, Clone)]
pub struct Fig2LatencySweep {
    /// `(latency, [2x4w, 4x2w, 8x1w] average normalized CPI)`.
    pub rows: Vec<(u32, [f64; 3])>,
}

/// Computes the footnote-3 latency sweep (averages only).
pub fn fig2_latency_sweep(opts: &HarnessOptions) -> Fig2LatencySweep {
    let base_cfg = MachineConfig::micro05_baseline();
    // Precompute traces and monolithic runs once, in parallel.
    let benches: Vec<Benchmark> = Benchmark::ALL.to_vec();
    let runs = parallel_map(&benches, opts.effective_threads(), |&b| {
        let trace = trace_for(b, opts);
        let mono = mono_result(&trace);
        (trace, mono)
    });
    let mut rows = Vec::new();
    for latency in 1..=4 {
        let mut norms = [0.0; 3];
        for (k, layout) in ClusterLayout::CLUSTERED.into_iter().enumerate() {
            let machine = base_cfg.with_layout(layout).with_forward_latency(latency);
            norms[k] = mean(runs.iter().map(|(trace, mono)| {
                let ideal_mono =
                    list_schedule(trace, mono, &ListScheduleConfig::new(base_cfg));
                let ideal = list_schedule(trace, mono, &ListScheduleConfig::new(machine));
                ratio(
                    ideal.cycles as f64,
                    ideal_mono.cycles as f64,
                    "fig2 latency-sweep 1x8w cycles",
                )
            }));
        }
        rows.push((latency, norms));
    }
    Fig2LatencySweep { rows }
}

impl fmt::Display for Fig2LatencySweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 2 footnote 3 — idealized scheduling vs forwarding latency\n"
        )?;
        let mut t = TextTable::new(vec![
            "fwd latency".into(),
            "2x4w".into(),
            "4x2w".into(),
            "8x1w".into(),
        ]);
        for (lat, n) in &self.rows {
            t.row(vec![
                format!("{lat} cycles"),
                format!("{:.3}", n[0]),
                format!("{:.3}", n[1]),
                format!("{:.3}", n[2]),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "\nPaper: at 4 cycles, 2x4w/4x2w remain < 2% and 8x1w a little over 4%."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_smoke() {
        let f = fig2(&HarnessOptions::smoke());
        assert_eq!(f.rows.len(), 12);
        for (bench, norms) in &f.rows {
            for (k, &n) in norms.iter().enumerate() {
                assert!(
                    (0.99..1.6).contains(&n),
                    "{bench} layout {k}: normalized {n}"
                );
            }
        }
        // The headline: idealized clustering is cheap on average.
        assert!(f.average[0] < 1.1, "2x4w average {}", f.average[0]);
        assert!(f.average[2] < 1.25, "8x1w average {}", f.average[2]);
        assert!(!f.to_string().is_empty());
        let csv = f.to_csv();
        assert_eq!(csv.lines().count(), 14); // header + 12 benches + AVE
        assert!(csv.starts_with("bench,"));
    }
}
