//! Figure 4: focused steering and scheduling on the timing simulator.

use super::{csv_num, mean, ratio};
use crate::{HarnessOptions, TextTable};
use ccs_core::{GridRequest, PolicyKind};
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_trace::Benchmark;
use std::fmt;

/// Figure 4 data: normalized CPI of the focused policy on clustered
/// machines relative to the monolithic machine running the same policy.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// `(benchmark, [2x4w, 4x2w, 8x1w] normalized CPI)`.
    pub rows: Vec<(Benchmark, [f64; 3])>,
    /// Per-layout averages.
    pub average: [f64; 3],
}

/// Computes Figure 4 on the parallel grid executor.
pub fn fig4(opts: &HarnessOptions) -> Fig4 {
    let base_cfg = MachineConfig::micro05_baseline();
    let seeds = opts.sample_seeds();
    // One focused cell per (benchmark, sample, layout), the monolithic
    // layout first in each group as the normalization baseline.
    let layouts = std::iter::once(ClusterLayout::C1x8w).chain(ClusterLayout::CLUSTERED);
    let results = GridRequest::new(base_cfg, opts.len)
        .benchmarks(Benchmark::ALL)
        .sample_seeds(seeds.iter().copied())
        .layouts(layouts)
        .policies([PolicyKind::Focused])
        .options(opts.run_options())
        .run(opts.effective_threads());

    let mut results = results.into_iter();
    let mut rows = Vec::new();
    for bench in Benchmark::ALL {
        let mut norms = [0.0; 3];
        for _ in &seeds {
            let mono = results.next().expect("monolithic focused run");
            let mono_cpi = mono.cpi();
            for norm in norms.iter_mut() {
                let cell = results.next().expect("clustered focused run");
                *norm += ratio(cell.cpi(), mono_cpi, "fig4 monolithic CPI")
                    / seeds.len() as f64;
            }
        }
        rows.push((bench, norms));
    }
    let average = [
        mean(rows.iter().map(|r| r.1[0])),
        mean(rows.iter().map(|r| r.1[1])),
        mean(rows.iter().map(|r| r.1[2])),
    ];
    Fig4 { rows, average }
}

impl Fig4 {
    /// Renders the figure's data as CSV (`bench,2x4w,4x2w,8x1w`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bench,2x4w,4x2w,8x1w\n");
        for (bench, n) in &self.rows {
            out.push_str(&format!(
                "{bench},{},{},{}\n",
                csv_num(n[0]),
                csv_num(n[1]),
                csv_num(n[2])
            ));
        }
        out.push_str(&format!(
            "AVE,{},{},{}\n",
            csv_num(self.average[0]),
            csv_num(self.average[1]),
            csv_num(self.average[2])
        ));
        out
    }
}

impl fmt::Display for Fig4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 4 — focused steering and scheduling (normalized CPI vs 1x8w)\n"
        )?;
        let mut t = TextTable::new(vec![
            "bench".into(),
            "2x4w".into(),
            "4x2w".into(),
            "8x1w".into(),
        ]);
        for (bench, n) in &self.rows {
            t.row(vec![
                bench.to_string(),
                format!("{:.3}", n[0]),
                format!("{:.3}", n[1]),
                format!("{:.3}", n[2]),
            ]);
        }
        t.row(vec![
            "AVE".into(),
            format!("{:.3}", self.average[0]),
            format!("{:.3}", self.average[1]),
            format!("{:.3}", self.average[2]),
        ]);
        write!(f, "{t}")?;
        writeln!(
            f,
            "\nPaper: 2x4w usually within 5%, 4x2w with several >10% slowdowns,\n\
             8x1w averaging ~20% — an order of magnitude above the idealized study."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_smoke_shape() {
        let f = fig4(&HarnessOptions::smoke());
        assert_eq!(f.rows.len(), 12);
        // The penalty grows with cluster count on average.
        assert!(
            f.average[0] <= f.average[2] + 0.02,
            "2x4w {} vs 8x1w {}",
            f.average[0],
            f.average[2]
        );
        // And it is an order of magnitude above the idealized study's ~1%.
        assert!(f.average[2] > 1.02, "8x1w average {}", f.average[2]);
    }
}
