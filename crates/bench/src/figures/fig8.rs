//! Figure 8: the distribution of likelihood-of-criticality values.

use super::{csv_num, trace_for};
use crate::{HarnessOptions, TextTable};
use ccs_critpath::analyze;
use ccs_predictors::{ExactLoc, LocDistribution, LocEstimator};
use ccs_trace::Benchmark;
use std::fmt;

/// Figure 8 data: the dynamic-instruction-weighted LoC histogram averaged
/// across all benchmarks, measured on the monolithic machine's critical
/// path.
#[derive(Debug, Clone)]
pub struct Fig8 {
    /// The merged distribution.
    pub distribution: LocDistribution,
}

/// Computes Figure 8.
pub fn fig8(opts: &HarnessOptions) -> Fig8 {
    let mut merged = LocDistribution::default();
    for bench in Benchmark::ALL {
        let trace = trace_for(bench, opts);
        let mono = super::mono_result(&trace);
        let cp = analyze(&trace, &mono);
        let mut exact = ExactLoc::new();
        for (i, inst) in trace.iter() {
            exact.train(inst.pc(), cp.e_critical[i.index()]);
        }
        merged.merge(&LocDistribution::from_exact(&exact));
    }
    Fig8 {
        distribution: merged,
    }
}

impl Fig8 {
    /// Renders the histogram as CSV (`loc_percent,dynamic_percent`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("loc_percent,dynamic_percent\n");
        for (lo, pct) in self.distribution.series() {
            out.push_str(&format!("{lo},{}\n", csv_num(pct)));
        }
        out
    }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Figure 8 — distribution of LoC values (all benchmarks, % of dynamic\n\
             instructions per 5% LoC bucket)\n"
        )?;
        let mut t = TextTable::new(vec!["LoC".into(), "% dyn".into(), "".into()]);
        for (lo, pct) in self.distribution.series() {
            let marker = if lo == 10 { " <- binary threshold (1/8)" } else { "" };
            t.row(vec![
                format!("{lo:>3}%"),
                format!("{pct:5.1}"),
                format!("{}{marker}", "#".repeat(pct.round() as usize)),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "\nbinary-critical (right of threshold): {:.1}% of dynamic instructions",
            self.distribution.percent_binary_critical()
        )?;
        writeln!(
            f,
            "Paper: a wide spectrum with ~53% of instructions at LoC 0; the binary\n\
             predictor collapses everything right of the dashed line into one class."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_has_mass_at_zero_and_a_spectrum() {
        let f = fig8(&HarnessOptions::smoke());
        let d = &f.distribution;
        assert!(d.total() > 0);
        // A large never-critical population, like the paper's 53% at 0.
        assert!(d.percent(0) > 20.0, "bucket 0 = {:.1}%", d.percent(0));
        // And meaningful mass spread above the binary threshold.
        let above = d.percent_binary_critical();
        assert!(above > 5.0 && above < 80.0, "above threshold {above:.1}%");
        assert!(f.to_string().contains("binary threshold"));
    }
}
