//! The adaptive-steering exhibit: online policy switching and
//! ineffectuality-aware steering against every static rung, reported
//! per benchmark like Figure 14.
//!
//! The paper's Figure 14 fixes one policy per run; the natural
//! follow-up question — answered here — is how close a policy that
//! *re-picks its rung online* gets to the best static choice made with
//! hindsight, per benchmark and layout. The exhibit therefore runs all
//! five static rungs plus the two dynamic policies on every clustered
//! layout, normalizes to the monolithic FocusedLoc machine exactly as
//! Figure 14 does, and reports the adaptive switcher's gap to the
//! per-cell best static rung (negative = adaptive beat every static
//! policy on that cell).

use super::{csv_num, mean, ratio};
use crate::{HarnessOptions, TextTable};
use ccs_core::{run_grid, CellSpec, PolicyKind};
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_trace::Benchmark;
use std::fmt;

/// Every policy the exhibit compares, static ladder first, the two
/// dynamic policies last.
pub const EXHIBIT_POLICIES: [PolicyKind; 7] = [
    PolicyKind::Dependence,
    PolicyKind::Focused,
    PolicyKind::FocusedLoc,
    PolicyKind::StallOverSteer,
    PolicyKind::Proactive,
    PolicyKind::Adaptive,
    PolicyKind::IneffSteer,
];

/// The static subset of [`EXHIBIT_POLICIES`] (the hindsight pool the
/// adaptive switcher is graded against).
pub const STATIC_POLICIES: [PolicyKind; 5] = [
    PolicyKind::Dependence,
    PolicyKind::Focused,
    PolicyKind::FocusedLoc,
    PolicyKind::StallOverSteer,
    PolicyKind::Proactive,
];

/// One bar: a benchmark × layout × policy cell's CPI normalized to the
/// monolithic FocusedLoc reference.
#[derive(Debug, Clone)]
pub struct AdaptiveBar {
    /// The benchmark.
    pub bench: Benchmark,
    /// The machine layout.
    pub layout: ClusterLayout,
    /// The policy.
    pub policy: PolicyKind,
    /// CPI normalized to the monolithic machine with LoC scheduling.
    pub normalized_cpi: f64,
}

/// The adaptive-vs-static comparison data.
#[derive(Debug, Clone)]
pub struct AdaptiveExhibit {
    /// All bars, grouped by benchmark, layout, then
    /// [`EXHIBIT_POLICIES`] order.
    pub bars: Vec<AdaptiveBar>,
}

impl AdaptiveExhibit {
    /// The normalized CPI of one cell.
    pub fn cell(&self, bench: Benchmark, layout: ClusterLayout, policy: PolicyKind) -> f64 {
        self.bars
            .iter()
            .find(|b| b.bench == bench && b.layout == layout && b.policy == policy)
            .map(|b| b.normalized_cpi)
            .unwrap_or(f64::NAN)
    }

    /// The best (lowest-CPI) static rung for one benchmark × layout,
    /// with its normalized CPI — the hindsight-optimal static choice.
    pub fn best_static(&self, bench: Benchmark, layout: ClusterLayout) -> (PolicyKind, f64) {
        STATIC_POLICIES
            .into_iter()
            .map(|p| (p, self.cell(bench, layout, p)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("static policy pool is non-empty")
    }

    /// Average normalized CPI of one policy on one layout.
    pub fn average(&self, layout: ClusterLayout, policy: PolicyKind) -> f64 {
        mean(
            self.bars
                .iter()
                .filter(|b| b.layout == layout && b.policy == policy)
                .map(|b| b.normalized_cpi),
        )
    }

    /// Average, over the benchmarks, of the adaptive switcher's gap to
    /// each benchmark's *own* best static rung on `layout` (0 = matches
    /// the hindsight-optimal static choice everywhere; negative =
    /// beats it on average).
    pub fn adaptive_gap(&self, layout: ClusterLayout) -> f64 {
        mean(Benchmark::ALL.into_iter().map(|bench| {
            self.cell(bench, layout, PolicyKind::Adaptive) - self.best_static(bench, layout).1
        }))
    }
}

/// Computes the exhibit on the parallel grid executor.
pub fn adaptive_exhibit(opts: &HarnessOptions) -> AdaptiveExhibit {
    let base_cfg = MachineConfig::micro05_baseline();
    let run_opts = opts.run_options();
    let seeds = opts.sample_seeds();
    let samples = seeds.len() as f64;
    // Enumerate like fig14: per benchmark the monolithic FocusedLoc
    // normalization references, then every clustered layout × policy.
    let mut specs = Vec::new();
    for bench in Benchmark::ALL {
        for &seed in &seeds {
            specs.push(CellSpec::new(
                base_cfg,
                bench,
                seed,
                opts.len,
                PolicyKind::FocusedLoc,
                run_opts,
            ));
        }
        for layout in ClusterLayout::CLUSTERED {
            let machine = base_cfg.with_layout(layout);
            for policy in EXHIBIT_POLICIES {
                for &seed in &seeds {
                    specs.push(CellSpec::new(
                        machine, bench, seed, opts.len, policy, run_opts,
                    ));
                }
            }
        }
    }
    let mut results = run_grid(&specs, opts.effective_threads()).into_iter();

    let mut bars = Vec::new();
    for bench in Benchmark::ALL {
        let mono_cpis: Vec<f64> = seeds
            .iter()
            .map(|_| results.next().expect("mono reference cell").cpi())
            .collect();
        for layout in ClusterLayout::CLUSTERED {
            for policy in EXHIBIT_POLICIES {
                let mut normalized = 0.0;
                for &mono_cpi in &mono_cpis {
                    let cell = results.next().expect("exhibit cell");
                    normalized +=
                        ratio(cell.cpi(), mono_cpi, "adaptive exhibit monolithic CPI") / samples;
                }
                bars.push(AdaptiveBar {
                    bench,
                    layout,
                    policy,
                    normalized_cpi: normalized,
                });
            }
        }
    }
    AdaptiveExhibit { bars }
}

impl AdaptiveExhibit {
    /// Renders the bars as CSV (`bench,layout,policy,normalized_cpi`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("bench,layout,policy,normalized_cpi\n");
        for b in &self.bars {
            out.push_str(&format!(
                "{},{},{},{}\n",
                b.bench,
                b.layout,
                b.policy.name(),
                csv_num(b.normalized_cpi)
            ));
        }
        out
    }
}

impl fmt::Display for AdaptiveExhibit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Adaptive steering vs the static ladder (normalized CPI vs monolithic\n\
             with LoC scheduling; d/f/l/s/p = the static rungs, a = adaptive\n\
             switcher, i = ineffectuality steering, best = hindsight-best static\n\
             rung per cell, a-best = adaptive's gap to it)\n"
        )?;
        let mut t = TextTable::new(vec![
            "bench".into(),
            "layout".into(),
            "d".into(),
            "f".into(),
            "l".into(),
            "s".into(),
            "p".into(),
            "a".into(),
            "i".into(),
            "best".into(),
            "a-best".into(),
        ]);
        for bench in Benchmark::ALL {
            for layout in ClusterLayout::CLUSTERED {
                let (best_kind, best) = self.best_static(bench, layout);
                let adaptive = self.cell(bench, layout, PolicyKind::Adaptive);
                let mut row = vec![bench.to_string(), layout.to_string()];
                for policy in EXHIBIT_POLICIES {
                    row.push(format!("{:.3}", self.cell(bench, layout, policy)));
                }
                row.push(format!("{:.3}{}", best, best_kind.bar_label()));
                row.push(format!("{:+.3}", adaptive - best));
                t.row(row);
            }
        }
        write!(f, "{t}")?;
        writeln!(f)?;
        let mut avg = TextTable::new(vec![
            "layout".into(),
            "best-static".into(),
            "adaptive".into(),
            "ineff".into(),
            "a-best (avg)".into(),
        ]);
        for layout in ClusterLayout::CLUSTERED {
            let best_avg = mean(
                Benchmark::ALL
                    .into_iter()
                    .map(|bench| self.best_static(bench, layout).1),
            );
            avg.row(vec![
                layout.to_string(),
                format!("{best_avg:.3}"),
                format!("{:.3}", self.average(layout, PolicyKind::Adaptive)),
                format!("{:.3}", self.average(layout, PolicyKind::IneffSteer)),
                format!("{:+.3}", self.adaptive_gap(layout)),
            ]);
        }
        write!(f, "{avg}")?;
        writeln!(
            f,
            "\nThe best-static column is a *hindsight* bound — it picks each\n\
             benchmark's winning rung after seeing all five runs. The switcher\n\
             has to find its rung online, within one run, from windowed steering\n\
             signals alone."
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhibit_has_every_cell_and_adaptive_tracks_the_ladder() {
        let e = adaptive_exhibit(&HarnessOptions::smoke());
        assert_eq!(
            e.bars.len(),
            Benchmark::ALL.len() * ClusterLayout::CLUSTERED.len() * EXHIBIT_POLICIES.len()
        );
        for b in &e.bars {
            assert!(
                b.normalized_cpi.is_finite() && b.normalized_cpi > 0.5,
                "{} {} {}: degenerate normalized CPI {}",
                b.bench,
                b.layout,
                b.policy.name(),
                b.normalized_cpi
            );
        }
        // The switcher must stay in the ladder's neighborhood: on every
        // layout its average sits at or below the worst static rung's
        // (it re-picks among exactly those rungs, so doing worse than
        // all of them would mean the signals are misleading it).
        for layout in ClusterLayout::CLUSTERED {
            let worst = STATIC_POLICIES
                .into_iter()
                .map(|p| e.average(layout, p))
                .fold(f64::MIN, f64::max);
            let adaptive = e.average(layout, PolicyKind::Adaptive);
            assert!(
                adaptive <= worst + 0.02,
                "{layout}: adaptive {adaptive} above the worst static rung {worst}"
            );
        }
    }
}
