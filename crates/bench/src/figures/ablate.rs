//! Ablation studies over the design choices DESIGN.md calls out.
//!
//! These go beyond the paper's figures: each sweeps one knob of the §7
//! policies around the paper's chosen design point, quantifying how
//! sensitive the results are to it.

use super::mean;
use crate::{HarnessOptions, TextTable};
use ccs_core::{run_grid, CellResult, CellSpec, LocMode, PolicyKind, RunOptions};
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_trace::Benchmark;
use std::fmt;

/// A benchmark subset that spans the behaviour space (serial, spiny,
/// branchy, memory-bound, high-ILP) without paying for all twelve.
const SWEEP_BENCHES: [Benchmark; 5] = [
    Benchmark::Gzip,
    Benchmark::Vpr,
    Benchmark::Gcc,
    Benchmark::Mcf,
    Benchmark::Vortex,
];

/// One monolithic-FocusedLoc normalization cell per sweep benchmark.
fn mono_reference_specs(opts: &HarnessOptions, run_opts: RunOptions) -> Vec<CellSpec> {
    SWEEP_BENCHES
        .iter()
        .map(|&b| {
            CellSpec::new(
                MachineConfig::micro05_baseline(),
                b,
                opts.seed,
                opts.len,
                PolicyKind::FocusedLoc,
                run_opts,
            )
        })
        .collect()
}

/// Average of `cells[i].cpi() / monos[i]` over the sweep set.
fn mean_normalized(cells: &[CellResult], monos: &[f64]) -> f64 {
    mean(cells.iter().zip(monos).map(|(c, &m)| c.cpi() / m))
}

/// Stall-over-steer threshold sweep (§5: the paper picks 30%).
#[derive(Debug, Clone)]
pub struct StallThresholdAblation {
    /// `(threshold, [2x4w, 4x2w, 8x1w] average normalized CPI)`.
    pub rows: Vec<(f64, [f64; 3])>,
}

/// Sweeps the stall-over-steer LoC threshold on the grid executor.
pub fn ablate_stall_threshold(opts: &HarnessOptions) -> StallThresholdAblation {
    let run_opts = opts.run_options();
    let base_cfg = MachineConfig::micro05_baseline();
    let thresholds = [0.05, 0.15, 0.30, 0.50, 0.70, 0.95];
    let mut specs = mono_reference_specs(opts, run_opts);
    for &th in &thresholds {
        let mut cfg = PolicyKind::StallOverSteer.config();
        cfg.stall_threshold = Some(th);
        for layout in ClusterLayout::CLUSTERED {
            let machine = base_cfg.with_layout(layout);
            for &b in &SWEEP_BENCHES {
                specs.push(
                    CellSpec::new(
                        machine,
                        b,
                        opts.seed,
                        opts.len,
                        PolicyKind::StallOverSteer,
                        run_opts,
                    )
                    .with_policy_config(cfg),
                );
            }
        }
    }
    let results = run_grid(&specs, opts.effective_threads());
    let (monos, cells) = results.split_at(SWEEP_BENCHES.len());
    let monos: Vec<f64> = monos.iter().map(CellResult::cpi).collect();
    let mut groups = cells.chunks(SWEEP_BENCHES.len());
    let mut rows = Vec::new();
    for &th in &thresholds {
        let mut norms = [0.0; 3];
        for norm in norms.iter_mut() {
            *norm = mean_normalized(groups.next().expect("sweep group"), &monos);
        }
        rows.push((th, norms));
    }
    StallThresholdAblation { rows }
}

impl fmt::Display for StallThresholdAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation — stall-over-steer LoC threshold (average normalized CPI,\n\
             5-benchmark sweep set; the paper uses 30%)\n"
        )?;
        let mut t = TextTable::new(vec![
            "threshold".into(),
            "2x4w".into(),
            "4x2w".into(),
            "8x1w".into(),
        ]);
        for (th, n) in &self.rows {
            t.row(vec![
                format!("{:.0}%", th * 100.0),
                format!("{:.3}", n[0]),
                format!("{:.3}", n[1]),
                format!("{:.3}", n[2]),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "\nLow thresholds stall fetch-critical code (hurting); high thresholds\n\
             stop stalling execute-critical chains (also hurting). 30% sits in the\n\
             flat middle, as the paper found empirically."
        )
    }
}

/// LoC quantization-depth sweep (§7: 16 levels ≈ unlimited precision).
#[derive(Debug, Clone)]
pub struct LocLevelsAblation {
    /// `(label, average normalized CPI on 8x1w)`.
    pub rows: Vec<(&'static str, f64)>,
}

/// Sweeps the LoC counter precision on the 8x1w machine.
pub fn ablate_loc_levels(opts: &HarnessOptions) -> LocLevelsAblation {
    let machine = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C8x1w);
    let modes: [(&'static str, LocMode); 4] = [
        ("exact", LocMode::Exact),
        ("4-bit (16 levels)", LocMode::Quantized16),
        ("2-bit (4 levels)", LocMode::QuantizedBits(2)),
        ("1-bit (2 levels)", LocMode::QuantizedBits(1)),
    ];
    let mut specs = mono_reference_specs(opts, opts.run_options());
    for (_, mode) in modes {
        let mut run_opts = opts.run_options();
        run_opts.loc_mode = mode;
        for &b in &SWEEP_BENCHES {
            specs.push(CellSpec::new(
                machine,
                b,
                opts.seed,
                opts.len,
                PolicyKind::StallOverSteer,
                run_opts,
            ));
        }
    }
    let results = run_grid(&specs, opts.effective_threads());
    let (monos, cells) = results.split_at(SWEEP_BENCHES.len());
    let monos: Vec<f64> = monos.iter().map(CellResult::cpi).collect();
    let rows = modes
        .into_iter()
        .zip(cells.chunks(SWEEP_BENCHES.len()))
        .map(|((label, _), group)| (label, mean_normalized(group, &monos)))
        .collect();
    LocLevelsAblation { rows }
}

impl fmt::Display for LocLevelsAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation — LoC counter precision, 8x1w, stall-over-steer policy\n\
             (average normalized CPI; the paper: 16 levels ≈ unlimited precision)\n"
        )?;
        let mut t = TextTable::new(vec!["precision".into(), "8x1w".into()]);
        for (label, v) in &self.rows {
            t.row(vec![label.to_string(), format!("{v:.3}")]);
        }
        write!(f, "{t}")
    }
}

/// Interconnect bandwidth sweep (the extension the paper leaves open).
#[derive(Debug, Clone)]
pub struct InterconnectAblation {
    /// `(bandwidth label, [2x4w, 4x2w, 8x1w] average normalized CPI)`.
    pub rows: Vec<(String, [f64; 3])>,
}

/// Sweeps per-cluster broadcast bandwidth under the best policies.
pub fn ablate_interconnect(opts: &HarnessOptions) -> InterconnectAblation {
    let run_opts = opts.run_options();
    let base_cfg = MachineConfig::micro05_baseline();
    let bandwidths = [Some(1u32), Some(2), Some(4), None];
    let mut specs = mono_reference_specs(opts, run_opts);
    for bw in bandwidths {
        for layout in ClusterLayout::CLUSTERED {
            let machine = base_cfg.with_layout(layout).with_forward_bandwidth(bw);
            let kind = PolicyKind::best_for(layout.clusters());
            for &b in &SWEEP_BENCHES {
                specs.push(CellSpec::new(machine, b, opts.seed, opts.len, kind, run_opts));
            }
        }
    }
    let results = run_grid(&specs, opts.effective_threads());
    let (monos, cells) = results.split_at(SWEEP_BENCHES.len());
    let monos: Vec<f64> = monos.iter().map(CellResult::cpi).collect();
    let mut groups = cells.chunks(SWEEP_BENCHES.len());
    let mut rows = Vec::new();
    for bw in bandwidths {
        let label = match bw {
            Some(b) => format!("{b}/cluster/cycle"),
            None => "unlimited".to_string(),
        };
        let mut norms = [0.0; 3];
        for norm in norms.iter_mut() {
            *norm = mean_normalized(groups.next().expect("interconnect group"), &monos);
        }
        rows.push((label, norms));
    }
    InterconnectAblation { rows }
}

impl fmt::Display for InterconnectAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation — global bypass bandwidth (average normalized CPI under the\n\
             paper's final policies; the paper assumes peak-rate capacity)\n"
        )?;
        let mut t = TextTable::new(vec![
            "bandwidth".into(),
            "2x4w".into(),
            "4x2w".into(),
            "8x1w".into(),
        ]);
        for (label, n) in &self.rows {
            t.row(vec![
                label.clone(),
                format!("{:.3}", n[0]),
                format!("{:.3}", n[1]),
                format!("{:.3}", n[2]),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "\nLocality-preserving policies keep most traffic on-cluster, so even a\n\
             1-value-per-cycle network costs little — supporting the paper's\n\
             peak-capacity assumption."
        )
    }
}

/// Proactive-override parameter sweep (§7: LoC > 5% and ≥ half the
/// producer's criticality).
#[derive(Debug, Clone)]
pub struct ProactiveAblation {
    /// `(min LoC override, producer fraction, 8x1w average normalized CPI)`.
    pub rows: Vec<(f64, f64, f64)>,
}

/// Sweeps the proactive load-balancer's override thresholds on 8x1w.
pub fn ablate_proactive(opts: &HarnessOptions) -> ProactiveAblation {
    let run_opts = opts.run_options();
    let machine = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C8x1w);
    let points: Vec<(f64, f64)> = [0.0, 0.05, 0.20]
        .iter()
        .flat_map(|&min_loc| [0.25, 0.5, 1.0].iter().map(move |&frac| (min_loc, frac)))
        .collect();
    let mut specs = mono_reference_specs(opts, run_opts);
    for &(min_loc, frac) in &points {
        let mut cfg = PolicyKind::Proactive.config();
        cfg.proactive = Some(ccs_core::ProactiveConfig {
            min_loc_override: min_loc,
            producer_fraction: frac,
        });
        for &b in &SWEEP_BENCHES {
            specs.push(
                CellSpec::new(
                    machine,
                    b,
                    opts.seed,
                    opts.len,
                    PolicyKind::Proactive,
                    run_opts,
                )
                .with_policy_config(cfg),
            );
        }
    }
    let results = run_grid(&specs, opts.effective_threads());
    let (monos, cells) = results.split_at(SWEEP_BENCHES.len());
    let monos: Vec<f64> = monos.iter().map(CellResult::cpi).collect();
    let rows = points
        .into_iter()
        .zip(cells.chunks(SWEEP_BENCHES.len()))
        .map(|((min_loc, frac), group)| (min_loc, frac, mean_normalized(group, &monos)))
        .collect();
    ProactiveAblation { rows }
}

impl fmt::Display for ProactiveAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation — proactive load-balancing override thresholds, 8x1w\n\
             (average normalized CPI; the paper uses LoC > 5% and ≥ 1/2 the\n\
             producer's criticality)\n"
        )?;
        let mut t = TextTable::new(vec![
            "min LoC".into(),
            "producer fraction".into(),
            "8x1w".into(),
        ]);
        for (min_loc, frac, v) in &self.rows {
            t.row(vec![
                format!("{:.0}%", min_loc * 100.0),
                format!("{frac:.2}"),
                format!("{v:.3}"),
            ]);
        }
        write!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_threshold_sweep_is_sane() {
        let a = ablate_stall_threshold(&HarnessOptions::smoke());
        assert_eq!(a.rows.len(), 6);
        // The paper's 30% design point should be within noise of the best.
        let at = |th: f64| {
            a.rows
                .iter()
                .find(|(t, _)| (*t - th).abs() < 1e-9)
                .map(|(_, n)| n[2])
                .expect("threshold present")
        };
        let best = a
            .rows
            .iter()
            .map(|(_, n)| n[2])
            .fold(f64::INFINITY, f64::min);
        assert!(
            at(0.30) <= best + 0.05,
            "30% = {:.3} vs best {:.3}",
            at(0.30),
            best
        );
    }

    #[test]
    fn loc_levels_sweep_orders_precision() {
        let a = ablate_loc_levels(&HarnessOptions::smoke());
        assert_eq!(a.rows.len(), 4);
        let exact = a.rows[0].1;
        let bits4 = a.rows[1].1;
        // 16 levels should track unlimited precision closely (§7).
        assert!(
            (bits4 - exact).abs() < 0.08,
            "4-bit {bits4:.3} vs exact {exact:.3}"
        );
    }

    #[test]
    fn interconnect_sweep_monotone() {
        let a = ablate_interconnect(&HarnessOptions::smoke());
        assert_eq!(a.rows.len(), 4);
        // Unlimited bandwidth is never worse than bandwidth-1.
        for k in 0..3 {
            assert!(
                a.rows[3].1[k] <= a.rows[0].1[k] + 0.02,
                "layout {k}: unlimited {:.3} vs bw1 {:.3}",
                a.rows[3].1[k],
                a.rows[0].1[k]
            );
        }
    }

    #[test]
    fn proactive_sweep_produces_grid() {
        let a = ablate_proactive(&HarnessOptions::smoke());
        assert_eq!(a.rows.len(), 9);
        for (_, _, v) in &a.rows {
            assert!(*v > 0.8 && *v < 2.0);
        }
    }
}

/// Scheduling-window scaling: the paper's 128 entries, halved and doubled.
#[derive(Debug, Clone)]
pub struct WindowAblation {
    /// `(aggregate window entries, [2x4w, 4x2w, 8x1w] average normalized
    /// CPI, monolithic CPI ratio vs the 128-entry machine)`.
    pub rows: Vec<(usize, [f64; 3], f64)>,
}

/// Sweeps the aggregate window size under the paper's final policies.
pub fn ablate_window(opts: &HarnessOptions) -> WindowAblation {
    use ccs_isa::{FrontEndConfig, MemoryConfig};
    let run_opts = opts.run_options();
    let build = |window: usize, layout: ClusterLayout| {
        MachineConfig::build(
            layout,
            FrontEndConfig::default(),
            window,
            256,
            8,
            8,
            4,
            4,
            2,
            MemoryConfig::default(),
        )
        .expect("window sizes divide among the paper's layouts")
    };
    let windows = [64usize, 128, 256];
    let mono_spec = |window: usize, b: Benchmark| {
        CellSpec::new(
            build(window, ClusterLayout::C1x8w),
            b,
            opts.seed,
            opts.len,
            PolicyKind::FocusedLoc,
            run_opts,
        )
    };
    let mut specs: Vec<CellSpec> = SWEEP_BENCHES.iter().map(|&b| mono_spec(128, b)).collect();
    for window in windows {
        for &b in &SWEEP_BENCHES {
            specs.push(mono_spec(window, b));
        }
        for layout in ClusterLayout::CLUSTERED {
            let machine = build(window, layout);
            let kind = PolicyKind::best_for(layout.clusters());
            for &b in &SWEEP_BENCHES {
                specs.push(CellSpec::new(machine, b, opts.seed, opts.len, kind, run_opts));
            }
        }
    }
    let results = run_grid(&specs, opts.effective_threads());
    let (base, rest) = results.split_at(SWEEP_BENCHES.len());
    let base_mono_cpis: Vec<f64> = base.iter().map(CellResult::cpi).collect();
    let mut groups = rest.chunks(SWEEP_BENCHES.len());
    let mut rows = Vec::new();
    for window in windows {
        let mono_cpis: Vec<f64> = groups
            .next()
            .expect("window mono group")
            .iter()
            .map(CellResult::cpi)
            .collect();
        let mut norms = [0.0; 3];
        for norm in norms.iter_mut() {
            *norm = mean_normalized(groups.next().expect("window group"), &mono_cpis);
        }
        let mono_ratio = mean(
            mono_cpis
                .iter()
                .zip(&base_mono_cpis)
                .map(|(&m, &b)| m / b),
        );
        rows.push((window, norms, mono_ratio));
    }
    WindowAblation { rows }
}

impl fmt::Display for WindowAblation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Ablation — aggregate scheduling-window size under the final policies\n\
             (normalized per window size to its own monolithic machine)\n"
        )?;
        let mut t = TextTable::new(vec![
            "window".into(),
            "2x4w".into(),
            "4x2w".into(),
            "8x1w".into(),
            "mono CPI vs 128".into(),
        ]);
        for (w, n, mono) in &self.rows {
            t.row(vec![
                w.to_string(),
                format!("{:.3}", n[0]),
                format!("{:.3}", n[1]),
                format!("{:.3}", n[2]),
                format!("{mono:.3}"),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "\nSmaller windows make clustering penalties relatively larger (each\n\
             cluster's window fills sooner, forcing more steering compromises)."
        )
    }
}

#[cfg(test)]
mod window_tests {
    use super::*;

    #[test]
    fn window_ablation_produces_rows() {
        let a = ablate_window(&HarnessOptions::smoke());
        assert_eq!(a.rows.len(), 3);
        for (w, norms, mono) in &a.rows {
            assert!([64, 128, 256].contains(w));
            for n in norms {
                assert!(*n > 0.9 && *n < 2.0, "window {w}: {n}");
            }
            assert!(*mono > 0.5 && *mono < 2.0);
        }
    }
}
