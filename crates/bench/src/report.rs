//! Machine-written reproduction report.
//!
//! [`make_report`] runs the headline exhibits and renders a markdown
//! summary with the paper-vs-measured comparisons filled in from the
//! actual run — the automated counterpart of the hand-written
//! EXPERIMENTS.md.

use crate::figures;
use crate::HarnessOptions;
use ccs_core::PolicyKind;
use ccs_isa::ClusterLayout;
use std::fmt::Write as _;

/// Runs the headline exhibits and produces a markdown report.
pub fn make_report(opts: &HarnessOptions) -> String {
    let mut md = String::new();
    let _ = writeln!(
        md,
        "# clustercrit reproduction report\n\n\
         Workloads: 12 synthetic SPECint models × {} instructions, seed {},\n\
         {} train/measure epochs. Shape comparison against Salverda & Zilles,\n\
         MICRO 2005; see DESIGN.md for substitutions.\n",
        opts.len, opts.seed, opts.epochs
    );

    // Figure 2.
    let f2 = figures::fig2(opts);
    let _ = writeln!(
        md,
        "## Idealized potential (Figure 2)\n\n\
         | layout | paper | measured |\n|---|---|---|\n\
         | 2x4w | < 1.02 | {:.3} |\n| 4x2w | < 1.02 | {:.3} |\n\
         | 8x1w | ≤ ~1.02 (worst ≤ 1.04) | {:.3} |\n\n\
         Partitioning the hardware is nearly free for an idealized scheduler.\n",
        f2.average[0], f2.average[1], f2.average[2]
    );

    // Figure 4.
    let f4 = figures::fig4(opts);
    let _ = writeln!(
        md,
        "## State of the art (Figure 4)\n\n\
         | layout | paper | measured |\n|---|---|---|\n\
         | 2x4w | usually < 5% | {:.3} |\n| 4x2w | several > 10% | {:.3} |\n\
         | 8x1w | ~1.20 | {:.3} |\n\n\
         The focused policy pays an order of magnitude more than the\n\
         idealized study — the gap the paper sets out to explain.\n",
        f4.average[0], f4.average[1], f4.average[2]
    );

    // Figure 6 aggregates.
    let f6 = figures::fig6(opts);
    let _ = writeln!(
        md,
        "## Lost-cycle classification (Figure 6)\n\n\
         * {:.0}% of critical contention events hit predicted-critical\n\
           instructions (paper: up to two-thirds; ties, not mispredictions).\n\
         * {:.0}% of critical forwarding events stem from load-balance\n\
           steering (paper: the dominant cause).\n",
        100.0 * f6.contention_critical_fraction(),
        100.0 * f6.forwarding_load_balance_fraction()
    );

    // Figure 8.
    let f8 = figures::fig8(opts);
    let _ = writeln!(
        md,
        "## LoC spectrum (Figure 8)\n\n\
         {:.1}% of dynamic instructions sit at LoC 0 (paper: 53%);\n\
         {:.1}% fall above the binary predictor's 1/8 threshold and are\n\
         indistinguishable to it.\n",
        f8.distribution.percent(0),
        f8.distribution.percent_binary_critical()
    );

    // Figure 14.
    let f14 = figures::fig14(opts);
    let _ = writeln!(
        md,
        "## The policy ladder (Figure 14)\n\n\
         | layout | f | l | s | p | penalty cut | paper cut |\n\
         |---|---|---|---|---|---|---|"
    );
    let paper_cut = ["42%", "57%", "66%"];
    for (k, layout) in ClusterLayout::CLUSTERED.into_iter().enumerate() {
        let p = if layout == ClusterLayout::C8x1w {
            format!("{:.3}", f14.average(layout, PolicyKind::Proactive))
        } else {
            "–".into()
        };
        let _ = writeln!(
            md,
            "| {layout} | {:.3} | {:.3} | {:.3} | {p} | {:.0}% | {} |",
            f14.average(layout, PolicyKind::Focused),
            f14.average(layout, PolicyKind::FocusedLoc),
            f14.average(layout, PolicyKind::StallOverSteer),
            100.0 * f14.penalty_reduction(layout),
            paper_cut[k],
        );
    }
    let _ = writeln!(
        md,
        "\nLoC scheduling, stall-over-steer and (on 8 clusters) proactive\n\
         load balancing recover the bulk of the focused policy's penalty.\n"
    );

    // §6 consumers.
    let s6 = figures::sec6_consumers(opts);
    let _ = writeln!(
        md,
        "## Consumer criticality (§6)\n\n\
         | statistic | paper | measured |\n|---|---|---|\n\
         | statically unique most-critical consumer | ~80% | {:.0}% |\n\
         | critical MCC not first in fetch order | > 50% | {:.0}% |\n",
        100.0 * s6.average_unique(),
        100.0 * s6.average_not_first()
    );

    md
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_all_sections() {
        let md = make_report(&HarnessOptions::smoke());
        for section in [
            "# clustercrit reproduction report",
            "## Idealized potential",
            "## State of the art",
            "## Lost-cycle classification",
            "## LoC spectrum",
            "## The policy ladder",
            "## Consumer criticality",
        ] {
            assert!(md.contains(section), "missing section {section}");
        }
        // Markdown tables render with pipes.
        assert!(md.matches('|').count() > 30);
    }
}
