//! Machine-written reproduction report.
//!
//! [`make_report`] runs the headline exhibits and renders a markdown
//! summary with the paper-vs-measured comparisons filled in from the
//! actual run — the automated counterpart of the hand-written
//! EXPERIMENTS.md.

use crate::figures;
use crate::HarnessOptions;
use ccs_core::PolicyKind;
use ccs_isa::ClusterLayout;
use std::fmt::Write as _;

/// Runs the headline exhibits and produces a markdown report.
pub fn make_report(opts: &HarnessOptions) -> String {
    let mut md = String::new();
    let _ = writeln!(
        md,
        "# clustercrit reproduction report\n\n\
         Workloads: 12 synthetic SPECint models × {} instructions, seed {},\n\
         {} train/measure epochs. Shape comparison against Salverda & Zilles,\n\
         MICRO 2005; see DESIGN.md for substitutions.\n",
        opts.len, opts.seed, opts.epochs
    );

    // Figure 2.
    let f2 = figures::fig2(opts);
    let _ = writeln!(
        md,
        "## Idealized potential (Figure 2)\n\n\
         | layout | paper | measured |\n|---|---|---|\n\
         | 2x4w | < 1.02 | {:.3} |\n| 4x2w | < 1.02 | {:.3} |\n\
         | 8x1w | ≤ ~1.02 (worst ≤ 1.04) | {:.3} |\n\n\
         Partitioning the hardware is nearly free for an idealized scheduler.\n",
        f2.average[0], f2.average[1], f2.average[2]
    );

    // Figure 4.
    let f4 = figures::fig4(opts);
    let _ = writeln!(
        md,
        "## State of the art (Figure 4)\n\n\
         | layout | paper | measured |\n|---|---|---|\n\
         | 2x4w | usually < 5% | {:.3} |\n| 4x2w | several > 10% | {:.3} |\n\
         | 8x1w | ~1.20 | {:.3} |\n\n\
         The focused policy pays an order of magnitude more than the\n\
         idealized study — the gap the paper sets out to explain.\n",
        f4.average[0], f4.average[1], f4.average[2]
    );

    // Figure 6 aggregates.
    let f6 = figures::fig6(opts);
    let _ = writeln!(
        md,
        "## Lost-cycle classification (Figure 6)\n\n\
         * {:.0}% of critical contention events hit predicted-critical\n\
           instructions (paper: up to two-thirds; ties, not mispredictions).\n\
         * {:.0}% of critical forwarding events stem from load-balance\n\
           steering (paper: the dominant cause).\n",
        100.0 * f6.contention_critical_fraction(),
        100.0 * f6.forwarding_load_balance_fraction()
    );

    // Figure 8.
    let f8 = figures::fig8(opts);
    let _ = writeln!(
        md,
        "## LoC spectrum (Figure 8)\n\n\
         {:.1}% of dynamic instructions sit at LoC 0 (paper: 53%);\n\
         {:.1}% fall above the binary predictor's 1/8 threshold and are\n\
         indistinguishable to it.\n",
        f8.distribution.percent(0),
        f8.distribution.percent_binary_critical()
    );

    // Figure 14.
    let f14 = figures::fig14(opts);
    let _ = writeln!(
        md,
        "## The policy ladder (Figure 14)\n\n\
         | layout | f | l | s | p | penalty cut | paper cut |\n\
         |---|---|---|---|---|---|---|"
    );
    let paper_cut = ["42%", "57%", "66%"];
    for (k, layout) in ClusterLayout::CLUSTERED.into_iter().enumerate() {
        let p = if layout == ClusterLayout::C8x1w {
            format!("{:.3}", f14.average(layout, PolicyKind::Proactive))
        } else {
            "–".into()
        };
        let _ = writeln!(
            md,
            "| {layout} | {:.3} | {:.3} | {:.3} | {p} | {:.0}% | {} |",
            f14.average(layout, PolicyKind::Focused),
            f14.average(layout, PolicyKind::FocusedLoc),
            f14.average(layout, PolicyKind::StallOverSteer),
            100.0 * f14.penalty_reduction(layout),
            paper_cut[k],
        );
    }
    let _ = writeln!(
        md,
        "\nLoC scheduling, stall-over-steer and (on 8 clusters) proactive\n\
         load balancing recover the bulk of the focused policy's penalty.\n"
    );

    // Adaptive steering (beyond the paper).
    let adaptive = figures::adaptive_exhibit(opts);
    let _ = writeln!(
        md,
        "## Adaptive steering (beyond the paper)\n\n\
         | layout | adaptive | ineff-steer | gap to hindsight-best static |\n\
         |---|---|---|---|"
    );
    for layout in ClusterLayout::CLUSTERED {
        let _ = writeln!(
            md,
            "| {layout} | {:.3} | {:.3} | {:+.3} |",
            adaptive.average(layout, PolicyKind::Adaptive),
            adaptive.average(layout, PolicyKind::IneffSteer),
            adaptive.adaptive_gap(layout),
        );
    }
    let _ = writeln!(
        md,
        "\nThe online switcher re-scores its static rung every 512 cycles\n\
         from windowed steering signals; the gap column measures it\n\
         against the per-benchmark best rung chosen *after* seeing all\n\
         five static runs.\n"
    );

    // §6 consumers.
    let s6 = figures::sec6_consumers(opts);
    let _ = writeln!(
        md,
        "## Consumer criticality (§6)\n\n\
         | statistic | paper | measured |\n|---|---|---|\n\
         | statically unique most-critical consumer | ~80% | {:.0}% |\n\
         | critical MCC not first in fetch order | > 50% | {:.0}% |\n",
        100.0 * s6.average_unique(),
        100.0 * s6.average_not_first()
    );

    md
}

/// Times reference grids (one row per trace length) serially and in
/// parallel, plus a trace fetch on a cold and a warm cache, and renders
/// the measurements as a JSON object (the `make_report` binary writes
/// it to `results/BENCH_grid.json`).
///
/// This is the machine-readable counterpart of the
/// `grid_throughput` criterion bench: small enough to ride along with
/// every report run, stable enough to track the executor's scaling.
///
/// By default one row runs at `min(opts.len, 4000)` over a 108-cell
/// grid (12 benchmarks × 3 clustered layouts × 3 seeds).
/// `CCS_BENCH_LENS` (comma-separated trace lengths, e.g.
/// `4000,100000,1000000`) selects the rows instead; lengths of 100k+
/// shrink the grid (12 and 6 cells respectively) to keep the runtime
/// bounded. `CCS_BENCH_REPS` (default 1) repeats every timed region and
/// keeps the minimum — the robust estimator on a noisy host.
pub fn grid_benchmark_json(opts: &HarnessOptions) -> String {
    use ccs_core::{GridRequest, PolicyKind};
    use ccs_trace::{Benchmark, TraceStore};
    use std::time::Instant;

    let reps: usize = std::env::var("CCS_BENCH_REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);
    let best_of = |reps: usize, f: &mut dyn FnMut()| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let t0 = Instant::now();
            f();
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    let lens: Vec<usize> = std::env::var("CCS_BENCH_LENS")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![opts.len.min(4_000)]);

    // Trace fetch: cold (private store, forces generation) vs hit.
    let probe_len = lens[0];
    let private = TraceStore::new();
    let t0 = Instant::now();
    private.get(Benchmark::Vpr, opts.seed, probe_len);
    let cold_secs = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    private.get(Benchmark::Vpr, opts.seed, probe_len);
    let hit_secs = t0.elapsed().as_secs_f64();

    let mut rows = String::new();
    for (r, &len) in lens.iter().enumerate() {
        // Long traces get fewer cells so a row stays seconds, not
        // minutes; short traces get a 100+-cell grid so scheduling
        // overhead (spawn/join, chunk claims) is actually visible.
        let (benches, n_seeds): (&[Benchmark], u64) = if len <= 10_000 {
            (&Benchmark::ALL, 3)
        } else if len <= 100_000 {
            (&[Benchmark::Vpr, Benchmark::Gzip, Benchmark::Mcf, Benchmark::Gcc], 1)
        } else {
            (&[Benchmark::Vpr, Benchmark::Gcc], 1)
        };
        let specs = GridRequest::new(ccs_isa::MachineConfig::micro05_baseline(), len)
            .benchmarks(benches.iter().copied())
            .layouts(ClusterLayout::CLUSTERED)
            .policies([PolicyKind::Focused])
            .sample_seeds((0..n_seeds).map(|k| opts.seed + 1_000 * k))
            .options(opts.run_options())
            .build();

        // Warm the global store so both grid runs measure simulation
        // only (run_grid pre-warms too, but only on its parallel path).
        for s in &specs {
            let _ = TraceStore::global().get(s.benchmark, s.sample_seed, s.len).memory_deps();
        }
        let threads = opts.threads_for(specs.len());
        let serial_secs = best_of(reps, &mut || {
            std::hint::black_box(ccs_core::run_grid(&specs, 1));
        });
        let parallel_secs = best_of(reps, &mut || {
            std::hint::black_box(ccs_core::run_grid(&specs, threads));
        });

        let cells = specs.len() as f64;
        use std::fmt::Write as _;
        let _ = write!(
            rows,
            "{}    {{\n      \"trace_len\": {len},\n      \"cells\": {},\n      \
             \"threads\": {threads},\n      \"serial_secs\": {serial_secs:.4},\n      \
             \"parallel_secs\": {parallel_secs:.4},\n      \
             \"serial_cells_per_sec\": {:.2},\n      \"parallel_cells_per_sec\": {:.2},\n      \
             \"serial_minsts_per_sec\": {:.2},\n      \"speedup\": {:.2}\n    }}",
            if r == 0 { "" } else { ",\n" },
            specs.len(),
            cells / serial_secs.max(1e-9),
            cells / parallel_secs.max(1e-9),
            cells * len as f64 * opts.epochs.max(1) as f64 / serial_secs.max(1e-9) / 1e6,
            serial_secs / parallel_secs.max(1e-9),
        );
    }

    format!(
        "{{\n  \"reps\": {reps},\n  \"rows\": [\n{rows}\n  ],\n  \
         \"trace_cold_secs\": {cold_secs:.6},\n  \"trace_hit_secs\": {hit_secs:.6}\n}}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_benchmark_json_is_well_formed() {
        let mut opts = HarnessOptions::smoke();
        opts.len = 1_500;
        let json = grid_benchmark_json(&opts);
        for key in [
            "\"rows\"",
            "\"trace_len\": 1500",
            "\"cells\": 108",
            "\"threads\"",
            "\"serial_cells_per_sec\"",
            "\"parallel_cells_per_sec\"",
            "\"serial_minsts_per_sec\"",
            "\"speedup\"",
            "\"trace_cold_secs\"",
            "\"trace_hit_secs\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.trim_start().starts_with('{') && json.trim_end().ends_with('}'));
    }

    #[test]
    fn report_renders_all_sections() {
        let md = make_report(&HarnessOptions::smoke());
        for section in [
            "# clustercrit reproduction report",
            "## Idealized potential",
            "## State of the art",
            "## Lost-cycle classification",
            "## LoC spectrum",
            "## The policy ladder",
            "## Adaptive steering (beyond the paper)",
            "## Consumer criticality",
        ] {
            assert!(md.contains(section), "missing section {section}");
        }
        // Markdown tables render with pipes.
        assert!(md.matches('|').count() > 30);
    }
}
