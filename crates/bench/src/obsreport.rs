//! Observability reporting: aggregated CPI stacks from metered grids.
//!
//! When the harness runs with `--metrics` / `CCS_METRICS=1`, every grid
//! cell carries a [`ccs_sim::SimMetrics`] from its measured epoch. This
//! module folds those into one campaign-wide CPI stack and reconciles
//! it, category by category, against the aggregated critical-path
//! breakdown — two independently derived accountings of the same cycles
//! that must agree exactly.

use ccs_core::{aggregate_breakdown, aggregate_metrics, CellResult};
use ccs_critpath::{cpi_stack, observed_cpi_stack};

/// Renders the campaign-wide CPI stack for `results`, reconciled
/// against the aggregated critical-path breakdown.
///
/// With metered cells present, the stack is cross-checked against their
/// merged [`ccs_sim::SimMetrics`] (cycle and commit counters must agree
/// with the breakdown) and the report says so; without any, the stack
/// is derived from the breakdown alone and labeled accordingly. A
/// reconciliation failure is reported in the text, not panicked, so a
/// campaign summary still prints — CI greps for `FAILED`.
pub fn cpi_stack_report(results: &[CellResult]) -> String {
    let (breakdown, cycles, instructions) = aggregate_breakdown(results);
    if cycles == 0 {
        return "CPI stack: no completed cells to aggregate".to_string();
    }
    let metered = results
        .iter()
        .filter(|r| r.status.outcome().is_some_and(|o| o.metrics.is_some()))
        .count();
    let completed = results
        .iter()
        .filter(|r| r.status.outcome().is_some())
        .count();
    let mut out = String::new();
    match aggregate_metrics(results) {
        Some(metrics) => match observed_cpi_stack(&metrics, &breakdown) {
            Ok(stack) => {
                out.push_str(&format!(
                    "CPI stack — {metered} metered of {completed} completed cells, \
                     {cycles} cycles / {instructions} instructions\n{stack}\n\
                     reconciled: metrics counters and critical-path breakdown agree \
                     in every category\n"
                ));
            }
            Err(e) => {
                out.push_str(&format!("CPI-stack reconciliation FAILED: {e}\n"));
            }
        },
        None => {
            let stack = cpi_stack(&breakdown, instructions);
            out.push_str(&format!(
                "CPI stack — no metered cells (run with --metrics); derived from \
                 the critical-path breakdown of {completed} completed cells\n{stack}\n"
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_core::{GridRequest, PolicyKind, RunOptions};
    use ccs_isa::{ClusterLayout, MachineConfig};
    use ccs_trace::Benchmark;

    fn smoke_results(metrics: bool) -> Vec<CellResult> {
        let specs = GridRequest::new(MachineConfig::micro05_baseline(), 1_500)
            .benchmarks([Benchmark::Vpr, Benchmark::Gzip])
            .layouts([ClusterLayout::C4x2w])
            .policies([PolicyKind::Focused])
            .options(RunOptions::default().with_epochs(1).with_metrics(metrics))
            .build();
        ccs_core::run_grid_resilient(&specs, 2, &Default::default())
    }

    #[test]
    fn metered_grid_reconciles() {
        let report = cpi_stack_report(&smoke_results(true));
        assert!(report.contains("reconciled"), "{report}");
        assert!(!report.contains("FAILED"), "{report}");
        assert!(report.contains("2 metered of 2"), "{report}");
    }

    #[test]
    fn unmetered_grid_reports_breakdown_only() {
        let report = cpi_stack_report(&smoke_results(false));
        assert!(report.contains("no metered cells"), "{report}");
        assert!(!report.contains("FAILED"), "{report}");
    }

    #[test]
    fn empty_grid_is_not_a_stack() {
        assert!(cpi_stack_report(&[]).contains("no completed cells"));
    }
}
