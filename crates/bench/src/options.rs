//! Harness configuration.

use ccs_core::RunOptions;

/// Shared configuration for the figure harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessOptions {
    /// Dynamic instructions per benchmark trace.
    pub len: usize,
    /// Workload generation seed.
    pub seed: u64,
    /// Training + measurement epochs for policy cells.
    pub epochs: u32,
    /// Trace samples per benchmark, averaged like the paper's three
    /// 100M-instruction samples at different execution offsets.
    pub samples: u32,
    /// Worker threads for grid evaluation (`0` = one per available
    /// core). Results are bit-identical for every value; only
    /// wall-clock time changes.
    pub threads: usize,
    /// Run every cell in checked mode (structural invariant audits on
    /// each epoch's schedule); roughly doubles per-cell cost.
    pub checked: bool,
}

impl HarnessOptions {
    /// Defaults: 20 000 instructions, seed 1, 2 epochs, one grid worker
    /// per core — overridable via the `CCS_LEN`, `CCS_SEED`,
    /// `CCS_EPOCHS`, `CCS_SAMPLES` and `CCS_THREADS` environment
    /// variables. `CCS_CHECKED=1` turns on checked (invariant-audited)
    /// simulation for every cell.
    pub fn from_env() -> Self {
        let parse = |name: &str, default: u64| -> u64 {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        HarnessOptions {
            len: parse("CCS_LEN", 20_000) as usize,
            seed: parse("CCS_SEED", 1),
            epochs: parse("CCS_EPOCHS", 2) as u32,
            samples: parse("CCS_SAMPLES", 1) as u32,
            threads: parse("CCS_THREADS", 0) as usize,
            checked: parse("CCS_CHECKED", 0) != 0,
        }
    }

    /// [`from_env`](Self::from_env), then applies `--threads N` /
    /// `--threads=N` from the binary's command line on top.
    pub fn from_env_and_args() -> Self {
        let mut opts = Self::from_env();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if let Some(v) = arg.strip_prefix("--threads=") {
                if let Ok(n) = v.parse() {
                    opts.threads = n;
                }
            } else if arg == "--threads" {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    opts.threads = n;
                }
            }
        }
        opts
    }

    /// The effective grid worker count: `threads`, with `0` resolved to
    /// the number of available cores.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// The seeds of the individual samples.
    pub fn sample_seeds(&self) -> Vec<u64> {
        (0..self.samples.max(1) as u64)
            .map(|k| self.seed + 1_000 * k)
            .collect()
    }

    /// A small configuration for fast tests.
    pub fn smoke() -> Self {
        HarnessOptions {
            len: 2_000,
            seed: 1,
            epochs: 2,
            samples: 1,
            threads: 2,
            checked: false,
        }
    }

    /// The policy-evaluation options these harness options imply.
    pub fn run_options(&self) -> RunOptions {
        RunOptions::default()
            .with_epochs(self.epochs)
            .with_checked(self.checked)
    }
}

impl Default for HarnessOptions {
    fn default() -> Self {
        Self::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_options_are_small() {
        let o = HarnessOptions::smoke();
        assert!(o.len <= 5_000);
        assert_eq!(o.run_options().epochs, 2);
        assert_eq!(o.sample_seeds(), vec![1]);
    }

    #[test]
    fn sample_seeds_are_distinct() {
        let mut o = HarnessOptions::smoke();
        o.samples = 3;
        let seeds = o.sample_seeds();
        assert_eq!(seeds.len(), 3);
        let set: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn effective_threads_resolves_auto() {
        let mut o = HarnessOptions::smoke();
        o.threads = 0;
        assert!(o.effective_threads() >= 1);
        o.threads = 3;
        assert_eq!(o.effective_threads(), 3);
    }
}
