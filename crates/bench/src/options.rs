//! Harness configuration.

use ccs_core::{Resilience, RunOptions};
use std::time::Duration;

/// Shared configuration for the figure harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HarnessOptions {
    /// Dynamic instructions per benchmark trace.
    pub len: usize,
    /// Workload generation seed.
    pub seed: u64,
    /// Training + measurement epochs for policy cells.
    pub epochs: u32,
    /// Trace samples per benchmark, averaged like the paper's three
    /// 100M-instruction samples at different execution offsets.
    pub samples: u32,
    /// Worker threads for grid evaluation (`0` = one per available
    /// core). Results are bit-identical for every value; only
    /// wall-clock time changes.
    pub threads: usize,
    /// Pick the worker count per grid from its size
    /// ([`ccs_core::auto_threads`]): serial for grids too small to
    /// amortize spawn/join, one worker per core otherwise. Set by
    /// `--threads auto` / `CCS_THREADS=auto`; overrides `threads`.
    pub threads_auto: bool,
    /// Run every cell in checked mode (structural invariant audits on
    /// each epoch's schedule); roughly doubles per-cell cost.
    pub checked: bool,
    /// Resume a checkpointed campaign: skip cells already recorded in
    /// the manifest instead of truncating it.
    pub resume: bool,
    /// Order campaign cells best-first by their analytic cycle bound
    /// (`ccs-predict`) and record the predicted envelope in the
    /// manifest. Metadata-only: results stay bit-identical.
    pub predict_order: bool,
    /// Attempts per grid cell before it is reported as failed.
    pub max_attempts: u32,
    /// Wall-clock deadline per cell attempt in milliseconds (`0` = no
    /// watchdog).
    pub deadline_ms: u64,
    /// Cycle budget per simulation (`0` = unbounded); exceeding it
    /// reports the cell as timed out.
    pub cycle_budget: u64,
    /// Collect observability metrics on each cell's measured epoch and
    /// report per-stage timings plus a CPI stack. Schedules and results
    /// are bit-identical with metrics on or off.
    pub metrics: bool,
}

impl HarnessOptions {
    /// Defaults: 20 000 instructions, seed 1, 2 epochs, one grid worker
    /// per core — overridable via the `CCS_LEN`, `CCS_SEED`,
    /// `CCS_EPOCHS`, `CCS_SAMPLES` and `CCS_THREADS` environment
    /// variables (`CCS_THREADS=auto` sizes the pool per grid via
    /// [`ccs_core::auto_threads`]). `CCS_CHECKED=1` turns on checked (invariant-audited)
    /// simulation for every cell. Resilience knobs: `CCS_RESUME=1`
    /// resumes a checkpointed campaign, `CCS_MAX_ATTEMPTS` retries
    /// failing cells, `CCS_DEADLINE_MS` arms the per-cell wall-clock
    /// watchdog and `CCS_CYCLE_BUDGET` bounds each simulation.
    /// `CCS_METRICS=1` collects observability metrics and prints stage
    /// timings and a CPI stack. `CCS_PREDICT_ORDER=1` orders campaign
    /// cells best-first by their analytic cycle bound.
    pub fn from_env() -> Self {
        let parse = |name: &str, default: u64| -> u64 {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(default)
        };
        let threads_auto = std::env::var("CCS_THREADS").is_ok_and(|v| v == "auto");
        HarnessOptions {
            len: parse("CCS_LEN", 20_000) as usize,
            seed: parse("CCS_SEED", 1),
            epochs: parse("CCS_EPOCHS", 2) as u32,
            samples: parse("CCS_SAMPLES", 1) as u32,
            threads: parse("CCS_THREADS", 0) as usize,
            threads_auto,
            checked: parse("CCS_CHECKED", 0) != 0,
            resume: parse("CCS_RESUME", 0) != 0,
            predict_order: parse("CCS_PREDICT_ORDER", 0) != 0,
            max_attempts: parse("CCS_MAX_ATTEMPTS", 1).max(1) as u32,
            deadline_ms: parse("CCS_DEADLINE_MS", 0),
            cycle_budget: parse("CCS_CYCLE_BUDGET", 0),
            metrics: parse("CCS_METRICS", 0) != 0,
        }
    }

    /// [`from_env`](Self::from_env), then applies `--threads N` /
    /// `--threads=N` (`N` a count or `auto`), `--resume`,
    /// `--predict-order` and `--metrics` from the binary's command
    /// line on top.
    pub fn from_env_and_args() -> Self {
        let mut opts = Self::from_env();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            if let Some(v) = arg.strip_prefix("--threads=") {
                if v == "auto" {
                    opts.threads_auto = true;
                } else if let Ok(n) = v.parse() {
                    opts.threads = n;
                    opts.threads_auto = false;
                }
            } else if arg == "--threads" {
                match args.next().as_deref() {
                    Some("auto") => opts.threads_auto = true,
                    Some(v) => {
                        if let Ok(n) = v.parse() {
                            opts.threads = n;
                            opts.threads_auto = false;
                        }
                    }
                    None => {}
                }
            } else if arg == "--resume" {
                opts.resume = true;
            } else if arg == "--predict-order" {
                opts.predict_order = true;
            } else if arg == "--metrics" {
                opts.metrics = true;
            }
        }
        opts
    }

    /// The effective grid worker count: `threads`, with `0` resolved to
    /// the number of available cores.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(1)
        } else {
            self.threads
        }
    }

    /// The worker count for a grid of `cells` cells over this
    /// configuration's trace length: [`ccs_core::auto_threads`] in
    /// `--threads auto` mode (tiny grids stay serial), otherwise
    /// [`effective_threads`](Self::effective_threads).
    pub fn threads_for(&self, cells: usize) -> usize {
        if self.threads_auto {
            ccs_core::auto_threads(cells, self.len)
        } else {
            self.effective_threads()
        }
    }

    /// The seeds of the individual samples.
    pub fn sample_seeds(&self) -> Vec<u64> {
        (0..self.samples.max(1) as u64)
            .map(|k| self.seed + 1_000 * k)
            .collect()
    }

    /// A small configuration for fast tests.
    pub fn smoke() -> Self {
        HarnessOptions {
            len: 2_000,
            seed: 1,
            epochs: 2,
            samples: 1,
            threads: 2,
            threads_auto: false,
            checked: false,
            resume: false,
            predict_order: false,
            max_attempts: 1,
            deadline_ms: 0,
            cycle_budget: 0,
            metrics: false,
        }
    }

    /// The policy-evaluation options these harness options imply.
    pub fn run_options(&self) -> RunOptions {
        let mut opts = RunOptions::default()
            .with_epochs(self.epochs)
            .with_checked(self.checked)
            .with_metrics(self.metrics);
        if self.cycle_budget > 0 {
            opts = opts.with_cycle_budget(self.cycle_budget);
        }
        opts
    }

    /// The per-cell retry/watchdog policy these harness options imply.
    pub fn resilience(&self) -> Resilience {
        let mut res = Resilience::default().with_max_attempts(self.max_attempts);
        if self.deadline_ms > 0 {
            res = res.with_deadline(Duration::from_millis(self.deadline_ms));
        }
        res
    }
}

impl Default for HarnessOptions {
    fn default() -> Self {
        Self::from_env()
    }
}

/// The serve-daemon address the harness should submit to instead of
/// evaluating in-process: `--server HOST:PORT` / `--server=HOST:PORT`
/// on the command line, else the `CCS_SERVER` environment variable,
/// else `None` (run locally). Kept outside [`HarnessOptions`] so that
/// struct stays `Copy`.
pub fn server_target() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(v) = arg.strip_prefix("--server=") {
            return Some(v.to_string());
        }
        if arg == "--server" {
            return args.next();
        }
    }
    std::env::var("CCS_SERVER").ok().filter(|s| !s.is_empty())
}

/// The scenario manifest the campaign should run instead of the twelve
/// benchmarks: `--scenario FILE` / `--scenario=FILE` on the command
/// line, else the `CCS_SCENARIO` environment variable, else `None`
/// (benchmark grid). The file holds a `ccs-scenario` manifest; the
/// campaign registers it and sweeps the same layout × policy × seed
/// axes over the scenario workload.
pub fn scenario_target() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(v) = arg.strip_prefix("--scenario=") {
            return Some(v.to_string());
        }
        if arg == "--scenario" {
            return args.next();
        }
    }
    std::env::var("CCS_SCENARIO").ok().filter(|s| !s.is_empty())
}

/// The shard addresses for a multi-daemon campaign: `--servers a,b,c` /
/// `--servers=a,b,c` on the command line, else the comma-separated
/// `CCS_SERVERS` environment variable, else `None`. Takes precedence
/// over [`server_target`] when both are given — a list of one behaves
/// like `--server` plus consistent-hash routing.
pub fn servers_target() -> Option<Vec<String>> {
    let parse = |list: &str| -> Vec<String> {
        list.split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(String::from)
            .collect()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(v) = arg.strip_prefix("--servers=") {
            return Some(parse(v)).filter(|v| !v.is_empty());
        }
        if arg == "--servers" {
            return args.next().map(|v| parse(&v)).filter(|v| !v.is_empty());
        }
    }
    std::env::var("CCS_SERVERS")
        .ok()
        .map(|v| parse(&v))
        .filter(|v| !v.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_options_are_small() {
        let o = HarnessOptions::smoke();
        assert!(o.len <= 5_000);
        assert_eq!(o.run_options().epochs, 2);
        assert_eq!(o.sample_seeds(), vec![1]);
    }

    #[test]
    fn sample_seeds_are_distinct() {
        let mut o = HarnessOptions::smoke();
        o.samples = 3;
        let seeds = o.sample_seeds();
        assert_eq!(seeds.len(), 3);
        let set: std::collections::HashSet<_> = seeds.iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn resilience_and_budget_knobs_map_through() {
        let mut o = HarnessOptions::smoke();
        assert_eq!(o.resilience(), Resilience::default());
        assert_eq!(o.run_options().cycle_budget, None);
        o.max_attempts = 3;
        o.deadline_ms = 250;
        o.cycle_budget = 1_000;
        let res = o.resilience();
        assert_eq!(res.max_attempts, 3);
        assert_eq!(res.deadline, Some(Duration::from_millis(250)));
        assert_eq!(o.run_options().cycle_budget, Some(1_000));
    }

    #[test]
    fn metrics_knob_maps_through() {
        let mut o = HarnessOptions::smoke();
        assert!(!o.run_options().metrics);
        o.metrics = true;
        assert!(o.run_options().metrics);
    }

    #[test]
    fn effective_threads_resolves_auto() {
        let mut o = HarnessOptions::smoke();
        o.threads = 0;
        assert!(o.effective_threads() >= 1);
        o.threads = 3;
        assert_eq!(o.effective_threads(), 3);
    }

    #[test]
    fn threads_auto_keeps_tiny_grids_serial() {
        let mut o = HarnessOptions::smoke();
        o.threads_auto = true;
        // 12 cells x 2 000 instructions is below the parallel-worthwhile
        // threshold: auto mode must not spawn workers for it.
        assert_eq!(o.threads_for(12), 1);
        assert_eq!(o.threads_for(1), 1);
        // Without auto mode the explicit count wins regardless of size.
        o.threads_auto = false;
        assert_eq!(o.threads_for(12), o.effective_threads());
        // Big grids in auto mode follow the machine.
        o.threads_auto = true;
        o.len = 100_000;
        assert_eq!(o.threads_for(200), ccs_core::auto_threads(200, 100_000));
    }
}
