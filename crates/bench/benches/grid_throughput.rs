//! Criterion benchmarks for the parallel grid executor and the shared
//! trace cache: cells/sec serial vs parallel, and trace fetch cost on a
//! cache hit vs a cold generation.
//!
//! The parallel/serial pair quantifies the `all_figures` speed-up; the
//! trace-store pair quantifies what memoizing workload generation saves
//! every figure after the first.

use ccs_core::{run_grid, GridRequest, PolicyKind, RunOptions};
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_trace::{Benchmark, TraceStore};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

const N: usize = 4_000;

fn grid_specs(metrics: bool) -> Vec<ccs_core::CellSpec> {
    GridRequest::new(MachineConfig::micro05_baseline(), N)
        .benchmarks([
            Benchmark::Vpr,
            Benchmark::Gzip,
            Benchmark::Mcf,
            Benchmark::Gcc,
        ])
        .layouts([
            ClusterLayout::C2x4w,
            ClusterLayout::C4x2w,
            ClusterLayout::C8x1w,
        ])
        .policies([PolicyKind::Focused])
        .options(RunOptions::default().with_metrics(metrics))
        .build()
}

fn bench_grid_throughput(c: &mut Criterion) {
    let specs = grid_specs(false);
    let metered = grid_specs(true);
    // Warm the global trace store so every variant measures pure
    // simulation throughput, not first-touch generation.
    for spec in &specs {
        TraceStore::global().get(spec.benchmark, spec.sample_seed, spec.len);
    }
    let threads = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let mut g = c.benchmark_group("grid-throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(specs.len() as u64));
    g.bench_function("serial", |b| {
        b.iter(|| run_grid(black_box(&specs), 1));
    });
    g.bench_function(format!("parallel-{threads}t"), |b| {
        b.iter(|| run_grid(black_box(&specs), threads));
    });
    // The observability acceptance gate: metrics-on must stay within a
    // few percent of metrics-off on the same grid.
    g.bench_function("serial-metrics", |b| {
        b.iter(|| run_grid(black_box(&metered), 1));
    });
    g.bench_function(format!("parallel-{threads}t-metrics"), |b| {
        b.iter(|| run_grid(black_box(&metered), threads));
    });
    g.finish();
}

fn bench_trace_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace-store");
    g.throughput(Throughput::Elements(1));
    let warm = TraceStore::new();
    warm.get(Benchmark::Vpr, 1, N);
    g.bench_function("hit", |b| {
        b.iter(|| warm.get(black_box(Benchmark::Vpr), 1, N));
    });
    g.sample_size(10);
    g.bench_function("cold", |b| {
        b.iter_batched(
            TraceStore::new,
            |store| store.get(black_box(Benchmark::Vpr), 1, N),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_grid_throughput, bench_trace_store);
criterion_main!(benches);
