//! Criterion benchmarks for the parallel grid executor and the shared
//! trace cache: cells/sec serial vs parallel, and trace fetch cost on a
//! cache hit vs a cold generation.
//!
//! The parallel/serial pair quantifies the `all_figures` speed-up; the
//! trace-store pair quantifies what memoizing workload generation saves
//! every figure after the first.

use ccs_core::{run_grid, GridRequest, PolicyKind, RunOptions};
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_trace::{Benchmark, TraceStore};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

const N: usize = 4_000;

fn grid_specs(metrics: bool) -> Vec<ccs_core::CellSpec> {
    GridRequest::new(MachineConfig::micro05_baseline(), N)
        .benchmarks([
            Benchmark::Vpr,
            Benchmark::Gzip,
            Benchmark::Mcf,
            Benchmark::Gcc,
        ])
        .layouts([
            ClusterLayout::C2x4w,
            ClusterLayout::C4x2w,
            ClusterLayout::C8x1w,
        ])
        .policies([PolicyKind::Focused])
        .options(RunOptions::default().with_metrics(metrics))
        .build()
}

/// A 108-cell grid (12 benchmarks × 3 layouts × 3 seeds) of short
/// traces: scheduling overhead — spawn/join, chunk claims, result
/// placement — is proportionally largest here.
fn wide_grid_specs() -> Vec<ccs_core::CellSpec> {
    GridRequest::new(MachineConfig::micro05_baseline(), N)
        .benchmarks(Benchmark::ALL)
        .layouts(ClusterLayout::CLUSTERED)
        .policies([PolicyKind::Focused])
        .sample_seeds([1, 1_001, 2_001])
        .build()
}

/// A small grid of long traces: per-cell engine throughput dominates,
/// which is what the 100k/1M rows of `results/BENCH_grid.json` track.
fn long_grid_specs(len: usize) -> Vec<ccs_core::CellSpec> {
    GridRequest::new(MachineConfig::micro05_baseline(), len)
        .benchmarks([Benchmark::Vpr, Benchmark::Gcc])
        .layouts([ClusterLayout::C4x2w])
        .policies([PolicyKind::Focused])
        .build()
}

fn bench_grid_throughput(c: &mut Criterion) {
    let specs = grid_specs(false);
    let metered = grid_specs(true);
    // Warm the global trace store so every variant measures pure
    // simulation throughput, not first-touch generation.
    for spec in &specs {
        TraceStore::global().get(spec.benchmark, spec.sample_seed, spec.len);
    }
    let threads = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let mut g = c.benchmark_group("grid-throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(specs.len() as u64));
    g.bench_function("serial", |b| {
        b.iter(|| run_grid(black_box(&specs), 1));
    });
    g.bench_function(format!("parallel-{threads}t"), |b| {
        b.iter(|| run_grid(black_box(&specs), threads));
    });
    // The observability acceptance gate: metrics-on must stay within a
    // few percent of metrics-off on the same grid.
    g.bench_function("serial-metrics", |b| {
        b.iter(|| run_grid(black_box(&metered), 1));
    });
    g.bench_function(format!("parallel-{threads}t-metrics"), |b| {
        b.iter(|| run_grid(black_box(&metered), threads));
    });
    g.finish();
}

/// The wide (108-cell) and long-trace (100k / 1M instruction) grids
/// behind `results/BENCH_grid.json`. The 1M group is gated behind
/// `CCS_BENCH_1M=1` — a single sample simulates 4M instructions.
fn bench_grid_scaling(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(usize::from)
        .unwrap_or(1);
    let wide = wide_grid_specs();
    for spec in &wide {
        let _ = TraceStore::global()
            .get(spec.benchmark, spec.sample_seed, spec.len)
            .memory_deps();
    }
    let mut g = c.benchmark_group("grid-wide-108c");
    g.sample_size(10);
    g.throughput(Throughput::Elements(wide.len() as u64));
    g.bench_function("serial", |b| {
        b.iter(|| run_grid(black_box(&wide), 1));
    });
    g.bench_function(format!("parallel-{threads}t"), |b| {
        b.iter(|| run_grid(black_box(&wide), threads));
    });
    g.finish();

    let mut lens = vec![100_000usize];
    if std::env::var("CCS_BENCH_1M").is_ok_and(|v| v != "0") {
        lens.push(1_000_000);
    }
    for len in lens {
        let specs = long_grid_specs(len);
        for spec in &specs {
            let _ = TraceStore::global()
                .get(spec.benchmark, spec.sample_seed, spec.len)
                .memory_deps();
        }
        let mut g = c.benchmark_group(format!("grid-long-{}k", len / 1_000));
        g.sample_size(10);
        // Report instruction throughput: cells × len × 2 epochs.
        g.throughput(Throughput::Elements(2 * (specs.len() * len) as u64));
        g.bench_function("serial", |b| {
            b.iter(|| run_grid(black_box(&specs), 1));
        });
        g.bench_function(format!("parallel-{threads}t"), |b| {
            b.iter(|| run_grid(black_box(&specs), threads));
        });
        g.finish();
    }
}

fn bench_trace_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace-store");
    g.throughput(Throughput::Elements(1));
    let warm = TraceStore::new();
    warm.get(Benchmark::Vpr, 1, N);
    g.bench_function("hit", |b| {
        b.iter(|| warm.get(black_box(Benchmark::Vpr), 1, N));
    });
    g.sample_size(10);
    g.bench_function("cold", |b| {
        b.iter_batched(
            TraceStore::new,
            |store| store.get(black_box(Benchmark::Vpr), 1, N),
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_grid_throughput, bench_grid_scaling, bench_trace_store);
criterion_main!(benches);
