//! Criterion benchmarks over the policy ladder: wall-clock cost of
//! evaluating each policy cell (simulation + critical-path analysis +
//! predictor training), plus the steering decision itself.
//!
//! These complement the figure harness: figures report simulated CPI;
//! these report the *simulator's* cost per policy, which is what a user
//! extending the policy ladder cares about.

use ccs_core::{run_cell, PolicyKind, RunOptions};
use ccs_isa::{ClusterLayout, MachineConfig};
use ccs_trace::Benchmark;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const N: usize = 5_000;

fn bench_policy_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy-cell");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N as u64));
    let trace = Benchmark::Vpr.generate(1, N);
    let machine = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
    let opts = RunOptions::default();
    for kind in [
        PolicyKind::Dependence,
        PolicyKind::Focused,
        PolicyKind::FocusedLoc,
        PolicyKind::StallOverSteer,
        PolicyKind::Proactive,
    ] {
        g.bench_function(kind.name(), |b| {
            b.iter(|| run_cell(black_box(&machine), black_box(&trace), kind, &opts).unwrap())
        });
    }
    g.finish();
}

fn bench_layout_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("policy-layout");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N as u64));
    let trace = Benchmark::Gcc.generate(1, N);
    let opts = RunOptions::default();
    for layout in ClusterLayout::ALL {
        let machine = MachineConfig::micro05_baseline().with_layout(layout);
        g.bench_function(format!("proactive-{layout}"), |b| {
            b.iter(|| {
                run_cell(
                    black_box(&machine),
                    black_box(&trace),
                    PolicyKind::Proactive,
                    &opts,
                )
                .unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_policy_cells, bench_layout_scaling);
criterion_main!(benches);
