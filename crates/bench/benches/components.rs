//! Criterion microbenchmarks for the substrate components: simulator
//! throughput, critical-path extraction, list scheduling, predictors and
//! caches.

use ccs_critpath::{analyze, analyze_slack};
use ccs_isa::{ClusterLayout, MachineConfig, MemoryConfig, Pc};
use ccs_listsched::{list_schedule, ListScheduleConfig};
use ccs_predictors::{
    BinaryCriticality, CriticalityPredictor, ExactLoc, LocEstimator, QuantizedLoc, TokenDetector,
};
use ccs_sim::{policies::LeastLoaded, simulate};
use ccs_trace::Benchmark;
use ccs_uarch::{BranchPredictor, Gshare, SetAssocCache};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

const N: usize = 10_000;

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N as u64));
    for layout in ClusterLayout::ALL {
        let trace = Benchmark::Vpr.generate(1, N);
        let cfg = MachineConfig::micro05_baseline().with_layout(layout);
        g.bench_function(format!("vpr-{layout}"), |b| {
            b.iter(|| simulate(black_box(&cfg), black_box(&trace), &mut LeastLoaded).unwrap())
        });
    }
    g.finish();
}

fn bench_critpath(c: &mut Criterion) {
    let mut g = c.benchmark_group("critpath");
    g.sample_size(20);
    g.throughput(Throughput::Elements(N as u64));
    let trace = Benchmark::Gcc.generate(1, N);
    let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
    let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
    g.bench_function("analyze-gcc-4x2w", |b| {
        b.iter(|| analyze(black_box(&trace), black_box(&result)))
    });
    g.bench_function("slack-gcc-4x2w", |b| {
        b.iter(|| analyze_slack(black_box(&trace), black_box(&result)))
    });
    g.bench_function("token-detector-gcc-4x2w", |b| {
        let det = TokenDetector::default();
        b.iter(|| {
            let mut count = 0u64;
            det.run(black_box(&trace), black_box(&result), |_, _| count += 1);
            count
        })
    });
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace-gen");
    g.sample_size(20);
    g.throughput(Throughput::Elements(N as u64));
    for bench in [Benchmark::Vpr, Benchmark::Mcf, Benchmark::Gcc] {
        g.bench_function(bench.name(), |b| {
            b.iter(|| bench.generate(black_box(1), N))
        });
    }
    g.finish();
}

fn bench_listsched(c: &mut Criterion) {
    let mut g = c.benchmark_group("listsched");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N as u64));
    let trace = Benchmark::Gap.generate(1, N);
    let mono_cfg = MachineConfig::micro05_baseline();
    let mono = simulate(&mono_cfg, &trace, &mut LeastLoaded).unwrap();
    for layout in [ClusterLayout::C1x8w, ClusterLayout::C8x1w] {
        let machine = mono_cfg.with_layout(layout);
        g.bench_function(format!("gap-{layout}"), |b| {
            b.iter(|| {
                list_schedule(
                    black_box(&trace),
                    black_box(&mono),
                    &ListScheduleConfig::new(machine),
                )
            })
        });
    }
    g.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let mut g = c.benchmark_group("predictors");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("binary-train-1k", |b| {
        b.iter_batched(
            BinaryCriticality::new,
            |mut p| {
                for i in 0..1_000u64 {
                    p.train(Pc::new(4 * (i % 64)), i % 7 == 0);
                }
                p
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("exact-loc-train-1k", |b| {
        b.iter_batched(
            ExactLoc::new,
            |mut p| {
                for i in 0..1_000u64 {
                    p.train(Pc::new(4 * (i % 64)), i % 7 == 0);
                }
                p
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("quantized-loc-train-1k", |b| {
        b.iter_batched(
            || QuantizedLoc::new(1),
            |mut p| {
                for i in 0..1_000u64 {
                    p.train(Pc::new(4 * (i % 64)), i % 7 == 0);
                }
                p
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_uarch(c: &mut Criterion) {
    let mut g = c.benchmark_group("uarch");
    g.throughput(Throughput::Elements(1_000));
    g.bench_function("gshare-predict-update-1k", |b| {
        let mut p = Gshare::new(16);
        b.iter(|| {
            for i in 0..1_000u64 {
                let pc = Pc::new(4 * (i % 128));
                let taken = i % 3 != 0;
                black_box(p.predict(pc));
                p.update(pc, taken);
            }
        })
    });
    g.bench_function("l1-access-1k", |b| {
        let mut l1 = SetAssocCache::from_config(&MemoryConfig::default());
        b.iter(|| {
            for i in 0..1_000u64 {
                black_box(l1.access((i * 72) % (1 << 20)));
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_simulator,
    bench_critpath,
    bench_trace_generation,
    bench_listsched,
    bench_predictors,
    bench_uarch
);
criterion_main!(benches);
