//! Analytic cycle/IPC bounds from a trace and a machine configuration.
//!
//! Simulating a grid cell is expensive: two epochs of cycle-level timing
//! simulation plus critical-path analysis. This crate computes, in one
//! O(n) pass over the trace, a **provably sound envelope**
//! `[cycles_lo, cycles_hi]` on what any such simulation of the cell can
//! produce, from nothing but the trace and the machine parameters —
//! independent of the steering policy, schedule priorities, training
//! state, and epoch count, because every bound is either a dependence
//! argument or a counting argument that holds for *every* legal schedule
//! the engine can emit.
//!
//! Three consumers ride on the envelope:
//! * the campaign runner orders cells best-first by predicted cost and
//!   records predictions in checkpoint manifests,
//! * `ccs-serve` answers opt-in approximate submissions with the
//!   envelope instead of simulating,
//! * `ccs-verify` asserts every simulated result lies inside its
//!   envelope (`check_bounds`) — a result outside its bounds is a bug in
//!   either the engine or this model, and both are worth knowing about.
//!
//! # The bound model
//!
//! The lower bound is the maximum of several independently sound
//! components (see [`BoundComponents`]):
//!
//! * **Dependence chain** (`chain`): a forward pass computing, per
//!   instruction, floors on its fetch, completion and commit cycles.
//!   Fetch floors encode fetch bandwidth, taken-branch fetch breaks and
//!   branch-mispredict redirects (the gshare predictor is replayed
//!   exactly — prediction happens at fetch in trace order, so its
//!   outcomes are timing-independent). Completion floors chain through
//!   register and true-memory dependences at best-case (L1-hit)
//!   latencies; commit floors add in-order commit and commit bandwidth.
//! * **Width bounds** (`issue`, `ports`, `commit`, `fetch`): counting
//!   arguments of the form `depth + ceil(count / width) + 3` — `count`
//!   operations through an aggregate `width` per cycle cannot finish
//!   faster, and the front-end depth plus the dispatch→ready,
//!   complete→commit and commit→cycle-count offsets delay the first of
//!   them.
//! * **Machine-independent dataflow** (`dataflow`): the memoized
//!   [`Trace::dataflow_chain`], lifted by the same pipeline offsets.
//!   Always dominated by `chain`; kept as a component because it is the
//!   bound the paper's idealized-scheduler argument reasons about.
//!
//! The upper bound is deliberately loose: the engine's own progress
//! limit (`64·n + 100_000` cycles, after which it refuses to continue),
//! optionally tightened by a caller-supplied cycle budget
//! ([`Prediction::with_cycle_budget`]). Tight upper bounds on an
//! *adversarial* policy's schedule are not provable — a policy may
//! legally stall dispatch for long stretches — so the envelope is honest
//! instead of optimistic, and the [`Confidence`] tag says when the lower
//! edge is expected to be sharp.
//!
//! Inter-cluster forwarding never appears as a lower-bound component:
//! with limited broadcast bandwidth the engine may serialize value
//! broadcasts, but which values need remote consumers is a policy
//! decision, so no sound policy-independent cycle floor exists. A
//! bandwidth-limited clustered machine instead demotes the prediction's
//! confidence to [`Confidence::Low`].

use ccs_isa::{MachineConfig, PortKind};
use ccs_trace::Trace;
use ccs_uarch::{BranchPredictor, Gshare};

/// How sharp the lower edge of the envelope is expected to be.
///
/// Soundness is unconditional — every simulated result lies inside its
/// envelope regardless of the tag (enforced by `ccs-verify`'s
/// `check_bounds` across the differential campaign and golden corpus).
/// The tag only grades *tightness*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Confidence {
    /// Monolithic machine, or the dependence chain strictly dominates
    /// every width bound: the model sees the limiting resource.
    High,
    /// Clustered machine where a width bound ties or beats the chain:
    /// steering quality (unmodelled) decides how close the bound is.
    Medium,
    /// Clustered machine with limited broadcast bandwidth: broadcast
    /// serialization is policy-dependent and entirely unmodelled.
    Low,
}

impl Confidence {
    /// Stable lower-case name, used on the wire and in manifests.
    pub fn name(self) -> &'static str {
        match self {
            Confidence::High => "high",
            Confidence::Medium => "medium",
            Confidence::Low => "low",
        }
    }

    /// Parses [`name`](Self::name) back.
    pub fn from_name(name: &str) -> Option<Confidence> {
        match name {
            "high" => Some(Confidence::High),
            "medium" => Some(Confidence::Medium),
            "low" => Some(Confidence::Low),
            _ => None,
        }
    }
}

impl std::fmt::Display for Confidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The individually sound lower-bound components (cycles each); the
/// envelope's lower edge is their maximum. A zero entry means the
/// component does not apply (empty op class, or zero-width resource a
/// successful run cannot have needed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoundComponents {
    /// Forward-pass dependence/front-end/commit chain bound.
    pub chain: u64,
    /// Machine-independent dataflow chain, lifted by pipeline offsets.
    pub dataflow: u64,
    /// Aggregate issue-width counting bound.
    pub issue: u64,
    /// Per-port-class counting bounds, indexed Int/Fp/Mem.
    pub ports: [u64; 3],
    /// Commit-width counting bound.
    pub commit: u64,
    /// Fetch-width counting bound.
    pub fetch: u64,
}

impl BoundComponents {
    /// The maximum component — the envelope's lower edge.
    pub fn max(&self) -> u64 {
        let mut best = self.chain.max(self.dataflow);
        best = best.max(self.issue).max(self.commit).max(self.fetch);
        for &p in &self.ports {
            best = best.max(p);
        }
        best
    }

    /// Whether `chain` strictly exceeds every other component.
    fn chain_dominates(&self) -> bool {
        let others = [
            self.dataflow,
            self.issue,
            self.ports[0],
            self.ports[1],
            self.ports[2],
            self.commit,
            self.fetch,
        ];
        others.iter().all(|&o| o < self.chain)
    }
}

/// A sound `[cycles_lo, cycles_hi]` envelope on the simulated cycle
/// count of one (trace, machine) cell, with the matching IPC ceiling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// No legal schedule finishes in fewer cycles.
    pub cycles_lo: u64,
    /// No *successful* run reports more cycles (the engine's progress
    /// limit, or a tighter caller-supplied budget).
    pub cycles_hi: u64,
    /// `n / cycles_lo`: no run achieves more instructions per cycle.
    pub ipc_hi: f64,
    /// Expected tightness of `cycles_lo` (soundness is unconditional).
    pub confidence: Confidence,
    /// The individual lower-bound components behind `cycles_lo`.
    pub components: BoundComponents,
}

impl Prediction {
    /// Tightens the upper edge with a deterministic cycle budget: a run
    /// that *succeeds* under `RunOptions::cycle_budget` never reports
    /// more cycles than the budget. `None` leaves the envelope as is.
    pub fn with_cycle_budget(mut self, budget: Option<u64>) -> Prediction {
        if let Some(b) = budget {
            self.cycles_hi = self.cycles_hi.min(b);
        }
        self
    }

    /// Demotes the confidence one step (High → Medium → Low; Low
    /// stays). The bounds themselves are policy-independent — they hold
    /// for *every* legal schedule — but their expected tightness is
    /// calibrated against the static ladder; a dynamic policy (the
    /// adaptive switcher, ineffectuality steering) changes steering
    /// behaviour mid-run in ways the tightness heuristic never saw, so
    /// callers serving envelopes for those policies knock the tag down
    /// a notch.
    pub fn demoted(mut self) -> Prediction {
        self.confidence = match self.confidence {
            Confidence::High => Confidence::Medium,
            Confidence::Medium | Confidence::Low => Confidence::Low,
        };
        self
    }
}

/// Counting bound: `count` operations through an aggregate per-cycle
/// `width`, behind the front-end pipe. The first such operation issues
/// no earlier than cycle `depth + 1` (fetch 0 → dispatch at `depth` →
/// ready at `depth + 1`), the last therefore no earlier than
/// `depth + ceil(count/width)`, and completion (+1 at unit latency),
/// commit (+1) and the cycle count (`last commit + 1`) each add one.
fn width_bound(depth: u64, count: usize, width: usize) -> u64 {
    if count == 0 || width == 0 {
        return 0;
    }
    depth + count.div_ceil(width) as u64 + 3
}

/// Computes the analytic envelope for simulating `trace` on `config`.
///
/// One O(n) pass (plus the trace's memoized memory-dependence and
/// dataflow-chain sweeps, shared across all predictions and simulations
/// of the same trace). Deterministic: a pure function of its inputs.
pub fn predict(config: &MachineConfig, trace: &Trace) -> Prediction {
    let n = trace.len();
    if n == 0 {
        // An empty trace takes exactly zero cycles (engine invariant).
        return Prediction {
            cycles_lo: 0,
            cycles_hi: 0,
            ipc_hi: 0.0,
            confidence: Confidence::High,
            components: BoundComponents::default(),
        };
    }

    let depth = u64::from(config.front_end.depth_to_dispatch);
    let fetch_width = config.front_end.fetch_width.max(1);
    let commit_width = config.commit_width.max(1);
    let clusters = config.cluster_count();
    let insts = trace.as_slice();
    let mem_deps = trace.memory_deps();

    // Forward pass: per-instruction floors on fetch (ff), completion
    // (e) and commit (c). The gshare replay is exact — the engine
    // predicts and updates at fetch in trace order, so outcomes do not
    // depend on timing.
    let mut bp = Gshare::new(config.front_end.gshare_history_bits);
    let mut ff = vec![0u64; n];
    let mut e = vec![0u64; n];
    let mut commit_ring = vec![0u64; commit_width];
    let mut commit_prev = 0u64;
    let mut prev_mispredicted = false;
    let mut class_counts = [0usize; 3];

    for i in 0..n {
        let inst = &insts[i];
        class_counts[port_index(inst.op().port())] += 1;

        // Fetch floor: in order, at most fetch_width per cycle, broken
        // after a taken branch (when configured) and stalled past the
        // completion of a mispredicted conditional branch.
        let mut f = if i == 0 { 0 } else { ff[i - 1] };
        if i >= fetch_width {
            f = f.max(ff[i - fetch_width] + 1);
        }
        if i > 0 {
            if prev_mispredicted {
                f = f.max(e[i - 1] + 1);
            } else if config.front_end.break_on_taken
                && insts[i - 1].branch.is_some_and(|b| b.taken)
            {
                f = f.max(ff[i - 1] + 1);
            }
        }
        ff[i] = f;

        prev_mispredicted = if inst.is_conditional_branch() {
            let taken = inst.branch.expect("conditional branch has info").taken;
            let predicted = bp.predict(inst.pc());
            bp.update(inst.pc(), taken);
            predicted != taken
        } else {
            false
        };

        // Completion floor: ready no earlier than dispatch + 1 (and
        // dispatch no earlier than fetch + depth), nor before any
        // register/memory producer completes; then best-case latency.
        let mut ready = f + depth + 1;
        for dep in inst.deps.iter().flatten() {
            ready = ready.max(e[dep.index()]);
        }
        if let Some(store) = mem_deps[i] {
            ready = ready.max(e[store as usize]);
        }
        e[i] = ready + u64::from(inst.op().latency());

        // Commit floor: after completion, in order, at most
        // commit_width per cycle.
        let c = (e[i] + 1)
            .max(commit_prev)
            .max(commit_ring[i % commit_width] + 1);
        commit_ring[i % commit_width] = c;
        commit_prev = c;
    }

    let components = BoundComponents {
        chain: commit_prev + 1,
        dataflow: depth + trace.dataflow_chain() + 3,
        issue: width_bound(depth, n, clusters * config.cluster.issue_width),
        ports: [
            width_bound(depth, class_counts[0], clusters * config.cluster.ports(PortKind::Int)),
            width_bound(depth, class_counts[1], clusters * config.cluster.ports(PortKind::Fp)),
            width_bound(depth, class_counts[2], clusters * config.cluster.ports(PortKind::Mem)),
        ],
        commit: width_bound(depth, n, commit_width),
        fetch: width_bound(depth, n, fetch_width),
    };

    let cycles_lo = components.max();
    // The engine's own progress limit: it errors out past
    // 64·n + 100_000 cycles, so a successful run reports at most one
    // more (the cycle counter is incremented after the limit check).
    let cycles_hi = 64 * n as u64 + 100_001;
    let confidence = if config.forward_bandwidth.is_some() && clusters > 1 {
        Confidence::Low
    } else if clusters == 1 || components.chain_dominates() {
        Confidence::High
    } else {
        Confidence::Medium
    };

    Prediction {
        cycles_lo,
        cycles_hi,
        ipc_hi: n as f64 / cycles_lo as f64,
        confidence,
        components,
    }
}

fn port_index(port: PortKind) -> usize {
    match port {
        PortKind::Int => 0,
        PortKind::Fp => 1,
        PortKind::Mem => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_isa::{ArchReg, ClusterLayout, OpClass, Pc, StaticInst};
    use ccs_trace::{Benchmark, TraceBuilder};

    fn single_alu() -> Trace {
        let mut b = TraceBuilder::new();
        b.push_simple(StaticInst::new(Pc::new(0), OpClass::IntAlu).with_dst(ArchReg::int(1)));
        b.finish()
    }

    #[test]
    fn one_int_alu_on_the_baseline_is_exactly_17_cycles() {
        // fetch 0, dispatch 13, ready 14, issue 14, complete 15,
        // commit 16, cycles 17 — the bound is tight here, and every
        // component agrees by construction.
        let p = predict(&MachineConfig::micro05_baseline(), &single_alu());
        assert_eq!(p.cycles_lo, 17);
        assert_eq!(p.components.chain, 17);
        assert_eq!(p.components.issue, 17);
        assert_eq!(p.components.commit, 17);
        assert_eq!(p.components.fetch, 17);
        assert_eq!(p.components.ports[0], 17);
        assert_eq!(p.components.ports[1], 0, "no fp ops");
        assert!(p.cycles_lo <= p.cycles_hi);
        assert!((p.ipc_hi - 1.0 / 17.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_predicts_the_empty_envelope() {
        let p = predict(&MachineConfig::micro05_baseline(), &TraceBuilder::new().finish());
        assert_eq!(p.cycles_lo, 0);
        assert_eq!(p.cycles_hi, 0);
        assert_eq!(p.ipc_hi, 0.0);
    }

    #[test]
    fn independent_instructions_hit_the_width_bounds() {
        // 100 independent single-cycle ops through an 8-wide machine:
        // fetch, issue and commit all limit at ceil(100/8) = 13 cycles
        // of bandwidth, so lo = 13 + 13 + 3 = 29, and the chain pass
        // agrees (it models the same bandwidths).
        let mut b = TraceBuilder::new();
        for i in 0..100u64 {
            b.push_simple(StaticInst::new(Pc::new(4 * i), OpClass::IntAlu));
        }
        let trace = b.finish();
        let p = predict(&MachineConfig::micro05_baseline(), &trace);
        assert_eq!(p.components.fetch, 29);
        assert_eq!(p.components.commit, 29);
        assert_eq!(p.components.issue, 29);
        assert_eq!(p.cycles_lo, 29);
    }

    #[test]
    fn a_serial_chain_dominates_the_width_bounds() {
        // 50 chained IntMuls: chain = 13 + 14 + 50·7 + ... far above
        // any width bound for n = 50.
        let mut b = TraceBuilder::new();
        for i in 0..50u64 {
            let inst = StaticInst::new(Pc::new(4 * i), OpClass::IntMul)
                .with_dst(ArchReg::int(1));
            let inst = if i == 0 { inst } else { inst.with_src(ArchReg::int(1)) };
            b.push_simple(inst);
        }
        let trace = b.finish();
        let p = predict(&MachineConfig::micro05_baseline(), &trace);
        // ready(0) = 14, e(0) = 21, each link adds 7: e(49) = 14 + 50·7;
        // commit 365, cycles 366.
        assert_eq!(p.components.chain, 14 + 50 * 7 + 2);
        assert_eq!(p.cycles_lo, p.components.chain);
        assert_eq!(p.confidence, Confidence::High, "chain strictly dominates");
        // The machine-independent dataflow component is the same chain
        // without per-link pipeline modelling: depth + 350 + 3.
        assert_eq!(p.components.dataflow, 13 + 350 + 3);
    }

    #[test]
    fn bounds_are_sound_shaped_on_benchmark_traces() {
        for (bench, layout) in [
            (Benchmark::Gcc, ClusterLayout::C1x8w),
            (Benchmark::Mcf, ClusterLayout::C4x2w),
            (Benchmark::Vpr, ClusterLayout::C8x1w),
        ] {
            let trace = bench.generate(1, 2_000);
            let config = MachineConfig::micro05_baseline().with_layout(layout);
            let p = predict(&config, &trace);
            assert!(p.cycles_lo > 0);
            assert!(p.cycles_lo <= p.cycles_hi, "{bench:?} {layout:?}");
            assert_eq!(p.cycles_hi, 64 * trace.len() as u64 + 100_001);
            assert!(p.ipc_hi > 0.0 && p.ipc_hi <= 8.0 + 1e-9, "{}", p.ipc_hi);
            // Deterministic: a second prediction is identical.
            assert_eq!(p, predict(&config, &trace));
        }
    }

    #[test]
    fn confidence_grades_follow_the_machine_shape() {
        let trace = Benchmark::Gzip.generate(1, 1_000);
        let mono = predict(&MachineConfig::micro05_baseline(), &trace);
        assert_eq!(mono.confidence, Confidence::High, "monolithic is High");
        let banded = predict(
            &MachineConfig::micro05_baseline()
                .with_layout(ClusterLayout::C4x2w)
                .with_forward_bandwidth(Some(1)),
            &trace,
        );
        assert_eq!(banded.confidence, Confidence::Low, "limited broadcast is Low");
    }

    #[test]
    fn cycle_budget_tightens_only_the_upper_edge() {
        let trace = Benchmark::Gap.generate(1, 500);
        let p = predict(&MachineConfig::micro05_baseline(), &trace);
        let tightened = p.with_cycle_budget(Some(10_000));
        assert_eq!(tightened.cycles_lo, p.cycles_lo);
        assert_eq!(tightened.cycles_hi, 10_000);
        assert_eq!(p.with_cycle_budget(None).cycles_hi, p.cycles_hi);
    }

    #[test]
    fn demotion_steps_down_and_saturates_at_low() {
        let trace = Benchmark::Gap.generate(1, 500);
        let p = predict(&MachineConfig::micro05_baseline(), &trace);
        assert_eq!(p.confidence, Confidence::High);
        let d = p.demoted();
        assert_eq!(d.confidence, Confidence::Medium);
        assert_eq!(d.demoted().confidence, Confidence::Low);
        assert_eq!(d.demoted().demoted().confidence, Confidence::Low);
        // Only the tag moves; the envelope itself is untouched.
        assert_eq!(d.cycles_lo, p.cycles_lo);
        assert_eq!(d.cycles_hi, p.cycles_hi);
        assert_eq!(d.ipc_hi, p.ipc_hi);
    }

    #[test]
    fn confidence_names_round_trip() {
        for c in [Confidence::High, Confidence::Medium, Confidence::Low] {
            assert_eq!(Confidence::from_name(c.name()), Some(c));
            assert_eq!(format!("{c}"), c.name());
        }
    }
}
