//! Post-hoc structural invariant checking for engine results.
//!
//! [`check_invariants`] re-derives, from nothing but the trace and the
//! machine configuration, every structural property a correct schedule
//! must satisfy — issue-width and port caps, operand visibility under the
//! forwarding model, in-order dispatch/commit, window and ROB occupancy,
//! deterministic branch-predictor replay — and reports each violation
//! with the offending cycle and instruction. [`simulate_checked`] wires
//! the checker behind the engine as the `checked` run mode: it runs the
//! production engine, then fails the run if any invariant is violated.
//!
//! The checker deliberately shares no code with the engine's hot path:
//! memory dependences are re-resolved with a plain `HashMap` sweep (not
//! the open-addressed [`LastStoreTable`](ccs_trace::Trace::memory_deps)),
//! occupancy is re-derived by event replay rather than by tracking live
//! windows, and the predictor is replayed fresh. An optimization bug in
//! the engine therefore cannot hide itself from the checker.

use crate::engine::{simulate, simulate_budgeted, SimBudget, SimError};
use crate::policy::SteeringPolicy;
use crate::record::{Cycle, ReadyBound};
use crate::result::SimResult;
use ccs_isa::{BranchClass, MachineConfig, OpClass, PortKind};
use ccs_trace::{DynIdx, Trace};
use ccs_uarch::{BranchPredictor, Gshare};
use std::collections::HashMap;
use std::fmt;

/// One violated structural invariant, located as precisely as possible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The cycle at which the invariant was violated.
    pub cycle: Cycle,
    /// The offending instruction, when one is identifiable.
    pub inst: Option<DynIdx>,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inst {
            Some(i) => write!(f, "cycle {}, inst {}: {}", self.cycle, i.raw(), self.message),
            None => write!(f, "cycle {}: {}", self.cycle, self.message),
        }
    }
}

/// Checks every structural invariant of `result` against `trace` and
/// `config`, returning all violations sorted by (cycle, instruction).
///
/// An empty vector means the schedule is structurally sound. The checks,
/// in the order applied per instruction:
///
/// 1. the recorded cluster exists;
/// 2. dispatch respects the front-end pipeline depth
///    (`dispatch ≥ fetch + depth`);
/// 3. readiness respects the dispatch floor (`ready ≥ dispatch + 1`);
/// 4. no instruction issues before it is ready (`issue ≥ ready`);
/// 5. execution latency matches the op class plus recorded memory
///    penalty, and the penalty is zero without an L1 miss;
/// 6. commit strictly follows completion (`commit > complete`);
/// 7. fetch, dispatch and commit are in program order;
/// 8. every operand (register and true memory dependence) is visible
///    before issue under the forwarding model
///    (`ready ≥ producer.complete + fwd`), and with unlimited broadcast
///    bandwidth the ready time *equals* the analytic formula;
/// 9. a recorded [`ReadyBound::Operand`] names an actual dependence.
///
/// Then globally:
///
/// 10. per (cycle, cluster), issue width and per-port caps are honored;
/// 11. per cycle, commit and dispatch bandwidth are honored;
/// 12. window occupancy, replayed from dispatch/issue events, never
///     exceeds the per-cluster window size;
/// 13. ROB occupancy, replayed from dispatch/commit events, never
///     exceeds the ROB size;
/// 14. a fresh gshare replayed over the trace in program order
///     reproduces every recorded misprediction, and the aggregate
///     mispredict / conditional-branch / L1 counters match the records;
/// 15. the total cycle count is the last commit plus one.
pub fn check_invariants(
    config: &MachineConfig,
    trace: &Trace,
    result: &SimResult,
) -> Vec<Violation> {
    let mut v = Checker {
        config,
        trace,
        result,
        violations: Vec::new(),
    };
    v.check_all();
    v.violations
        .sort_by(|a, b| (a.cycle, a.inst.map(DynIdx::raw)).cmp(&(b.cycle, b.inst.map(DynIdx::raw))));
    v.violations
}

/// Runs `trace` through the production engine and verifies the result
/// with [`check_invariants`] — the `checked` run mode.
///
/// # Errors
///
/// Returns [`SimError::InvariantViolated`] carrying the first violation
/// (and the total count) if the engine produced a structurally invalid
/// schedule, or propagates the engine's own error.
pub fn simulate_checked(
    config: &MachineConfig,
    trace: &Trace,
    policy: &mut dyn SteeringPolicy,
) -> Result<SimResult, SimError> {
    let result = simulate(config, trace, policy)?;
    verify(config, trace, result)
}

/// Runs `trace` like [`simulate_checked`], under the cooperative bounds
/// in `budget` (see [`simulate_budgeted`]).
///
/// # Errors
///
/// [`simulate_checked`]'s errors, plus the budget outcomes
/// [`SimError::BudgetExhausted`] and [`SimError::Cancelled`].
pub fn simulate_checked_budgeted(
    config: &MachineConfig,
    trace: &Trace,
    policy: &mut dyn SteeringPolicy,
    budget: &SimBudget,
) -> Result<SimResult, SimError> {
    let result = simulate_budgeted(config, trace, policy, budget)?;
    verify(config, trace, result)
}

/// Runs `trace` like [`simulate_checked_budgeted`], reporting
/// observability events to `sink` (see
/// [`simulate_observed`](crate::simulate_observed)).
///
/// # Errors
///
/// Exactly [`simulate_checked_budgeted`]'s errors.
pub fn simulate_checked_observed<S: ccs_obs::MetricsSink>(
    config: &MachineConfig,
    trace: &Trace,
    policy: &mut dyn SteeringPolicy,
    budget: &SimBudget,
    sink: &mut S,
) -> Result<SimResult, SimError> {
    let result = crate::engine::simulate_observed(config, trace, policy, budget, sink)?;
    verify(config, trace, result)
}

/// Gates `result` on [`check_invariants`]: passes a clean result
/// through, converts any violation into [`SimError::InvariantViolated`].
///
/// # Errors
///
/// Returns [`SimError::InvariantViolated`] carrying the first violation
/// in (cycle, instruction) order and the total count.
pub fn verify(
    config: &MachineConfig,
    trace: &Trace,
    result: SimResult,
) -> Result<SimResult, SimError> {
    let violations = check_invariants(config, trace, &result);
    let count = violations.len();
    match violations.into_iter().next() {
        Some(first) => Err(SimError::InvariantViolated { first, count }),
        None => Ok(result),
    }
}

struct Checker<'a> {
    config: &'a MachineConfig,
    trace: &'a Trace,
    result: &'a SimResult,
    violations: Vec<Violation>,
}

impl Checker<'_> {
    fn fail(&mut self, cycle: Cycle, inst: Option<usize>, message: String) {
        self.violations.push(Violation {
            cycle,
            inst: inst.map(|i| DynIdx::new(i as u32)),
            message,
        });
    }

    fn check_all(&mut self) {
        if self.trace.is_empty() {
            if self.result.cycles != 0 {
                let cycles = self.result.cycles;
                self.fail(cycles, None, "empty trace must take zero cycles".into());
            }
            return;
        }
        let mem_deps = reference_memory_deps(self.trace);
        self.check_per_instruction(&mem_deps);
        self.check_issue_bandwidth();
        self.check_commit_and_dispatch_bandwidth();
        self.check_window_occupancy();
        self.check_rob_occupancy();
        self.check_predictor_replay();
        self.check_totals();
    }

    fn check_per_instruction(&mut self, mem_deps: &[Option<u32>]) {
        let insts = self.trace.as_slice();
        let records = &self.result.records;
        let clusters = self.config.cluster_count();
        let depth = self.config.front_end.depth_to_dispatch as Cycle;
        let unlimited_bcast = self.config.forward_bandwidth.is_none();

        for (i, r) in records.iter().enumerate() {
            let inst = &insts[i];
            if (r.cluster as usize) >= clusters {
                self.fail(
                    r.dispatch,
                    Some(i),
                    format!("steered to cluster {} of {clusters}", r.cluster),
                );
                continue; // every later check would index out of range
            }
            if r.dispatch < r.fetch + depth {
                self.fail(
                    r.dispatch,
                    Some(i),
                    format!(
                        "dispatched at {} before clearing the {depth}-stage front end \
                         (fetched at {})",
                        r.dispatch, r.fetch
                    ),
                );
            }
            if r.ready < r.dispatch + 1 {
                self.fail(
                    r.ready,
                    Some(i),
                    format!("ready at {} under the dispatch floor {}", r.ready, r.dispatch + 1),
                );
            }
            if r.issue < r.ready {
                self.fail(
                    r.issue,
                    Some(i),
                    format!("issued at {} before ready at {}", r.issue, r.ready),
                );
            }
            let expected_latency = inst.op().latency() as Cycle + r.mem_extra as Cycle;
            if r.complete != r.issue + expected_latency {
                self.fail(
                    r.complete,
                    Some(i),
                    format!(
                        "{} completed after {} cycles; the op class plus memory penalty \
                         takes {expected_latency}",
                        inst.op(),
                        // Saturate: a corrupt schedule can complete "before"
                        // issuing, and the checker must stay total on garbage.
                        r.complete.saturating_sub(r.issue)
                    ),
                );
            }
            if !r.l1_miss && r.mem_extra != 0 {
                self.fail(
                    r.issue,
                    Some(i),
                    format!("{} extra memory cycles without an L1 miss", r.mem_extra),
                );
            }
            if r.commit <= r.complete {
                self.fail(
                    r.commit,
                    Some(i),
                    format!("committed at {} but completed at {}", r.commit, r.complete),
                );
            }
            if i > 0 {
                let p = &records[i - 1];
                for (what, a, b) in [
                    ("fetch", p.fetch, r.fetch),
                    ("dispatch", p.dispatch, r.dispatch),
                    ("commit", p.commit, r.commit),
                ] {
                    if b < a {
                        self.fail(
                            b,
                            Some(i),
                            format!("{what} at {b} precedes the previous instruction's {a}"),
                        );
                    }
                }
            }

            // Operand visibility: register dependences plus the true
            // memory dependence, under the forwarding model.
            let deps = inst
                .deps
                .iter()
                .filter_map(|d| *d)
                .chain(mem_deps[i].map(DynIdx::new));
            let mut analytic_ready = r.dispatch + 1;
            for p in deps.clone() {
                let pr = &records[p.index()];
                let fwd = self
                    .config
                    .forwarding_between(pr.cluster as usize, r.cluster as usize)
                    as Cycle;
                let visible = pr.complete + fwd;
                if r.ready < visible {
                    self.fail(
                        r.ready,
                        Some(i),
                        format!(
                            "ready at {} before operand from inst {} becomes visible at \
                             {visible} (complete {} + fwd {fwd})",
                            r.ready,
                            p.raw(),
                            pr.complete
                        ),
                    );
                }
                analytic_ready = analytic_ready.max(visible);
            }
            if unlimited_bcast && r.ready != analytic_ready {
                self.fail(
                    r.ready,
                    Some(i),
                    format!(
                        "ready at {} but operands and the dispatch floor imply \
                         exactly {analytic_ready}",
                        r.ready
                    ),
                );
            }
            if let ReadyBound::Operand { producer, .. } = r.ready_bound {
                if !deps.clone().any(|d| d == producer) {
                    self.fail(
                        r.ready,
                        Some(i),
                        format!(
                            "ready bound names inst {} which is not a dependence",
                            producer.raw()
                        ),
                    );
                }
            }
        }
    }

    fn check_issue_bandwidth(&mut self) {
        let insts = self.trace.as_slice();
        // (cycle, cluster) -> [width, int, fp, mem] slots consumed.
        let mut used: HashMap<(Cycle, u8), [usize; 4]> = HashMap::new();
        for (i, r) in self.result.records.iter().enumerate() {
            let slot = match insts[i].op().port() {
                PortKind::Int => 1,
                PortKind::Fp => 2,
                PortKind::Mem => 3,
            };
            let u = used.entry((r.issue, r.cluster)).or_default();
            u[0] += 1;
            u[slot] += 1;
        }
        let caps = [
            ("issue width", self.config.cluster.issue_width),
            ("int ports", self.config.cluster.int_ports),
            ("fp ports", self.config.cluster.fp_ports),
            ("mem ports", self.config.cluster.mem_ports),
        ];
        let mut over: Vec<_> = used
            .into_iter()
            .flat_map(|((cycle, cluster), u)| {
                caps.into_iter()
                    .enumerate()
                    .filter(move |&(k, (_, cap))| u[k] > cap)
                    .map(move |(k, (what, cap))| (cycle, cluster, what, u[k], cap))
            })
            .collect();
        over.sort();
        for (cycle, cluster, what, got, cap) in over {
            self.fail(
                cycle,
                None,
                format!("cluster {cluster} issued {got} instructions against its {what} of {cap}"),
            );
        }
    }

    fn check_commit_and_dispatch_bandwidth(&mut self) {
        type TimeOf = fn(&crate::record::InstRecord) -> Cycle;
        let cases: [(&str, usize, TimeOf); 3] = [
            ("commit width", self.config.commit_width, |r| r.commit),
            ("dispatch width", self.config.front_end.fetch_width, |r| r.dispatch),
            ("fetch width", self.config.front_end.fetch_width, |r| r.fetch),
        ];
        for (what, cap, time_of) in cases {
            let mut per_cycle: HashMap<Cycle, usize> = HashMap::new();
            for t in self.result.records.iter().map(time_of) {
                *per_cycle.entry(t).or_default() += 1;
            }
            let mut over: Vec<_> = per_cycle.into_iter().filter(|&(_, n)| n > cap).collect();
            over.sort_unstable();
            for (cycle, n) in over {
                self.fail(cycle, None, format!("{n} instructions against a {what} of {cap}"));
            }
        }
    }

    /// Replays dispatch (+1) and issue (−1) events per cluster. An entry
    /// leaves the window the cycle it issues, and that slot is reusable
    /// the same cycle (issue runs before dispatch in the engine's stage
    /// order), so removals sort before additions within a cycle.
    fn check_window_occupancy(&mut self) {
        let cap = self.config.cluster.window_entries;
        let clusters = self.config.cluster_count();
        // (cycle, phase, delta): phase 0 = issue removals, 1 = dispatch adds.
        let mut events: Vec<Vec<(Cycle, u8, i64)>> = vec![Vec::new(); clusters];
        for r in &self.result.records {
            let Some(ev) = events.get_mut(r.cluster as usize) else {
                continue; // out-of-range cluster already reported
            };
            ev.push((r.dispatch, 1, 1));
            ev.push((r.issue, 0, -1));
        }
        for (c, mut ev) in events.into_iter().enumerate() {
            ev.sort_unstable();
            let mut occ: i64 = 0;
            let mut reported = false;
            for (cycle, _, delta) in ev {
                occ += delta;
                if occ > cap as i64 && !reported {
                    self.fail(
                        cycle,
                        None,
                        format!("cluster {c} window holds {occ} entries of {cap}"),
                    );
                    reported = true; // one report per cluster is enough
                }
            }
        }
    }

    /// Replays dispatch (+1) and commit (−1) events against the ROB. The
    /// engine commits before it dispatches within a cycle, so removals
    /// sort first here too.
    fn check_rob_occupancy(&mut self) {
        let cap = self.config.rob_entries;
        let mut ev: Vec<(Cycle, u8, i64)> = Vec::with_capacity(self.result.records.len() * 2);
        for r in &self.result.records {
            ev.push((r.dispatch, 1, 1));
            ev.push((r.commit, 0, -1));
        }
        ev.sort_unstable();
        let mut occ: i64 = 0;
        for (cycle, _, delta) in ev {
            occ += delta;
            if occ > cap as i64 {
                self.fail(cycle, None, format!("ROB holds {occ} entries of {cap}"));
                return;
            }
        }
    }

    /// Fetch is in order, so a fresh gshare consulted once per
    /// conditional branch in program order must reproduce exactly the
    /// recorded mispredictions.
    fn check_predictor_replay(&mut self) {
        let mut bp = Gshare::new(self.config.front_end.gshare_history_bits);
        let mut conditional = 0u64;
        let mut mispredicted = 0u64;
        for (i, inst) in self.trace.as_slice().iter().enumerate() {
            let r = &self.result.records[i];
            let is_cond = inst
                .branch
                .is_some_and(|b| b.class == BranchClass::Conditional);
            if !is_cond {
                if r.mispredicted {
                    self.fail(
                        r.fetch,
                        Some(i),
                        "mispredict recorded on a non-conditional instruction".into(),
                    );
                }
                continue;
            }
            // Invariant: `is_cond` above required `inst.branch` to be a
            // Some(Conditional).
            let br = inst.branch.expect("conditional branch has an outcome");
            conditional += 1;
            let pred = bp.predict(inst.pc());
            bp.update(inst.pc(), br.taken);
            let miss = pred != br.taken;
            mispredicted += miss as u64;
            if r.mispredicted != miss {
                self.fail(
                    r.fetch,
                    Some(i),
                    format!(
                        "gshare replay says mispredicted={miss}, record says {}",
                        r.mispredicted
                    ),
                );
            }
        }
        if conditional != self.result.conditional_branches {
            self.fail(
                0,
                None,
                format!(
                    "{} conditional branches in the trace, {} counted",
                    conditional, self.result.conditional_branches
                ),
            );
        }
        if mispredicted != self.result.mispredicts {
            self.fail(
                0,
                None,
                format!(
                    "gshare replay mispredicts {} branches, result counts {}",
                    mispredicted, self.result.mispredicts
                ),
            );
        }
    }

    fn check_totals(&mut self) {
        let records = &self.result.records;
        // Invariant: `check_all` returns early for empty traces before
        // calling this.
        let last_commit = records.last().expect("non-empty trace").commit;
        if self.result.cycles != last_commit + 1 {
            self.fail(
                self.result.cycles,
                None,
                format!("run took {} cycles but the last commit is at {last_commit}", self.result.cycles),
            );
        }
        let mem_insts = self
            .trace
            .as_slice()
            .iter()
            .filter(|i| i.mem_addr.is_some())
            .count() as u64;
        if self.result.l1_accesses != mem_insts {
            self.fail(
                0,
                None,
                format!(
                    "{} L1 accesses counted for {mem_insts} memory instructions",
                    self.result.l1_accesses
                ),
            );
        }
        let misses = records.iter().filter(|r| r.l1_miss).count() as u64;
        if self.result.l1_misses != misses {
            self.fail(
                0,
                None,
                format!(
                    "{} L1 misses counted but {misses} records carry the miss flag",
                    self.result.l1_misses
                ),
            );
        }
    }
}

/// Memory dependences re-resolved the obvious way: a `HashMap` sweep
/// tracking the last store per 8-byte word, independent of the engine's
/// open-addressed table.
fn reference_memory_deps(trace: &Trace) -> Vec<Option<u32>> {
    let mut last_store: HashMap<u64, u32> = HashMap::new();
    trace
        .as_slice()
        .iter()
        .enumerate()
        .map(|(i, inst)| match (inst.op(), inst.mem_addr) {
            (OpClass::Store, Some(addr)) => {
                last_store.insert(addr >> 3, i as u32);
                None
            }
            (OpClass::Load, Some(addr)) => last_store.get(&(addr >> 3)).copied(),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::LeastLoaded;
    use ccs_isa::ClusterLayout;
    use ccs_trace::Benchmark;

    fn checked_run(layout: ClusterLayout) -> SimResult {
        let trace = Benchmark::Vpr.generate(1, 2_000);
        let cfg = MachineConfig::micro05_baseline().with_layout(layout);
        simulate_checked(&cfg, &trace, &mut LeastLoaded).expect("engine satisfies its invariants")
    }

    #[test]
    fn engine_results_pass_on_every_layout() {
        for layout in ClusterLayout::ALL {
            let r = checked_run(layout);
            assert!(r.cycles > 0);
        }
    }

    #[test]
    fn limited_bandwidth_results_pass() {
        let trace = Benchmark::Gzip.generate(2, 1_500);
        let cfg = MachineConfig::micro05_baseline()
            .with_layout(ClusterLayout::C4x2w)
            .with_forward_bandwidth(Some(1));
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        assert_eq!(check_invariants(&cfg, &trace, &result), vec![]);
    }

    #[test]
    fn tampered_issue_cycle_is_caught() {
        let trace = Benchmark::Vpr.generate(1, 500);
        let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C2x4w);
        let mut result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        // Pull one instruction's issue a cycle early: breaks issue ≥ ready
        // (or, if it was contention-delayed, the latency identity).
        let victim = result
            .records
            .iter()
            .position(|r| r.issue == r.ready && r.issue > 0)
            .expect("some instruction issues the cycle it becomes ready");
        result.records[victim].issue -= 1;
        let violations = check_invariants(&cfg, &trace, &result);
        assert!(
            violations.iter().any(|v| v.inst == Some(DynIdx::new(victim as u32))),
            "tampering went unnoticed: {violations:?}"
        );
    }

    #[test]
    fn tampered_cluster_is_caught() {
        let trace = Benchmark::Gap.generate(1, 400);
        let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C2x4w);
        let mut result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        result.records[10].cluster = 7; // only clusters 0 and 1 exist
        let violations = check_invariants(&cfg, &trace, &result);
        assert!(violations.iter().any(|v| v.message.contains("cluster 7")));
    }

    #[test]
    fn tampered_mispredict_flag_is_caught() {
        let trace = Benchmark::Gcc.generate(1, 800);
        let cfg = MachineConfig::micro05_baseline();
        let mut result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let branch = result
            .records
            .iter()
            .position(|r| r.mispredicted)
            .expect("gcc model mispredicts within 800 instructions");
        result.records[branch].mispredicted = false;
        let violations = check_invariants(&cfg, &trace, &result);
        assert!(violations.iter().any(|v| v.message.contains("gshare replay")));
    }

    #[test]
    fn tampered_cycle_total_is_caught() {
        let trace = Benchmark::Gap.generate(1, 300);
        let cfg = MachineConfig::micro05_baseline();
        let mut result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        result.cycles += 1;
        let violations = check_invariants(&cfg, &trace, &result);
        assert!(violations.iter().any(|v| v.message.contains("last commit")));
    }

    #[test]
    fn violations_render_location() {
        let v = Violation {
            cycle: 42,
            inst: Some(DynIdx::new(7)),
            message: "boom".into(),
        };
        assert_eq!(v.to_string(), "cycle 42, inst 7: boom");
        let v = Violation {
            cycle: 3,
            inst: None,
            message: "boom".into(),
        };
        assert_eq!(v.to_string(), "cycle 3: boom");
    }

    #[test]
    fn checked_error_reports_first_violation() {
        let trace = Benchmark::Gap.generate(1, 300);
        let cfg = MachineConfig::micro05_baseline();
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        // Confirm the checked entry point agrees with the plain engine on
        // a sound run.
        let checked = simulate_checked(&cfg, &trace, &mut LeastLoaded).unwrap();
        assert_eq!(checked.cycles, result.cycles);
        assert_eq!(checked.records, result.records);
    }
}
