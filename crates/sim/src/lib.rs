//! Cycle-level clustered out-of-order superscalar timing simulator.
//!
//! This crate implements the paper's simulated machine family from
//! scratch: a monolithic front end (8-wide fetch, 13 stages to dispatch,
//! 16-bit gshare) feeding a partitioned execution core — 1, 2, 4 or 8
//! clusters, each a self-contained dynamically-scheduled core with its own
//! scheduling window and issue ports, connected by a global bypass network
//! with a configurable forwarding latency (Figure 1 / Table 1 of the
//! paper).
//!
//! Cluster assignment ([`SteeringPolicy::steer`]) and scheduling priority
//! ([`SteeringPolicy::priority`]) are pluggable: every policy the paper
//! studies (dependence-based, focused, LoC-scheduled, stall-over-steer,
//! proactive load-balancing) is an implementation of the same trait, in
//! the `ccs-core` crate.
//!
//! The simulator records, per dynamic instruction, the cycle of every
//! pipeline event *and the binding constraint* that determined it
//! ([`DispatchBound`], [`ReadyBound`], [`CommitBound`]), which is what
//! lets `ccs-critpath` reconstruct the Fields dependence graph exactly.
//!
//! # Example
//!
//! ```
//! use ccs_isa::{ClusterLayout, MachineConfig};
//! use ccs_sim::{simulate, policies::LeastLoaded};
//! use ccs_trace::Benchmark;
//!
//! let trace = Benchmark::Gzip.generate(1, 5_000);
//! let config = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
//! let result = simulate(&config, &trace, &mut LeastLoaded::default()).unwrap();
//! assert!(result.cpi() > 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
mod engine;
pub mod policies;
mod policy;
mod record;
mod result;
pub mod viz;

pub use check::{
    check_invariants, simulate_checked, simulate_checked_budgeted, simulate_checked_observed,
    verify, Violation,
};
pub use engine::{simulate, simulate_budgeted, simulate_observed, SimBudget, SimError};
// Observability vocabulary, re-exported so engine callers need not depend
// on `ccs-obs` directly.
pub use ccs_obs::{DispatchStall, MetricsSink, NullSink, RunObserver, SimMetrics};
pub use policy::{
    ProducerInfo, SteerCause, SteerDecision, SteerOutcome, SteerView, SteeringPolicy,
};
pub use record::{CommitBound, Cycle, DispatchBound, InstRecord, ReadyBound};
pub use result::{IlpCensus, SimResult};
