//! The cycle-level simulation engine.
//!
//! Each simulated cycle processes, in order: commit, issue (per cluster),
//! dispatch/steer, fetch. Event times and binding constraints are recorded
//! per instruction as they are determined; see the crate docs for the
//! pipeline model.

use crate::policy::{ProducerInfo, SteerDecision, SteerView, SteeringPolicy};
use crate::record::{CommitBound, Cycle, DispatchBound, InstRecord, ReadyBound};
use crate::result::{IlpCensus, SimResult};
use ccs_isa::{BranchClass, MachineConfig, PortKind};
use ccs_obs::{DispatchStall, MetricsSink, NullSink};
use ccs_trace::{DynIdx, Trace};
use ccs_uarch::{BranchPredictor, Gshare, SetAssocCache};
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Errors a simulation run can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The simulation exceeded its internal progress limit — indicates a
    /// deadlocked policy (e.g. one that stalls forever).
    CycleLimitExceeded {
        /// The cycle at which the simulation gave up.
        cycle: Cycle,
        /// Instructions committed by then.
        committed: usize,
        /// Instructions in the trace.
        total: usize,
    },
    /// The caller-imposed [`SimBudget::max_cycles`] ran out before the
    /// trace committed. Unlike [`CycleLimitExceeded`](Self::CycleLimitExceeded)
    /// this is a *watchdog* outcome: the run may have been healthy but
    /// slow, and the grid executor reports it as a deterministic timeout.
    BudgetExhausted {
        /// The budget that ran out.
        budget: Cycle,
        /// Instructions committed by then.
        committed: usize,
        /// Instructions in the trace.
        total: usize,
    },
    /// The run observed its [`SimBudget::cancel`] flag and stopped
    /// cooperatively — the executor's wall-clock watchdog fired.
    Cancelled {
        /// The cycle at which cancellation was observed.
        cycle: Cycle,
        /// Instructions committed by then.
        committed: usize,
        /// Instructions in the trace.
        total: usize,
    },
    /// The `checked` run mode ([`simulate_checked`](crate::simulate_checked))
    /// found the engine's schedule violating a structural invariant.
    InvariantViolated {
        /// The first violation in (cycle, instruction) order.
        first: crate::check::Violation,
        /// Total violations found.
        count: usize,
    },
}

impl SimError {
    /// Whether this error is a watchdog outcome (budget or cancellation)
    /// rather than a genuine simulation defect.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            SimError::BudgetExhausted { .. } | SimError::Cancelled { .. }
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleLimitExceeded {
                cycle,
                committed,
                total,
            } => write!(
                f,
                "cycle limit exceeded at cycle {cycle} with {committed}/{total} committed \
                 (deadlocked steering policy?)"
            ),
            SimError::BudgetExhausted {
                budget,
                committed,
                total,
            } => write!(
                f,
                "cycle budget of {budget} exhausted with {committed}/{total} committed"
            ),
            SimError::Cancelled {
                cycle,
                committed,
                total,
            } => write!(
                f,
                "cancelled at cycle {cycle} with {committed}/{total} committed"
            ),
            SimError::InvariantViolated { first, count } => {
                write!(f, "{count} structural invariant violation(s); first: {first}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Cooperative execution bounds for a simulation run.
///
/// The engine's cycle loop checks these at every iteration head: a run
/// that exceeds `max_cycles` returns [`SimError::BudgetExhausted`], and
/// one whose `cancel` flag is raised (polled every
/// [`CANCEL_POLL_CYCLES`](SimBudget::CANCEL_POLL_CYCLES) cycles to keep
/// the hot loop cheap) returns [`SimError::Cancelled`]. The default
/// budget is unbounded, reproducing plain [`simulate`] behaviour.
///
/// `max_cycles` gives *deterministic* timeouts — the same configuration
/// always gives up at the same cycle — while `cancel` is the hook for
/// the grid executor's nondeterministic wall-clock watchdog.
#[derive(Debug, Clone, Default)]
pub struct SimBudget {
    /// Give up once the cycle counter passes this value.
    pub max_cycles: Option<Cycle>,
    /// Shared flag a watchdog can raise to stop the run cooperatively.
    pub cancel: Option<Arc<AtomicBool>>,
}

impl SimBudget {
    /// How often (in simulated cycles) the cancel flag is polled.
    pub const CANCEL_POLL_CYCLES: Cycle = 1024;

    /// An unbounded budget (the default).
    pub fn unbounded() -> Self {
        Self::default()
    }

    /// A budget that gives up after `max_cycles` simulated cycles.
    pub fn with_max_cycles(mut self, max_cycles: Cycle) -> Self {
        self.max_cycles = Some(max_cycles);
        self
    }

    /// A budget that watches `cancel` and stops when it is raised.
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> Self {
        self.cancel = Some(cancel);
        self
    }
}

const NOT_YET: Cycle = Cycle::MAX;

/// Sentinel for "no instruction" in the intrusive waiter lists.
const NO_INST: u32 = u32::MAX;

/// Size of the wakeup calendar ring, in cycles (power of two). Covers
/// every op latency plus the worst L1+L2 miss path with room to spare;
/// the rare events farther out (broadcast-bandwidth backlog) spill into
/// the overflow heap.
const WAKEUP_HORIZON: usize = 512;

/// Reusable structure-of-arrays state for the cycle loop.
///
/// The engine used to keep a `Vec<WinEntry>` per cluster and rescan
/// every in-window instruction every cycle to recompute readiness —
/// O(cycles × window × deps). This scratch flattens all per-entry state
/// into flat arrays indexed by dynamic instruction and drives readiness
/// *event-driven*: an instruction is examined only when its last
/// outstanding operand's producer issues (see `try_determine_ready`),
/// and surfaces for selection exactly at its ready cycle via the wakeup
/// calendar. The steady-state cycle loop is allocation-free: every
/// buffer here is reused across cycles.
#[derive(Debug, Default)]
struct SimScratch {
    /// Instructions whose determined ready time has arrived and that
    /// have not issued yet, one list per cluster. Kept permanently in
    /// selection order — descending priority, ascending index — by
    /// binary insertion at wakeup: the key is fixed at dispatch, issue
    /// removes entries in place, so no per-cycle sort is ever needed.
    ready_lists: Vec<Vec<u32>>,
    /// Compaction buffer for the per-cluster ready list during issue.
    keep: Vec<u32>,
    /// Wakeup calendar: ring of `WAKEUP_HORIZON` buckets indexed by
    /// `ready_cycle % WAKEUP_HORIZON`. Determined-but-future entries sit
    /// here until their ready cycle fires.
    wheel: Vec<Vec<u32>>,
    /// Determined entries whose ready cycle is `WAKEUP_HORIZON`-or-more
    /// cycles out (deep broadcast-bandwidth backlog); drained as the
    /// clock reaches them. Ordered pops keep firing deterministic.
    overflow: std::collections::BinaryHeap<std::cmp::Reverse<(Cycle, u32)>>,
    /// Head of the intrusive list of dispatched instructions parked on
    /// this producer (waiting for it to issue), per instruction.
    waiter_head: Vec<u32>,
    /// Next pointer of the intrusive waiter list, per instruction. Each
    /// parked instruction waits on exactly one unissued producer at a
    /// time, so one pointer suffices.
    waiter_next: Vec<u32>,
    /// Scheduling priority assigned at dispatch, per instruction.
    priority: Vec<i64>,
    /// Per-cluster window occupancy, maintained incrementally (+1 at
    /// dispatch, −1 at issue) and handed to the steering policy.
    occupancy: Vec<usize>,
    /// The same occupancy as `u32`, maintained only when the metrics
    /// sink is enabled, so `on_cycle` needs no per-cycle rebuild.
    occupancy_u32: Vec<u32>,
}

impl SimScratch {
    fn for_run(n: usize, clusters: usize, win_cap: usize, metrics: bool) -> Self {
        SimScratch {
            ready_lists: vec![Vec::with_capacity(win_cap); clusters],
            keep: Vec::with_capacity(win_cap),
            wheel: vec![Vec::new(); WAKEUP_HORIZON],
            overflow: std::collections::BinaryHeap::new(),
            waiter_head: vec![NO_INST; n],
            waiter_next: vec![NO_INST; n],
            priority: vec![0; n],
            occupancy: vec![0; clusters],
            occupancy_u32: if metrics { vec![0; clusters] } else { Vec::new() },
        }
    }

    /// Schedules instruction `idx` to surface for selection at cycle
    /// `ready` (strictly in the future relative to `now`).
    #[inline]
    fn schedule_wakeup(&mut self, idx: u32, ready: Cycle, now: Cycle) {
        debug_assert!(ready > now, "wakeups are always strictly future");
        if (ready - now) < WAKEUP_HORIZON as Cycle {
            self.wheel[(ready as usize) & (WAKEUP_HORIZON - 1)].push(idx);
        } else {
            self.overflow.push(std::cmp::Reverse((ready, idx)));
        }
    }

    /// Parks `consumer` on `producer` until the producer issues.
    #[inline]
    fn park(&mut self, consumer: u32, producer: u32) {
        self.waiter_next[consumer as usize] = self.waiter_head[producer as usize];
        self.waiter_head[producer as usize] = consumer;
    }

    /// Examines dispatched instruction `idx`: if every producer (register
    /// operands plus the true memory dependence) has issued, computes the
    /// ready time and binding constraint — the same pure function of the
    /// producers' completion/broadcast times the old per-cycle rescan
    /// evaluated — stamps the record, and schedules the wakeup; otherwise
    /// parks the instruction on the first unissued producer in operand
    /// order, exactly where the rescan's early-exit stopped.
    ///
    /// Ready times are strictly future at determination (an operand
    /// becomes visible no earlier than the cycle after its producer
    /// issues, and the dispatch floor is `dispatch + 1`), so scheduling
    /// into the calendar never loses a same-cycle wakeup.
    #[allow(clippy::too_many_arguments)]
    fn try_determine_ready(
        &mut self,
        idx: u32,
        now: Cycle,
        trace: &Trace,
        mem_dep: &[Option<u32>],
        completes: &[Cycle],
        broadcast: &[Cycle],
        records: &mut [InstRecord],
        config: &MachineConfig,
    ) {
        let i = idx as usize;
        let inst = &trace.as_slice()[i];
        let c = records[i].cluster as usize;
        let mut best: Option<(Cycle, u8, DynIdx, u32)> = None;
        let mem_operand = mem_dep[i].map(|s| (2usize, DynIdx::new(s)));
        for (slot, dep) in inst
            .deps
            .iter()
            .enumerate()
            .map(|(k, d)| (k, *d))
            .chain(mem_operand.map(|(k, d)| (k, Some(d))))
        {
            let Some(p) = &dep else { continue };
            let pc_complete = completes[p.index()];
            if pc_complete == NOT_YET {
                self.park(idx, p.index() as u32);
                return;
            }
            let pcluster = records[p.index()].cluster as usize;
            let fwd = config.forwarding_between(pcluster, c);
            // Remote consumers see the value after it has been broadcast
            // and traversed the network; local consumers bypass directly.
            let visible = if fwd == 0 {
                pc_complete
            } else {
                broadcast[p.index()] + fwd as Cycle
            };
            let eff_fwd = (visible - pc_complete) as u32;
            if best.is_none_or(|(v, ..)| visible > v) {
                best = Some((visible, slot as u8, *p, eff_fwd));
            }
        }
        let dispatch_floor = records[i].dispatch + 1;
        // Tie-breaking: when the operand arrives exactly at the dispatch
        // floor, prefer the dataflow edge (Fields' model follows E→E
        // edges) unless it would charge forwarding cycles that the
        // dispatch constraint already covers.
        let ready = match best {
            Some((visible, slot, producer, fwd))
                if visible > dispatch_floor || (visible == dispatch_floor && fwd == 0) =>
            {
                records[i].ready = visible;
                records[i].ready_bound = ReadyBound::Operand {
                    slot,
                    producer,
                    fwd,
                };
                visible
            }
            _ => {
                records[i].ready = dispatch_floor;
                records[i].ready_bound = ReadyBound::Dispatch;
                dispatch_floor
            }
        };
        self.schedule_wakeup(idx, ready, now);
    }
}

/// Runs `trace` through the machine described by `config` under `policy`.
///
/// # Examples
///
/// ```
/// use ccs_isa::{ClusterLayout, MachineConfig};
/// use ccs_sim::{policies::LeastLoaded, simulate};
/// use ccs_trace::Benchmark;
///
/// # fn main() -> Result<(), ccs_sim::SimError> {
/// let trace = Benchmark::Gap.generate(1, 1_000);
/// let machine = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C2x4w);
/// let result = simulate(&machine, &trace, &mut LeastLoaded)?;
/// assert_eq!(result.instructions(), trace.len());
/// assert!(result.ipc() > 0.0);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`SimError::CycleLimitExceeded`] if the machine stops making
/// progress (only possible with a policy that stalls unboundedly).
pub fn simulate(
    config: &MachineConfig,
    trace: &Trace,
    policy: &mut dyn SteeringPolicy,
) -> Result<SimResult, SimError> {
    simulate_budgeted(config, trace, policy, &SimBudget::unbounded())
}

/// Runs `trace` like [`simulate`], under the cooperative bounds in
/// `budget`.
///
/// # Errors
///
/// In addition to [`simulate`]'s errors, returns
/// [`SimError::BudgetExhausted`] when [`SimBudget::max_cycles`] runs out
/// and [`SimError::Cancelled`] when [`SimBudget::cancel`] is observed
/// raised.
pub fn simulate_budgeted(
    config: &MachineConfig,
    trace: &Trace,
    policy: &mut dyn SteeringPolicy,
    budget: &SimBudget,
) -> Result<SimResult, SimError> {
    // `NullSink::ENABLED` is `false`, so every observability hook in the
    // monomorphized body compiles to nothing: this path is the unobserved
    // engine, bit for bit.
    simulate_observed(config, trace, policy, budget, &mut NullSink)
}

/// Runs `trace` like [`simulate_budgeted`], reporting observability events
/// to `sink`.
///
/// The sink receives per-cycle cluster occupancy, issue-port grants,
/// steering decisions and stalls, cross-cluster bypass deliveries,
/// broadcast-slot waits, and dispatch stall causes — see
/// [`MetricsSink`] for the event vocabulary. Sinks are write-only
/// observers: the schedule and [`SimResult`] are bit-identical whichever
/// sink is supplied (enforced by `tests/metrics_observability.rs`).
///
/// # Errors
///
/// Exactly [`simulate_budgeted`]'s errors.
pub fn simulate_observed<S: MetricsSink>(
    config: &MachineConfig,
    trace: &Trace,
    policy: &mut dyn SteeringPolicy,
    budget: &SimBudget,
    sink: &mut S,
) -> Result<SimResult, SimError> {
    let n = trace.len();
    let clusters = config.cluster_count();
    let win_cap = config.cluster.window_entries;
    let fw = config.front_end.fetch_width;
    let depth = config.front_end.depth_to_dispatch as Cycle;

    let mut records = vec![InstRecord::empty(); n];
    let mut completes = vec![NOT_YET; n];
    // Perfect memory disambiguation (Table 1): a load depends on the
    // latest older store to the same 8-byte word — and *only* on true
    // conflicts (no false dependences). Resolved exactly from the trace,
    // once per trace (cached across epochs and grid cells).
    let mem_dep: &[Option<u32>] = trace.memory_deps();
    // Which mispredicted branch redirected this instruction's fetch.
    let mut redirect_of: Vec<Option<DynIdx>> = vec![None; n];
    // Bitmask of clusters a producer's value has been delivered to.
    let mut delivered: Vec<u8> = vec![0; n];

    let mut fe_queue: VecDeque<u32> = VecDeque::with_capacity(config.front_end.skid_buffer);
    // Incremental count of `fe_queue` entries that have cleared the
    // front-end pipe (`fetch + depth <= t`). Fetch times are
    // non-decreasing along the queue, so cleared entries form a prefix;
    // a maturity ring (slot `tf % ring` = instructions fetched at cycle
    // `tf`, still inside the pipe) replaces the per-cycle prefix scan.
    let pipe_ring = depth as usize + 1;
    let mut maturing: Vec<usize> = vec![0; pipe_ring];
    let mut waiting: usize = 0;

    let mut bp = Gshare::new(config.front_end.gshare_history_bits);
    let mut l1 = SetAssocCache::from_config(&config.memory);
    let mut l2 = config
        .memory
        .l2
        .map(|c| SetAssocCache::new(c.bytes, c.ways, c.line_bytes));
    // When the result becomes visible on the global bypass network (equals
    // the complete time unless broadcast bandwidth is limited).
    let mut broadcast = vec![NOT_YET; n];
    // Per-cluster broadcast slots in use, for limited-bandwidth networks.
    let mut bcast_used: Vec<std::collections::HashMap<Cycle, u32>> =
        vec![std::collections::HashMap::new(); clusters];

    let mut next_fetch: usize = 0;
    let mut next_commit: usize = 0;
    let mut dispatched: usize = 0;
    let mut fetch_blocked_on: Option<DynIdx> = None;
    let mut fetch_resume: Cycle = 0;
    let mut redirect_pending: Option<DynIdx> = None;

    // Per-cluster most recent issue (for SteerStall::freed_by attribution).
    let mut last_issue: Vec<Option<DynIdx>> = vec![None; clusters];
    // Whether the instruction at the dispatch head was steer-stalled on a
    // previous cycle.
    let mut head_steer_stalled = false;

    let mut mispredicts: u64 = 0;
    let mut conditional_branches: u64 = 0;
    let mut global_values: u64 = 0;
    let mut steer_stall_cycles: u64 = 0;
    let mut ilp = IlpCensus::default();
    let mut scratch = SimScratch::for_run(n, clusters, win_cap, S::ENABLED);

    let limit: Cycle = 64 * n as Cycle + 100_000;
    let mut t: Cycle = 0;


    while next_commit < n {
        if t > limit {
            return Err(SimError::CycleLimitExceeded {
                cycle: t,
                committed: next_commit,
                total: n,
            });
        }
        if let Some(max) = budget.max_cycles {
            if t >= max {
                return Err(SimError::BudgetExhausted {
                    budget: max,
                    committed: next_commit,
                    total: n,
                });
            }
        }
        if let Some(cancel) = &budget.cancel {
            if t.is_multiple_of(SimBudget::CANCEL_POLL_CYCLES) && cancel.load(Ordering::Relaxed) {
                return Err(SimError::Cancelled {
                    cycle: t,
                    committed: next_commit,
                    total: n,
                });
            }
        }

        if S::ENABLED {
            // Maintained incrementally at dispatch/issue; no per-cycle
            // rebuild from the window state.
            sink.on_cycle(&scratch.occupancy_u32);
        }

        // Instructions fetched at `t - depth` exit the front-end pipe now
        // and start occupying skid-buffer entries.
        if t >= depth {
            let slot = ((t - depth) as usize) % pipe_ring;
            waiting += maturing[slot];
            maturing[slot] = 0;
        }

        // ---- Commit ------------------------------------------------------
        let mut committed_this_cycle = 0;
        while next_commit < dispatched
            && committed_this_cycle < config.commit_width
            && completes[next_commit] != NOT_YET
            && completes[next_commit] < t
        {
            let i = next_commit;
            let commit_bound = if completes[i] + 1 == t {
                CommitBound::Complete
            } else if i > 0 && records[i - 1].commit == t {
                CommitBound::InOrder
            } else if i >= config.commit_width && records[i - config.commit_width].commit + 1 == t
            {
                CommitBound::Bandwidth
            } else {
                // Late head whose predecessors committed earlier: the head
                // itself was the limiter on an earlier cycle but commit
                // bandwidth ran out; classify as bandwidth.
                CommitBound::Bandwidth
            };
            records[i].commit = t;
            records[i].commit_bound = commit_bound;
            let rec = records[i];
            policy.on_commit(DynIdx::new(i as u32), &trace.as_slice()[i], &rec);
            next_commit += 1;
            committed_this_cycle += 1;
        }
        if S::ENABLED {
            sink.on_commit(committed_this_cycle);
        }
        // ---- Issue -------------------------------------------------------
        // Fire the wakeups scheduled for this cycle: entries whose
        // determined ready time is `t` move from the calendar into their
        // cluster's ready list. Everything else stays untouched — no
        // per-cycle rescan of window contents.
        {
            let SimScratch {
                wheel,
                overflow,
                ready_lists,
                priority,
                ..
            } = &mut scratch;
            // Insert in selection order (descending priority, ascending
            // index): the same total order the old per-cycle sort
            // produced, so selection is bit-identical without sorting.
            let insert_ready = |lists: &mut Vec<Vec<u32>>, priority: &[i64], idx: u32| {
                let list = &mut lists[records[idx as usize].cluster as usize];
                let p = priority[idx as usize];
                let pos = list.partition_point(|&x| {
                    let px = priority[x as usize];
                    px > p || (px == p && x < idx)
                });
                list.insert(pos, idx);
            };
            for idx in wheel[(t as usize) & (WAKEUP_HORIZON - 1)].drain(..) {
                debug_assert_eq!(records[idx as usize].ready, t);
                insert_ready(ready_lists, priority, idx);
            }
            while let Some(&std::cmp::Reverse((r, idx))) = overflow.peek() {
                if r > t {
                    break;
                }
                debug_assert_eq!(r, t);
                overflow.pop();
                insert_ready(ready_lists, priority, idx);
            }
        }

        let mut available_total = 0usize;
        let mut issued_total = 0usize;
        let mut any_in_window = false;
        for c in 0..clusters {
            if scratch.occupancy[c] == 0 {
                continue;
            }
            any_in_window = true;
            available_total += scratch.ready_lists[c].len();
            if scratch.ready_lists[c].is_empty() {
                continue;
            }
            // Already in selection order (maintained at insertion).
            let ready = std::mem::take(&mut scratch.ready_lists[c]);

            let mut int_used = 0;
            let mut fp_used = 0;
            let mut mem_used = 0;
            let mut width_used = 0;
            scratch.keep.clear();
            for &idx in &ready {
                let i = idx as usize;
                if width_used >= config.cluster.issue_width {
                    scratch.keep.push(idx);
                    continue;
                }
                let inst = &trace.as_slice()[i];
                let (used, cap, port_idx) = match inst.op().port() {
                    PortKind::Int => (&mut int_used, config.cluster.int_ports, 0),
                    PortKind::Fp => (&mut fp_used, config.cluster.fp_ports, 1),
                    PortKind::Mem => (&mut mem_used, config.cluster.mem_ports, 2),
                };
                if *used >= cap {
                    scratch.keep.push(idx);
                    continue;
                }
                *used += 1;
                width_used += 1;
                issued_total += 1;
                if S::ENABLED {
                    sink.on_issue(c, port_idx);
                }

                // Execute.
                let mut latency = inst.op().latency() as Cycle;
                if let Some(addr) = inst.mem_addr {
                    let hit = l1.access(addr);
                    if !hit {
                        records[i].l1_miss = true;
                        let mut extra = config.memory.l2_latency;
                        if let (Some(l2), Some(l2cfg)) = (l2.as_mut(), config.memory.l2) {
                            if !l2.access(addr) {
                                extra += l2cfg.memory_latency;
                            }
                        }
                        records[i].mem_extra = extra;
                        latency += extra as Cycle;
                    }
                }
                records[i].issue = t;
                records[i].complete = t + latency;
                completes[i] = t + latency;
                // Broadcast scheduling: with limited bandwidth, the value
                // waits for a free slot on its cluster's egress.
                broadcast[i] = match config.forward_bandwidth {
                    None => t + latency,
                    Some(b) => {
                        let mut slot = t + latency;
                        loop {
                            let used = bcast_used[c].entry(slot).or_insert(0);
                            if *used < b {
                                *used += 1;
                                break;
                            }
                            slot += 1;
                        }
                        if S::ENABLED {
                            sink.on_broadcast_wait(c, slot - (t + latency));
                        }
                        slot
                    }
                };
                last_issue[c] = Some(DynIdx::new(idx));
                scratch.occupancy[c] -= 1;
                if S::ENABLED {
                    scratch.occupancy_u32[c] -= 1;
                }

                // Global-value accounting: one delivery per (producer,
                // consumer-cluster) pair.
                for dep in trace.as_slice()[i].producers() {
                    let pcluster = records[dep.index()].cluster as usize;
                    if pcluster != c {
                        let bit = 1u8 << c;
                        if delivered[dep.index()] & bit == 0 {
                            delivered[dep.index()] |= bit;
                            global_values += 1;
                            if S::ENABLED {
                                sink.on_bypass(pcluster, c);
                            }
                        }
                    }
                }

                // Event-driven wakeup: this issue fixed `completes[i]` and
                // `broadcast[i]`, so every consumer parked on `i` can now be
                // re-examined. Determined consumers land in the calendar
                // (their ready time is strictly future); the rest re-park on
                // their next unissued producer.
                let mut w = scratch.waiter_head[i];
                scratch.waiter_head[i] = NO_INST;
                while w != NO_INST {
                    let next = scratch.waiter_next[w as usize];
                    scratch.waiter_next[w as usize] = NO_INST;
                    scratch.try_determine_ready(
                        w,
                        t,
                        trace,
                        mem_dep,
                        &completes,
                        &broadcast,
                        &mut records,
                        config,
                    );
                    w = next;
                }
            }
            // The unissued ready entries stay ready for the next cycle;
            // `ready`'s buffer becomes the next compaction scratch.
            scratch.ready_lists[c] = std::mem::replace(&mut scratch.keep, ready);
        }
        if any_in_window {
            ilp.record(available_total, issued_total);
        }
        // ---- Dispatch / steer ---------------------------------------------
        let mut dispatched_this_cycle = 0;
        while dispatched_this_cycle < fw {
            let Some(&head) = fe_queue.front() else {
                if S::ENABLED {
                    sink.on_dispatch_stall(DispatchStall::FetchEmpty);
                }
                break;
            };
            let i = head as usize;
            if records[i].fetch + depth > t {
                if S::ENABLED {
                    sink.on_dispatch_stall(DispatchStall::FrontEndPipe);
                }
                break; // still in the front-end pipe
            }
            if dispatched - next_commit >= config.rob_entries {
                if S::ENABLED {
                    sink.on_dispatch_stall(DispatchStall::RobFull);
                }
                break; // ROB full
            }
            let inst = &trace.as_slice()[i];
            let mut producers = [None, None];
            for (slot, dep) in inst.deps.iter().enumerate() {
                if let Some(p) = dep {
                    let pcluster = records[p.index()].cluster as usize;
                    let pcomplete = completes[p.index()];
                    let visible_everywhere = pcomplete != NOT_YET
                        && broadcast[p.index()] + config.forward_latency as Cycle <= t;
                    producers[slot] = Some(ProducerInfo {
                        idx: *p,
                        pc: trace.as_slice()[p.index()].pc(),
                        cluster: pcluster,
                        completed: visible_everywhere,
                    });
                }
            }
            let view = SteerView {
                inst,
                idx: DynIdx::new(head),
                now: t,
                occupancy: &scratch.occupancy,
                capacity: win_cap,
                producers,
            };
            let outcome = policy.steer(&view);
            let (cluster, cause) = match outcome.decision {
                SteerDecision::To { cluster, cause } if scratch.occupancy[cluster] < win_cap => {
                    (cluster, cause)
                }
                _ => {
                    steer_stall_cycles += 1;
                    head_steer_stalled = true;
                    if S::ENABLED {
                        sink.on_steer_stall();
                        sink.on_dispatch_stall(DispatchStall::Steer);
                    }
                    break;
                }
            };
            if S::ENABLED {
                sink.on_steer(cluster, cause.index());
            }

            // Binding constraint for the dispatch time.
            let fe_time = records[i].fetch + depth;
            let bound = if fe_time == t {
                match redirect_of[i] {
                    Some(b) => DispatchBound::Redirect(b),
                    None => DispatchBound::FrontEnd,
                }
            } else if head_steer_stalled {
                DispatchBound::SteerStall {
                    freed_by: last_issue[cluster],
                }
            } else if i >= config.rob_entries && records[i - config.rob_entries].commit == t {
                DispatchBound::RobFull(DynIdx::new((i - config.rob_entries) as u32))
            } else {
                DispatchBound::InOrder
            };
            head_steer_stalled = false;

            let rec = &mut records[i];
            rec.dispatch = t;
            rec.cluster = cluster as u8;
            rec.steer_cause = cause;
            rec.predicted_critical = outcome.predicted_critical;
            rec.loc = outcome.loc;
            rec.dispatch_bound = bound;

            scratch.priority[i] = policy.priority(DynIdx::new(head), inst);
            scratch.occupancy[cluster] += 1;
            if S::ENABLED {
                scratch.occupancy_u32[cluster] += 1;
            }
            // Determine the entry's ready time now if every producer has
            // already issued; otherwise park it on the first unissued one.
            // Either way it surfaces for selection exactly at its ready
            // cycle — the window is never rescanned.
            scratch.try_determine_ready(
                head,
                t,
                trace,
                mem_dep,
                &completes,
                &broadcast,
                &mut records,
                config,
            );
            fe_queue.pop_front();
            // Only instructions that cleared the pipe reach dispatch.
            waiting -= 1;
            dispatched += 1;
            dispatched_this_cycle += 1;
        }
        // ---- Fetch ---------------------------------------------------------
        if let Some(b) = fetch_blocked_on {
            if completes[b.index()] != NOT_YET {
                fetch_resume = completes[b.index()] + 1;
                fetch_blocked_on = None;
                redirect_pending = Some(b);
            }
        }
        if fetch_blocked_on.is_none() && t >= fetch_resume {
            // The skid buffer bounds instructions that have exited the
            // front-end pipe but not dispatched; instructions still in
            // flight inside the pipe (fetched within the last `depth`
            // cycles) do not occupy buffer entries.
            debug_assert_eq!(
                waiting,
                fe_queue
                    .iter()
                    .take_while(|&&i| records[i as usize].fetch + depth <= t)
                    .count()
            );
            let in_pipe = fe_queue.len() - waiting;
            let mut fetched_this_cycle = 0;
            while fetched_this_cycle < fw
                && next_fetch < n
                && waiting + in_pipe + fetched_this_cycle
                    < config.front_end.skid_buffer + (depth as usize + 1) * fw
                && waiting < config.front_end.skid_buffer
            {
                let i = next_fetch;
                let inst = &trace.as_slice()[i];
                records[i].fetch = t;
                if let Some(r) = redirect_pending.take() {
                    redirect_of[i] = Some(r);
                }
                fe_queue.push_back(i as u32);
                maturing[(t as usize) % pipe_ring] += 1;
                next_fetch += 1;
                fetched_this_cycle += 1;

                if let Some(br) = inst.branch {
                    match br.class {
                        BranchClass::Conditional => {
                            conditional_branches += 1;
                            let pred = bp.predict(inst.pc());
                            bp.update(inst.pc(), br.taken);
                            if pred != br.taken {
                                mispredicts += 1;
                                records[i].mispredicted = true;
                                fetch_blocked_on = Some(DynIdx::new(i as u32));
                                break;
                            }
                        }
                        BranchClass::Unconditional => {}
                    }
                    if br.taken && config.front_end.break_on_taken {
                        break;
                    }
                }
            }
        }

        if config.forward_bandwidth.is_some() && t.is_multiple_of(4096) {
            for m in &mut bcast_used {
                m.retain(|&k, _| k + 1 >= t);
            }
        }
        t += 1;
    }

    debug_assert!(scratch.occupancy.iter().all(|&o| o == 0));
    debug_assert!(scratch.ready_lists.iter().all(Vec::is_empty));
    debug_assert!(scratch.wheel.iter().all(Vec::is_empty));
    debug_assert!(scratch.overflow.is_empty());
    debug_assert!(scratch.waiter_head.iter().all(|&w| w == NO_INST));
    debug_assert!(fe_queue.is_empty());
    debug_assert_eq!(waiting, 0);

    if S::ENABLED {
        sink.on_run_end(t, n as u64);
    }

    Ok(SimResult {
        config: *config,
        cycles: t,
        records,
        mispredicts,
        conditional_branches,
        l1_misses: l1.misses(),
        l1_accesses: l1.accesses(),
        global_values,
        ilp,
        steer_stall_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::LeastLoaded;
    use ccs_isa::ClusterLayout;
    use ccs_trace::Benchmark;

    fn setup() -> (MachineConfig, Trace) {
        let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C2x4w);
        let trace = Benchmark::Gzip.generate(3, 1_000);
        (cfg, trace)
    }

    #[test]
    fn unbounded_budget_matches_plain_simulate() {
        let (cfg, trace) = setup();
        let plain = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let budgeted =
            simulate_budgeted(&cfg, &trace, &mut LeastLoaded, &SimBudget::unbounded()).unwrap();
        assert_eq!(plain.cycles, budgeted.cycles);
        assert_eq!(plain.records, budgeted.records);
    }

    #[test]
    fn exhausted_budget_reports_deterministically() {
        let (cfg, trace) = setup();
        let budget = SimBudget::unbounded().with_max_cycles(50);
        let a = simulate_budgeted(&cfg, &trace, &mut LeastLoaded, &budget).unwrap_err();
        let b = simulate_budgeted(&cfg, &trace, &mut LeastLoaded, &budget).unwrap_err();
        assert_eq!(a, b, "budget exhaustion must be deterministic");
        assert!(a.is_timeout());
        match a {
            SimError::BudgetExhausted {
                budget: max,
                committed,
                total,
            } => {
                assert_eq!(max, 50);
                assert!(committed < total);
                assert_eq!(total, trace.len());
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
    }

    #[test]
    fn ample_budget_changes_nothing() {
        let (cfg, trace) = setup();
        let plain = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let budget = SimBudget::unbounded().with_max_cycles(plain.cycles + 1);
        let bounded = simulate_budgeted(&cfg, &trace, &mut LeastLoaded, &budget).unwrap();
        assert_eq!(plain.cycles, bounded.cycles);
    }

    #[test]
    fn raised_cancel_flag_stops_the_run() {
        let (cfg, trace) = setup();
        let flag = Arc::new(AtomicBool::new(true));
        let budget = SimBudget::unbounded().with_cancel(Arc::clone(&flag));
        let err = simulate_budgeted(&cfg, &trace, &mut LeastLoaded, &budget).unwrap_err();
        assert!(err.is_timeout());
        assert!(matches!(err, SimError::Cancelled { cycle: 0, .. }));
    }

    #[test]
    fn lowered_cancel_flag_changes_nothing() {
        let (cfg, trace) = setup();
        let plain = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let flag = Arc::new(AtomicBool::new(false));
        let budget = SimBudget::unbounded().with_cancel(flag);
        let free = simulate_budgeted(&cfg, &trace, &mut LeastLoaded, &budget).unwrap();
        assert_eq!(plain.cycles, free.cycles);
        assert_eq!(plain.records, free.records);
    }
}
