//! Per-instruction event records.

use crate::policy::SteerCause;
use ccs_trace::DynIdx;
use serde::{Deserialize, Serialize};

/// A simulated clock cycle.
pub type Cycle = u64;

/// The constraint that determined an instruction's dispatch cycle.
///
/// Dispatch time is the maximum of several lower bounds; the simulator
/// records which bound was binding so the critical-path analysis can
/// attribute the wait to the right category (Figure 5's `fetch`, `window`
/// and `br. mispr.` components).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DispatchBound {
    /// The front-end pipeline delivered the instruction this cycle
    /// (dispatch = fetch + depth) with no redirect involved.
    FrontEnd,
    /// As [`FrontEnd`](Self::FrontEnd), but the fetch itself was delayed
    /// by the resolution of the given mispredicted branch.
    Redirect(DynIdx),
    /// In-order dispatch: waited on the previous instruction (same-cycle
    /// ordering or dispatch-bandwidth limit).
    InOrder,
    /// Waited for a reorder-buffer entry, freed by the commit of the given
    /// instruction.
    RobFull(DynIdx),
    /// Steering held the instruction: its target cluster's window was full
    /// or the policy chose to stall (the §5 stall-over-steer behaviour).
    /// `freed_by` is the most recent instruction whose issue opened a slot
    /// in the cluster finally steered to, when one is known.
    SteerStall {
        /// Instruction whose issue freed the window slot.
        freed_by: Option<DynIdx>,
    },
}

/// The constraint that determined when an instruction became ready to
/// issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReadyBound {
    /// All operands were available before dispatch; readiness was bounded
    /// by the dispatch cycle itself (fetch-limited code).
    Dispatch,
    /// The last-arriving operand. `fwd` is the inter-cluster forwarding
    /// latency included in the arrival (0 when producer and consumer share
    /// a cluster).
    Operand {
        /// Source-operand slot (0 or 1).
        slot: u8,
        /// The producing dynamic instruction.
        producer: DynIdx,
        /// Forwarding cycles included in the arrival time.
        fwd: u32,
    },
}

/// The constraint that determined an instruction's commit cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommitBound {
    /// Committed as soon as execution completed.
    Complete,
    /// Waited for the preceding instruction (in-order commit).
    InOrder,
    /// Waited for commit bandwidth.
    Bandwidth,
}

/// Event times and binding constraints for one dynamic instruction.
///
/// All cycle fields are filled by the end of simulation; `ready`, `issue`
/// and friends are meaningful only after the corresponding pipeline stage
/// has processed the instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstRecord {
    /// Cycle the instruction was fetched.
    pub fetch: Cycle,
    /// Cycle the instruction entered its cluster's scheduling window.
    pub dispatch: Cycle,
    /// First cycle the instruction could have issued (operands visible).
    pub ready: Cycle,
    /// Cycle the instruction issued to a functional unit.
    pub issue: Cycle,
    /// Cycle the result became available to same-cluster consumers.
    pub complete: Cycle,
    /// Cycle the instruction committed.
    pub commit: Cycle,
    /// The cluster the instruction executed on.
    pub cluster: u8,
    /// Whether this is a conditional branch the front end mispredicted.
    pub mispredicted: bool,
    /// Whether a load/store missed in the L1.
    pub l1_miss: bool,
    /// Extra memory cycles beyond the op's base latency (L2 access and,
    /// with a finite L2, main-memory latency).
    pub mem_extra: u32,
    /// Why the instruction dispatched when it did.
    pub dispatch_bound: DispatchBound,
    /// Why the instruction became ready when it did.
    pub ready_bound: ReadyBound,
    /// Why the instruction committed when it did.
    pub commit_bound: CommitBound,
    /// The steering policy's placement rationale.
    pub steer_cause: SteerCause,
    /// Whether the policy considered the instruction critical at dispatch
    /// (false for policies without a criticality predictor).
    pub predicted_critical: bool,
    /// The policy's likelihood-of-criticality estimate at dispatch, in
    /// `[0, 1]` (0 for policies without an LoC predictor).
    pub loc: f32,
}

impl InstRecord {
    pub(crate) fn empty() -> Self {
        InstRecord {
            fetch: 0,
            dispatch: 0,
            ready: 0,
            issue: 0,
            complete: 0,
            commit: 0,
            cluster: 0,
            mispredicted: false,
            l1_miss: false,
            mem_extra: 0,
            dispatch_bound: DispatchBound::FrontEnd,
            ready_bound: ReadyBound::Dispatch,
            commit_bound: CommitBound::Complete,
            steer_cause: SteerCause::Only,
            predicted_critical: false,
            loc: 0.0,
        }
    }

    /// Cycles the instruction spent ready but not issued — the §3/§4
    /// *contention* exposure.
    #[inline]
    pub fn contention_wait(&self) -> u64 {
        self.issue.saturating_sub(self.ready)
    }

    /// Forwarding cycles on the last-arriving operand (0 if readiness was
    /// dispatch-bound or the operand was local).
    #[inline]
    pub fn forwarding_on_ready(&self) -> u32 {
        match self.ready_bound {
            ReadyBound::Operand { fwd, .. } => fwd,
            ReadyBound::Dispatch => 0,
        }
    }

    /// Execution latency actually observed (complete − issue).
    #[inline]
    pub fn exec_latency(&self) -> u64 {
        self.complete - self.issue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_wait_is_issue_minus_ready() {
        let mut r = InstRecord::empty();
        r.ready = 10;
        r.issue = 13;
        assert_eq!(r.contention_wait(), 3);
        r.issue = 10;
        assert_eq!(r.contention_wait(), 0);
    }

    #[test]
    fn forwarding_on_ready_reads_bound() {
        let mut r = InstRecord::empty();
        assert_eq!(r.forwarding_on_ready(), 0);
        r.ready_bound = ReadyBound::Operand {
            slot: 1,
            producer: DynIdx::new(3),
            fwd: 2,
        };
        assert_eq!(r.forwarding_on_ready(), 2);
    }

    #[test]
    fn exec_latency() {
        let mut r = InstRecord::empty();
        r.issue = 5;
        r.complete = 8;
        assert_eq!(r.exec_latency(), 3);
    }
}
