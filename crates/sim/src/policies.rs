//! Baseline steering policies that ship with the simulator.
//!
//! These are the policy-free reference points: trivial monolithic
//! steering, naive load balancing, and round-robin distribution. The
//! paper's dependence-based, focused, and criticality-driven policies
//! build on predictors and live in `ccs-core`.

use crate::policy::{SteerCause, SteerOutcome, SteerView, SteeringPolicy};

/// Steers every instruction to the least-loaded cluster with space;
/// stalls only when every window is full. Oldest-first scheduling.
///
/// On a monolithic machine this is the trivial (only possible) policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoaded;

impl SteeringPolicy for LeastLoaded {
    fn steer(&mut self, view: &SteerView<'_>) -> SteerOutcome {
        match view.least_loaded_with_space() {
            Some(c) => {
                let cause = if view.clusters() == 1 {
                    SteerCause::Only
                } else if view.pending_producers().next().is_some() {
                    SteerCause::LoadBalance
                } else {
                    SteerCause::NoDeps
                };
                SteerOutcome::to(c, cause)
            }
            None => SteerOutcome::stall(),
        }
    }

    fn name(&self) -> &str {
        "least-loaded"
    }
}

/// Distributes dispatching instructions round-robin over the clusters,
/// skipping full ones. A locality-blind baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
}

impl SteeringPolicy for RoundRobin {
    fn steer(&mut self, view: &SteerView<'_>) -> SteerOutcome {
        let n = view.clusters();
        for k in 0..n {
            let c = (self.next + k) % n;
            if view.has_space(c) {
                self.next = (c + 1) % n;
                let cause = if n == 1 {
                    SteerCause::Only
                } else {
                    SteerCause::NoDeps
                };
                return SteerOutcome::to(c, cause);
            }
        }
        SteerOutcome::stall()
    }

    fn name(&self) -> &str {
        "round-robin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::record::{DispatchBound, ReadyBound};
    use ccs_isa::{ArchReg, ClusterLayout, MachineConfig, OpClass, Pc, StaticInst};
    use ccs_trace::{Benchmark, DynIdx, Trace, TraceBuilder};

    fn serial_chain(n: usize) -> Trace {
        let mut b = TraceBuilder::new();
        let r = ArchReg::int(1);
        for i in 0..n {
            b.push_simple(
                StaticInst::new(Pc::new(4 * i as u64 % 64), OpClass::IntAlu)
                    .with_src(r)
                    .with_dst(r),
            );
        }
        b.finish()
    }

    fn independent(n: usize) -> Trace {
        let mut b = TraceBuilder::new();
        for i in 0..n {
            let r = ArchReg::int(1 + (i % 30) as u16);
            b.push_simple(StaticInst::new(Pc::new(4 * i as u64), OpClass::IntAlu).with_dst(r));
        }
        b.finish()
    }

    #[test]
    fn serial_chain_runs_at_one_ipc_on_monolithic() {
        let cfg = MachineConfig::micro05_baseline();
        let t = serial_chain(2_000);
        let r = simulate(&cfg, &t, &mut LeastLoaded).unwrap();
        // One instruction per cycle in steady state, plus pipeline fill.
        let cpi = r.cpi();
        assert!((0.98..1.1).contains(&cpi), "cpi {cpi}");
        // Each non-first link waits on its producer.
        let mid = &r.records[1000];
        assert!(matches!(mid.ready_bound, ReadyBound::Operand { fwd: 0, .. }));
    }

    #[test]
    fn independent_insts_run_at_issue_width() {
        let cfg = MachineConfig::micro05_baseline();
        let t = independent(8_000);
        let r = simulate(&cfg, &t, &mut LeastLoaded).unwrap();
        let ipc = r.ipc();
        assert!(ipc > 7.0, "ipc {ipc}");
    }

    #[test]
    fn independent_insts_also_saturate_clustered_machines() {
        // Load-balancing across clusters preserves throughput when there
        // are no dependences.
        let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C8x1w);
        let t = independent(8_000);
        let r = simulate(&cfg, &t, &mut LeastLoaded).unwrap();
        let ipc = r.ipc();
        assert!(ipc > 6.5, "ipc {ipc}");
        // Work is spread over all clusters.
        let counts = r.per_cluster_counts();
        assert!(counts.iter().all(|&c| c > 500), "counts {counts:?}");
    }

    #[test]
    fn load_balanced_serial_chain_pays_forwarding_on_clusters() {
        // Figure 9: on a clustered machine, least-loaded steering spreads
        // a serial chain across clusters, adding forwarding delay.
        let mono = MachineConfig::micro05_baseline();
        let clus = mono.with_layout(ClusterLayout::C4x2w);
        let t = serial_chain(3_000);
        let rm = simulate(&mono, &t, &mut LeastLoaded).unwrap();
        let rc = simulate(&clus, &t, &mut LeastLoaded).unwrap();
        assert!(
            rc.cpi() > rm.cpi() * 1.5,
            "clustered {} vs monolithic {}",
            rc.cpi(),
            rm.cpi()
        );
        // Forwarding delays appear in ready bounds.
        let with_fwd = rc
            .records
            .iter()
            .filter(|r| r.forwarding_on_ready() > 0)
            .count();
        assert!(with_fwd > 1_000, "forwarded {with_fwd}");
    }

    #[test]
    fn round_robin_spreads_serial_chain_maximally() {
        let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C8x1w);
        let t = serial_chain(2_000);
        let r = simulate(&cfg, &t, &mut RoundRobin::default()).unwrap();
        // Every link crosses clusters: CPI ≈ 1 + forward latency.
        let cpi = r.cpi();
        assert!(cpi > 2.5, "cpi {cpi}");
        let counts = r.per_cluster_counts();
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 1, "round robin counts {counts:?}");
    }

    #[test]
    fn loads_hit_and_miss_affect_latency() {
        let mut b = TraceBuilder::new();
        let addr_reg = ArchReg::int(1);
        let v = ArchReg::int(2);
        // Two loads to the same line: miss then hit; consumers time them.
        b.push_mem(
            StaticInst::new(Pc::new(0), OpClass::Load)
                .with_src(addr_reg)
                .with_dst(v),
            0x9000,
        );
        b.push_simple(
            StaticInst::new(Pc::new(4), OpClass::IntAlu)
                .with_src(v)
                .with_dst(v),
        );
        let t = b.finish();
        let cfg = MachineConfig::micro05_baseline();
        let r = simulate(&cfg, &t, &mut LeastLoaded).unwrap();
        assert!(r.records[0].l1_miss);
        assert_eq!(r.records[0].exec_latency(), 23); // 3 + 20
        assert_eq!(r.l1_misses, 1);
        // The consumer became ready exactly when the load completed.
        assert_eq!(r.records[1].ready, r.records[0].complete);
    }

    #[test]
    fn mispredicted_branches_stall_fetch() {
        // A chain ending in a hard-to-predict branch every 8 instructions:
        // mispredicts force front-end refill, dominating runtime.
        let mut b = TraceBuilder::new();
        let r1 = ArchReg::int(1);
        for i in 0..400u64 {
            for k in 0..7u64 {
                b.push_simple(
                    StaticInst::new(Pc::new(4 * k), OpClass::IntAlu)
                        .with_src(r1)
                        .with_dst(r1),
                );
            }
            // Direction from a pattern gshare cannot learn (period 13 prime
            // against history mixing plus data-dependence).
            let flip = (i * 7 + i / 13) % 13 < 6;
            b.push_branch(
                StaticInst::new(Pc::new(64), OpClass::Branch).with_src(r1),
                ccs_isa::BranchInfo::conditional(flip),
            );
        }
        let t = b.finish();
        let cfg = MachineConfig::micro05_baseline();
        let res = simulate(&cfg, &t, &mut LeastLoaded).unwrap();
        assert!(res.mispredicts > 20, "mispredicts {}", res.mispredicts);
        // Some instruction's dispatch must be redirect-bound.
        let redirected = res
            .records
            .iter()
            .filter(|r| matches!(r.dispatch_bound, DispatchBound::Redirect(_)))
            .count();
        assert!(redirected > 10, "redirected {redirected}");
    }

    #[test]
    fn all_event_times_are_ordered() {
        for layout in ClusterLayout::ALL {
            let cfg = MachineConfig::micro05_baseline().with_layout(layout);
            let t = Benchmark::Vpr.generate(5, 3_000);
            let r = simulate(&cfg, &t, &mut LeastLoaded).unwrap();
            for (i, rec) in r.records.iter().enumerate() {
                assert!(rec.fetch + 13 <= rec.dispatch, "inst {i} fetch/dispatch");
                assert!(rec.dispatch < rec.ready, "inst {i} dispatch/ready");
                assert!(rec.ready <= rec.issue, "inst {i} ready/issue");
                assert!(rec.issue < rec.complete, "inst {i} issue/complete");
                assert!(rec.complete < rec.commit, "inst {i} complete/commit");
                assert!((rec.cluster as usize) < cfg.cluster_count());
            }
            // Commits are in order.
            for w in r.records.windows(2) {
                assert!(w[0].commit <= w[1].commit);
            }
        }
    }

    #[test]
    fn dependences_are_respected_across_clusters() {
        let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C8x1w);
        let t = Benchmark::Gcc.generate(2, 3_000);
        let r = simulate(&cfg, &t, &mut RoundRobin::default()).unwrap();
        for (i, inst) in t.iter() {
            for p in inst.producers() {
                let pr = &r.records[p.index()];
                let cr = &r.records[i.index()];
                let fwd = cfg.forwarding_between(pr.cluster as usize, cr.cluster as usize);
                assert!(
                    cr.issue >= pr.complete + fwd as u64,
                    "inst {i} issued before operand from {p} was visible"
                );
            }
        }
    }

    #[test]
    fn monolithic_machine_has_no_global_values() {
        let cfg = MachineConfig::micro05_baseline();
        let t = Benchmark::Gap.generate(3, 2_000);
        let r = simulate(&cfg, &t, &mut LeastLoaded).unwrap();
        assert_eq!(r.global_values, 0);
        assert!(r.records.iter().all(|rec| rec.forwarding_on_ready() == 0));
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
        let t = Benchmark::Twolf.generate(11, 2_000);
        let a = simulate(&cfg, &t, &mut LeastLoaded).unwrap();
        let b = simulate(&cfg, &t, &mut LeastLoaded).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn ilp_census_is_populated() {
        let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C8x1w);
        let t = Benchmark::Vortex.generate(4, 4_000);
        let r = simulate(&cfg, &t, &mut LeastLoaded).unwrap();
        let total_cycles: u64 = r.ilp.series().map(|(_, c, _)| c).sum();
        assert!(total_cycles > 0);
        // Achieved can never exceed the machine width.
        for (_, _, achieved) in r.ilp.series() {
            assert!(achieved <= 8.0 + 1e-9);
        }
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let cfg = MachineConfig::micro05_baseline();
        let t = TraceBuilder::new().finish();
        let r = simulate(&cfg, &t, &mut LeastLoaded).unwrap();
        assert_eq!(r.instructions(), 0);
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn deadlocked_policy_reports_cycle_limit() {
        struct AlwaysStall;
        impl SteeringPolicy for AlwaysStall {
            fn steer(&mut self, _view: &SteerView<'_>) -> SteerOutcome {
                SteerOutcome::stall()
            }
            fn name(&self) -> &str {
                "always-stall"
            }
        }
        let cfg = MachineConfig::micro05_baseline();
        let t = serial_chain(4);
        let err = simulate(&cfg, &t, &mut AlwaysStall).unwrap_err();
        assert!(matches!(err, crate::SimError::CycleLimitExceeded { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn rob_full_bound_appears_under_backpressure() {
        // A long L2-missing pointer chase fills the ROB behind it.
        let t = Benchmark::Mcf.generate(1, 4_000);
        let cfg = MachineConfig::micro05_baseline();
        let r = simulate(&cfg, &t, &mut LeastLoaded).unwrap();
        let rob_bound = r
            .records
            .iter()
            .filter(|rec| matches!(rec.dispatch_bound, DispatchBound::RobFull(_)))
            .count();
        assert!(rob_bound > 0, "expected some ROB-full dispatch bounds");
    }

    #[test]
    fn dyn_idx_bounds_in_records() {
        let t = Benchmark::Perl.generate(1, 1_000);
        let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C2x4w);
        let r = simulate(&cfg, &t, &mut LeastLoaded).unwrap();
        for rec in &r.records {
            if let ReadyBound::Operand { producer, .. } = rec.ready_bound {
                assert!(producer.index() < t.len());
            }
            if let DispatchBound::Redirect(b) = rec.dispatch_bound {
                assert!(b.index() < t.len());
                assert!(r.records[b.index()].mispredicted);
            }
        }
        let _ = DynIdx::new(0);
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::engine::simulate;
    use ccs_isa::{ArchReg, ClusterLayout, MachineConfig, OpClass, Pc, StaticInst};
    use ccs_trace::{Benchmark, Trace, TraceBuilder};

    #[test]
    fn finite_l2_is_slower_than_infinite_l2_on_mcf() {
        let trace = Benchmark::Mcf.generate(1, 4_000);
        let infinite = MachineConfig::micro05_baseline();
        let finite = infinite.with_finite_l2();
        let ri = simulate(&infinite, &trace, &mut LeastLoaded).unwrap();
        let rf = simulate(&finite, &trace, &mut LeastLoaded).unwrap();
        assert!(
            rf.cycles > ri.cycles,
            "finite {} vs infinite {}",
            rf.cycles,
            ri.cycles
        );
        // Some loads went all the way to memory (20 + 200 extra cycles).
        let to_memory = rf
            .records
            .iter()
            .filter(|r| r.mem_extra > finite.memory.l2_latency)
            .count();
        assert!(to_memory > 0, "expected main-memory accesses");
        // And some hit in the L2 (exactly 20 extra).
        let l2_hits = rf
            .records
            .iter()
            .filter(|r| r.l1_miss && r.mem_extra == finite.memory.l2_latency)
            .count();
        assert!(l2_hits > 0, "expected L2 hits");
    }

    #[test]
    fn l1_resident_code_is_unaffected_by_finite_l2() {
        // Loads hammering a single line hit the L1 after the first access,
        // so the hierarchy behind the L1 is invisible.
        let mut b = TraceBuilder::new();
        let a = ArchReg::int(1);
        let v = ArchReg::int(2);
        for i in 0..1_000u64 {
            b.push_mem(
                StaticInst::new(Pc::new(4 * (i % 4)), OpClass::Load)
                    .with_src(a)
                    .with_dst(v),
                0x4000,
            );
            b.push_simple(
                StaticInst::new(Pc::new(32), OpClass::IntAlu)
                    .with_src(v)
                    .with_dst(v),
            );
        }
        let trace = b.finish();
        let infinite = MachineConfig::micro05_baseline();
        let finite = infinite.with_finite_l2();
        let ri = simulate(&infinite, &trace, &mut LeastLoaded).unwrap();
        let rf = simulate(&finite, &trace, &mut LeastLoaded).unwrap();
        // One cold miss differs by the memory latency at most.
        assert!(
            rf.cycles <= ri.cycles + 200,
            "finite {} vs infinite {}",
            rf.cycles,
            ri.cycles
        );
        assert_eq!(rf.l1_misses, 1);
    }

    /// A wide fan-out: one producer, many remote consumers, so a
    /// bandwidth-1 network must serialize the broadcasts... actually one
    /// broadcast serves all clusters; serialization appears when *many
    /// producers* complete simultaneously in one cluster.
    fn fanout_trace() -> Trace {
        let mut b = TraceBuilder::new();
        // 8 independent producers (same cycle completions on a wide
        // cluster), then one consumer of each on other clusters.
        for i in 0..2_000u64 {
            let k = (i % 8) as u16;
            b.push_simple(
                StaticInst::new(Pc::new(4 * (i % 8)), OpClass::IntAlu)
                    .with_dst(ArchReg::int(1 + k)),
            );
            b.push_simple(
                StaticInst::new(Pc::new(64 + 4 * (i % 8)), OpClass::IntAlu)
                    .with_src(ArchReg::int(1 + k))
                    .with_dst(ArchReg::int(9 + k)),
            );
        }
        b.finish()
    }

    #[test]
    fn limited_broadcast_bandwidth_slows_communication_heavy_code() {
        let trace = fanout_trace();
        let machine = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C2x4w);
        let unlimited = simulate(&machine, &trace, &mut RoundRobin::default()).unwrap();
        let limited = simulate(
            &machine.with_forward_bandwidth(Some(1)),
            &trace,
            &mut RoundRobin::default(),
        )
        .unwrap();
        assert!(
            limited.cycles >= unlimited.cycles,
            "limited {} vs unlimited {}",
            limited.cycles,
            unlimited.cycles
        );
        // Serialization shows up as larger effective forwarding delays.
        let max_fwd_unlimited = unlimited
            .records
            .iter()
            .map(|r| r.forwarding_on_ready())
            .max()
            .unwrap();
        let max_fwd_limited = limited
            .records
            .iter()
            .map(|r| r.forwarding_on_ready())
            .max()
            .unwrap();
        assert!(
            max_fwd_limited >= max_fwd_unlimited,
            "{max_fwd_limited} vs {max_fwd_unlimited}"
        );
    }

    #[test]
    fn unlimited_bandwidth_matches_default_exactly() {
        let trace = Benchmark::Vpr.generate(9, 2_000);
        let machine = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
        let a = simulate(&machine, &trace, &mut LeastLoaded).unwrap();
        let b = simulate(
            &machine.with_forward_bandwidth(None),
            &trace,
            &mut LeastLoaded,
        )
        .unwrap();
        assert_eq!(a.cycles, b.cycles);
    }

    #[test]
    #[should_panic]
    fn zero_forward_bandwidth_is_rejected() {
        let _ = MachineConfig::micro05_baseline().with_forward_bandwidth(Some(0));
    }
}

#[cfg(test)]
mod frontend_tests {
    use super::*;
    use crate::engine::simulate;
    use crate::record::CommitBound;
    use ccs_isa::{ArchReg, BranchInfo, MachineConfig, OpClass, Pc, StaticInst};
    use ccs_trace::TraceBuilder;

    #[test]
    fn break_on_taken_throttles_fetch() {
        // Dense taken branches: with break_on_taken, every fetch group ends
        // at a branch, capping fetch throughput well below 8/cycle.
        let mut b = TraceBuilder::new();
        for i in 0..3_000u64 {
            let r = ArchReg::int(1 + (i % 8) as u16);
            b.push_simple(StaticInst::new(Pc::new(4 * (i % 4)), OpClass::IntAlu).with_dst(r));
            b.push_branch(
                StaticInst::new(Pc::new(64), OpClass::Branch).with_src(r),
                BranchInfo::conditional(true),
            );
        }
        let trace = b.finish();
        let normal = MachineConfig::micro05_baseline();
        let mut broken = normal;
        broken.front_end.break_on_taken = true;
        let rn = simulate(&normal, &trace, &mut LeastLoaded).unwrap();
        let rb = simulate(&broken, &trace, &mut LeastLoaded).unwrap();
        assert!(
            rb.cycles > rn.cycles * 2,
            "break-on-taken {} vs normal {}",
            rb.cycles,
            rn.cycles
        );
        // Roughly two instructions per fetch group → CPI near 0.5.
        assert!(rb.cpi() > 0.4, "cpi {}", rb.cpi());
    }

    #[test]
    fn commit_bandwidth_binds_wide_completion_bursts() {
        // A long-latency load at the ROB head dams up a burst of quickly
        // completed independent instructions behind it; when it completes,
        // the backlog drains at 8 per cycle — in-order and bandwidth
        // bounds must appear.
        let mut b = TraceBuilder::new();
        b.push_mem(
            StaticInst::new(Pc::new(0), OpClass::Load)
                .with_src(ArchReg::int(31))
                .with_dst(ArchReg::int(30)),
            0x0dea_d000,
        );
        for i in 0..32u64 {
            b.push_simple(
                StaticInst::new(Pc::new(4 + 4 * i), OpClass::IntAlu)
                    .with_dst(ArchReg::int(1 + (i % 28) as u16)),
            );
        }
        let trace = b.finish();
        let cfg = MachineConfig::micro05_baseline();
        let r = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let bw_bound = r
            .records
            .iter()
            .filter(|rec| rec.commit_bound == CommitBound::Bandwidth)
            .count();
        let inorder = r
            .records
            .iter()
            .filter(|rec| rec.commit_bound == CommitBound::InOrder)
            .count();
        assert!(bw_bound + inorder > 0, "expected commit-side bounds");
        // No more than commit_width commits share any cycle.
        let mut per_cycle = std::collections::HashMap::new();
        for rec in &r.records {
            *per_cycle.entry(rec.commit).or_insert(0usize) += 1;
        }
        assert!(per_cycle.values().all(|&c| c <= cfg.commit_width));
    }

    #[test]
    fn skid_buffer_limits_runahead() {
        // Fetch may run ahead of a stalled dispatch by at most the skid
        // buffer plus the front-end pipe contents.
        let mut b = TraceBuilder::new();
        let r = ArchReg::int(1);
        for i in 0..2_000u64 {
            b.push_simple(
                StaticInst::new(Pc::new(4 * (i % 8)), OpClass::IntAlu)
                    .with_src(r)
                    .with_dst(r),
            );
        }
        let trace = b.finish();
        let cfg = MachineConfig::micro05_baseline();
        let res = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let max_runahead = cfg.front_end.skid_buffer
            + (cfg.front_end.depth_to_dispatch as usize + 1) * cfg.front_end.fetch_width;
        for (i, rec) in res.records.iter().enumerate() {
            // Instruction i+max_runahead must be fetched after i dispatched.
            if let Some(later) = res.records.get(i + max_runahead) {
                assert!(
                    later.fetch >= rec.dispatch,
                    "inst {i}: fetch ran {max_runahead} ahead of dispatch"
                );
            }
        }
    }
}

#[cfg(test)]
mod disambiguation_tests {
    use super::*;
    use crate::engine::simulate;
    use crate::record::ReadyBound;
    use ccs_isa::{ArchReg, MachineConfig, OpClass, Pc, StaticInst};
    use ccs_trace::{DynIdx, TraceBuilder};

    fn store_then_load(store_addr: u64, load_addr: u64) -> ccs_trace::Trace {
        let mut b = TraceBuilder::new();
        let v = ArchReg::int(1);
        let a = ArchReg::int(2);
        // A slow producer delays the store's issue.
        b.push_mem(
            StaticInst::new(Pc::new(0), OpClass::Load)
                .with_src(a)
                .with_dst(v),
            0x0BEE_F000, // cold miss: 23-cycle load
        );
        b.push_mem(
            StaticInst::new(Pc::new(4), OpClass::Store).with_srcs([Some(v), Some(a)]),
            store_addr,
        );
        b.push_mem(
            StaticInst::new(Pc::new(8), OpClass::Load)
                .with_src(a)
                .with_dst(ArchReg::int(3)),
            load_addr,
        );
        b.finish()
    }

    #[test]
    fn load_waits_for_conflicting_older_store() {
        let cfg = MachineConfig::micro05_baseline();
        let t = store_then_load(0x5000, 0x5000);
        let r = simulate(&cfg, &t, &mut LeastLoaded).unwrap();
        // The load (inst 2) cannot issue before the store (inst 1)
        // completes.
        assert!(r.records[2].issue >= r.records[1].complete);
        assert_eq!(
            r.records[2].ready_bound,
            ReadyBound::Operand {
                slot: 2,
                producer: DynIdx::new(1),
                fwd: 0
            }
        );
    }

    #[test]
    fn perfect_disambiguation_has_no_false_dependences() {
        let cfg = MachineConfig::micro05_baseline();
        let t = store_then_load(0x5000, 0x6000);
        let r = simulate(&cfg, &t, &mut LeastLoaded).unwrap();
        // Different address: the load issues long before the store
        // completes (the store waits on the 23-cycle producer).
        assert!(
            r.records[2].issue < r.records[1].complete,
            "load {} vs store complete {}",
            r.records[2].issue,
            r.records[1].complete
        );
    }

    #[test]
    fn word_granularity_conflicts_detected() {
        let cfg = MachineConfig::micro05_baseline();
        // Same 8-byte word, different byte: still a dependence.
        let t = store_then_load(0x5000, 0x5004);
        let r = simulate(&cfg, &t, &mut LeastLoaded).unwrap();
        assert!(r.records[2].issue >= r.records[1].complete);
    }
}
