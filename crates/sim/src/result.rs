//! Simulation results and aggregate statistics.

use crate::record::{Cycle, InstRecord};
use ccs_isa::MachineConfig;
use serde::{Deserialize, Serialize};

/// The per-cycle ready-vs-issued census behind Figure 15.
///
/// For every execute cycle, the simulator counts how many instructions
/// were ready across all clusters (*available ILP*) and how many actually
/// issued (*achieved ILP*), and accumulates achieved per available bucket.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IlpCensus {
    /// `buckets[a] = (cycles with available ILP a, total instructions
    /// issued on those cycles)`.
    buckets: Vec<(u64, u64)>,
}

impl IlpCensus {
    /// Records one cycle with `available` ready instructions of which
    /// `achieved` issued.
    #[inline]
    pub fn record(&mut self, available: usize, achieved: usize) {
        if self.buckets.len() <= available {
            self.buckets.resize(available + 1, (0, 0));
        }
        let b = &mut self.buckets[available];
        b.0 += 1;
        b.1 += achieved as u64;
    }

    /// Mean achieved ILP on cycles with exactly `available` ready
    /// instructions, or `None` if no such cycle occurred.
    pub fn achieved_at(&self, available: usize) -> Option<f64> {
        let &(cycles, issued) = self.buckets.get(available)?;
        (cycles > 0).then(|| issued as f64 / cycles as f64)
    }

    /// Number of cycles observed with exactly `available` ready
    /// instructions.
    pub fn cycles_at(&self, available: usize) -> u64 {
        self.buckets.get(available).map_or(0, |b| b.0)
    }

    /// The largest available-ILP value observed.
    pub fn max_available(&self) -> usize {
        self.buckets.len().saturating_sub(1)
    }

    /// Iterates `(available, cycles, mean achieved)` over populated buckets.
    pub fn series(&self) -> impl Iterator<Item = (usize, u64, f64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, b)| b.0 > 0)
            .map(|(a, &(cycles, issued))| (a, cycles, issued as f64 / cycles as f64))
    }

    /// Merges another census into this one.
    pub fn merge(&mut self, other: &IlpCensus) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), (0, 0));
        }
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            dst.0 += src.0;
            dst.1 += src.1;
        }
    }
}

/// The outcome of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// The machine configuration simulated.
    pub config: MachineConfig,
    /// Total cycles (the commit cycle of the last instruction, plus one).
    pub cycles: Cycle,
    /// Per-instruction event records, parallel to the trace.
    pub records: Vec<InstRecord>,
    /// Conditional branches the front end mispredicted.
    pub mispredicts: u64,
    /// Conditional branches simulated.
    pub conditional_branches: u64,
    /// L1 data-cache misses.
    pub l1_misses: u64,
    /// L1 data-cache accesses.
    pub l1_accesses: u64,
    /// Operand deliveries that crossed clusters (§2.1's "global values").
    pub global_values: u64,
    /// The ready/issued census (Figure 15).
    pub ilp: IlpCensus,
    /// Dispatch cycles lost to steering stalls (policy stalled or target
    /// full while the ROB had space).
    pub steer_stall_cycles: u64,
}

impl SimResult {
    /// Instructions simulated.
    #[inline]
    pub fn instructions(&self) -> usize {
        self.records.len()
    }

    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.cycles as f64 / self.records.len() as f64
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.records.len() as f64 / self.cycles as f64
    }

    /// Branch misprediction rate over conditional branches.
    pub fn mispredict_rate(&self) -> f64 {
        if self.conditional_branches == 0 {
            return 0.0;
        }
        self.mispredicts as f64 / self.conditional_branches as f64
    }

    /// L1 miss rate.
    pub fn l1_miss_rate(&self) -> f64 {
        if self.l1_accesses == 0 {
            return 0.0;
        }
        self.l1_misses as f64 / self.l1_accesses as f64
    }

    /// Cross-cluster operand deliveries per instruction (the paper reports
    /// 0.12 / 0.2 / 0.25 for its 2-, 4- and 8-cluster policies).
    pub fn global_values_per_inst(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.global_values as f64 / self.records.len() as f64
    }

    /// Instructions executed per cluster, for load-distribution reports.
    pub fn per_cluster_counts(&self) -> Vec<u64> {
        let n = self.config.cluster_count();
        let mut counts = vec![0u64; n];
        for r in &self.records {
            counts[r.cluster as usize] += 1;
        }
        counts
    }

    /// Total cycles ready instructions spent waiting to issue (aggregate
    /// contention exposure, §3).
    pub fn total_contention_cycles(&self) -> u64 {
        self.records.iter().map(InstRecord::contention_wait).sum()
    }

    /// Placement counts per steering cause, in the order
    /// `[Only, Dependence, LoadBalance, NoDeps, Proactive]` — the
    /// diagnostic behind Figure 6(b)'s cause attribution.
    pub fn steer_cause_counts(&self) -> [u64; 5] {
        let mut counts = [0u64; 5];
        for r in &self.records {
            counts[r.steer_cause.index()] += 1;
        }
        counts
    }

    /// Number of clusters that executed more than `threshold` of the
    /// instructions — the utilization measure behind §7's observation
    /// that much of gzip's stall-over-steer speedup happens "in long
    /// stretches of the execution where only 3 clusters are used",
    /// confirming that cluster utilization is not a metric to optimize.
    pub fn active_clusters(&self, threshold: f64) -> usize {
        let total = self.records.len().max(1) as f64;
        self.per_cluster_counts()
            .iter()
            .filter(|&&c| c as f64 / total > threshold)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ilp_census_means() {
        let mut c = IlpCensus::default();
        c.record(3, 2);
        c.record(3, 3);
        c.record(1, 1);
        assert_eq!(c.achieved_at(3), Some(2.5));
        assert_eq!(c.achieved_at(1), Some(1.0));
        assert_eq!(c.achieved_at(0), None);
        assert_eq!(c.achieved_at(99), None);
        assert_eq!(c.cycles_at(3), 2);
        assert_eq!(c.max_available(), 3);
        let series: Vec<_> = c.series().collect();
        assert_eq!(series, vec![(1, 1, 1.0), (3, 2, 2.5)]);
    }

    #[test]
    fn ilp_census_merge() {
        let mut a = IlpCensus::default();
        a.record(2, 2);
        let mut b = IlpCensus::default();
        b.record(2, 1);
        b.record(5, 4);
        a.merge(&b);
        assert_eq!(a.achieved_at(2), Some(1.5));
        assert_eq!(a.achieved_at(5), Some(4.0));
    }

    fn empty_result() -> SimResult {
        SimResult {
            config: MachineConfig::micro05_baseline(),
            cycles: 0,
            records: Vec::new(),
            mispredicts: 0,
            conditional_branches: 0,
            l1_misses: 0,
            l1_accesses: 0,
            global_values: 0,
            ilp: IlpCensus::default(),
            steer_stall_cycles: 0,
        }
    }

    #[test]
    fn rates_on_empty_results_are_zero() {
        let r = empty_result();
        assert_eq!(r.cpi(), 0.0);
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.mispredict_rate(), 0.0);
        assert_eq!(r.l1_miss_rate(), 0.0);
        assert_eq!(r.global_values_per_inst(), 0.0);
        assert_eq!(r.total_contention_cycles(), 0);
        assert_eq!(r.instructions(), 0);
    }

    #[test]
    fn cpi_and_ipc_are_reciprocal() {
        let mut r = empty_result();
        r.cycles = 50;
        r.records = vec![InstRecord::empty(); 100];
        assert!((r.cpi() - 0.5).abs() < 1e-12);
        assert!((r.ipc() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn steer_cause_counts_partition_records() {
        let mut r = empty_result();
        let mut rec = InstRecord::empty();
        rec.steer_cause = crate::SteerCause::Dependence;
        r.records.push(rec);
        rec.steer_cause = crate::SteerCause::LoadBalance;
        r.records.push(rec);
        r.records.push(rec);
        let c = r.steer_cause_counts();
        assert_eq!(c, [0, 1, 2, 0, 0]);
        assert_eq!(c.iter().sum::<u64>() as usize, r.records.len());
    }

    #[test]
    fn active_clusters_counts_above_threshold() {
        let mut r = empty_result();
        r.config = MachineConfig::micro05_baseline().with_layout(ccs_isa::ClusterLayout::C2x4w);
        let mut rec = InstRecord::empty();
        for _ in 0..95 {
            rec.cluster = 0;
            r.records.push(rec);
        }
        for _ in 0..5 {
            rec.cluster = 1;
            r.records.push(rec);
        }
        assert_eq!(r.active_clusters(0.10), 1);
        assert_eq!(r.active_clusters(0.01), 2);
    }

    #[test]
    fn per_cluster_counts_sum_to_total() {
        let mut r = empty_result();
        let mut rec = InstRecord::empty();
        rec.cluster = 0;
        r.records.push(rec);
        rec.cluster = 0;
        r.records.push(rec);
        let counts = r.per_cluster_counts();
        assert_eq!(counts.iter().sum::<u64>(), 2);
    }
}
