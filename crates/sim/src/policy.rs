//! The steering / scheduling policy interface.
//!
//! A [`SteeringPolicy`] makes the two decisions the paper studies:
//! *cluster assignment* for each dispatching instruction
//! ([`steer`](SteeringPolicy::steer)) and *scheduling priority* among the
//! ready instructions in a window ([`priority`](SteeringPolicy::priority)).
//! The commit callback lets learning policies (the proactive
//! load-balancer's most-critical-consumer tracker) observe the retiring
//! stream.

use crate::record::{Cycle, InstRecord};
use ccs_isa::Pc;
use ccs_trace::{DynIdx, DynInst};
use serde::{Deserialize, Serialize};

/// What a producer of one of the dispatching instruction's operands looks
/// like at steering time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProducerInfo {
    /// The producer's dynamic index.
    pub idx: DynIdx,
    /// The producer's PC (for predictor lookups).
    pub pc: Pc,
    /// The cluster the producer was steered to.
    pub cluster: usize,
    /// Whether the producer's result is already available everywhere
    /// (completed at least `forward_latency` cycles ago). Completed
    /// producers impose no locality preference.
    pub completed: bool,
}

/// The dispatch-time view a steering policy decides from.
///
/// Mirrors what real steering hardware could observe: the instruction and
/// its PC, per-cluster window occupancy, and where its not-yet-completed
/// producers live.
#[derive(Debug)]
pub struct SteerView<'a> {
    /// The dispatching instruction.
    pub inst: &'a DynInst,
    /// Its dynamic index.
    pub idx: DynIdx,
    /// Current cycle.
    pub now: Cycle,
    /// Window occupancy per cluster.
    pub occupancy: &'a [usize],
    /// Window capacity per cluster.
    pub capacity: usize,
    /// Producer information per source-operand slot.
    pub producers: [Option<ProducerInfo>; 2],
}

impl SteerView<'_> {
    /// Number of clusters.
    #[inline]
    pub fn clusters(&self) -> usize {
        self.occupancy.len()
    }

    /// Whether cluster `c` has a free window entry.
    #[inline]
    pub fn has_space(&self, c: usize) -> bool {
        self.occupancy[c] < self.capacity
    }

    /// The cluster with the fewest in-flight instructions (ties broken by
    /// lowest index) — the conventional load-balance target.
    pub fn least_loaded(&self) -> usize {
        self.occupancy
            .iter()
            .enumerate()
            .min_by_key(|&(i, &o)| (o, i))
            .map(|(i, _)| i)
            // Invariant: config validation rejects zero-cluster layouts,
            // so the occupancy vector is never empty.
            .expect("at least one cluster")
    }

    /// The least-loaded cluster that has space, if any.
    pub fn least_loaded_with_space(&self) -> Option<usize> {
        let c = self.least_loaded();
        self.has_space(c).then_some(c)
    }

    /// Iterates over the producers that are still in flight (their results
    /// are not yet globally visible) — the ones that create a locality
    /// preference.
    pub fn pending_producers(&self) -> impl Iterator<Item = ProducerInfo> + '_ {
        self.producers
            .iter()
            .filter_map(|p| *p)
            .filter(|p| !p.completed)
    }
}

/// Why a placement was chosen — recorded per instruction and used by the
/// lost-cycle classification of Figure 6(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SteerCause {
    /// Trivial placement (monolithic machine, or no choice involved).
    Only,
    /// Collocated with a producer by dependence-based steering.
    Dependence,
    /// Sent to the least-loaded cluster because the desired cluster was
    /// full — *load-balance steering*, the dominant source of critical
    /// forwarding delay (§3).
    LoadBalance,
    /// No in-flight producers; placed by the load balancer's default rule.
    NoDeps,
    /// Deliberately pushed away from its producer by the proactive
    /// load-balancing policy (§6).
    Proactive,
}

impl SteerCause {
    /// Stable dense index for counting, in the order of
    /// [`SimResult::steer_cause_counts`](crate::SimResult::steer_cause_counts)
    /// and `ccs_obs::SimMetrics::steer_causes`.
    pub const fn index(self) -> usize {
        match self {
            SteerCause::Only => 0,
            SteerCause::Dependence => 1,
            SteerCause::LoadBalance => 2,
            SteerCause::NoDeps => 3,
            SteerCause::Proactive => 4,
        }
    }
}

/// A steering decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteerDecision {
    /// Dispatch to the given cluster.
    To {
        /// Target cluster index.
        cluster: usize,
        /// Placement rationale.
        cause: SteerCause,
    },
    /// Hold this instruction (and, because dispatch is in-order,
    /// everything behind it) until a later cycle.
    Stall,
}

/// A steering decision plus the policy's criticality assessment of the
/// instruction, which the simulator stamps into the [`InstRecord`] so the
/// analysis can classify stalls as hitting predicted-critical
/// instructions or not (Figure 6a).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteerOutcome {
    /// Where to put the instruction (or whether to stall).
    pub decision: SteerDecision,
    /// The policy's binary criticality prediction for this instruction.
    pub predicted_critical: bool,
    /// The policy's likelihood-of-criticality estimate in `[0, 1]`.
    pub loc: f32,
}

impl SteerOutcome {
    /// A placement with no criticality annotation.
    pub fn to(cluster: usize, cause: SteerCause) -> Self {
        SteerOutcome {
            decision: SteerDecision::To { cluster, cause },
            predicted_critical: false,
            loc: 0.0,
        }
    }

    /// A stall with no criticality annotation.
    pub fn stall() -> Self {
        SteerOutcome {
            decision: SteerDecision::Stall,
            predicted_critical: false,
            loc: 0.0,
        }
    }

    /// Attaches a criticality annotation.
    #[must_use]
    pub fn with_criticality(mut self, predicted_critical: bool, loc: f32) -> Self {
        self.predicted_critical = predicted_critical;
        self.loc = loc;
        self
    }
}

/// A steering and scheduling policy.
///
/// One trait covers both decisions because the paper's policies couple
/// them (focused steering *and* focused scheduling share a criticality
/// predictor). Implementations live in `ccs-core`; the simulator ships
/// only the baselines in [`policies`](crate::policies).
pub trait SteeringPolicy {
    /// Chooses a cluster for a dispatching instruction, or stalls.
    ///
    /// If the returned cluster's window is full, the simulator treats the
    /// outcome as a stall and re-consults the policy next cycle.
    fn steer(&mut self, view: &SteerView<'_>) -> SteerOutcome;

    /// Scheduling priority for a dispatched instruction; higher issues
    /// first, ties broken oldest-first. Consulted once at dispatch.
    fn priority(&mut self, idx: DynIdx, inst: &DynInst) -> i64 {
        let _ = (idx, inst);
        0
    }

    /// Observes a committing instruction (for learning policies).
    fn on_commit(&mut self, idx: DynIdx, inst: &DynInst, record: &InstRecord) {
        let _ = (idx, inst, record);
    }

    /// The policy's display name (used in reports and figures).
    fn name(&self) -> &str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_isa::{ArchReg, OpClass, StaticInst};

    fn view_with(occupancy: &[usize], capacity: usize) -> SteerView<'_> {
        // A static dummy instruction for view construction.
        static INST: std::sync::OnceLock<DynInst> = std::sync::OnceLock::new();
        let inst = INST.get_or_init(|| DynInst {
            inst: StaticInst::new(Pc::new(0), OpClass::IntAlu).with_dst(ArchReg::int(1)),
            deps: [None, None],
            mem_addr: None,
            branch: None,
        });
        SteerView {
            inst,
            idx: DynIdx::new(0),
            now: 0,
            occupancy,
            capacity,
            producers: [None, None],
        }
    }

    #[test]
    fn least_loaded_breaks_ties_low() {
        let v = view_with(&[3, 1, 1, 2], 8);
        assert_eq!(v.least_loaded(), 1);
        assert_eq!(v.clusters(), 4);
    }

    #[test]
    fn has_space_and_least_loaded_with_space() {
        let v = view_with(&[8, 8], 8);
        assert!(!v.has_space(0));
        assert_eq!(v.least_loaded_with_space(), None);
        let v = view_with(&[8, 7], 8);
        assert_eq!(v.least_loaded_with_space(), Some(1));
    }

    #[test]
    fn steer_outcome_builders() {
        let o = SteerOutcome::to(2, SteerCause::Dependence).with_criticality(true, 0.8);
        assert!(o.predicted_critical);
        assert!((o.loc - 0.8).abs() < 1e-6);
        assert_eq!(
            o.decision,
            SteerDecision::To {
                cluster: 2,
                cause: SteerCause::Dependence
            }
        );
        assert_eq!(SteerOutcome::stall().decision, SteerDecision::Stall);
    }

    #[test]
    fn pending_producers_filters_completed() {
        let mut v = view_with(&[0], 8);
        v.producers = [
            Some(ProducerInfo {
                idx: DynIdx::new(1),
                pc: Pc::new(4),
                cluster: 0,
                completed: true,
            }),
            Some(ProducerInfo {
                idx: DynIdx::new(2),
                pc: Pc::new(8),
                cluster: 0,
                completed: false,
            }),
        ];
        let pending: Vec<_> = v.pending_producers().collect();
        assert_eq!(pending.len(), 1);
        assert_eq!(pending[0].idx, DynIdx::new(2));
    }
}
