//! Cycle-by-cycle schedule rendering — the form of the paper's Figures
//! 10, 11 and 13, which show which instruction issued on which cluster
//! each cycle.

use crate::record::Cycle;
use crate::result::SimResult;
use ccs_trace::DynIdx;
use std::fmt::Write as _;

/// Renders the issue schedule of `result` between `from` and `to`
/// (inclusive) as a text table with one row per cycle and one column per
/// cluster. `label` names each instruction (e.g. `"A"`, `"ld"`, a PC).
///
/// Cells hold the labels of instructions *issued* that cycle on that
/// cluster; empty cells mean the cluster issued nothing.
///
/// # Examples
///
/// ```
/// use ccs_isa::{ClusterLayout, MachineConfig};
/// use ccs_sim::{policies::LeastLoaded, simulate, viz::render_schedule};
/// use ccs_trace::Benchmark;
///
/// let trace = Benchmark::Gap.generate(1, 200);
/// let machine = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C2x4w);
/// let result = simulate(&machine, &trace, &mut LeastLoaded).unwrap();
/// let picture = render_schedule(&result, 0, 30, |i| format!("{i}"));
/// assert!(picture.contains("cl0"));
/// ```
pub fn render_schedule(
    result: &SimResult,
    from: Cycle,
    to: Cycle,
    mut label: impl FnMut(DynIdx) -> String,
) -> String {
    let clusters = result.config.cluster_count();
    // Collect per (cycle, cluster) labels.
    let mut cells: Vec<Vec<Vec<String>>> =
        vec![vec![Vec::new(); clusters]; (to.saturating_sub(from) + 1) as usize];
    for (i, r) in result.records.iter().enumerate() {
        if r.issue >= from && r.issue <= to {
            cells[(r.issue - from) as usize][r.cluster as usize]
                .push(label(DynIdx::new(i as u32)));
        }
    }
    let col_width = cells
        .iter()
        .flatten()
        .map(|v| v.join(" ").len())
        .chain(std::iter::once(8))
        .max()
        .unwrap_or(8);

    let mut out = String::new();
    let _ = write!(out, "{:>6} ", "cycle");
    for c in 0..clusters {
        let _ = write!(out, "| {:<w$} ", format!("cl{c}"), w = col_width);
    }
    out.push('\n');
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(7 + clusters * (col_width + 3))
    );
    for (k, row) in cells.iter().enumerate() {
        let any = row.iter().any(|v| !v.is_empty());
        if !any {
            continue;
        }
        let _ = write!(out, "{:>6} ", from + k as Cycle);
        for cell in row {
            let _ = write!(out, "| {:<w$} ", cell.join(" "), w = col_width);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use crate::policies::LeastLoaded;
    use ccs_isa::{ArchReg, ClusterLayout, MachineConfig, OpClass, Pc, StaticInst};
    use ccs_trace::TraceBuilder;

    #[test]
    fn renders_issue_cells() {
        let mut b = TraceBuilder::new();
        let r = ArchReg::int(1);
        for i in 0..6u64 {
            b.push_simple(
                StaticInst::new(Pc::new(4 * i), OpClass::IntAlu)
                    .with_src(r)
                    .with_dst(r),
            );
        }
        let trace = b.finish();
        let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C2x4w);
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let names = ["A", "B", "C", "D", "E", "F"];
        let s = render_schedule(&result, 0, result.cycles, |i| {
            names[i.index()].to_string()
        });
        for n in names {
            assert!(s.contains(n), "missing {n} in:\n{s}");
        }
        assert!(s.contains("cl0"));
        assert!(s.contains("cl1"));
    }

    #[test]
    fn schedule_snapshot_is_stable() {
        // Exact-output snapshot: a serial dependence chain issues one
        // instruction per available cycle on one cluster, giving a small,
        // fully deterministic picture. Any change to the rendered format
        // (column widths, separators, row elision) must show up here.
        let mut b = TraceBuilder::new();
        let r = ArchReg::int(1);
        for i in 0..4u64 {
            b.push_simple(
                StaticInst::new(Pc::new(4 * i), OpClass::IntAlu)
                    .with_src(r)
                    .with_dst(r),
            );
        }
        let trace = b.finish();
        let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C2x4w);
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let names = ["A", "B", "C", "D"];
        let s = render_schedule(&result, 0, result.cycles, |i| {
            names[i.index()].to_string()
        });
        // Least-loaded steering ping-pongs the chain across the two
        // clusters, and each hop pays the forwarding latency on top of
        // the ALU latency — hence one issue every 3 cycles, alternating
        // columns.
        let expected = concat!(
            " cycle | cl0      | cl1      \n",
            "-----------------------------\n",
            "    14 | A        |          \n",
            "    17 |          | B        \n",
            "    20 | C        |          \n",
            "    23 |          | D        \n",
        );
        assert_eq!(s, expected, "rendered:\n{s}");
    }

    #[test]
    fn empty_range_renders_header_only() {
        let trace = TraceBuilder::new().finish();
        let cfg = MachineConfig::micro05_baseline();
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let s = render_schedule(&result, 0, 10, |i| i.to_string());
        assert!(s.contains("cycle"));
        assert_eq!(s.lines().count(), 2); // header + separator
    }
}
