//! Microarchitectural substrate models.
//!
//! The hardware structures the clustered simulator is built from, each
//! implemented from scratch:
//!
//! * [`SaturatingCounter`] — the n-bit hysteresis counters used throughout
//!   (2-bit branch direction counters, the Fields 6-bit criticality
//!   counter with asymmetric +8/−1 training).
//! * [`ProbabilisticCounter`] — Riley & Zilles probabilistic counter
//!   updates, used by the 4-bit/16-level likelihood-of-criticality
//!   predictor (§7 of the paper).
//! * [`Gshare`] (and [`Bimodal`], [`BranchPredictor`]) — the paper's
//!   16-bit-history gshare front-end predictor.
//! * [`SetAssocCache`] — the 32 KB 4-way L1 data cache with LRU
//!   replacement, backed by an infinite 20-cycle L2.
//!
//! # Example
//!
//! ```
//! use ccs_uarch::{BranchPredictor, Gshare, SetAssocCache};
//! use ccs_isa::{MemoryConfig, Pc};
//!
//! let mut bp = Gshare::new(16);
//! let pc = Pc::new(0x400);
//! for _ in 0..64 {
//!     let pred = bp.predict(pc);
//!     bp.update(pc, true);
//!     let _ = pred;
//! }
//! assert!(bp.predict(pc)); // learned always-taken
//!
//! let mut l1 = SetAssocCache::from_config(&MemoryConfig::default());
//! assert!(!l1.access(0x1000)); // cold miss
//! assert!(l1.access(0x1000));  // hit
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod cache;
mod counters;

pub use branch::{Bimodal, BranchPredictor, Gshare, OracleTaken};
pub use cache::SetAssocCache;
pub use counters::{ProbabilisticCounter, SaturatingCounter};
