//! Set-associative cache with LRU replacement.

use ccs_isa::MemoryConfig;

/// A set-associative, write-allocate cache model with true-LRU
/// replacement. Tracks hit/miss only — the timing consequences (2-cycle
/// L1, +20-cycle L2) are applied by the simulator.
///
/// ```
/// use ccs_uarch::SetAssocCache;
/// let mut c = SetAssocCache::new(1024, 2, 64); // 1 KB, 2-way, 64 B lines
/// assert!(!c.access(0x0));
/// assert!(c.access(0x3f));   // same line
/// assert!(!c.access(0x40));  // next line
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// Flat tag store: set `s` occupies `tags[s*ways .. (s+1)*ways]`,
    /// most recently used first. One contiguous allocation keeps the
    /// per-access probe to a single indexed slice — the engine calls
    /// [`access`](Self::access) for every load and store.
    tags: Vec<u64>,
    /// Number of valid tags per set (leading entries of its slice).
    lens: Vec<u8>,
    ways: usize,
    line_shift: u32,
    set_mask: u64,
    accesses: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates a cache of `size_bytes` with the given associativity and
    /// line size.
    ///
    /// # Panics
    ///
    /// Panics if the line size or set count is not a power of two, or if
    /// the geometry is inconsistent (`size = sets × ways × line`).
    pub fn new(size_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(ways >= 1, "need at least one way");
        assert_eq!(size_bytes % (ways * line_bytes), 0, "inconsistent geometry");
        let n_sets = size_bytes / (ways * line_bytes);
        assert!(n_sets.is_power_of_two(), "set count must be a power of two");
        assert!(ways <= u8::MAX as usize, "associativity beyond tracking width");
        SetAssocCache {
            tags: vec![0; n_sets * ways],
            lens: vec![0; n_sets],
            ways,
            line_shift: line_bytes.trailing_zeros(),
            set_mask: (n_sets - 1) as u64,
            accesses: 0,
            misses: 0,
        }
    }

    /// Creates the L1 described by a [`MemoryConfig`].
    pub fn from_config(cfg: &MemoryConfig) -> Self {
        Self::new(cfg.l1_bytes, cfg.l1_ways, cfg.l1_line_bytes)
    }

    /// Accesses `addr`, returning `true` on a hit. Misses allocate the
    /// line (evicting LRU if the set is full).
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let len = self.lens[set] as usize;
        let ways = &mut self.tags[set * self.ways..(set + 1) * self.ways];
        if let Some(pos) = ways[..len].iter().position(|&t| t == line) {
            // Move to MRU position (slide the younger tags down one).
            ways.copy_within(..pos, 1);
            ways[0] = line;
            true
        } else {
            self.misses += 1;
            if len < self.ways {
                self.lens[set] = (len + 1) as u8;
            }
            // Allocate at MRU; the LRU tag (if the set was full) falls off.
            ways.copy_within(..self.ways - 1, 1);
            ways[0] = line;
            false
        }
    }

    /// Peeks whether `addr` would hit, without touching LRU state or
    /// statistics.
    pub fn would_hit(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        let len = self.lens[set] as usize;
        self.tags[set * self.ways..set * self.ways + len].contains(&line)
    }

    /// Total accesses so far.
    #[inline]
    pub const fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    #[inline]
    pub const fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate over all accesses so far (0 if none).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Empties the cache and clears statistics.
    pub fn reset(&mut self) {
        self.lens.iter_mut().for_each(|l| *l = 0);
        self.accesses = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = SetAssocCache::new(1024, 2, 64);
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x13f)); // same 64B line as 0x100
        assert_eq!(c.accesses(), 3);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // 2-way, map three lines to the same set: 1KB/2way/64B = 8 sets,
        // so lines 0, 8, 16 all land in set 0.
        let mut c = SetAssocCache::new(1024, 2, 64);
        let a = 0u64; // line 0, set 0
        let b = 8 * 64; // line 8, set 0
        let d = 16 * 64; // line 16, set 0
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a)); // a is now MRU
        assert!(!c.access(d)); // evicts b (LRU)
        assert!(c.access(a));
        assert!(!c.access(b)); // b was evicted
    }

    #[test]
    fn would_hit_does_not_mutate() {
        let mut c = SetAssocCache::new(1024, 2, 64);
        c.access(0x0);
        assert!(c.would_hit(0x0));
        assert!(!c.would_hit(0x40));
        assert_eq!(c.accesses(), 1);
    }

    #[test]
    fn sequential_stream_miss_rate_is_one_per_line() {
        let mut c = SetAssocCache::new(32 * 1024, 4, 64);
        for i in 0..4096u64 {
            c.access(i * 8 % (1 << 14)); // 16 KB region, 8-byte stride
        }
        // 16 KB spans 256 lines; everything else hits.
        assert_eq!(c.misses(), 256);
    }

    #[test]
    fn giant_random_region_misses_often() {
        let mut c = SetAssocCache::from_config(&MemoryConfig::default());
        let mut x: u64 = 9;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            c.access(x % (64 << 20));
        }
        assert!(c.miss_rate() > 0.9, "miss rate {}", c.miss_rate());
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut c = SetAssocCache::new(1024, 2, 64);
        c.access(0);
        c.reset();
        assert_eq!(c.accesses(), 0);
        assert_eq!(c.misses(), 0);
        assert!(!c.would_hit(0));
        assert_eq!(c.miss_rate(), 0.0);
    }

    #[test]
    #[should_panic]
    fn non_power_of_two_line_panics() {
        let _ = SetAssocCache::new(1024, 2, 48);
    }

    #[test]
    #[should_panic]
    fn inconsistent_geometry_panics() {
        let _ = SetAssocCache::new(1000, 3, 64);
    }

    #[test]
    fn l1_from_config_has_128_sets() {
        let c = SetAssocCache::from_config(&MemoryConfig::default());
        assert_eq!(c.lens.len(), 128);
        assert_eq!(c.tags.len(), 128 * c.ways);
    }
}
