//! Branch direction predictors.
//!
//! The paper's front end uses a gshare predictor with 16 bits of global
//! history (Table 1). A bimodal predictor and a trivial oracle are
//! provided for comparison and for tests.

use crate::counters::SaturatingCounter;
use ccs_isa::Pc;

/// A dynamic branch direction predictor.
///
/// The simulator calls [`predict`](Self::predict) when a conditional
/// branch is fetched and [`update`](Self::update) with the resolved
/// direction (speculative-history effects are not modelled; the trace is
/// the correct path, matching the paper's trace-driven methodology).
pub trait BranchPredictor {
    /// Predicts the direction of the branch at `pc`.
    fn predict(&mut self, pc: Pc) -> bool;

    /// Trains the predictor with the branch's resolved direction.
    fn update(&mut self, pc: Pc, taken: bool);

    /// Resets all state to power-on values.
    fn reset(&mut self);
}

/// gshare: a global-history predictor indexing a table of 2-bit counters
/// with `history XOR pc`.
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<SaturatingCounter>,
    history: u64,
    history_bits: u32,
    mask: u64,
}

impl Gshare {
    /// Creates a gshare predictor with `history_bits` bits of global
    /// history and a table of `2^history_bits` 2-bit counters.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is 0 or greater than 24 (a 24-bit table is
    /// already 16M counters; the paper uses 16).
    pub fn new(history_bits: u32) -> Self {
        assert!(
            (1..=24).contains(&history_bits),
            "history bits must be in 1..=24"
        );
        let size = 1usize << history_bits;
        Gshare {
            table: vec![SaturatingCounter::bimodal2(); size],
            history: 0,
            history_bits,
            mask: (size - 1) as u64,
        }
    }

    #[inline]
    fn index(&self, pc: Pc) -> usize {
        (((pc.raw() >> 2) ^ self.history) & self.mask) as usize
    }
}

impl BranchPredictor for Gshare {
    #[inline]
    fn predict(&mut self, pc: Pc) -> bool {
        self.table[self.index(pc)].msb_set()
    }

    #[inline]
    fn update(&mut self, pc: Pc, taken: bool) {
        let idx = self.index(pc);
        if taken {
            self.table[idx].add(1);
        } else {
            self.table[idx].sub(1);
        }
        self.history = ((self.history << 1) | taken as u64) & self.mask;
        let _ = self.history_bits;
    }

    fn reset(&mut self) {
        for c in &mut self.table {
            *c = SaturatingCounter::bimodal2();
        }
        self.history = 0;
    }
}

/// Bimodal: a PC-indexed table of 2-bit counters with no history.
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<SaturatingCounter>,
    mask: u64,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^index_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 24.
    pub fn new(index_bits: u32) -> Self {
        assert!(
            (1..=24).contains(&index_bits),
            "index bits must be in 1..=24"
        );
        let size = 1usize << index_bits;
        Bimodal {
            table: vec![SaturatingCounter::bimodal2(); size],
            mask: (size - 1) as u64,
        }
    }

    fn index(&self, pc: Pc) -> usize {
        ((pc.raw() >> 2) & self.mask) as usize
    }
}

impl BranchPredictor for Bimodal {
    fn predict(&mut self, pc: Pc) -> bool {
        self.table[self.index(pc)].msb_set()
    }

    fn update(&mut self, pc: Pc, taken: bool) {
        let idx = self.index(pc);
        if taken {
            self.table[idx].add(1);
        } else {
            self.table[idx].sub(1);
        }
    }

    fn reset(&mut self) {
        for c in &mut self.table {
            *c = SaturatingCounter::bimodal2();
        }
    }
}

/// A trivial predictor that always predicts taken. Useful as a worst-case
/// baseline in tests and ablations.
#[derive(Debug, Clone, Copy, Default)]
pub struct OracleTaken;

impl BranchPredictor for OracleTaken {
    fn predict(&mut self, _pc: Pc) -> bool {
        true
    }

    fn update(&mut self, _pc: Pc, _taken: bool) {}

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accuracy<P: BranchPredictor>(p: &mut P, stream: &[(u64, bool)]) -> f64 {
        let mut hits = 0;
        for &(pc, taken) in stream {
            let pc = Pc::new(pc);
            if p.predict(pc) == taken {
                hits += 1;
            }
            p.update(pc, taken);
        }
        hits as f64 / stream.len() as f64
    }

    #[test]
    fn gshare_learns_constant_direction() {
        let mut p = Gshare::new(12);
        let stream: Vec<(u64, bool)> = (0..500).map(|_| (0x100, true)).collect();
        assert!(accuracy(&mut p, &stream) > 0.95);
    }

    #[test]
    fn gshare_learns_loop_exit_pattern() {
        // taken,taken,taken,not — trip count 4; gshare history captures it.
        let mut p = Gshare::new(12);
        let stream: Vec<(u64, bool)> = (0..2000).map(|i| (0x200, i % 4 != 3)).collect();
        let acc = accuracy(&mut p, &stream);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn bimodal_cannot_learn_alternation_but_gshare_can() {
        let stream: Vec<(u64, bool)> = (0..2000).map(|i| (0x300, i % 2 == 0)).collect();
        let mut b = Bimodal::new(12);
        let mut g = Gshare::new(12);
        let ba = accuracy(&mut b, &stream);
        let ga = accuracy(&mut g, &stream);
        assert!(ba < 0.7, "bimodal accuracy {ba}");
        assert!(ga > 0.95, "gshare accuracy {ga}");
    }

    #[test]
    fn random_branches_are_hard_for_everyone() {
        // A deterministic pseudo-random direction stream.
        let mut x: u64 = 0x12345;
        let stream: Vec<(u64, bool)> = (0..4000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (0x400, (x >> 33) & 1 == 1)
            })
            .collect();
        let mut g = Gshare::new(16);
        let acc = accuracy(&mut g, &stream);
        assert!(acc < 0.65, "accuracy {acc} should be near chance");
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut g = Gshare::new(8);
        for _ in 0..100 {
            g.update(Pc::new(0x40), true);
        }
        assert!(g.predict(Pc::new(0x40)));
        g.reset();
        assert!(!g.predict(Pc::new(0x40)));
    }

    #[test]
    fn oracle_taken_is_constant() {
        let mut o = OracleTaken;
        assert!(o.predict(Pc::new(0)));
        o.update(Pc::new(0), false);
        o.reset();
        assert!(o.predict(Pc::new(0)));
    }

    #[test]
    #[should_panic]
    fn gshare_zero_bits_panics() {
        let _ = Gshare::new(0);
    }

    #[test]
    #[should_panic]
    fn bimodal_too_many_bits_panics() {
        let _ = Bimodal::new(25);
    }
}
