//! Saturating and probabilistic counters.

use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// An n-bit saturating counter with configurable training increments.
///
/// The Fields criticality predictor uses a 6-bit counter that increments
/// by 8 when an instruction trains critical and decrements by 1 otherwise,
/// predicting critical at a threshold of 8 (footnote 6 of the paper);
/// branch direction predictors use the classic 2-bit configuration.
///
/// ```
/// use ccs_uarch::SaturatingCounter;
/// let mut c = SaturatingCounter::fields_criticality();
/// assert!(!c.at_least(8));
/// c.add(8);
/// assert!(c.at_least(8));
/// for _ in 0..7 { c.sub(1); }
/// assert!(!c.at_least(8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SaturatingCounter {
    value: u32,
    max: u32,
}

impl SaturatingCounter {
    /// Creates a counter saturating at `2^bits - 1`, starting at `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 31, or if `initial` exceeds
    /// the maximum.
    pub fn new(bits: u32, initial: u32) -> Self {
        assert!((1..=31).contains(&bits), "bits must be in 1..=31");
        let max = (1u32 << bits) - 1;
        assert!(initial <= max, "initial value exceeds saturation maximum");
        SaturatingCounter {
            value: initial,
            max,
        }
    }

    /// The Fields criticality configuration: 6 bits, starting at zero.
    /// Train with `add(8)` / `sub(1)`; predict critical with `at_least(8)`.
    pub fn fields_criticality() -> Self {
        Self::new(6, 0)
    }

    /// A 2-bit branch direction counter initialized weakly not-taken.
    pub fn bimodal2() -> Self {
        Self::new(2, 1)
    }

    /// Current value.
    #[inline]
    pub const fn value(&self) -> u32 {
        self.value
    }

    /// Saturation maximum.
    #[inline]
    pub const fn max(&self) -> u32 {
        self.max
    }

    /// Adds `n`, saturating at the maximum.
    #[inline]
    pub fn add(&mut self, n: u32) {
        self.value = self.value.saturating_add(n).min(self.max);
    }

    /// Subtracts `n`, saturating at zero.
    #[inline]
    pub fn sub(&mut self, n: u32) {
        self.value = self.value.saturating_sub(n);
    }

    /// Whether the value is at least `threshold`.
    #[inline]
    pub const fn at_least(&self, threshold: u32) -> bool {
        self.value >= threshold
    }

    /// Whether the counter's top bit is set — the conventional "taken"
    /// reading of a direction counter.
    #[inline]
    pub const fn msb_set(&self) -> bool {
        self.value > self.max / 2
    }
}

/// A probabilistic counter after Riley & Zilles, *Probabilistic Counter
/// Updates for Predictor Hysteresis and Bias* (CAL 2005), as used by the
/// paper's 4-bit likelihood-of-criticality predictor (§7).
///
/// The counter holds `level ∈ 0..=max` and estimates the probability `p`
/// of a boolean event stream using stochastic updates: a `true` event
/// increments with probability `(max - level)/max`, a `false` event
/// decrements with probability `level/max`. In steady state
/// `E[level] = p · max`, so `level/max` is an unbiased estimate of `p`
/// using only `bits` bits of storage — the paper stratifies LoC into 16
/// levels with 4 bits, less storage than the 6-bit Fields counter.
///
/// ```
/// use ccs_uarch::ProbabilisticCounter;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut c = ProbabilisticCounter::new(4);
/// for i in 0..4000 {
///     c.update(i % 4 == 0, &mut rng); // p = 0.25
/// }
/// let est = c.estimate();
/// assert!((est - 0.25).abs() < 0.2, "estimate {est}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbabilisticCounter {
    level: u32,
    max: u32,
}

impl ProbabilisticCounter {
    /// Creates a probabilistic counter with `bits` bits (so `2^bits`
    /// levels, `max = 2^bits - 1`), starting at level 0.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16.
    pub fn new(bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "bits must be in 1..=16");
        ProbabilisticCounter {
            level: 0,
            max: (1u32 << bits) - 1,
        }
    }

    /// The paper's configuration: 16 levels in 4 bits.
    pub fn loc4() -> Self {
        Self::new(4)
    }

    /// Current level in `0..=max`.
    #[inline]
    pub const fn level(&self) -> u32 {
        self.level
    }

    /// Number of representable levels (`max + 1`).
    #[inline]
    pub const fn levels(&self) -> u32 {
        self.max + 1
    }

    /// The estimated event probability, `level / max`.
    #[inline]
    pub fn estimate(&self) -> f64 {
        self.level as f64 / self.max as f64
    }

    /// Trains on one event using a probabilistic update.
    pub fn update<R: Rng + ?Sized>(&mut self, event: bool, rng: &mut R) {
        if event {
            if self.level < self.max {
                let p = (self.max - self.level) as f64 / self.max as f64;
                if rng.random_bool(p) {
                    self.level += 1;
                }
            }
        } else if self.level > 0 {
            let p = self.level as f64 / self.max as f64;
            if rng.random_bool(p) {
                self.level -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn saturating_counter_saturates_both_ends() {
        let mut c = SaturatingCounter::new(2, 0);
        c.sub(5);
        assert_eq!(c.value(), 0);
        c.add(100);
        assert_eq!(c.value(), 3);
        assert_eq!(c.max(), 3);
    }

    #[test]
    fn fields_configuration_thresholds() {
        // 1-in-8 critical instances suffice to stay predicted-critical:
        // +8 on the critical one, -1 on the other seven.
        let mut c = SaturatingCounter::fields_criticality();
        c.add(8);
        for _ in 0..7 {
            c.sub(1);
        }
        assert_eq!(c.value(), 1);
        c.add(8);
        assert!(c.at_least(8));
    }

    #[test]
    fn bimodal_msb_semantics() {
        let mut c = SaturatingCounter::bimodal2();
        assert!(!c.msb_set()); // 1 of 3
        c.add(1);
        assert!(c.msb_set()); // 2 of 3
        c.add(1);
        assert!(c.msb_set()); // 3 of 3
        c.sub(2);
        assert!(!c.msb_set());
    }

    #[test]
    #[should_panic]
    fn zero_bits_panics() {
        let _ = SaturatingCounter::new(0, 0);
    }

    #[test]
    #[should_panic]
    fn initial_out_of_range_panics() {
        let _ = SaturatingCounter::new(2, 4);
    }

    #[test]
    fn probabilistic_counter_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(42);
        for &p in &[0.1, 0.5, 0.9] {
            let mut c = ProbabilisticCounter::loc4();
            // Long stream; average the level over the tail for a stable read.
            let mut acc = 0u64;
            let mut n = 0u64;
            for i in 0..20_000 {
                c.update(rng.random_bool(p), &mut rng);
                if i >= 5_000 {
                    acc += c.level() as u64;
                    n += 1;
                }
            }
            let est = acc as f64 / n as f64 / c.max as f64;
            assert!((est - p).abs() < 0.08, "p={p} est={est}");
        }
    }

    #[test]
    fn probabilistic_counter_is_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut c = ProbabilisticCounter::new(2);
        for _ in 0..1000 {
            c.update(true, &mut rng);
            assert!(c.level() <= c.max);
        }
        assert_eq!(c.level(), c.max);
        for _ in 0..1000 {
            c.update(false, &mut rng);
        }
        assert_eq!(c.level(), 0);
        assert_eq!(c.levels(), 4);
    }

    #[test]
    fn loc4_has_16_levels() {
        let c = ProbabilisticCounter::loc4();
        assert_eq!(c.levels(), 16);
        assert_eq!(c.estimate(), 0.0);
    }
}
