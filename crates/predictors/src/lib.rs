//! Criticality predictors.
//!
//! The paper's policies are driven by PC-indexed predictions of how
//! critical each static instruction tends to be:
//!
//! * [`BinaryCriticality`] — the Fields et al. predictor: a 6-bit
//!   saturating counter per PC, incremented by 8 when an instance trains
//!   critical and decremented by 1 otherwise; predicted critical at a
//!   threshold of 8 (so 1-in-8 critical instances suffice — the binary
//!   coarseness that §4 identifies as the source of criticality ties).
//! * [`ExactLoc`] — the *likelihood of criticality* (LoC) metric of §4
//!   with unlimited precision: the fraction of a static instruction's
//!   dynamic instances that have been critical.
//! * [`QuantizedLoc`] — the §7 implementation: LoC stratified into 16
//!   levels held in 4 bits per PC using Riley-Zilles probabilistic counter
//!   updates.
//! * [`LocDistribution`] — the dynamic-instruction-weighted histogram of
//!   LoC values behind Figure 8.
//!
//! Training comes from the critical-path analysis of retired instructions
//! (`ccs-critpath`'s `e_critical` set) — the idealized form of the signal
//! the paper's token-passing detector produces in hardware.
//!
//! # Example
//!
//! ```
//! use ccs_predictors::{BinaryCriticality, CriticalityPredictor, ExactLoc, LocEstimator};
//! use ccs_isa::Pc;
//!
//! let mut binary = BinaryCriticality::new();
//! let mut loc = ExactLoc::new();
//! let pc = Pc::new(0x40);
//! // An instruction critical 1 time in 4:
//! for i in 0..40 {
//!     let critical = i % 4 == 0;
//!     binary.train(pc, critical);
//!     loc.train(pc, critical);
//! }
//! assert!(binary.predict(pc));             // binary: critical
//! assert!((loc.loc(pc) - 0.25).abs() < 0.01); // LoC: 25%
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binary;
mod detector;
mod distribution;
mod loc;
mod table;

pub use binary::BinaryCriticality;
pub use detector::TokenDetector;
pub use distribution::{distribution_from_criticality, LocDistribution};
pub use loc::{ExactLoc, LocEstimator, QuantizedLoc};
pub use table::PcTable;

use ccs_isa::Pc;

/// A PC-indexed binary criticality predictor.
pub trait CriticalityPredictor {
    /// Predicts whether instances of the instruction at `pc` are critical.
    fn predict(&self, pc: Pc) -> bool;

    /// Trains with one observed instance.
    fn train(&mut self, pc: Pc, critical: bool);

    /// Clears all learned state.
    fn reset(&mut self);
}
