//! A generic PC-indexed table.

use ccs_isa::Pc;
use std::collections::HashMap;

/// A map from static instruction PCs to per-instruction predictor state.
///
/// Real hardware would use a finite, untagged table with aliasing; the
/// paper's results are about policy quality rather than table pressure, so
/// the table is modelled as unaliased (equivalent to a sufficiently large
/// tagged table). The static footprints of the workload models are tiny,
/// making aliasing moot.
///
/// ```
/// use ccs_predictors::PcTable;
/// use ccs_isa::Pc;
/// let mut t: PcTable<u32> = PcTable::new();
/// *t.entry(Pc::new(8)) += 3;
/// assert_eq!(t.get(Pc::new(8)), Some(&3));
/// assert_eq!(t.get(Pc::new(12)), None);
/// ```
#[derive(Debug, Clone)]
pub struct PcTable<T> {
    entries: HashMap<u64, T>,
}

impl<T> Default for PcTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PcTable<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        PcTable {
            entries: HashMap::new(),
        }
    }

    /// The state for `pc`, if any instance has trained it.
    #[inline]
    pub fn get(&self, pc: Pc) -> Option<&T> {
        self.entries.get(&pc.raw())
    }

    /// Mutable state for `pc`, if present.
    #[inline]
    pub fn get_mut(&mut self, pc: Pc) -> Option<&mut T> {
        self.entries.get_mut(&pc.raw())
    }

    /// Number of PCs with state.
    #[inline]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no PC has state.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Clears all state.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates over `(pc, state)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, &T)> {
        self.entries.iter().map(|(&pc, v)| (Pc::new(pc), v))
    }
}

impl<T: Default> PcTable<T> {
    /// The state for `pc`, inserting a default entry if absent.
    #[inline]
    pub fn entry(&mut self, pc: Pc) -> &mut T {
        self.entries.entry(pc.raw()).or_default()
    }
}

impl<T> PcTable<T> {
    /// The state for `pc`, inserting `init()` if absent — for entry types
    /// whose power-on state is not `Default` (e.g. configured counters).
    #[inline]
    pub fn entry_with(&mut self, pc: Pc, init: impl FnOnce() -> T) -> &mut T {
        self.entries.entry(pc.raw()).or_insert_with(init)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_defaults_and_persists() {
        let mut t: PcTable<i32> = PcTable::new();
        assert!(t.is_empty());
        *t.entry(Pc::new(4)) = 7;
        assert_eq!(t.get(Pc::new(4)), Some(&7));
        assert_eq!(t.len(), 1);
        *t.entry(Pc::new(4)) += 1;
        assert_eq!(t.get(Pc::new(4)), Some(&8));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn get_mut_and_clear() {
        let mut t: PcTable<String> = PcTable::new();
        t.entry(Pc::new(0)).push('a');
        if let Some(s) = t.get_mut(Pc::new(0)) {
            s.push('b');
        }
        assert_eq!(t.get(Pc::new(0)).unwrap(), "ab");
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn iter_visits_all() {
        let mut t: PcTable<u8> = PcTable::new();
        t.entry(Pc::new(0));
        t.entry(Pc::new(4));
        assert_eq!(t.iter().count(), 2);
    }
}
