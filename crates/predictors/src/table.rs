//! A generic PC-indexed table.

use ccs_isa::Pc;

/// Fibonacci multiplier for spreading word-aligned PCs across buckets.
const HASH_MUL: u64 = 0x9E37_79B9_7F4A_7C15;

/// A map from static instruction PCs to per-instruction predictor state.
///
/// Real hardware would use a finite, untagged table with aliasing; the
/// paper's results are about policy quality rather than table pressure, so
/// the table is modelled as unaliased (equivalent to a sufficiently large
/// tagged table). The static footprints of the workload models are tiny,
/// making aliasing moot.
///
/// Internally an open-addressed, linearly-probed table with fibonacci
/// hashing: predictor lookups sit on the engine's per-instruction hot
/// path (steering, scheduling priority, training), where a SipHash
/// `HashMap` probe is several times the cost of the surrounding work.
/// There is no per-key removal — predictors only insert, update and
/// [`clear`](PcTable::clear) — so probing needs no tombstones.
///
/// ```
/// use ccs_predictors::PcTable;
/// use ccs_isa::Pc;
/// let mut t: PcTable<u32> = PcTable::new();
/// *t.entry(Pc::new(8)) += 3;
/// assert_eq!(t.get(Pc::new(8)), Some(&3));
/// assert_eq!(t.get(Pc::new(12)), None);
/// ```
#[derive(Debug, Clone)]
pub struct PcTable<T> {
    /// Power-of-two slot array; `None` marks an empty (never-occupied)
    /// slot, so a probe can stop at the first hole.
    slots: Vec<Option<(u64, T)>>,
    len: usize,
}

impl<T> Default for PcTable<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PcTable<T> {
    /// Creates an empty table.
    pub fn new() -> Self {
        PcTable {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// The slot index where `key` lives, or the first empty slot on its
    /// probe path. Requires a non-empty slot array.
    #[inline]
    fn probe(&self, key: u64) -> usize {
        debug_assert!(self.slots.len().is_power_of_two());
        let mask = self.slots.len() - 1;
        let mut i = (key.wrapping_mul(HASH_MUL) >> 32) as usize & mask;
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k != key => i = (i + 1) & mask,
                _ => return i,
            }
        }
    }

    /// The state for `pc`, if any instance has trained it.
    #[inline]
    pub fn get(&self, pc: Pc) -> Option<&T> {
        if self.len == 0 {
            return None;
        }
        let i = self.probe(pc.raw());
        self.slots[i].as_ref().map(|(_, v)| v)
    }

    /// Mutable state for `pc`, if present.
    #[inline]
    pub fn get_mut(&mut self, pc: Pc) -> Option<&mut T> {
        if self.len == 0 {
            return None;
        }
        let i = self.probe(pc.raw());
        self.slots[i].as_mut().map(|(_, v)| v)
    }

    /// Number of PCs with state.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no PC has state.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Clears all state.
    pub fn clear(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = None);
        self.len = 0;
    }

    /// Iterates over `(pc, state)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, &T)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(pc, v)| (Pc::new(*pc), v)))
    }

    /// Doubles the slot array when the load factor reaches 7/8, keeping
    /// probe sequences short.
    fn grow_if_needed(&mut self) {
        if self.slots.is_empty() {
            self.slots.resize_with(16, || None);
            return;
        }
        if (self.len + 1) * 8 <= self.slots.len() * 7 {
            return;
        }
        let old = std::mem::take(&mut self.slots);
        self.slots.resize_with(old.len() * 2, || None);
        for slot in old.into_iter().flatten() {
            let i = self.probe(slot.0);
            debug_assert!(self.slots[i].is_none());
            self.slots[i] = Some(slot);
        }
    }
}

impl<T: Default> PcTable<T> {
    /// The state for `pc`, inserting a default entry if absent.
    #[inline]
    pub fn entry(&mut self, pc: Pc) -> &mut T {
        self.entry_with(pc, T::default)
    }
}

impl<T> PcTable<T> {
    /// The state for `pc`, inserting `init()` if absent — for entry types
    /// whose power-on state is not `Default` (e.g. configured counters).
    #[inline]
    pub fn entry_with(&mut self, pc: Pc, init: impl FnOnce() -> T) -> &mut T {
        self.grow_if_needed();
        let i = self.probe(pc.raw());
        if self.slots[i].is_none() {
            self.slots[i] = Some((pc.raw(), init()));
            self.len += 1;
        }
        match &mut self.slots[i] {
            Some((_, v)) => v,
            // Invariant: the slot was just filled above if it was empty.
            None => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_defaults_and_persists() {
        let mut t: PcTable<i32> = PcTable::new();
        assert!(t.is_empty());
        *t.entry(Pc::new(4)) = 7;
        assert_eq!(t.get(Pc::new(4)), Some(&7));
        assert_eq!(t.len(), 1);
        *t.entry(Pc::new(4)) += 1;
        assert_eq!(t.get(Pc::new(4)), Some(&8));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn get_mut_and_clear() {
        let mut t: PcTable<String> = PcTable::new();
        t.entry(Pc::new(0)).push('a');
        if let Some(s) = t.get_mut(Pc::new(0)) {
            s.push('b');
        }
        assert_eq!(t.get(Pc::new(0)).unwrap(), "ab");
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.get(Pc::new(0)), None);
    }

    #[test]
    fn iter_visits_all() {
        let mut t: PcTable<u8> = PcTable::new();
        t.entry(Pc::new(0));
        t.entry(Pc::new(4));
        assert_eq!(t.iter().count(), 2);
    }

    #[test]
    fn survives_growth_and_colliding_keys() {
        let mut t: PcTable<u64> = PcTable::new();
        // Far past several growth thresholds, with keys that collide in
        // small tables (aligned PCs are the common case).
        for k in 0..1000u64 {
            *t.entry(Pc::new(4 * k)) = k;
        }
        assert_eq!(t.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(t.get(Pc::new(4 * k)), Some(&k), "key {k}");
            assert_eq!(t.get(Pc::new(4 * k + 1)), None);
        }
    }
}
