//! The LoC value distribution of Figure 8.

use crate::loc::{ExactLoc, LocEstimator};
use ccs_isa::Pc;
use serde::{Deserialize, Serialize};

/// A dynamic-instruction-weighted histogram of static LoC values —
/// Figure 8 of the paper ("% dynamic inst" per 5% LoC bucket, with the
/// binary predictor's threshold falling at 1/8 ≈ 12.5%).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[derive(Default)]
pub struct LocDistribution {
    /// `buckets[k]` = dynamic instances whose static LoC falls in
    /// `[5k%, 5(k+1)%)` (last bucket closed at 100%).
    buckets: [u64; 21],
    total: u64,
}

impl LocDistribution {
    /// Number of 5%-wide buckets (0, 5, …, 100).
    pub const BUCKETS: usize = 21;

    /// Builds the distribution from a trained [`ExactLoc`] table, weighting
    /// each PC by its dynamic instance count.
    pub fn from_exact(loc: &ExactLoc) -> Self {
        let mut buckets = [0u64; 21];
        let mut total = 0u64;
        for (_, l, instances) in loc.iter() {
            let b = ((l * 100.0) / 5.0).floor() as usize;
            buckets[b.min(20)] += instances;
            total += instances;
        }
        LocDistribution { buckets, total }
    }

    /// Percentage of dynamic instructions in bucket `k` (LoC in
    /// `[5k%, 5(k+1)%)`).
    pub fn percent(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        100.0 * self.buckets[k] as f64 / self.total as f64
    }

    /// Total dynamic instances behind the histogram.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Percentage of dynamic instructions the Fields binary predictor
    /// would classify critical (LoC ≥ 1/8): everything the paper's Figure
    /// 8 shows right of the dashed threshold line.
    pub fn percent_binary_critical(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        // Buckets 3.. (15%+) are entirely above 12.5%; bucket 2 (10–15%)
        // straddles it — count it fully, matching the figure's threshold
        // line drawn inside that bucket.
        let above: u64 = self.buckets[3..].iter().sum();
        100.0 * above as f64 / self.total as f64
    }

    /// Merges another distribution (for cross-benchmark averaging).
    pub fn merge(&mut self, other: &LocDistribution) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets) {
            *dst += src;
        }
        self.total += other.total;
    }

    /// Iterates `(loc_percent_lower_bound, percent_dynamic)` for display.
    pub fn series(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        (0..Self::BUCKETS).map(|k| (5 * k as u32, self.percent(k)))
    }
}


/// Convenience: trains an [`ExactLoc`] from a per-instruction criticality
/// vector and the trace's PCs, then builds the distribution.
pub fn distribution_from_criticality(
    pcs: impl IntoIterator<Item = Pc>,
    critical: impl IntoIterator<Item = bool>,
) -> LocDistribution {
    let mut loc = ExactLoc::new();
    for (pc, c) in pcs.into_iter().zip(critical) {
        loc.train(pc, c);
    }
    LocDistribution::from_exact(&loc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_and_percentages() {
        let mut loc = ExactLoc::new();
        // PC A: never critical, 80 instances → bucket 0.
        for _ in 0..80 {
            loc.train(Pc::new(0), false);
        }
        // PC B: 50% critical, 20 instances → bucket 10 (50–55%).
        for i in 0..20 {
            loc.train(Pc::new(4), i % 2 == 0);
        }
        let d = LocDistribution::from_exact(&loc);
        assert_eq!(d.total(), 100);
        assert!((d.percent(0) - 80.0).abs() < 1e-9);
        assert!((d.percent(10) - 20.0).abs() < 1e-9);
        assert!((d.percent_binary_critical() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn always_critical_lands_in_last_bucket() {
        let mut loc = ExactLoc::new();
        for _ in 0..5 {
            loc.train(Pc::new(0), true);
        }
        let d = LocDistribution::from_exact(&loc);
        assert!((d.percent(20) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_distribution_is_zero() {
        let d = LocDistribution::default();
        assert_eq!(d.total(), 0);
        assert_eq!(d.percent(0), 0.0);
        assert_eq!(d.percent_binary_critical(), 0.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = distribution_from_criticality(
            vec![Pc::new(0); 10],
            std::iter::repeat_n(false, 10),
        );
        let b = distribution_from_criticality(
            vec![Pc::new(4); 10],
            std::iter::repeat_n(true, 10),
        );
        a.merge(&b);
        assert_eq!(a.total(), 20);
        assert!((a.percent(0) - 50.0).abs() < 1e-9);
        assert!((a.percent(20) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn series_covers_all_buckets() {
        let d = LocDistribution::default();
        let s: Vec<_> = d.series().collect();
        assert_eq!(s.len(), 21);
        assert_eq!(s[0].0, 0);
        assert_eq!(s[20].0, 100);
    }
}
