//! The token-passing criticality detector of Fields, Rubin & Bodík
//! (ISCA 2001) — the hardware mechanism the paper builds into its
//! pipeline ("a criticality detector that samples the retiring
//! instruction stream").
//!
//! The detector exploits the *last-arriving edge* structure of the
//! dependence graph: a node lies on the critical path iff an unbroken
//! chain of last-arriving edges connects it to the end of the program.
//! In hardware, this is tested forward: plant a token at a sampled
//! instruction's execute node and propagate it along last-arriving edges
//! as later instructions retire. If the token is still propagating after
//! a horizon of instructions, the planted node was (almost certainly)
//! critical; if every tagged node ages out of the machine, it was not.
//!
//! This implementation consumes the simulator's per-retire records, which
//! carry exactly the last-arriving information real token-passing
//! hardware observes (which operand arrived last, what bound dispatch and
//! commit). Several tokens are tracked concurrently as a bitmask per
//! node, as in the original proposal's token array.

use crate::CriticalityPredictor;
use ccs_isa::Pc;
use ccs_sim::{CommitBound, DispatchBound, ReadyBound, SimResult};
use ccs_trace::Trace;
use std::collections::VecDeque;

/// Configuration of the token-passing detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenDetector {
    /// Instructions a token must survive to be declared critical. The
    /// window must exceed the machine's ROB reach for the liveness test
    /// to be meaningful.
    pub horizon: usize,
    /// Concurrent tokens (hardware token-array size). Up to 32.
    pub tokens: u32,
}

impl Default for TokenDetector {
    fn default() -> Self {
        TokenDetector {
            horizon: 512,
            tokens: 16,
        }
    }
}

/// Per-node token bitmasks: D, E, C.
type NodeMasks = [u32; 3];
const D: usize = 0;
const E: usize = 1;
const C: usize = 2;

impl TokenDetector {
    /// Runs the detector over one execution, invoking `train` with
    /// `(pc, critical)` for every resolved sample. Returns the number of
    /// samples resolved.
    ///
    /// # Examples
    ///
    /// ```
    /// use ccs_isa::MachineConfig;
    /// use ccs_predictors::TokenDetector;
    /// use ccs_sim::{policies::LeastLoaded, simulate};
    /// use ccs_trace::Benchmark;
    ///
    /// let trace = Benchmark::Gzip.generate(1, 4_000);
    /// let result = simulate(&MachineConfig::micro05_baseline(), &trace,
    ///     &mut LeastLoaded).unwrap();
    /// let mut samples = 0;
    /// let resolved = TokenDetector::default()
    ///     .run(&trace, &result, |_pc, _critical| samples += 1);
    /// assert_eq!(resolved, samples);
    /// assert!(resolved > 0);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `result` does not correspond to `trace`, if `tokens`
    /// is 0 or exceeds 32, or if the horizon is zero.
    pub fn run(
        &self,
        trace: &Trace,
        result: &SimResult,
        mut train: impl FnMut(Pc, bool),
    ) -> usize {
        assert_eq!(trace.len(), result.records.len());
        assert!(self.horizon > 0, "horizon must be positive");
        assert!(
            (1..=32).contains(&self.tokens),
            "token count must be in 1..=32"
        );
        let n = trace.len();
        let recs = &result.records;
        // Nodes can be referenced from at most ROB-reach instructions
        // later (dataflow, redirect and ROB edges all stay within the
        // in-flight window).
        let span = result.config.rob_entries + result.config.commit_width + 2;

        // Sliding window of node masks for the last `span` instructions.
        let mut window: VecDeque<NodeMasks> = VecDeque::with_capacity(span + 1);
        let mut window_base = 0usize; // index of window.front()

        // Token bookkeeping.
        let mut planted_at: Vec<Option<(usize, Pc)>> = vec![None; self.tokens as usize];
        let mut alive: Vec<u32> = vec![0; self.tokens as usize]; // tagged-node counts
        let mut free: Vec<u32> = (0..self.tokens).rev().collect();
        let mut next_sample = 0usize;
        let mut resolved = 0usize;

        let mask_of = |window: &VecDeque<NodeMasks>, base: usize, idx: usize, node: usize| -> u32 {
            if idx < base {
                0
            } else {
                window.get(idx - base).map_or(0, |m| m[node])
            }
        };

        #[allow(clippy::needless_range_loop)] // `i` indexes several arrays
        for i in 0..n {
            let r = &recs[i];
            let mut masks: NodeMasks = [0; 3];

            // D(i): tag from its last-arriving predecessor.
            let dpred: Option<(usize, usize)> = match r.dispatch_bound {
                DispatchBound::FrontEnd | DispatchBound::InOrder => {
                    i.checked_sub(1).map(|p| (p, D))
                }
                DispatchBound::Redirect(b) => Some((b.index(), E)),
                DispatchBound::RobFull(j) => Some((j.index(), C)),
                DispatchBound::SteerStall { freed_by } => match freed_by {
                    Some(j) if j.index() < i => Some((j.index(), D)),
                    _ => i.checked_sub(1).map(|p| (p, D)),
                },
            };
            if let Some((p, node)) = dpred {
                masks[D] = mask_of(&window, window_base, p, node);
            }
            // E(i): from the last-arriving operand or dispatch.
            masks[E] = match r.ready_bound {
                ReadyBound::Dispatch => masks[D],
                ReadyBound::Operand { producer, .. } => {
                    mask_of(&window, window_base, producer.index(), E)
                }
            };
            // C(i): from completion or the commit chain.
            masks[C] = match r.commit_bound {
                CommitBound::Complete => masks[E],
                CommitBound::InOrder => {
                    i.checked_sub(1).map_or(0, |p| mask_of(&window, window_base, p, C))
                }
                CommitBound::Bandwidth => i
                    .checked_sub(result.config.commit_width)
                    .map_or(0, |p| mask_of(&window, window_base, p, C)),
            };

            // Plant a fresh token at E(i) when it is this instruction's
            // turn to be sampled and a token is available.
            if i == next_sample {
                if let Some(k) = free.pop() {
                    masks[E] |= 1 << k;
                    planted_at[k as usize] = Some((i, trace.as_slice()[i].pc()));
                }
                // Spread samples over the stream.
                next_sample = i + 1 + (i % 7);
            }

            // Account tagged nodes per token.
            let union = masks[D] | masks[E] | masks[C];
            for k in 0..self.tokens {
                if union & (1 << k) != 0 {
                    let bits = ((masks[D] >> k) & 1) + ((masks[E] >> k) & 1) + ((masks[C] >> k) & 1);
                    alive[k as usize] += bits;
                }
            }

            window.push_back(masks);
            // Expire nodes that can no longer be referenced.
            while window.len() > span {
                // Invariant: the loop condition `window.len() > span`
                // (span >= 1) guarantees a front element.
                let old = window.pop_front().expect("non-empty window");
                window_base += 1;
                for k in 0..self.tokens {
                    let bits =
                        ((old[D] >> k) & 1) + ((old[E] >> k) & 1) + ((old[C] >> k) & 1);
                    if bits > 0 {
                        let a = &mut alive[k as usize];
                        *a -= bits;
                        if *a == 0 {
                            // Token died: the planted node's influence
                            // never reached this far — not critical.
                            if let Some((_, pc)) = planted_at[k as usize].take() {
                                train(pc, false);
                                resolved += 1;
                                free.push(k);
                            }
                        }
                    }
                }
            }

            // Resolve long-lived tokens as critical.
            for k in 0..self.tokens {
                if let Some((at, pc)) = planted_at[k as usize] {
                    if alive[k as usize] > 0 && i - at >= self.horizon {
                        train(pc, true);
                        resolved += 1;
                        planted_at[k as usize] = None;
                        // Clear the token's bits from the live window.
                        for m in window.iter_mut() {
                            for node in m.iter_mut() {
                                *node &= !(1u32 << k);
                            }
                        }
                        alive[k as usize] = 0;
                        free.push(k);
                    }
                }
            }
        }
        resolved
    }

    /// Convenience: runs the detector and trains a
    /// [`CriticalityPredictor`] with every resolved sample.
    pub fn train_predictor(
        &self,
        trace: &Trace,
        result: &SimResult,
        predictor: &mut dyn CriticalityPredictor,
    ) -> usize {
        self.run(trace, result, |pc, critical| predictor.train(pc, critical))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinaryCriticality, ExactLoc, LocEstimator};
    use ccs_isa::{ArchReg, ClusterLayout, MachineConfig, OpClass, StaticInst};
    use ccs_sim::{policies::LeastLoaded, simulate};
    use ccs_trace::{Benchmark, TraceBuilder};
    use std::collections::HashMap;

    #[test]
    fn serial_chain_tokens_survive_forever() {
        // Every instruction of a serial chain is critical: all planted
        // tokens must resolve critical.
        let mut b = TraceBuilder::new();
        let r = ArchReg::int(1);
        for i in 0..4_000u64 {
            b.push_simple(
                StaticInst::new(Pc::new(4 * (i % 8)), OpClass::IntAlu)
                    .with_src(r)
                    .with_dst(r),
            );
        }
        let trace = b.finish();
        let cfg = MachineConfig::micro05_baseline();
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let det = TokenDetector::default();
        let mut outcomes = Vec::new();
        let resolved = det.run(&trace, &result, |_pc, c| outcomes.push(c));
        assert!(resolved > 4, "resolved {resolved}");
        let critical = outcomes.iter().filter(|&&c| c).count();
        assert!(
            critical as f64 / outcomes.len() as f64 > 0.9,
            "critical fraction {}/{}",
            critical,
            outcomes.len()
        );
    }

    #[test]
    fn independent_work_tokens_die() {
        // Fully independent instructions: tokens planted on most
        // instructions die quickly (their influence ends immediately).
        let mut b = TraceBuilder::new();
        for i in 0..6_000u64 {
            b.push_simple(
                StaticInst::new(Pc::new(4 * (i % 16)), OpClass::IntAlu)
                    .with_dst(ArchReg::int(1 + (i % 30) as u16)),
            );
        }
        let trace = b.finish();
        let cfg = MachineConfig::micro05_baseline();
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let det = TokenDetector::default();
        let mut outcomes = Vec::new();
        det.run(&trace, &result, |_pc, c| outcomes.push(c));
        assert!(!outcomes.is_empty());
        let critical = outcomes.iter().filter(|&&c| c).count();
        assert!(
            (critical as f64) < outcomes.len() as f64 * 0.5,
            "critical fraction {}/{}",
            critical,
            outcomes.len()
        );
    }

    #[test]
    fn detector_agrees_with_exact_graph_analysis() {
        // Per-PC LoC learned from the token detector should correlate
        // with LoC learned from the exact critical path.
        let trace = Benchmark::Vpr.generate(3, 20_000);
        let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let cp = ccs_critpath_analyze(&trace, &result);

        let mut exact = ExactLoc::new();
        for (i, inst) in trace.iter() {
            exact.train(inst.pc(), cp[i.index()]);
        }
        let mut sampled: HashMap<u64, (u64, u64)> = HashMap::new();
        let det = TokenDetector {
            horizon: 384,
            tokens: 32,
        };
        let resolved = det.run(&trace, &result, |pc, c| {
            let e = sampled.entry(pc.raw()).or_insert((0, 0));
            if c {
                e.0 += 1;
            }
            e.1 += 1;
        });
        assert!(resolved > 200, "resolved {resolved}");

        // Rank agreement: PCs the exact analysis calls clearly critical
        // (LoC > 0.5) should have higher detector rates than clearly
        // non-critical ones (LoC < 0.05), on average.
        let mut hi = Vec::new();
        let mut lo = Vec::new();
        for (&pc, &(c, t)) in &sampled {
            if t < 5 {
                continue;
            }
            let rate = c as f64 / t as f64;
            let exact_loc = exact.loc(Pc::new(pc));
            if exact_loc > 0.5 {
                hi.push(rate);
            } else if exact_loc < 0.05 {
                lo.push(rate);
            }
        }
        assert!(!hi.is_empty() && !lo.is_empty(), "need both classes");
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&hi) > mean(&lo),
            "critical PCs {:.2} vs non-critical {:.2}",
            mean(&hi),
            mean(&lo)
        );
    }

    #[test]
    fn detector_trains_a_binary_predictor() {
        let trace = Benchmark::Gzip.generate(1, 10_000);
        let cfg = MachineConfig::micro05_baseline();
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let mut pred = BinaryCriticality::new();
        let det = TokenDetector::default();
        let resolved = det.train_predictor(&trace, &result, &mut pred);
        assert!(resolved > 10);
        assert!(pred.footprint() > 0);
    }

    #[test]
    #[should_panic]
    fn zero_horizon_panics() {
        let trace = TraceBuilder::new().finish();
        let cfg = MachineConfig::micro05_baseline();
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let det = TokenDetector {
            horizon: 0,
            tokens: 1,
        };
        det.run(&trace, &result, |_, _| {});
    }

    /// Local shim: the predictors crate cannot depend on ccs-critpath
    /// (ccs-critpath sits above it), so tests re-derive E-criticality with
    /// a minimal backward walk over the recorded bounds.
    fn ccs_critpath_analyze(trace: &Trace, result: &SimResult) -> Vec<bool> {
        let n = trace.len();
        let mut e_critical = vec![false; n];
        if n == 0 {
            return e_critical;
        }
        let recs = &result.records;
        #[derive(Clone, Copy, PartialEq)]
        enum Node {
            D(usize),
            E(usize),
            C(usize),
            Root,
        }
        let mut node = Node::C(n - 1);
        let cw = result.config.commit_width;
        loop {
            match node {
                Node::Root => break,
                Node::C(i) => {
                    node = match recs[i].commit_bound {
                        CommitBound::Complete => Node::E(i),
                        CommitBound::InOrder => Node::C(i - 1),
                        CommitBound::Bandwidth => {
                            if i >= cw {
                                Node::C(i - cw)
                            } else {
                                Node::E(i)
                            }
                        }
                    }
                }
                Node::E(i) => {
                    e_critical[i] = true;
                    node = match recs[i].ready_bound {
                        ReadyBound::Dispatch => Node::D(i),
                        ReadyBound::Operand { producer, .. } => Node::E(producer.index()),
                    }
                }
                Node::D(i) => {
                    node = match recs[i].dispatch_bound {
                        DispatchBound::Redirect(b) => Node::E(b.index()),
                        DispatchBound::RobFull(j) => Node::C(j.index()),
                        DispatchBound::SteerStall { freed_by: Some(j) } if j.index() < i => {
                            Node::D(j.index())
                        }
                        _ => {
                            if i == 0 {
                                Node::Root
                            } else {
                                Node::D(i - 1)
                            }
                        }
                    }
                }
            }
        }
        e_critical
    }
}
