//! The Fields et al. binary criticality predictor.

use crate::table::PcTable;
use crate::CriticalityPredictor;
use ccs_isa::Pc;
use ccs_uarch::SaturatingCounter;

/// The binary criticality predictor of Fields, Rubin & Bodík as
/// configured in the paper (footnote 6): a 6-bit saturating counter per
/// PC that trains `+8` on a critical instance and `−1` otherwise, and
/// predicts critical when the counter is at least 8.
///
/// Consequently an instruction critical as rarely as 1 instance in 8
/// stays predicted-critical — the coarseness that makes predicted-critical
/// instructions contend with each other (§4).
#[derive(Debug, Clone, Default)]
pub struct BinaryCriticality {
    table: PcTable<SaturatingCounter>,
}

impl BinaryCriticality {
    /// Increment applied when an instance trains critical.
    pub const TRAIN_UP: u32 = 8;
    /// Decrement applied when an instance trains non-critical.
    pub const TRAIN_DOWN: u32 = 1;
    /// Counter threshold at or above which the prediction is "critical".
    pub const THRESHOLD: u32 = 8;

    /// Creates an empty predictor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of PCs with trained state.
    pub fn footprint(&self) -> usize {
        self.table.len()
    }

    fn counter_mut(&mut self, pc: Pc) -> &mut SaturatingCounter {
        self.table
            .entry_with(pc, SaturatingCounter::fields_criticality)
    }
}

impl CriticalityPredictor for BinaryCriticality {
    fn predict(&self, pc: Pc) -> bool {
        self.table
            .get(pc)
            .is_some_and(|c| c.at_least(Self::THRESHOLD))
    }

    fn train(&mut self, pc: Pc, critical: bool) {
        let c = self.counter_mut(pc);
        if critical {
            c.add(Self::TRAIN_UP);
        } else {
            c.sub(Self::TRAIN_DOWN);
        }
    }

    fn reset(&mut self) {
        self.table.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untrained_pcs_predict_not_critical() {
        let p = BinaryCriticality::new();
        assert!(!p.predict(Pc::new(0x100)));
    }

    #[test]
    fn one_in_eight_critical_is_predicted_critical() {
        let mut p = BinaryCriticality::new();
        let pc = Pc::new(0x40);
        for i in 0..80 {
            p.train(pc, i % 8 == 0);
        }
        assert!(p.predict(pc));
    }

    #[test]
    fn one_in_sixteen_critical_is_not() {
        let mut p = BinaryCriticality::new();
        let pc = Pc::new(0x44);
        for i in 0..160 {
            p.train(pc, i % 16 == 0);
        }
        assert!(!p.predict(pc));
    }

    #[test]
    fn never_critical_stays_not_critical() {
        let mut p = BinaryCriticality::new();
        let pc = Pc::new(0x48);
        for _ in 0..100 {
            p.train(pc, false);
        }
        assert!(!p.predict(pc));
    }

    #[test]
    fn reset_forgets() {
        let mut p = BinaryCriticality::new();
        let pc = Pc::new(0x4c);
        p.train(pc, true);
        assert!(p.predict(pc));
        p.reset();
        assert!(!p.predict(pc));
        assert_eq!(p.footprint(), 0);
    }

    #[test]
    fn footprint_counts_pcs() {
        let mut p = BinaryCriticality::new();
        p.train(Pc::new(0), true);
        p.train(Pc::new(4), false);
        p.train(Pc::new(0), false);
        assert_eq!(p.footprint(), 2);
    }
}
