//! Likelihood-of-criticality predictors (§4 and §7).

use crate::table::PcTable;
use ccs_isa::Pc;
use ccs_uarch::ProbabilisticCounter;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A PC-indexed estimator of the likelihood of criticality: the fraction
/// of a static instruction's dynamic instances that have been critical.
pub trait LocEstimator {
    /// The LoC estimate in `[0, 1]` (0 for untrained PCs).
    fn loc(&self, pc: Pc) -> f64;

    /// Trains with one observed instance.
    fn train(&mut self, pc: Pc, critical: bool);

    /// Clears all learned state.
    fn reset(&mut self);

    /// The estimate stratified into `levels` equal buckets
    /// (`0..levels`), the form the scheduler consumes. The paper finds 16
    /// levels indistinguishable from unlimited precision.
    fn level(&self, pc: Pc, levels: u32) -> u32 {
        let l = (self.loc(pc) * levels as f64) as u32;
        l.min(levels - 1)
    }
}

/// LoC with unlimited precision: exact critical/total instance counts per
/// PC. This is the reference the paper compares its 4-bit implementation
/// against.
#[derive(Debug, Clone, Default)]
pub struct ExactLoc {
    table: PcTable<(u64, u64)>, // (critical, total)
}

impl ExactLoc {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total training instances observed for `pc`.
    pub fn instances(&self, pc: Pc) -> u64 {
        self.table.get(pc).map_or(0, |&(_, t)| t)
    }

    /// Number of trained PCs.
    pub fn footprint(&self) -> usize {
        self.table.len()
    }

    /// Iterates `(pc, loc, instances)` over trained PCs.
    pub fn iter(&self) -> impl Iterator<Item = (Pc, f64, u64)> + '_ {
        self.table.iter().map(|(pc, &(c, t))| {
            let loc = if t == 0 { 0.0 } else { c as f64 / t as f64 };
            (pc, loc, t)
        })
    }
}

impl LocEstimator for ExactLoc {
    fn loc(&self, pc: Pc) -> f64 {
        match self.table.get(pc) {
            Some(&(c, t)) if t > 0 => c as f64 / t as f64,
            _ => 0.0,
        }
    }

    fn train(&mut self, pc: Pc, critical: bool) {
        let e = self.table.entry(pc);
        if critical {
            e.0 += 1;
        }
        e.1 += 1;
    }

    fn reset(&mut self) {
        self.table.clear();
    }
}

/// The §7 hardware implementation: LoC stratified into 16 levels stored in
/// a 4-bit probabilistic counter per PC (Riley-Zilles updates) — less
/// storage than the 6-bit Fields binary counter, yet carrying a whole
/// criticality *spectrum*.
#[derive(Debug, Clone)]
pub struct QuantizedLoc {
    table: PcTable<ProbabilisticCounter>,
    rng: SmallRng,
    seed: u64,
    bits: u32,
}

impl QuantizedLoc {
    /// Creates an empty predictor with the paper's 4-bit (16-level)
    /// counters, whose probabilistic updates draw from a deterministic
    /// stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        Self::with_bits(seed, 4)
    }

    /// Creates an empty predictor with `bits`-bit counters — the
    /// quantization-depth ablation of §7 (the paper finds 16 levels
    /// equivalent to unlimited precision).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16.
    pub fn with_bits(seed: u64, bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "bits must be in 1..=16");
        QuantizedLoc {
            table: PcTable::new(),
            rng: SmallRng::seed_from_u64(seed),
            seed,
            bits,
        }
    }

    /// The number of counter bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The raw 0..=15 level for `pc`.
    pub fn raw_level(&self, pc: Pc) -> u32 {
        self.table.get(pc).map_or(0, ProbabilisticCounter::level)
    }

    /// Number of trained PCs.
    pub fn footprint(&self) -> usize {
        self.table.len()
    }
}

impl LocEstimator for QuantizedLoc {
    fn loc(&self, pc: Pc) -> f64 {
        self.table.get(pc).map_or(0.0, ProbabilisticCounter::estimate)
    }

    fn train(&mut self, pc: Pc, critical: bool) {
        let bits = self.bits;
        let c = self
            .table
            .entry_with(pc, || ProbabilisticCounter::new(bits));
        c.update(critical, &mut self.rng);
    }

    fn reset(&mut self) {
        self.table.clear();
        self.rng = SmallRng::seed_from_u64(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_loc_is_exact() {
        let mut p = ExactLoc::new();
        let pc = Pc::new(0x10);
        for i in 0..100 {
            p.train(pc, i % 5 == 0);
        }
        assert!((p.loc(pc) - 0.2).abs() < 1e-12);
        assert_eq!(p.instances(pc), 100);
        assert_eq!(p.footprint(), 1);
        assert_eq!(p.level(pc, 16), 3); // 0.2 * 16 = 3.2
    }

    #[test]
    fn untrained_loc_is_zero() {
        let p = ExactLoc::new();
        assert_eq!(p.loc(Pc::new(0)), 0.0);
        assert_eq!(p.level(Pc::new(0), 16), 0);
        let q = QuantizedLoc::new(1);
        assert_eq!(q.loc(Pc::new(0)), 0.0);
    }

    #[test]
    fn level_saturates_at_top() {
        let mut p = ExactLoc::new();
        let pc = Pc::new(0x20);
        for _ in 0..10 {
            p.train(pc, true);
        }
        assert_eq!(p.loc(pc), 1.0);
        assert_eq!(p.level(pc, 16), 15);
    }

    #[test]
    fn quantized_tracks_exact_approximately() {
        let mut exact = ExactLoc::new();
        let mut quant = QuantizedLoc::new(7);
        let pc = Pc::new(0x30);
        // 60% critical stream.
        for i in 0..5_000 {
            let critical = (i * 3) % 5 < 3;
            exact.train(pc, critical);
            quant.train(pc, critical);
        }
        let e = exact.loc(pc);
        let q = quant.loc(pc);
        assert!((e - 0.6).abs() < 0.01, "exact {e}");
        assert!((q - e).abs() < 0.25, "quantized {q} vs exact {e}");
        assert!(quant.raw_level(pc) > 4);
    }

    #[test]
    fn quantized_is_deterministic_per_seed() {
        let run = |seed| {
            let mut q = QuantizedLoc::new(seed);
            for i in 0..500 {
                q.train(Pc::new(0x40), i % 3 == 0);
            }
            q.raw_level(Pc::new(0x40))
        };
        assert_eq!(run(3), run(3));
    }

    #[test]
    fn reset_clears_both() {
        let mut exact = ExactLoc::new();
        let mut quant = QuantizedLoc::new(1);
        exact.train(Pc::new(0), true);
        quant.train(Pc::new(0), true);
        exact.reset();
        quant.reset();
        assert_eq!(exact.footprint(), 0);
        assert_eq!(quant.footprint(), 0);
    }

    #[test]
    fn coarse_quantization_loses_resolution() {
        // A 1-bit counter can only say 0 or 1; a 4-bit counter tracks the
        // 40% stream much more closely on average.
        let stream: Vec<bool> = (0..4_000).map(|i| i % 5 < 2).collect();
        let mut one = QuantizedLoc::with_bits(3, 1);
        let mut four = QuantizedLoc::with_bits(3, 4);
        let pc = Pc::new(0x50);
        for &c in &stream {
            one.train(pc, c);
            four.train(pc, c);
        }
        assert_eq!(one.bits(), 1);
        assert_eq!(four.bits(), 4);
        assert!(one.loc(pc) == 0.0 || one.loc(pc) == 1.0);
        assert!((four.loc(pc) - 0.4).abs() < 0.35, "4-bit {}", four.loc(pc));
    }

    #[test]
    fn iter_reports_trained_pcs() {
        let mut p = ExactLoc::new();
        p.train(Pc::new(0), true);
        p.train(Pc::new(4), false);
        let v: Vec<_> = p.iter().collect();
        assert_eq!(v.len(), 2);
        let total: u64 = v.iter().map(|&(_, _, t)| t).sum();
        assert_eq!(total, 2);
    }
}
