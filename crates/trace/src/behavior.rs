//! Branch-outcome and memory-address behaviour models.
//!
//! Workload generators do not simulate real programs, so the *dynamic*
//! behaviour of each static branch and memory instruction is described by a
//! small stochastic model. Branch behaviour determines what the simulated
//! gshare predictor can learn (and hence which dynamic branches mispredict);
//! address behaviour determines L1 hit rates.

use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Dynamic direction behaviour of one static conditional branch.
///
/// ```
/// use ccs_trace::BranchBehavior;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut b = BranchBehavior::loop_exit(4).into_state();
/// let dirs: Vec<bool> = (0..8).map(|_| b.next(&mut rng)).collect();
/// // Taken three times (loop back), then the exit, repeating.
/// assert_eq!(dirs, vec![true, true, true, false, true, true, true, false]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BranchBehavior {
    /// Taken with independent probability `p` each instance. `p` near 0 or
    /// 1 yields a highly predictable branch; `p` near 0.5 a hard one.
    Bernoulli(f64),
    /// A loop back-edge: taken `trip - 1` times, then not taken, repeating.
    /// Perfectly predictable by a gshare with enough history for small
    /// trip counts.
    LoopExit(u32),
    /// Always taken.
    AlwaysTaken,
    /// Never taken.
    NeverTaken,
    /// Alternates taken / not-taken, starting taken. Predictable with any
    /// history at all.
    Alternating,
    /// A repeating direction pattern of up to 32 outcomes, stored as a
    /// bitmask (bit `k` = direction of instance `k mod len`). Perfectly
    /// predictable by a history-based predictor whose history covers the
    /// period; build with [`BranchBehavior::pattern`].
    Pattern {
        /// Outcome bits, LSB first.
        bits: u32,
        /// Period length (1..=32).
        len: u8,
    },
}

impl BranchBehavior {
    /// A loop back-edge with the given trip count.
    ///
    /// # Panics
    ///
    /// Panics if `trip == 0`.
    pub fn loop_exit(trip: u32) -> Self {
        assert!(trip > 0, "trip count must be positive");
        BranchBehavior::LoopExit(trip)
    }

    /// A repeating direction pattern.
    ///
    /// # Panics
    ///
    /// Panics if `dirs` is empty or longer than 32 outcomes.
    pub fn pattern(dirs: &[bool]) -> Self {
        assert!(
            !dirs.is_empty() && dirs.len() <= 32,
            "pattern length must be in 1..=32"
        );
        let mut bits = 0u32;
        for (k, &d) in dirs.iter().enumerate() {
            if d {
                bits |= 1 << k;
            }
        }
        BranchBehavior::Pattern {
            bits,
            len: dirs.len() as u8,
        }
    }

    /// Converts the (stateless) behaviour description into a stateful
    /// outcome stream.
    pub fn into_state(self) -> BranchState {
        BranchState {
            behavior: self,
            counter: 0,
        }
    }
}

/// Stateful outcome stream for one static branch.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchState {
    behavior: BranchBehavior,
    counter: u64,
}

impl BranchState {
    /// Produces the next dynamic direction.
    pub fn next(&mut self, rng: &mut StdRng) -> bool {
        let n = self.counter;
        self.counter += 1;
        match self.behavior {
            BranchBehavior::Bernoulli(p) => rng.random_bool(p.clamp(0.0, 1.0)),
            BranchBehavior::LoopExit(trip) => (n % trip as u64) != (trip as u64 - 1),
            BranchBehavior::AlwaysTaken => true,
            BranchBehavior::NeverTaken => false,
            BranchBehavior::Alternating => n.is_multiple_of(2),
            BranchBehavior::Pattern { bits, len } => {
                (bits >> (n % len as u64)) & 1 == 1
            }
        }
    }
}

/// Effective-address stream for one static memory instruction.
///
/// The L1 in the simulator is 32 KB 4-way with 64-byte lines; streams are
/// parameterized so workload models can dial in a hit rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AddrStream {
    /// Fixed address — always hits after the first access (stack slot,
    /// global scalar).
    Fixed(u64),
    /// Sequential walk: `base + i * stride`, wrapping within `len` bytes.
    /// With a small stride this hits on all but one access per line.
    Stream {
        /// First address.
        base: u64,
        /// Bytes between consecutive accesses.
        stride: u64,
        /// Region size in bytes before wrapping.
        len: u64,
    },
    /// Uniformly random address inside a region. A region much larger than
    /// the L1 yields misses at roughly `1 - 32KB/len`.
    RandomIn {
        /// Region base address.
        base: u64,
        /// Region size in bytes.
        len: u64,
    },
}

impl AddrStream {
    /// A sequential stream over a region.
    pub fn stream(base: u64, stride: u64, len: u64) -> Self {
        assert!(stride > 0 && len > 0, "stride and len must be positive");
        AddrStream::Stream { base, stride, len }
    }

    /// A uniformly random stream within a region.
    pub fn random_in(base: u64, len: u64) -> Self {
        assert!(len > 0, "len must be positive");
        AddrStream::RandomIn { base, len }
    }

    /// Converts into a stateful address generator.
    pub fn into_state(self) -> AddrState {
        AddrState {
            stream: self,
            counter: 0,
        }
    }
}

/// Stateful address generator for one static memory instruction.
#[derive(Debug, Clone, PartialEq)]
pub struct AddrState {
    stream: AddrStream,
    counter: u64,
}

impl AddrState {
    /// Produces the next effective address.
    pub fn next(&mut self, rng: &mut StdRng) -> u64 {
        let n = self.counter;
        self.counter += 1;
        match self.stream {
            AddrStream::Fixed(a) => a,
            AddrStream::Stream { base, stride, len } => base + (n * stride) % len,
            AddrStream::RandomIn { base, len } => base + rng.random_range(0..len),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn loop_exit_pattern() {
        let mut r = rng();
        let mut s = BranchBehavior::loop_exit(3).into_state();
        let v: Vec<bool> = (0..6).map(|_| s.next(&mut r)).collect();
        assert_eq!(v, vec![true, true, false, true, true, false]);
    }

    #[test]
    fn constant_behaviors() {
        let mut r = rng();
        let mut t = BranchBehavior::AlwaysTaken.into_state();
        let mut n = BranchBehavior::NeverTaken.into_state();
        for _ in 0..10 {
            assert!(t.next(&mut r));
            assert!(!n.next(&mut r));
        }
    }

    #[test]
    fn alternating_behavior() {
        let mut r = rng();
        let mut s = BranchBehavior::Alternating.into_state();
        let v: Vec<bool> = (0..4).map(|_| s.next(&mut r)).collect();
        assert_eq!(v, vec![true, false, true, false]);
    }

    #[test]
    fn bernoulli_rate_approximates_p() {
        let mut r = rng();
        let mut s = BranchBehavior::Bernoulli(0.3).into_state();
        let taken = (0..10_000).filter(|_| s.next(&mut r)).count();
        let rate = taken as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn bernoulli_clamps_out_of_range_p() {
        let mut r = rng();
        let mut s = BranchBehavior::Bernoulli(1.5).into_state();
        assert!(s.next(&mut r));
    }

    #[test]
    fn pattern_repeats_its_period() {
        let mut r = rng();
        let dirs = [true, true, false, true, false];
        let mut s = BranchBehavior::pattern(&dirs).into_state();
        for k in 0..20 {
            assert_eq!(s.next(&mut r), dirs[k % dirs.len()], "instance {k}");
        }
    }

    #[test]
    #[should_panic]
    fn empty_pattern_panics() {
        let _ = BranchBehavior::pattern(&[]);
    }

    #[test]
    #[should_panic]
    fn zero_trip_count_panics() {
        let _ = BranchBehavior::loop_exit(0);
    }

    #[test]
    fn fixed_address_is_constant() {
        let mut r = rng();
        let mut s = AddrStream::Fixed(0x4000).into_state();
        assert_eq!(s.next(&mut r), 0x4000);
        assert_eq!(s.next(&mut r), 0x4000);
    }

    #[test]
    fn stream_wraps_within_region() {
        let mut r = rng();
        let mut s = AddrStream::stream(0x1000, 8, 32).into_state();
        let v: Vec<u64> = (0..5).map(|_| s.next(&mut r)).collect();
        assert_eq!(v, vec![0x1000, 0x1008, 0x1010, 0x1018, 0x1000]);
    }

    #[test]
    fn random_stays_in_region() {
        let mut r = rng();
        let mut s = AddrStream::random_in(0x8000, 0x100).into_state();
        for _ in 0..100 {
            let a = s.next(&mut r);
            assert!((0x8000..0x8100).contains(&a));
        }
    }

    #[test]
    #[should_panic]
    fn zero_len_region_panics() {
        let _ = AddrStream::random_in(0, 0);
    }
}
