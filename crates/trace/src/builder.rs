//! Trace container and dependence-resolving builder.

use crate::dynamic::{DynIdx, DynInst};
use crate::error::TraceError;
use crate::stats::TraceStats;
use ccs_isa::{BranchInfo, RegFile, StaticInst};
use serde::{Deserialize, Serialize};
use std::ops::Index;

/// An immutable dynamic instruction trace with pre-resolved dependences.
///
/// Produced by [`TraceBuilder`]; consumed by the timing simulator, the
/// idealized list scheduler and the critical-path analysis.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    insts: Vec<DynInst>,
    /// Lazily resolved true memory dependences (see
    /// [`memory_deps`](Trace::memory_deps)). Derived state: never
    /// serialized, recomputed on demand after deserialization.
    #[serde(skip)]
    mem_deps: std::sync::OnceLock<Vec<Option<u32>>>,
    /// Lazily computed dataflow critical path (see
    /// [`dataflow_chain`](Trace::dataflow_chain)). Derived state, like
    /// `mem_deps`: never serialized, recomputed on demand.
    #[serde(skip)]
    chain: std::sync::OnceLock<u64>,
}

impl Trace {
    /// Number of dynamic instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the trace is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at `idx`, or `None` past the end.
    #[inline]
    pub fn get(&self, idx: DynIdx) -> Option<&DynInst> {
        self.insts.get(idx.index())
    }

    /// Iterates over the instructions in program order.
    pub fn iter(&self) -> impl Iterator<Item = (DynIdx, &DynInst)> {
        self.insts
            .iter()
            .enumerate()
            .map(|(i, inst)| (DynIdx::new(i as u32), inst))
    }

    /// The underlying instruction slice.
    #[inline]
    pub fn as_slice(&self) -> &[DynInst] {
        &self.insts
    }

    /// Computes aggregate statistics over the trace.
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_trace(self)
    }

    /// The true memory dependence of every instruction: for a load, the
    /// index of the latest older store to the same 8-byte word (perfect
    /// disambiguation); `None` elsewhere.
    ///
    /// Resolved on first use and cached for the trace's lifetime, so the
    /// many simulations that share one trace (grid campaigns, training
    /// epochs, differential runs) pay for the sweep once. Thread-safe:
    /// concurrent first callers race benignly on the same deterministic
    /// result.
    pub fn memory_deps(&self) -> &[Option<u32>] {
        self.mem_deps
            .get_or_init(|| crate::memdep::resolve_memory_deps(self))
    }

    /// The latency weight of the longest dependence chain through the
    /// trace: the maximum, over all instructions, of the sum of
    /// [`OpClass::latency`](ccs_isa::OpClass::latency) along any path of
    /// register and true-memory dependences ending at that instruction.
    ///
    /// This is the trace's machine-independent dataflow critical path —
    /// no schedule on any machine can complete the last instruction of
    /// the chain earlier than the chain's latency after the first one
    /// issues, so it lower-bounds the cycle count of every simulation of
    /// this trace (the analytic predictor in `ccs-predict` builds its
    /// envelope on top of it). Latencies are best-case (L1-hit) values,
    /// which keeps the bound sound under cache misses.
    ///
    /// Computed on first use and cached for the trace's lifetime, like
    /// [`memory_deps`](Self::memory_deps).
    pub fn dataflow_chain(&self) -> u64 {
        *self.chain.get_or_init(|| {
            let mem_deps = self.memory_deps();
            let mut depth = vec![0u64; self.insts.len()];
            let mut best = 0u64;
            for (i, inst) in self.insts.iter().enumerate() {
                let mut from = 0u64;
                for dep in inst.deps.iter().flatten() {
                    from = from.max(depth[dep.index()]);
                }
                if let Some(store) = mem_deps[i] {
                    from = from.max(depth[store as usize]);
                }
                depth[i] = from + u64::from(inst.op().latency());
                best = best.max(depth[i]);
            }
            best
        })
    }

    /// Builds, for every instruction, the list of in-trace consumers of its
    /// value, in program order. Index `i` of the result holds the dynamic
    /// indices that name instruction `i` as a producer.
    pub fn consumer_lists(&self) -> Vec<Vec<DynIdx>> {
        let mut consumers = vec![Vec::new(); self.insts.len()];
        for (i, inst) in self.iter() {
            for p in inst.producers() {
                consumers[p.index()].push(i);
            }
        }
        consumers
    }

    /// Verifies internal consistency: every dependence points backwards, at
    /// a value-producing instruction, and positionally matches a source
    /// register of the consumer. Used by tests, the property suite, and
    /// the fault-injection harness (which corrupts traces and asserts
    /// this rejects them).
    pub fn validate(&self) -> Result<(), TraceError> {
        let malformed = |i: DynIdx, message: String| TraceError::Malformed {
            inst: i.raw(),
            message,
        };
        for (i, inst) in self.iter() {
            for (k, dep) in inst.deps.iter().enumerate() {
                let Some(dep) = dep else { continue };
                if dep.index() >= i.index() {
                    return Err(malformed(i, format!("dep {k} points forward to {dep}")));
                }
                let producer = &self.insts[dep.index()];
                let Some(dst) = producer.inst.dst else {
                    return Err(malformed(i, format!("dep {k} names non-producing {dep}")));
                };
                match inst.inst.srcs[k] {
                    Some(src) if src == dst => {}
                    Some(src) => {
                        return Err(malformed(
                            i,
                            format!("dep {k} register mismatch: src {src} vs producer dst {dst}"),
                        ));
                    }
                    None => {
                        return Err(malformed(i, format!("dep {k} present but source {k} absent")))
                    }
                }
            }
        }
        Ok(())
    }

    /// Assembles a trace directly from raw dynamic instructions,
    /// **bypassing** the builder's rename-table dependence resolution.
    ///
    /// This exists for the fault-injection harness, which needs to
    /// construct deliberately *malformed* traces (forward dependences,
    /// register mismatches) to prove that [`validate`](Self::validate)
    /// and the downstream checkers reject them. Production code should
    /// always go through [`TraceBuilder`].
    pub fn from_insts(insts: Vec<DynInst>) -> Trace {
        Trace {
            insts,
            mem_deps: std::sync::OnceLock::new(),
            chain: std::sync::OnceLock::new(),
        }
    }
}

impl Index<DynIdx> for Trace {
    type Output = DynInst;

    fn index(&self, idx: DynIdx) -> &DynInst {
        &self.insts[idx.index()]
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a DynInst;
    type IntoIter = std::slice::Iter<'a, DynInst>;

    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

/// Builds a [`Trace`], resolving register dependences through a rename
/// table as instructions are appended.
///
/// The builder tracks, per architectural register, the most recent dynamic
/// instruction that wrote it; each pushed instruction's source operands are
/// resolved against that table, exactly as a rename stage would.
#[derive(Debug, Clone, Default)]
pub struct TraceBuilder {
    insts: Vec<DynInst>,
    last_writer: RegFile<DynIdx>,
}

impl TraceBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instructions appended so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether nothing has been appended yet.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The index the next pushed instruction will receive.
    #[inline]
    pub fn next_idx(&self) -> DynIdx {
        DynIdx::new(self.insts.len() as u32)
    }

    /// Appends a dynamic instance of `inst`, with optional memory address
    /// and branch outcome. Returns its index.
    ///
    /// # Panics
    ///
    /// Panics if the trace would exceed `u32::MAX` instructions.
    pub fn push(
        &mut self,
        inst: StaticInst,
        mem_addr: Option<u64>,
        branch: Option<BranchInfo>,
    ) -> DynIdx {
        assert!(self.insts.len() < u32::MAX as usize, "trace too long");
        debug_assert_eq!(inst.op.is_mem(), mem_addr.is_some(), "mem addr presence");
        debug_assert_eq!(inst.op.is_control(), branch.is_some(), "branch info presence");
        let idx = self.next_idx();
        let mut deps = [None, None];
        for (k, src) in inst.srcs.iter().enumerate() {
            if let Some(src) = src {
                deps[k] = self.last_writer.get(*src).copied();
            }
        }
        if let Some(dst) = inst.dst {
            self.last_writer.set(dst, idx);
        }
        self.insts.push(DynInst {
            inst,
            deps,
            mem_addr,
            branch,
        });
        idx
    }

    /// Appends a non-memory, non-control instruction.
    pub fn push_simple(&mut self, inst: StaticInst) -> DynIdx {
        self.push(inst, None, None)
    }

    /// Appends a load or store at the given effective address.
    pub fn push_mem(&mut self, inst: StaticInst, addr: u64) -> DynIdx {
        self.push(inst, Some(addr), None)
    }

    /// Appends a control-flow instruction with its resolved outcome.
    pub fn push_branch(&mut self, inst: StaticInst, outcome: BranchInfo) -> DynIdx {
        self.push(inst, None, Some(outcome))
    }

    /// Forgets the current register bindings, so that subsequently pushed
    /// instructions see earlier values as live-ins rather than dependences.
    /// Models a context change between composed workload phases.
    pub fn barrier(&mut self) {
        self.last_writer.clear_all();
    }

    /// Finalizes the trace.
    pub fn finish(self) -> Trace {
        Trace {
            insts: self.insts,
            mem_deps: std::sync::OnceLock::new(),
            chain: std::sync::OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_isa::{ArchReg, OpClass, Pc};

    fn alu(pc: u64, src: Option<u16>, src2: Option<u16>, dst: u16) -> StaticInst {
        StaticInst::new(Pc::new(pc), OpClass::IntAlu)
            .with_srcs([src.map(ArchReg::int), src2.map(ArchReg::int)])
            .with_dst(ArchReg::int(dst))
    }

    #[test]
    fn dependences_resolve_through_rename_table() {
        let mut b = TraceBuilder::new();
        let a = b.push_simple(alu(0, None, None, 1));
        let c = b.push_simple(alu(4, Some(1), None, 2));
        let d = b.push_simple(alu(8, Some(1), Some(2), 1));
        let e = b.push_simple(alu(12, Some(1), None, 3));
        let t = b.finish();
        assert_eq!(t[c].deps, [Some(a), None]);
        assert_eq!(t[d].deps, [Some(a), Some(c)]);
        // r1 was overwritten by d, so e depends on d, not a.
        assert_eq!(t[e].deps, [Some(d), None]);
        t.validate().unwrap();
    }

    #[test]
    fn live_ins_have_no_dependence() {
        let mut b = TraceBuilder::new();
        let c = b.push_simple(alu(0, Some(5), None, 1));
        let t = b.finish();
        assert_eq!(t[c].deps, [None, None]);
    }

    #[test]
    fn barrier_clears_bindings() {
        let mut b = TraceBuilder::new();
        b.push_simple(alu(0, None, None, 1));
        b.barrier();
        let c = b.push_simple(alu(4, Some(1), None, 2));
        let t = b.finish();
        assert_eq!(t[c].deps, [None, None]);
    }

    #[test]
    fn consumer_lists_invert_deps() {
        let mut b = TraceBuilder::new();
        let a = b.push_simple(alu(0, None, None, 1));
        let c = b.push_simple(alu(4, Some(1), None, 2));
        let d = b.push_simple(alu(8, Some(1), Some(2), 3));
        let t = b.finish();
        let cons = t.consumer_lists();
        assert_eq!(cons[a.index()], vec![c, d]);
        assert_eq!(cons[c.index()], vec![d]);
        assert!(cons[d.index()].is_empty());
    }

    #[test]
    fn iteration_and_indexing() {
        let mut b = TraceBuilder::new();
        b.push_simple(alu(0, None, None, 1));
        b.push_simple(alu(4, None, None, 2));
        let t = b.finish();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.iter().count(), 2);
        assert_eq!((&t).into_iter().count(), 2);
        assert!(t.get(DynIdx::new(5)).is_none());
        assert_eq!(t.as_slice().len(), 2);
    }

    #[test]
    fn mem_and_branch_constructors() {
        let mut b = TraceBuilder::new();
        let ld = b.push_mem(
            StaticInst::new(Pc::new(0), OpClass::Load).with_dst(ArchReg::int(1)),
            0x1000,
        );
        let br = b.push_branch(
            StaticInst::new(Pc::new(4), OpClass::Branch).with_src(ArchReg::int(1)),
            BranchInfo::conditional(true),
        );
        let t = b.finish();
        assert_eq!(t[ld].mem_addr, Some(0x1000));
        assert!(t[br].branch.unwrap().taken);
        assert_eq!(t[br].deps[0], Some(ld));
        t.validate().unwrap();
    }

    #[test]
    fn validate_rejects_corrupt_traces() {
        let mut b = TraceBuilder::new();
        b.push_simple(alu(0, None, None, 1));
        b.push_simple(alu(4, Some(1), None, 2));
        let mut t = b.finish();
        // Corrupt: make the second instruction depend on itself.
        t.insts[1].deps[0] = Some(DynIdx::new(1));
        assert!(t.validate().is_err());
    }

    #[test]
    fn empty_trace_is_valid() {
        let t = TraceBuilder::new().finish();
        assert!(t.is_empty());
        t.validate().unwrap();
    }

    #[test]
    fn dataflow_chain_follows_the_longest_latency_path() {
        // a -> c -> d is a 3-deep IntAlu chain (latency 1 each); the
        // independent b contributes only its own latency.
        let mut b = TraceBuilder::new();
        b.push_simple(alu(0, None, None, 1));
        b.push_simple(alu(4, None, None, 5));
        b.push_simple(alu(8, Some(1), None, 2));
        b.push_simple(alu(12, Some(2), None, 3));
        let t = b.finish();
        assert_eq!(t.dataflow_chain(), 3);
        // Memoized: a second call returns the identical cached value.
        assert_eq!(t.dataflow_chain(), 3);
    }

    #[test]
    fn dataflow_chain_crosses_memory_dependences() {
        // store(addr) -> load(addr) is a true memory dependence: the
        // chain is store (1) + load (3) = 4, not just the load alone.
        let mut b = TraceBuilder::new();
        b.push_mem(
            StaticInst::new(Pc::new(0), OpClass::Store).with_src(ArchReg::int(1)),
            0x2000,
        );
        b.push_mem(
            StaticInst::new(Pc::new(4), OpClass::Load).with_dst(ArchReg::int(2)),
            0x2000,
        );
        let t = b.finish();
        assert_eq!(t.dataflow_chain(), 1 + OpClass::Load.latency() as u64);
    }

    #[test]
    fn dataflow_chain_of_empty_trace_is_zero() {
        assert_eq!(TraceBuilder::new().finish().dataflow_chain(), 0);
    }
}
