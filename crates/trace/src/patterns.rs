//! Reusable dataflow-pattern emitters.
//!
//! Every effect the paper analyses is driven by a small set of dataflow
//! *shapes*. This module provides one emitter per shape; the benchmark
//! models in [`Benchmark`](crate::Benchmark) are compositions of these.
//!
//! | Emitter | Shape | Paper reference |
//! |---|---|---|
//! | [`DepChain`] | single serial dependence chain | Figure 9 (stall-over-steer) |
//! | [`SpineRibs`] | loop-carried spine with diverging ribs | Figure 7 (`vpr`) |
//! | [`ConvergentHammock`] | two chains converging at a dyadic op | Figure 3 (`bzip2`) |
//! | [`DivergentLoop`] | early-exit loop with two loop-carried deps | Figure 12 |
//! | [`PointerChase`] | load-to-load recurrence with poor locality | `mcf` |
//! | [`ParallelChains`] | independent chains (high ILP) | §7 / Figure 15 |
//! | [`ReductionTree`] | wide leaves reduced pairwise (convergence) | §2.2 hammocks |
//! | [`BranchyBlock`] | short computations ending in branches | `gcc`-like control |
//!
//! Each emitter is constructed once per static code region — so its PCs are
//! stable across loop iterations, which is what lets the PC-indexed
//! criticality predictors learn — and then `emit` is called once per
//! dynamic iteration.

use crate::behavior::{AddrState, AddrStream, BranchBehavior, BranchState};
use crate::builder::TraceBuilder;
use crate::dynamic::DynIdx;
use ccs_isa::{ArchReg, BranchInfo, OpClass, Pc, StaticInst};
use rand::rngs::StdRng;

/// Hands out architectural integer registers from a contiguous range so
/// that composed patterns do not alias one another's values.
#[derive(Debug, Clone)]
pub struct RegAlloc {
    next: u16,
    limit: u16,
}

impl RegAlloc {
    /// An allocator over the full integer register file (r1..r31; r0 is
    /// left as a conventional zero/live-in register).
    pub fn new() -> Self {
        RegAlloc { next: 1, limit: 32 }
    }

    /// Allocates the next free integer register.
    ///
    /// # Panics
    ///
    /// Panics when the register file is exhausted; patterns within one
    /// workload phase must fit in 31 registers (they all do).
    pub fn alloc(&mut self) -> ArchReg {
        assert!(self.next < self.limit, "out of integer registers");
        let r = ArchReg::int(self.next);
        self.next += 1;
        r
    }

    /// Allocates `n` registers.
    pub fn alloc_n(&mut self, n: usize) -> Vec<ArchReg> {
        (0..n).map(|_| self.alloc()).collect()
    }
}

impl Default for RegAlloc {
    fn default() -> Self {
        Self::new()
    }
}

/// A single serial chain of dependent single-cycle integer operations —
/// the hypothetical program of Figure 9. ILP is exactly 1, so the code is
/// *execute-critical*: it fetches far faster than it executes, and
/// load-balance steering spreads it across clusters, inserting a
/// forwarding delay every window-size instructions.
#[derive(Debug, Clone)]
pub struct DepChain {
    body: Vec<StaticInst>,
    cursor: usize,
}

impl DepChain {
    /// Creates the chain's static loop body at `base_pc`: `body_len`
    /// distinct static instructions, all links of one serial chain.
    ///
    /// # Panics
    ///
    /// Panics if `body_len == 0`.
    pub fn new(base_pc: Pc, regs: &mut RegAlloc, body_len: usize) -> Self {
        assert!(body_len > 0, "chain body must be non-empty");
        let acc = regs.alloc();
        let body = (0..body_len)
            .map(|i| {
                StaticInst::new(base_pc.offset(i as u64), OpClass::IntAlu)
                    .with_src(acc)
                    .with_dst(acc)
            })
            .collect();
        DepChain { body, cursor: 0 }
    }

    /// Emits `n` links of the chain, cycling through the static body.
    pub fn emit(&mut self, b: &mut TraceBuilder, n: usize) -> Vec<DynIdx> {
        (0..n)
            .map(|_| {
                let inst = self.body[self.cursor];
                self.cursor = (self.cursor + 1) % self.body.len();
                b.push_simple(inst)
            })
            .collect()
    }
}

/// The spine-and-ribs loop of Figure 7 (`vpr`'s `get_heap_head`).
///
/// A dominant *spine* computes a loop-carried dependence; each iteration,
/// dataflow diverges from the spine into *ribs* that terminate in stores
/// and branches. One rib ends in a hard-to-predict branch, so both the
/// first rib instruction (`a`) and the spine instruction (`b`) are often
/// predicted critical — the contention scenario of §4.
#[derive(Debug, Clone)]
pub struct SpineRibs {
    spine: Vec<StaticInst>,
    rib_head: StaticInst,
    rib_body: Vec<StaticInst>,
    rib_store: StaticInst,
    rib_branch: StaticInst,
    back_edge: StaticInst,
    branch_state: BranchState,
    back_state: BranchState,
    store_addrs: AddrState,
    load_addrs: AddrState,
    rib_load: StaticInst,
}

/// Configuration for [`SpineRibs`].
#[derive(Debug, Clone, Copy)]
pub struct SpineRibsConfig {
    /// Spine operations per iteration (the loop-carried chain height).
    pub spine_len: usize,
    /// Rib operations between the rib head and its terminator.
    pub rib_len: usize,
    /// Behaviour of the hard branch at the end of the rib.
    pub rib_branch: BranchBehavior,
    /// Loop trip count (drives the back-edge behaviour).
    pub trip: u32,
}

impl Default for SpineRibsConfig {
    fn default() -> Self {
        SpineRibsConfig {
            spine_len: 2,
            rib_len: 3,
            rib_branch: BranchBehavior::Bernoulli(0.5),
            trip: 64,
        }
    }
}

impl SpineRibs {
    /// Builds the static loop body at `base_pc`.
    pub fn new(base_pc: Pc, regs: &mut RegAlloc, cfg: SpineRibsConfig) -> Self {
        let spine_reg = regs.alloc();
        let rib_reg = regs.alloc();
        let load_reg = regs.alloc();
        let mut pc = base_pc;
        let mut next_pc = || {
            let p = pc;
            pc = p.next();
            p
        };

        // Spine: b <- op(b) repeated spine_len times (instruction `b` of Fig 7).
        let spine = (0..cfg.spine_len.max(1))
            .map(|_| {
                StaticInst::new(next_pc(), OpClass::IntAlu)
                    .with_src(spine_reg)
                    .with_dst(spine_reg)
            })
            .collect();
        // Rib head `a` diverges from the spine (reads the same register).
        let rib_head = StaticInst::new(next_pc(), OpClass::IntAlu)
            .with_src(spine_reg)
            .with_dst(rib_reg);
        // A load feeding the rib (the LDs of Fig 7).
        let rib_load = StaticInst::new(next_pc(), OpClass::Load)
            .with_src(rib_reg)
            .with_dst(load_reg);
        // Rib body: chain on the rib register, converging with the load.
        let mut rib_body: Vec<StaticInst> = Vec::new();
        for k in 0..cfg.rib_len {
            let srcs = if k == 0 {
                [Some(rib_reg), Some(load_reg)]
            } else {
                [Some(rib_reg), None]
            };
            rib_body.push(
                StaticInst::new(next_pc(), OpClass::IntAlu)
                    .with_srcs(srcs)
                    .with_dst(rib_reg),
            );
        }
        // Rib terminators: a store and the hard-to-predict branch (BR* of Fig 7).
        let rib_store = StaticInst::new(next_pc(), OpClass::Store).with_src(rib_reg);
        let rib_branch = StaticInst::new(next_pc(), OpClass::Branch).with_src(rib_reg);
        // Loop back-edge on the spine.
        let back_edge = StaticInst::new(next_pc(), OpClass::Branch).with_src(spine_reg);

        SpineRibs {
            spine,
            rib_head,
            rib_load,
            rib_body,
            rib_store,
            rib_branch,
            back_edge,
            branch_state: cfg.rib_branch.into_state(),
            back_state: BranchBehavior::loop_exit(cfg.trip).into_state(),
            store_addrs: AddrStream::stream(0x10_0000, 8, 1 << 16).into_state(),
            load_addrs: AddrStream::stream(0x20_0000, 8, 1 << 14).into_state(),
        }
    }

    /// Number of instructions emitted per iteration.
    pub fn body_len(&self) -> usize {
        self.spine.len() + 1 + 1 + self.rib_body.len() + 3
    }

    /// Emits one loop iteration. Returns the index of the hard rib branch.
    pub fn emit(&mut self, b: &mut TraceBuilder, rng: &mut StdRng) -> DynIdx {
        for s in &self.spine {
            b.push_simple(*s);
        }
        b.push_simple(self.rib_head);
        let addr = self.load_addrs.next(rng);
        b.push_mem(self.rib_load, addr);
        for s in &self.rib_body {
            b.push_simple(*s);
        }
        let st_addr = self.store_addrs.next(rng);
        b.push_mem(self.rib_store, st_addr);
        let taken = self.branch_state.next(rng);
        let br = b.push_branch(self.rib_branch, BranchInfo::conditional(taken));
        let back = self.back_state.next(rng);
        b.push_branch(self.back_edge, BranchInfo::conditional(back));
        br
    }
}

/// Convergent dyadic dataflow, Figure 3 (`bzip2`).
///
/// Two chains — each headed by loads — converge at a dyadic operation
/// (the `xor`) feeding a sometimes-mispredicted branch. On narrow clusters
/// this shape forces either a forwarding delay or contention (§2.2).
#[derive(Debug, Clone)]
pub struct ConvergentHammock {
    left: Vec<StaticInst>,
    right: Vec<StaticInst>,
    left_load: StaticInst,
    right_load: StaticInst,
    converge: StaticInst,
    branch: StaticInst,
    branch_state: BranchState,
    left_addrs: AddrState,
    right_addrs: AddrState,
}

/// Configuration for [`ConvergentHammock`].
#[derive(Debug, Clone, Copy)]
pub struct HammockConfig {
    /// Operations per arm between the load and the convergence point.
    pub arm_len: usize,
    /// Behaviour of the converging branch.
    pub branch: BranchBehavior,
    /// Bytes of the regions the arm loads touch (locality knob).
    pub region: u64,
}

impl Default for HammockConfig {
    fn default() -> Self {
        HammockConfig {
            arm_len: 2,
            branch: BranchBehavior::Bernoulli(0.15),
            region: 1 << 14,
        }
    }
}

impl ConvergentHammock {
    /// Builds the static hammock at `base_pc`.
    pub fn new(base_pc: Pc, regs: &mut RegAlloc, cfg: HammockConfig) -> Self {
        let lr = regs.alloc();
        let rr = regs.alloc();
        let cr = regs.alloc();
        let mut pc = base_pc;
        let mut next_pc = || {
            let p = pc;
            pc = p.next();
            p
        };
        let left_load = StaticInst::new(next_pc(), OpClass::Load)
            .with_src(lr)
            .with_dst(lr);
        let right_load = StaticInst::new(next_pc(), OpClass::Load)
            .with_src(rr)
            .with_dst(rr);
        let left = (0..cfg.arm_len)
            .map(|_| {
                StaticInst::new(next_pc(), OpClass::IntAlu)
                    .with_src(lr)
                    .with_dst(lr)
            })
            .collect();
        let right = (0..cfg.arm_len)
            .map(|_| {
                StaticInst::new(next_pc(), OpClass::IntAlu)
                    .with_src(rr)
                    .with_dst(rr)
            })
            .collect();
        // The xor of Fig 3: dyadic convergence.
        let converge = StaticInst::new(next_pc(), OpClass::IntAlu)
            .with_srcs([Some(lr), Some(rr)])
            .with_dst(cr);
        let branch = StaticInst::new(next_pc(), OpClass::Branch).with_src(cr);
        ConvergentHammock {
            left,
            right,
            left_load,
            right_load,
            converge,
            branch,
            branch_state: cfg.branch.into_state(),
            left_addrs: AddrStream::stream(0x30_0000, 16, cfg.region).into_state(),
            right_addrs: AddrStream::stream(0x40_0000, 16, cfg.region).into_state(),
        }
    }

    /// Number of instructions emitted per iteration.
    pub fn body_len(&self) -> usize {
        2 + self.left.len() + self.right.len() + 2
    }

    /// Emits one hammock instance, interleaving the arms in fetch order as
    /// a compiler schedule would. Returns the converging branch's index.
    pub fn emit(&mut self, b: &mut TraceBuilder, rng: &mut StdRng) -> DynIdx {
        let la = self.left_addrs.next(rng);
        let ra = self.right_addrs.next(rng);
        b.push_mem(self.left_load, la);
        b.push_mem(self.right_load, ra);
        let mut l = self.left.iter();
        let mut r = self.right.iter();
        loop {
            match (l.next(), r.next()) {
                (None, None) => break,
                (li, ri) => {
                    if let Some(li) = li {
                        b.push_simple(*li);
                    }
                    if let Some(ri) = ri {
                        b.push_simple(*ri);
                    }
                }
            }
        }
        b.push_simple(self.converge);
        let taken = self.branch_state.next(rng);
        b.push_branch(self.branch, BranchInfo::conditional(taken))
    }
}

/// The early-exit search loop of Figure 12.
///
/// The compiler has split the loop into two loop-carried dependences
/// (`addl` on the index, `lda` on the pointer); each iteration's compares
/// and branches *diverge* from those chains. Dependence-based steering
/// collocates each whole tree on one cluster, serializing parallel work —
/// the motivation for proactive load balancing (§6).
#[derive(Debug, Clone)]
pub struct DivergentLoop {
    addl: StaticInst,
    cmple: StaticInst,
    bne_count: StaticInst,
    lda: StaticInst,
    ldl: StaticInst,
    cmpeq: StaticInst,
    bne_val: StaticInst,
    exit_state: BranchState,
    count_state: BranchState,
    load_addrs: AddrState,
}

/// Configuration for [`DivergentLoop`].
#[derive(Debug, Clone, Copy)]
pub struct DivergentLoopConfig {
    /// Probability that the early-exit branch fires on a given iteration.
    pub exit_prob: f64,
    /// Trip count guarding the counted exit.
    pub trip: u32,
    /// Bytes of the array being scanned.
    pub region: u64,
}

impl Default for DivergentLoopConfig {
    fn default() -> Self {
        DivergentLoopConfig {
            exit_prob: 0.04,
            trip: 32,
            region: 1 << 15,
        }
    }
}

impl DivergentLoop {
    /// Builds the static loop body at `base_pc` (the assembly of Fig 12b).
    pub fn new(base_pc: Pc, regs: &mut RegAlloc, cfg: DivergentLoopConfig) -> Self {
        let idx = regs.alloc(); // $4
        let ptr = regs.alloc(); // $2
        let val = regs.alloc(); // $7
        let c1 = regs.alloc(); // $3
        let c2 = regs.alloc(); // $6
        let mut pc = base_pc;
        let mut next_pc = || {
            let p = pc;
            pc = p.next();
            p
        };
        DivergentLoop {
            addl: StaticInst::new(next_pc(), OpClass::IntAlu)
                .with_src(idx)
                .with_dst(idx),
            ldl: StaticInst::new(next_pc(), OpClass::Load)
                .with_src(ptr)
                .with_dst(val),
            cmple: StaticInst::new(next_pc(), OpClass::IntAlu)
                .with_src(idx)
                .with_dst(c1),
            lda: StaticInst::new(next_pc(), OpClass::IntAlu)
                .with_src(ptr)
                .with_dst(ptr),
            cmpeq: StaticInst::new(next_pc(), OpClass::IntAlu)
                .with_src(val)
                .with_dst(c2),
            bne_val: StaticInst::new(next_pc(), OpClass::Branch).with_src(c2),
            bne_count: StaticInst::new(next_pc(), OpClass::Branch).with_src(c1),
            exit_state: BranchBehavior::Bernoulli(cfg.exit_prob).into_state(),
            count_state: BranchBehavior::loop_exit(cfg.trip).into_state(),
            load_addrs: AddrStream::stream(0x50_0000, 4, cfg.region).into_state(),
        }
    }

    /// Number of instructions emitted per iteration.
    pub const fn body_len(&self) -> usize {
        7
    }

    /// Emits one loop iteration in the fetch order of Figure 12b. Returns
    /// `true` if the early exit fired (callers typically restart the scan).
    pub fn emit(&mut self, b: &mut TraceBuilder, rng: &mut StdRng) -> bool {
        b.push_simple(self.addl);
        let addr = self.load_addrs.next(rng);
        b.push_mem(self.ldl, addr);
        b.push_simple(self.cmple);
        b.push_simple(self.lda);
        b.push_simple(self.cmpeq);
        let exit = self.exit_state.next(rng);
        b.push_branch(self.bne_val, BranchInfo::conditional(exit));
        let cont = self.count_state.next(rng);
        b.push_branch(self.bne_count, BranchInfo::conditional(cont && !exit));
        exit
    }
}

/// A load-to-load recurrence with poor locality (`mcf`-like list walking).
///
/// Each load's address register is the previous load's result, so the
/// chain's effective latency is dominated by cache misses; the program is
/// memory-bound with very low ILP.
#[derive(Debug, Clone)]
pub struct PointerChase {
    load: StaticInst,
    bump: StaticInst,
    check: StaticInst,
    branch: StaticInst,
    back_state: BranchState,
    addrs: AddrState,
}

impl PointerChase {
    /// Builds the chase loop at `base_pc` walking a region of `region`
    /// bytes (region ≫ 32 KB yields a high miss rate).
    pub fn new(base_pc: Pc, regs: &mut RegAlloc, region: u64, trip: u32) -> Self {
        let ptr = regs.alloc();
        let chk = regs.alloc();
        let mut pc = base_pc;
        let mut next_pc = || {
            let p = pc;
            pc = p.next();
            p
        };
        PointerChase {
            load: StaticInst::new(next_pc(), OpClass::Load)
                .with_src(ptr)
                .with_dst(ptr),
            bump: StaticInst::new(next_pc(), OpClass::IntAlu)
                .with_src(ptr)
                .with_dst(chk),
            check: StaticInst::new(next_pc(), OpClass::IntAlu)
                .with_src(chk)
                .with_dst(chk),
            branch: StaticInst::new(next_pc(), OpClass::Branch).with_src(chk),
            back_state: BranchBehavior::loop_exit(trip).into_state(),
            addrs: AddrStream::random_in(0x100_0000, region).into_state(),
        }
    }

    /// Number of instructions emitted per iteration.
    pub const fn body_len(&self) -> usize {
        4
    }

    /// Emits one chase step.
    pub fn emit(&mut self, b: &mut TraceBuilder, rng: &mut StdRng) {
        let addr = self.addrs.next(rng);
        b.push_mem(self.load, addr);
        b.push_simple(self.bump);
        b.push_simple(self.check);
        let taken = self.back_state.next(rng);
        b.push_branch(self.branch, BranchInfo::conditional(taken));
    }
}

/// `k` independent dependence chains advanced in an interleaved fetch
/// order — available ILP ≈ `k` (Figure 15's sweep variable).
#[derive(Debug, Clone)]
pub struct ParallelChains {
    links: Vec<StaticInst>,
    op: OpClass,
}

impl ParallelChains {
    /// Builds `k` chains of `op` instructions at `base_pc`.
    pub fn new(base_pc: Pc, regs: &mut RegAlloc, k: usize, op: OpClass) -> Self {
        assert!(k > 0, "need at least one chain");
        assert!(op.produces_value(), "chain op must produce a value");
        let links = (0..k)
            .map(|i| {
                let r = regs.alloc();
                StaticInst::new(base_pc.offset(i as u64), op)
                    .with_src(r)
                    .with_dst(r)
            })
            .collect();
        ParallelChains { links, op }
    }

    /// The number of chains.
    pub fn width(&self) -> usize {
        self.links.len()
    }

    /// Emits one link of every chain (round-robin fetch interleaving).
    pub fn emit(&mut self, b: &mut TraceBuilder, addrs: Option<&mut AddrState>, rng: &mut StdRng) {
        match (self.op.is_mem(), addrs) {
            (true, Some(addrs)) => {
                for l in &self.links {
                    let a = addrs.next(rng);
                    b.push_mem(*l, a);
                }
            }
            (false, _) => {
                for l in &self.links {
                    b.push_simple(*l);
                }
            }
            (true, None) => panic!("memory chains require an address stream"),
        }
    }
}

/// A pairwise reduction over `width` leaves — the "large hammock" shape
/// where divergent dataflow later re-converges (§2.2, `vpr`).
#[derive(Debug, Clone)]
pub struct ReductionTree {
    leaves: Vec<StaticInst>,
    levels: Vec<Vec<StaticInst>>,
    source: StaticInst,
}

impl ReductionTree {
    /// Builds a reduction over `width` leaves (rounded down to a power of
    /// two, minimum 2) at `base_pc`. One *source* instruction produces the
    /// value all leaves consume — the divergence point.
    pub fn new(base_pc: Pc, regs: &mut RegAlloc, width: usize) -> Self {
        let width = width.next_power_of_two().max(2);
        let width = if width > 8 { 8 } else { width }; // register budget
        let src_reg = regs.alloc();
        let leaf_regs = regs.alloc_n(width);
        let mut pc = base_pc;
        let mut next_pc = || {
            let p = pc;
            pc = p.next();
            p
        };
        let source = StaticInst::new(next_pc(), OpClass::IntAlu)
            .with_src(src_reg)
            .with_dst(src_reg);
        let leaves: Vec<StaticInst> = leaf_regs
            .iter()
            .map(|&r| {
                StaticInst::new(next_pc(), OpClass::IntAlu)
                    .with_src(src_reg)
                    .with_dst(r)
            })
            .collect();
        let mut levels = Vec::new();
        let mut cur = leaf_regs;
        while cur.len() > 1 {
            let mut level = Vec::new();
            let mut nextregs = Vec::new();
            for pair in cur.chunks(2) {
                level.push(
                    StaticInst::new(next_pc(), OpClass::IntAlu)
                        .with_srcs([Some(pair[0]), Some(pair[1])])
                        .with_dst(pair[0]),
                );
                nextregs.push(pair[0]);
            }
            levels.push(level);
            cur = nextregs;
        }
        ReductionTree {
            leaves,
            levels,
            source,
        }
    }

    /// Number of instructions emitted per instance.
    pub fn body_len(&self) -> usize {
        1 + self.leaves.len() + self.levels.iter().map(Vec::len).sum::<usize>()
    }

    /// Emits one source + leaves + reduction instance.
    pub fn emit(&mut self, b: &mut TraceBuilder) {
        b.push_simple(self.source);
        for l in &self.leaves {
            b.push_simple(*l);
        }
        for level in &self.levels {
            for i in level {
                b.push_simple(*i);
            }
        }
    }
}

/// Short computations each terminated by a conditional branch — dense,
/// irregular control flow in the style of `gcc`.
#[derive(Debug, Clone)]
pub struct BranchyBlock {
    units: Vec<(StaticInst, StaticInst, StaticInst)>,
    states: Vec<BranchState>,
}

impl BranchyBlock {
    /// Builds `units` compute→compare→branch triples at `base_pc`; branch
    /// `i` follows `behaviors[i % behaviors.len()]`.
    pub fn new(
        base_pc: Pc,
        regs: &mut RegAlloc,
        units: usize,
        behaviors: &[BranchBehavior],
    ) -> Self {
        assert!(!behaviors.is_empty(), "need at least one branch behaviour");
        let r = regs.alloc();
        let c = regs.alloc();
        let mut pc = base_pc;
        let mut next_pc = || {
            let p = pc;
            pc = p.next();
            p
        };
        let triples = (0..units)
            .map(|_| {
                (
                    StaticInst::new(next_pc(), OpClass::IntAlu)
                        .with_src(r)
                        .with_dst(r),
                    StaticInst::new(next_pc(), OpClass::IntAlu)
                        .with_src(r)
                        .with_dst(c),
                    StaticInst::new(next_pc(), OpClass::Branch).with_src(c),
                )
            })
            .collect::<Vec<_>>();
        let states = (0..units)
            .map(|i| behaviors[i % behaviors.len()].into_state())
            .collect();
        BranchyBlock {
            units: triples,
            states,
        }
    }

    /// Number of instructions emitted per instance.
    pub fn body_len(&self) -> usize {
        self.units.len() * 3
    }

    /// Emits one pass over all units.
    pub fn emit(&mut self, b: &mut TraceBuilder, rng: &mut StdRng) {
        for ((compute, compare, branch), state) in self.units.iter().zip(&mut self.states) {
            b.push_simple(*compute);
            b.push_simple(*compare);
            let taken = state.next(rng);
            b.push_branch(*branch, BranchInfo::conditional(taken));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn reg_alloc_hands_out_distinct_registers() {
        let mut ra = RegAlloc::new();
        let a = ra.alloc();
        let b = ra.alloc();
        assert_ne!(a, b);
        let more = ra.alloc_n(3);
        assert_eq!(more.len(), 3);
    }

    #[test]
    #[should_panic]
    fn reg_alloc_exhaustion_panics() {
        let mut ra = RegAlloc::new();
        let _ = ra.alloc_n(32);
    }

    #[test]
    fn dep_chain_is_fully_serial() {
        let mut ra = RegAlloc::new();
        let mut chain = DepChain::new(Pc::new(0x100), &mut ra, 3);
        let mut b = TraceBuilder::new();
        let idxs = chain.emit(&mut b, 10);
        let t = b.finish();
        t.validate().unwrap();
        // Every link depends on the previous one.
        for w in idxs.windows(2) {
            assert_eq!(t[w[1]].deps[0], Some(w[0]));
        }
    }

    #[test]
    fn spine_ribs_has_loop_carried_spine_and_diverging_rib() {
        let mut ra = RegAlloc::new();
        let mut sr = SpineRibs::new(Pc::new(0x200), &mut ra, SpineRibsConfig::default());
        let mut b = TraceBuilder::new();
        let mut r = rng();
        for _ in 0..4 {
            sr.emit(&mut b, &mut r);
        }
        let t = b.finish();
        t.validate().unwrap();
        assert_eq!(t.len(), 4 * sr.body_len());
        let body = sr.body_len();
        // The first spine op of iteration 2 depends on the last spine op of
        // iteration 1 (loop-carried).
        let it1_last_spine = DynIdx::new(1); // spine_len=2: insts 0,1
        let it2_first_spine = DynIdx::new(body as u32);
        assert_eq!(t[it2_first_spine].deps[0], Some(it1_last_spine));
        // The rib head of iteration 1 also reads the spine.
        let rib_head = DynIdx::new(2);
        assert_eq!(t[rib_head].deps[0], Some(it1_last_spine));
    }

    #[test]
    fn spine_ribs_pcs_are_stable_across_iterations() {
        let mut ra = RegAlloc::new();
        let mut sr = SpineRibs::new(Pc::new(0), &mut ra, SpineRibsConfig::default());
        let mut b = TraceBuilder::new();
        let mut r = rng();
        sr.emit(&mut b, &mut r);
        sr.emit(&mut b, &mut r);
        let t = b.finish();
        let body = sr.body_len();
        for i in 0..body {
            assert_eq!(
                t.as_slice()[i].pc(),
                t.as_slice()[i + body].pc(),
                "pc at body offset {i}"
            );
        }
    }

    #[test]
    fn hammock_converges_dyadically() {
        let mut ra = RegAlloc::new();
        let mut h = ConvergentHammock::new(Pc::new(0x300), &mut ra, HammockConfig::default());
        let mut b = TraceBuilder::new();
        let mut r = rng();
        let br = h.emit(&mut b, &mut r);
        let t = b.finish();
        t.validate().unwrap();
        assert_eq!(t.len(), h.body_len());
        // The instruction before the branch is the dyadic convergence.
        let conv = br.checked_back(1).unwrap();
        assert_eq!(t[conv].producers().count(), 2);
        assert_eq!(t[br].deps[0], Some(conv));
    }

    #[test]
    fn divergent_loop_matches_figure_12_shape() {
        let mut ra = RegAlloc::new();
        let mut d = DivergentLoop::new(Pc::new(0x400), &mut ra, DivergentLoopConfig::default());
        let mut b = TraceBuilder::new();
        let mut r = rng();
        d.emit(&mut b, &mut r);
        d.emit(&mut b, &mut r);
        let t = b.finish();
        t.validate().unwrap();
        // Second iteration's addl depends on first iteration's addl
        // (loop-carried destructive update — the Figure 13 recurrence).
        let addl2 = DynIdx::new(7);
        assert_eq!(t[addl2].deps[0], Some(DynIdx::new(0)));
        // Second iteration's ldl depends on first iteration's lda.
        let ldl2 = DynIdx::new(8);
        assert_eq!(t[ldl2].deps[0], Some(DynIdx::new(3)));
    }

    #[test]
    fn pointer_chase_loads_depend_on_previous_load() {
        let mut ra = RegAlloc::new();
        let mut p = PointerChase::new(Pc::new(0x500), &mut ra, 1 << 22, 100);
        let mut b = TraceBuilder::new();
        let mut r = rng();
        p.emit(&mut b, &mut r);
        p.emit(&mut b, &mut r);
        let t = b.finish();
        t.validate().unwrap();
        let second_load = DynIdx::new(4);
        assert_eq!(t[second_load].deps[0], Some(DynIdx::new(0)));
    }

    #[test]
    fn parallel_chains_are_independent() {
        let mut ra = RegAlloc::new();
        let mut p = ParallelChains::new(Pc::new(0x600), &mut ra, 4, OpClass::IntAlu);
        let mut b = TraceBuilder::new();
        let mut r = rng();
        p.emit(&mut b, None, &mut r);
        p.emit(&mut b, None, &mut r);
        let t = b.finish();
        t.validate().unwrap();
        // Chain i's second link depends only on chain i's first link.
        for i in 0..4u32 {
            assert_eq!(t[DynIdx::new(4 + i)].deps[0], Some(DynIdx::new(i)));
        }
    }

    #[test]
    #[should_panic]
    fn memory_parallel_chains_need_addresses() {
        let mut ra = RegAlloc::new();
        let mut p = ParallelChains::new(Pc::new(0), &mut ra, 2, OpClass::Load);
        let mut b = TraceBuilder::new();
        let mut r = rng();
        p.emit(&mut b, None, &mut r);
    }

    #[test]
    fn reduction_tree_has_log_depth_convergence() {
        let mut ra = RegAlloc::new();
        let mut tree = ReductionTree::new(Pc::new(0x700), &mut ra, 8);
        let mut b = TraceBuilder::new();
        tree.emit(&mut b);
        let t = b.finish();
        t.validate().unwrap();
        // 1 source + 8 leaves + 4 + 2 + 1 reducers.
        assert_eq!(t.len(), 16);
        let dyadic = t.iter().filter(|(_, i)| i.producers().count() == 2).count();
        assert_eq!(dyadic, 7);
        // All leaves consume the source.
        for i in 1..=8u32 {
            assert_eq!(t[DynIdx::new(i)].deps[0], Some(DynIdx::new(0)));
        }
    }

    #[test]
    fn branchy_block_emits_triples() {
        let mut ra = RegAlloc::new();
        let mut bb = BranchyBlock::new(
            Pc::new(0x800),
            &mut ra,
            3,
            &[BranchBehavior::Bernoulli(0.5), BranchBehavior::AlwaysTaken],
        );
        let mut b = TraceBuilder::new();
        let mut r = rng();
        bb.emit(&mut b, &mut r);
        let t = b.finish();
        t.validate().unwrap();
        assert_eq!(t.len(), bb.body_len());
        let branches = t.iter().filter(|(_, i)| i.is_conditional_branch()).count();
        assert_eq!(branches, 3);
    }
}
