//! Dynamic instruction traces and synthetic workload generation.
//!
//! The paper drives its timing simulator with traces of SPEC 2000 integer
//! benchmarks compiled for the Alpha. Those binaries and traces are not
//! available here, so this crate substitutes *synthetic workload models*:
//! twelve parameterized generators (one per SPECint benchmark) that emit
//! dynamic instruction streams exhibiting the dataflow idioms the paper's
//! analysis revolves around — loop spines with ribs (`vpr`, Figure 7),
//! convergent dyadic dataflow (`bzip2`, Figure 3), divergent early-exit
//! search loops (Figure 12), pointer chasing (`mcf`), and so on. The
//! paper's conclusions are explicitly about these *properties of program
//! dataflow* (§2.1), which the generators expose with tunable branch
//! predictability and cache locality.
//!
//! # Example
//!
//! ```
//! use ccs_trace::{Benchmark, TraceBuilder};
//! use ccs_isa::{OpClass, Pc, StaticInst, ArchReg};
//!
//! // Generate a small vpr-like trace deterministically.
//! let trace = Benchmark::Vpr.generate(42, 1_000);
//! assert!(trace.len() >= 1_000);
//!
//! // Or build a trace by hand.
//! let mut b = TraceBuilder::new();
//! let ld = b.push_mem(StaticInst::new(Pc::new(0), OpClass::Load)
//!     .with_dst(ArchReg::int(1)), 0x1000);
//! let add = b.push_simple(StaticInst::new(Pc::new(4), OpClass::IntAlu)
//!     .with_src(ArchReg::int(1)).with_dst(ArchReg::int(2)));
//! let t = b.finish();
//! assert_eq!(t[add].deps[0], Some(ld));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod behavior;
mod builder;
mod dynamic;
mod error;
mod memdep;
pub mod patterns;
pub mod program;
mod source;
mod stats;
mod store;
mod workloads;

pub use behavior::{AddrState, AddrStream, BranchBehavior, BranchState};
pub use builder::{Trace, TraceBuilder};
pub use dynamic::{DynIdx, DynInst};
pub use error::TraceError;
pub use source::{fnv1a, SourceGenerator, SourceId, SourceRegistry};
pub use stats::TraceStats;
pub use store::{TraceKey, TraceStore};
pub use workloads::{phased, try_phased, Benchmark, MAX_TRACE_LEN};
