//! Typed errors for trace construction, validation and workload
//! parameters.
//!
//! Historically the fallible trace entry points either panicked
//! (`Benchmark::generate` with a zero length, `phased` with no phases)
//! or returned bare `String`s (`Trace::validate`). Campaign
//! infrastructure that isolates failing grid cells needs to tell a
//! malformed input apart from a simulator bug, so these paths now
//! return [`TraceError`] — which the `ccs-core` error taxonomy wraps as
//! `CcsError::Trace`.

use std::fmt;

/// An error in a trace or in the parameters used to generate one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A structural defect found by [`Trace::validate`](crate::Trace::validate):
    /// a dependence pointing forward or at a non-producer, or a
    /// positional register mismatch.
    Malformed {
        /// The dynamic instruction the defect was found at.
        inst: u32,
        /// What is wrong with it.
        message: String,
    },
    /// A workload-generation parameter outside its valid range.
    BadWorkloadParam {
        /// The offending parameter.
        param: &'static str,
        /// Why it was rejected.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Malformed { inst, message } => {
                write!(f, "malformed trace at inst {inst}: {message}")
            }
            TraceError::BadWorkloadParam { param, message } => {
                write!(f, "bad workload parameter `{param}`: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_readably() {
        let e = TraceError::Malformed {
            inst: 7,
            message: "dep 0 points forward".into(),
        };
        assert_eq!(e.to_string(), "malformed trace at inst 7: dep 0 points forward");
        let e = TraceError::BadWorkloadParam {
            param: "min_len",
            message: "must be at least 1".into(),
        };
        assert!(e.to_string().contains("min_len"));
    }
}
