//! Dynamic instruction instances.

use ccs_isa::{BranchInfo, OpClass, Pc, StaticInst};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a dynamic instruction within a [`Trace`](crate::Trace).
///
/// A newtype over `u32`, which bounds traces at ~4 billion instructions —
/// far beyond what the cycle-level simulator can chew through anyway.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct DynIdx(u32);

impl DynIdx {
    /// Creates an index from a raw position.
    #[inline]
    pub const fn new(i: u32) -> Self {
        DynIdx(i)
    }

    /// The raw position.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The position as a `usize`, for slice indexing.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The index `n` instructions earlier, or `None` if that underflows.
    #[inline]
    pub fn checked_back(self, n: u32) -> Option<DynIdx> {
        self.0.checked_sub(n).map(DynIdx)
    }
}

impl fmt::Display for DynIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

impl From<DynIdx> for usize {
    fn from(i: DynIdx) -> usize {
        i.index()
    }
}

/// One dynamic instance of a static instruction.
///
/// Dependences are pre-resolved by the [`TraceBuilder`](crate::TraceBuilder)
/// through a rename table: `deps[k]` is the index of the dynamic instruction
/// that produced source operand `k`, or `None` if the value predates the
/// trace (a live-in).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynInst {
    /// The static instruction this is an instance of.
    pub inst: StaticInst,
    /// Producing dynamic instruction for each source operand. Entries
    /// correspond positionally to `inst.srcs`.
    pub deps: [Option<DynIdx>; 2],
    /// Effective address for loads and stores.
    pub mem_addr: Option<u64>,
    /// Resolved outcome for control-flow instructions.
    pub branch: Option<BranchInfo>,
}

impl DynInst {
    /// The instruction's PC.
    #[inline]
    pub fn pc(&self) -> Pc {
        self.inst.pc
    }

    /// The instruction's operation class.
    #[inline]
    pub fn op(&self) -> OpClass {
        self.inst.op
    }

    /// Iterates over the in-trace producers of this instruction's operands.
    #[inline]
    pub fn producers(&self) -> impl Iterator<Item = DynIdx> + '_ {
        self.deps.iter().filter_map(|d| *d)
    }

    /// Whether this instance is a conditional branch.
    #[inline]
    pub fn is_conditional_branch(&self) -> bool {
        matches!(
            self.branch,
            Some(BranchInfo {
                class: ccs_isa::BranchClass::Conditional,
                ..
            })
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_isa::ArchReg;

    fn sample() -> DynInst {
        DynInst {
            inst: StaticInst::new(Pc::new(0x10), OpClass::IntAlu)
                .with_srcs([Some(ArchReg::int(1)), Some(ArchReg::int(2))])
                .with_dst(ArchReg::int(3)),
            deps: [Some(DynIdx::new(0)), None],
            mem_addr: None,
            branch: None,
        }
    }

    #[test]
    fn dyn_idx_round_trips() {
        let i = DynIdx::new(7);
        assert_eq!(i.raw(), 7);
        assert_eq!(i.index(), 7);
        assert_eq!(usize::from(i), 7);
        assert_eq!(i.to_string(), "#7");
    }

    #[test]
    fn checked_back_saturates_at_zero() {
        assert_eq!(DynIdx::new(5).checked_back(2), Some(DynIdx::new(3)));
        assert_eq!(DynIdx::new(1).checked_back(2), None);
    }

    #[test]
    fn producers_skips_live_ins() {
        let d = sample();
        let v: Vec<_> = d.producers().collect();
        assert_eq!(v, vec![DynIdx::new(0)]);
    }

    #[test]
    fn conditional_branch_detection() {
        let mut d = sample();
        assert!(!d.is_conditional_branch());
        d.branch = Some(BranchInfo::conditional(true));
        assert!(d.is_conditional_branch());
        d.branch = Some(BranchInfo::unconditional());
        assert!(!d.is_conditional_branch());
    }

    #[test]
    fn accessors_delegate_to_static_inst() {
        let d = sample();
        assert_eq!(d.pc(), Pc::new(0x10));
        assert_eq!(d.op(), OpClass::IntAlu);
    }
}
