//! Aggregate trace statistics.

use crate::builder::Trace;
use ccs_isa::OpClass;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Aggregate statistics over a [`Trace`].
///
/// Used by the workload models' own tests (to pin the instruction mix each
/// benchmark model is supposed to exhibit) and by the experiment harness
/// for reporting.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    /// Total dynamic instructions.
    pub total: usize,
    /// Dynamic count per operation class.
    pub per_op: BTreeMap<OpClass, usize>,
    /// Dynamic conditional branches.
    pub conditional_branches: usize,
    /// Taken conditional branches.
    pub taken_branches: usize,
    /// Instructions with two in-trace producers (dyadic convergence
    /// points, §2.2).
    pub dyadic_converging: usize,
    /// Number of distinct static instructions (PCs).
    pub static_insts: usize,
    /// Sum over instructions of in-trace dependence count (for average
    /// dependence degree).
    pub dep_edges: usize,
}

impl TraceStats {
    /// Computes statistics for a trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut stats = TraceStats::default();
        let mut pcs = std::collections::HashSet::new();
        for (_, inst) in trace.iter() {
            stats.total += 1;
            *stats.per_op.entry(inst.op()).or_insert(0) += 1;
            pcs.insert(inst.pc());
            if inst.is_conditional_branch() {
                stats.conditional_branches += 1;
                if inst.branch.map(|b| b.taken).unwrap_or(false) {
                    stats.taken_branches += 1;
                }
            }
            let deps = inst.producers().count();
            stats.dep_edges += deps;
            if deps == 2 {
                stats.dyadic_converging += 1;
            }
        }
        stats.static_insts = pcs.len();
        stats
    }

    /// Fraction of dynamic instructions in the given class.
    pub fn op_fraction(&self, op: OpClass) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        *self.per_op.get(&op).unwrap_or(&0) as f64 / self.total as f64
    }

    /// Fraction of dynamic instructions that are loads or stores.
    pub fn mem_fraction(&self) -> f64 {
        self.op_fraction(OpClass::Load) + self.op_fraction(OpClass::Store)
    }

    /// Fraction of dynamic instructions that are conditional branches.
    pub fn branch_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.conditional_branches as f64 / self.total as f64
    }

    /// Average number of in-trace producers per instruction.
    pub fn mean_dep_degree(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.dep_edges as f64 / self.total as f64
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} insts, {} static, {:.1}% branches, {:.1}% mem, {:.2} deps/inst",
            self.total,
            self.static_insts,
            100.0 * self.branch_fraction(),
            100.0 * self.mem_fraction(),
            self.mean_dep_degree()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use ccs_isa::{ArchReg, BranchInfo, Pc, StaticInst};

    #[test]
    fn stats_over_empty_trace() {
        let t = TraceBuilder::new().finish();
        let s = t.stats();
        assert_eq!(s.total, 0);
        assert_eq!(s.op_fraction(OpClass::IntAlu), 0.0);
        assert_eq!(s.mean_dep_degree(), 0.0);
        assert_eq!(s.branch_fraction(), 0.0);
    }

    #[test]
    fn stats_count_ops_and_deps() {
        let mut b = TraceBuilder::new();
        b.push_mem(
            StaticInst::new(Pc::new(0), OpClass::Load).with_dst(ArchReg::int(1)),
            0x100,
        );
        b.push_simple(
            StaticInst::new(Pc::new(4), OpClass::IntAlu)
                .with_src(ArchReg::int(1))
                .with_dst(ArchReg::int(2)),
        );
        b.push_simple(
            StaticInst::new(Pc::new(8), OpClass::IntAlu)
                .with_srcs([Some(ArchReg::int(1)), Some(ArchReg::int(2))])
                .with_dst(ArchReg::int(3)),
        );
        b.push_branch(
            StaticInst::new(Pc::new(12), OpClass::Branch).with_src(ArchReg::int(3)),
            BranchInfo::conditional(true),
        );
        let s = b.finish().stats();
        assert_eq!(s.total, 4);
        assert_eq!(s.static_insts, 4);
        assert_eq!(s.per_op[&OpClass::Load], 1);
        assert_eq!(s.per_op[&OpClass::IntAlu], 2);
        assert_eq!(s.conditional_branches, 1);
        assert_eq!(s.taken_branches, 1);
        assert_eq!(s.dyadic_converging, 1);
        assert_eq!(s.dep_edges, 4);
        assert!((s.mem_fraction() - 0.25).abs() < 1e-12);
        assert!((s.mean_dep_degree() - 1.0).abs() < 1e-12);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn repeated_pcs_counted_once_statically() {
        let mut b = TraceBuilder::new();
        let inst = StaticInst::new(Pc::new(0), OpClass::IntAlu).with_dst(ArchReg::int(1));
        for _ in 0..5 {
            b.push_simple(inst);
        }
        let s = b.finish().stats();
        assert_eq!(s.total, 5);
        assert_eq!(s.static_insts, 1);
    }
}
