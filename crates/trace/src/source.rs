//! Dynamically registered trace sources.
//!
//! The twelve [`Benchmark`](crate::Benchmark) models are a closed enum,
//! which is what lets every layer of the workspace copy cell specs by
//! value. Scenario workloads (the `ccs-scenario` DSL) are open-ended:
//! they arrive as manifests at runtime — from a file, a fuzzer, or the
//! wire — so they cannot live in that enum. This module closes the gap
//! with a process-wide *source registry*: a scenario registers its
//! canonical manifest text plus a generator closure and receives a
//! [`SourceId`], a `Copy` handle derived from the FNV-1a fingerprint of
//! the canonical text. Everything downstream (cell specs, the trace
//! cache, checkpoint keys, shard routing) carries the id; only the edges
//! that parse or re-emit manifests ever see the DSL itself.
//!
//! Registration is idempotent and content-addressed: two registrations
//! of the same canonical text yield the same id and keep the first
//! entry, so re-registering a scenario (a resumed campaign, a repeated
//! wire submission) is free and cannot change what the id generates.

use crate::builder::Trace;
use crate::store::TraceStore;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// 64-bit FNV-1a over `bytes` — the same function the checkpoint layer
/// uses, applied here to canonical manifest text.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The identity of a registered trace source: the FNV-1a fingerprint of
/// its canonical manifest text.
///
/// `Copy` by design — it rides inside `CellSpec` through every grid,
/// checkpoint and wire layer. The fingerprint *is* the identity: equal
/// canonical text means equal id, regardless of field order in the file
/// the manifest was parsed from (canonicalization happens before
/// fingerprinting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SourceId(u64);

impl SourceId {
    /// The raw fingerprint.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for SourceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The generator closure of a registered source.
pub type SourceGenerator = dyn Fn(u64, usize) -> Trace + Send + Sync;

struct RegisteredSource {
    name: Arc<str>,
    manifest: Arc<str>,
    generate: Arc<SourceGenerator>,
}

/// A process-wide table of dynamically registered trace sources.
///
/// The registry deliberately treats manifests as *opaque text*: parsing
/// and canonicalization belong to the DSL layer (`ccs-scenario`), which
/// keeps this crate free of any manifest knowledge while still letting
/// `ccs-core` resolve a [`SourceId`] to a trace.
#[derive(Default)]
pub struct SourceRegistry {
    map: Mutex<HashMap<u64, RegisteredSource>>,
}

impl SourceRegistry {
    /// The process-wide registry.
    pub fn global() -> &'static SourceRegistry {
        static GLOBAL: OnceLock<SourceRegistry> = OnceLock::new();
        GLOBAL.get_or_init(SourceRegistry::default)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, RegisteredSource>> {
        // The table holds only registration bookkeeping; a panicking
        // generator runs outside this lock (in the TraceStore slot), so
        // poison recovery is safe, matching the store's own policy.
        self.map.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Registers a source under the fingerprint of `manifest`, returning
    /// its id. Content-addressed and idempotent: if the fingerprint is
    /// already registered the existing entry wins and `generate` is
    /// dropped.
    pub fn register(
        &self,
        name: &str,
        manifest: &str,
        generate: Box<SourceGenerator>,
    ) -> SourceId {
        let id = SourceId(fnv1a(manifest.as_bytes()));
        self.lock().entry(id.0).or_insert_with(|| RegisteredSource {
            name: Arc::from(name),
            manifest: Arc::from(manifest),
            generate: Arc::from(generate),
        });
        id
    }

    /// The registered display name of `id`, if known in this process.
    pub fn name(&self, id: SourceId) -> Option<Arc<str>> {
        self.lock().get(&id.raw()).map(|s| Arc::clone(&s.name))
    }

    /// The canonical manifest text of `id`, if known in this process —
    /// what the wire layer re-emits so a remote daemon can re-register
    /// the identical source.
    pub fn manifest(&self, id: SourceId) -> Option<Arc<str>> {
        self.lock().get(&id.raw()).map(|s| Arc::clone(&s.manifest))
    }

    /// Whether `id` is registered.
    pub fn contains(&self, id: SourceId) -> bool {
        self.lock().contains_key(&id.raw())
    }

    /// The trace of `(id, seed, len)`, memoized in `store` under the
    /// source's fingerprint exactly like benchmark traces are memoized
    /// under their enum key.
    ///
    /// # Panics
    ///
    /// Panics if `id` was never registered in this process — a
    /// programming error: every path that builds a scenario cell spec
    /// registers the scenario first.
    pub fn trace_in(&self, store: &TraceStore, id: SourceId, seed: u64, len: usize) -> Arc<Trace> {
        let generate = self
            .lock()
            .get(&id.raw())
            .map(|s| Arc::clone(&s.generate))
            .unwrap_or_else(|| panic!("trace source {id} is not registered in this process"));
        store.get_custom(id.raw(), seed, len, move || generate(seed, len))
    }

    /// [`trace_in`](Self::trace_in) against the global
    /// [`TraceStore`](crate::TraceStore).
    pub fn trace(&self, id: SourceId, seed: u64, len: usize) -> Arc<Trace> {
        self.trace_in(TraceStore::global(), id, seed, len)
    }
}

impl std::fmt::Debug for SourceRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let map = self.lock();
        f.debug_struct("SourceRegistry")
            .field("sources", &map.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::TraceBuilder;
    use ccs_isa::{ArchReg, OpClass, Pc, StaticInst};

    fn tiny_trace(seed: u64, len: usize) -> Trace {
        let mut b = TraceBuilder::new();
        for i in 0..len {
            b.push_simple(
                StaticInst::new(Pc::new(0x9000 + seed), OpClass::IntAlu)
                    .with_src(ArchReg::int(1))
                    .with_dst(ArchReg::int(1)),
            );
            let _ = i;
        }
        b.finish()
    }

    #[test]
    fn registration_is_content_addressed_and_idempotent() {
        let reg = SourceRegistry::default();
        let a = reg.register("alpha", "name = \"alpha\"\n", Box::new(tiny_trace));
        let b = reg.register("alpha-again", "name = \"alpha\"\n", Box::new(tiny_trace));
        assert_eq!(a, b, "same canonical text, same id");
        // First registration wins.
        assert_eq!(reg.name(a).as_deref(), Some("alpha"));
        let c = reg.register("beta", "name = \"beta\"\n", Box::new(tiny_trace));
        assert_ne!(a, c);
        assert_eq!(reg.manifest(c).as_deref(), Some("name = \"beta\"\n"));
        assert!(reg.contains(a));
        assert!(!reg.contains(SourceId(0xDEAD)));
    }

    #[test]
    fn trace_in_memoizes_like_benchmark_traces() {
        let reg = SourceRegistry::default();
        let store = TraceStore::new();
        let id = reg.register("memo", "memo-manifest", Box::new(tiny_trace));
        let a = reg.trace_in(&store, id, 3, 40);
        let b = reg.trace_in(&store, id, 3, 40);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.misses(), 1);
        assert_eq!(a.len(), 40);
        // Different seed is a different cache entry.
        let c = reg.trace_in(&store, id, 4, 40);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unknown_source_panics() {
        let reg = SourceRegistry::default();
        let store = TraceStore::new();
        reg.trace_in(&store, SourceId(1), 0, 10);
    }

    #[test]
    fn source_id_displays_as_hex_fingerprint() {
        assert_eq!(SourceId(0xAB).to_string(), "00000000000000ab");
        assert_eq!(SourceId(0xAB).raw(), 0xAB);
    }
}
