//! The shared, process-wide trace cache.
//!
//! Every figure of the paper harness evaluates the same 12 workloads at
//! the same seeds and lengths; historically each figure binary (and each
//! figure *within* `all_figures`) regenerated those traces from scratch.
//! [`TraceStore`] memoizes generation behind a `(Benchmark, seed, len)`
//! key and hands out `Arc<Trace>` clones, so each distinct trace is
//! generated exactly once per process — including under the parallel
//! grid executor, where many worker threads request the same trace
//! concurrently.

use crate::builder::Trace;
use crate::workloads::Benchmark;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// The memoization key: which trace, which sample seed, which length.
pub type TraceKey = (Benchmark, u64, usize);

/// A thread-safe memo table of generated traces.
///
/// Use [`TraceStore::global`] for the process-wide instance shared by
/// the figure harness and the grid executor; independent instances are
/// only useful for tests that need cold-cache behaviour.
///
/// The table maps each key to a [`OnceLock`] slot rather than directly
/// to a trace: the slot is created (and the miss counted) under the
/// table lock, but generation itself runs through
/// [`OnceLock::get_or_init`] *outside* it. Concurrent requests for
/// different keys generate in parallel; concurrent requests for the same
/// cold key block on the slot until its single generation finishes, so
/// every key is generated exactly once per store and all callers share
/// one pointer-identical `Arc<Trace>`.
#[derive(Debug, Default)]
pub struct TraceStore {
    map: Mutex<HashMap<TraceKey, Arc<OnceLock<Arc<Trace>>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TraceStore {
    /// A new, empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide shared store.
    pub fn global() -> &'static TraceStore {
        static GLOBAL: OnceLock<TraceStore> = OnceLock::new();
        GLOBAL.get_or_init(TraceStore::new)
    }

    /// Locks the key table, recovering from poisoning.
    ///
    /// The table only holds `HashMap` bookkeeping — a panic while it is
    /// held cannot leave a half-built *trace* visible, because traces
    /// are published through their `OnceLock` slots outside this lock.
    /// Treating poison as fatal (the pre-resilience behaviour) turned
    /// one panicking grid cell into a process-wide cache outage, so we
    /// take the guard regardless.
    fn lock_map(&self) -> MutexGuard<'_, HashMap<TraceKey, Arc<OnceLock<Arc<Trace>>>>> {
        self.map.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The trace for `(bench, seed, len)`, generating it on first
    /// request and returning a shared handle afterwards.
    ///
    /// Exactly one caller generates each distinct key (counted as the
    /// miss); everyone else — including threads that raced on the cold
    /// key and waited for generation to finish — counts a hit and gets a
    /// clone of the same `Arc`.
    pub fn get(&self, bench: Benchmark, seed: u64, len: usize) -> Arc<Trace> {
        let key = (bench, seed, len);
        let (slot, creator) = {
            let mut map = self.lock_map();
            match map.get(&key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(OnceLock::new());
                    map.insert(key, Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if creator {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        // Generation happens outside the table lock; `get_or_init` makes
        // the slot's creator (or whichever racer arrives first) run it
        // once while any other caller for this key blocks until done.
        //
        // If generation itself panics, the panic is re-raised to the
        // caller (it is that cell's failure to report), but only after
        // evicting this slot from the table: a slot whose initializer
        // panicked must not be left installed, or a later retry of the
        // same key would find the dead slot instead of regenerating.
        let init = catch_unwind(AssertUnwindSafe(|| {
            Arc::clone(slot.get_or_init(|| Arc::new(bench.generate(seed, len))))
        }));
        match init {
            Ok(trace) => trace,
            Err(panic) => {
                let mut map = self.lock_map();
                // Evict only our own still-uninitialized slot: a racer
                // may have already replaced it (and possibly completed a
                // fresh generation) after an earlier eviction.
                if map
                    .get(&key)
                    .is_some_and(|s| Arc::ptr_eq(s, &slot) && s.get().is_none())
                {
                    map.remove(&key);
                }
                drop(map);
                resume_unwind(panic)
            }
        }
    }

    /// Number of distinct traces currently cached.
    pub fn len(&self) -> usize {
        self.lock_map().len()
    }

    /// Whether the store holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits served since construction (or the last [`clear`](Self::clear)).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (trace generations) since construction (or the last
    /// [`clear`](Self::clear)).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Drops all cached traces and resets the hit/miss counters.
    pub fn clear(&self) {
        self.lock_map().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn get_memoizes_per_key() {
        let store = TraceStore::new();
        let a = store.get(Benchmark::Vpr, 1, 1_000);
        let b = store.get(Benchmark::Vpr, 1, 1_000);
        assert!(Arc::ptr_eq(&a, &b), "same key shares one trace");
        assert_eq!(store.len(), 1);
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);

        let c = store.get(Benchmark::Vpr, 2, 1_000);
        assert!(!Arc::ptr_eq(&a, &c), "different seed is a different trace");
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn cached_traces_match_direct_generation() {
        let store = TraceStore::new();
        let cached = store.get(Benchmark::Gzip, 7, 500);
        let direct = Benchmark::Gzip.generate(7, 500);
        assert_eq!(cached.len(), direct.len());
        for ((ai, a), (_, b)) in cached.iter().zip(direct.iter()) {
            assert_eq!(a.pc(), b.pc(), "inst {ai}");
            assert_eq!(a.deps, b.deps, "inst {ai}");
        }
    }

    #[test]
    fn concurrent_access_generates_consistently() {
        let store = TraceStore::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|k| {
                    let store = &store;
                    scope.spawn(move || store.get(Benchmark::Mcf, k % 2, 800).len())
                })
                .collect();
            let lens: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert!(lens.iter().all(|&l| l == lens[0]));
        });
        assert_eq!(store.len(), 2);
        assert_eq!(store.hits() + store.misses(), 8);
        assert_eq!(store.misses(), 2, "each distinct key generates exactly once");
    }

    #[test]
    fn racing_threads_on_one_cold_key_share_a_single_generation() {
        // All 16 threads release together against a cold key: exactly one
        // generation (one miss), everyone holding the same allocation.
        let store = TraceStore::new();
        let threads = 16;
        let barrier = Barrier::new(threads);
        let traces: Vec<Arc<Trace>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let (store, barrier) = (&store, &barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        store.get(Benchmark::Twolf, 3, 1_200)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(
            traces.iter().all(|t| Arc::ptr_eq(t, &traces[0])),
            "every thread must see the same allocation"
        );
        assert_eq!(store.len(), 1);
        assert_eq!(store.misses(), 1, "one generation despite {threads} racers");
        assert_eq!(store.hits(), threads as u64 - 1);
        assert_eq!(traces[0].len(), 1_200);
    }

    #[test]
    fn panicked_generation_is_evicted_and_a_retry_regenerates() {
        // A zero length fails workload validation, so generation panics
        // inside `get_or_init`. The store must evict the dead slot and
        // re-raise; a retry at a good length must then generate fresh.
        let store = TraceStore::new();
        let attempt = catch_unwind(AssertUnwindSafe(|| store.get(Benchmark::Vpr, 1, 0)));
        assert!(attempt.is_err(), "zero-length generation must panic");
        assert_eq!(store.len(), 0, "failed slot must not stay installed");

        let t = store.get(Benchmark::Vpr, 1, 1_000);
        assert!(t.len() >= 1_000);
        assert_eq!(store.len(), 1);
        // Both calls were cold: the failed one and the successful retry.
        assert_eq!(store.misses(), 2);
        assert_eq!(store.hits(), 0);
    }

    #[test]
    fn store_survives_a_poisoned_table_lock() {
        // Poison the table mutex deliberately (panic while holding the
        // guard on another thread) and check every entry point still
        // works instead of propagating the poison.
        let store = TraceStore::new();
        store.get(Benchmark::Gap, 9, 300);
        let poisoner = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = store.map.lock().unwrap();
                    panic!("poison the trace store");
                })
                .join()
        });
        assert!(poisoner.is_err());
        assert!(store.map.lock().is_err(), "lock must actually be poisoned");

        assert_eq!(store.len(), 1);
        let a = store.get(Benchmark::Gap, 9, 300);
        let b = store.get(Benchmark::Gap, 9, 300);
        assert!(Arc::ptr_eq(&a, &b));
        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn clear_resets_everything() {
        let store = TraceStore::new();
        store.get(Benchmark::Gap, 1, 400);
        store.get(Benchmark::Gap, 1, 400);
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.hits(), 0);
        assert_eq!(store.misses(), 0);
    }
}
