//! The shared, process-wide trace cache.
//!
//! Every figure of the paper harness evaluates the same 12 workloads at
//! the same seeds and lengths; historically each figure binary (and each
//! figure *within* `all_figures`) regenerated those traces from scratch.
//! [`TraceStore`] memoizes generation behind a `(Benchmark, seed, len)`
//! key and hands out `Arc<Trace>` clones, so each distinct trace is
//! generated exactly once per process — including under the parallel
//! grid executor, where many worker threads request the same trace
//! concurrently.
//!
//! Batch binaries use the **unbounded** default: a figure sweep touches
//! a fixed set of keys and exits. A *resident* process — the `ccs-serve`
//! daemon, which accepts arbitrary client grids for days — instead uses
//! [`TraceStore::bounded`]: a capacity-limited store that evicts the
//! least-recently-used generated trace when a new key would exceed the
//! bound. Eviction only drops the store's own reference; callers holding
//! an `Arc<Trace>` keep using it, and while an entry remains cached every
//! `get` returns the same pointer-identical allocation.

use crate::builder::Trace;
use crate::workloads::Benchmark;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

/// The benchmark memoization key: which trace, which sample seed, which
/// length. Custom sources (registered scenarios) are cached under their
/// 64-bit source fingerprint instead — see [`TraceStore::get_custom`].
pub type TraceKey = (Benchmark, u64, usize);

/// The internal cache key: either a closed-enum benchmark or an open
/// fingerprint-addressed custom source. Both share the same slot, LRU
/// and panic-eviction machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Key {
    Bench(Benchmark, u64, usize),
    Custom(u64, u64, usize),
}

/// One cache entry: the generation slot plus its recency stamp.
#[derive(Debug)]
struct Entry {
    slot: Arc<OnceLock<Arc<Trace>>>,
    /// Logical clock value of the most recent `get` for this key; the
    /// eviction victim is the initialized entry with the smallest stamp.
    last_used: u64,
}

/// A thread-safe memo table of generated traces.
///
/// Use [`TraceStore::global`] for the process-wide instance shared by
/// the figure harness and the grid executor; independent instances are
/// only useful for tests that need cold-cache behaviour, or for
/// long-running daemons that need the bounded ([`TraceStore::bounded`])
/// eviction mode.
///
/// The table maps each key to a [`OnceLock`] slot rather than directly
/// to a trace: the slot is created (and the miss counted) under the
/// table lock, but generation itself runs through
/// [`OnceLock::get_or_init`] *outside* it. Concurrent requests for
/// different keys generate in parallel; concurrent requests for the same
/// cold key block on the slot until its single generation finishes, so
/// every key is generated exactly once per store and all callers share
/// one pointer-identical `Arc<Trace>`.
#[derive(Debug, Default)]
pub struct TraceStore {
    map: Mutex<HashMap<Key, Entry>>,
    /// LRU bound on cached entries; `None` never evicts.
    capacity: Option<usize>,
    /// Logical recency clock, advanced by every `get`.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl TraceStore {
    /// A new, empty, **unbounded** store (the batch-binary default).
    pub fn new() -> Self {
        Self::default()
    }

    /// A new, empty store that holds at most `capacity` traces (≥ 1),
    /// evicting the least-recently-used *generated* entry when a new key
    /// would exceed the bound.
    ///
    /// Two deliberate softenings of strict LRU keep the concurrency
    /// story of the unbounded store intact:
    ///
    /// * Entries still mid-generation are never evicted — evicting one
    ///   would let a racer re-generate a key that already has a
    ///   generation in flight, breaking the one-generation-per-live-key
    ///   guarantee. If every entry is mid-generation the table may
    ///   transiently exceed `capacity` by the number of in-flight
    ///   generations.
    /// * Eviction drops only the store's reference. `Arc<Trace>` handles
    ///   already given out stay valid; a later `get` of an evicted key
    ///   regenerates an equal trace in a fresh allocation.
    pub fn bounded(capacity: usize) -> Self {
        TraceStore {
            capacity: Some(capacity.max(1)),
            ..Self::default()
        }
    }

    /// The process-wide shared store (unbounded).
    pub fn global() -> &'static TraceStore {
        static GLOBAL: OnceLock<TraceStore> = OnceLock::new();
        GLOBAL.get_or_init(TraceStore::new)
    }

    /// The LRU bound, `None` when unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Locks the key table, recovering from poisoning.
    ///
    /// The table only holds `HashMap` bookkeeping — a panic while it is
    /// held cannot leave a half-built *trace* visible, because traces
    /// are published through their `OnceLock` slots outside this lock.
    /// Treating poison as fatal (the pre-resilience behaviour) turned
    /// one panicking grid cell into a process-wide cache outage, so we
    /// take the guard regardless.
    fn lock_map(&self) -> MutexGuard<'_, HashMap<Key, Entry>> {
        self.map.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Evicts initialized least-recently-used entries (never `keep`)
    /// until the table fits the capacity bound. Caller holds the lock.
    fn evict_to_capacity(&self, map: &mut HashMap<Key, Entry>, keep: &Key) {
        let Some(cap) = self.capacity else { return };
        while map.len() > cap {
            let victim = map
                .iter()
                .filter(|(k, e)| *k != keep && e.slot.get().is_some())
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    map.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                // Everything else is mid-generation: exceed the bound
                // transiently rather than evict an in-flight slot.
                None => break,
            }
        }
    }

    /// The trace for `(bench, seed, len)`, generating it on first
    /// request and returning a shared handle afterwards.
    ///
    /// Exactly one caller generates each distinct key (counted as the
    /// miss); everyone else — including threads that raced on the cold
    /// key and waited for generation to finish — counts a hit and gets a
    /// clone of the same `Arc`. In a bounded store a `get` also
    /// refreshes the key's recency, and inserting a new key may evict
    /// the least-recently-used generated entry.
    pub fn get(&self, bench: Benchmark, seed: u64, len: usize) -> Arc<Trace> {
        self.get_with(Key::Bench(bench, seed, len), || bench.generate(seed, len))
    }

    /// The trace of a fingerprint-addressed custom source (a registered
    /// scenario), memoized under `(fp, seed, len)` with the same
    /// single-generation, LRU and panic-eviction behaviour as
    /// [`get`](Self::get). `generate` runs at most once per live key;
    /// callers racing on a cold key block until it finishes.
    pub fn get_custom(
        &self,
        fp: u64,
        seed: u64,
        len: usize,
        generate: impl FnOnce() -> Trace,
    ) -> Arc<Trace> {
        self.get_with(Key::Custom(fp, seed, len), generate)
    }

    fn get_with(&self, key: Key, generate: impl FnOnce() -> Trace) -> Arc<Trace> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let (slot, creator) = {
            let mut map = self.lock_map();
            match map.get_mut(&key) {
                Some(entry) => {
                    entry.last_used = stamp;
                    (Arc::clone(&entry.slot), false)
                }
                None => {
                    let slot = Arc::new(OnceLock::new());
                    map.insert(
                        key,
                        Entry {
                            slot: Arc::clone(&slot),
                            last_used: stamp,
                        },
                    );
                    self.evict_to_capacity(&mut map, &key);
                    (slot, true)
                }
            }
        };
        if creator {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        // Generation happens outside the table lock; `get_or_init` makes
        // the slot's creator (or whichever racer arrives first) run it
        // once while any other caller for this key blocks until done.
        //
        // If generation itself panics, the panic is re-raised to the
        // caller (it is that cell's failure to report), but only after
        // evicting this slot from the table: a slot whose initializer
        // panicked must not be left installed, or a later retry of the
        // same key would find the dead slot instead of regenerating.
        let init = catch_unwind(AssertUnwindSafe(|| {
            Arc::clone(slot.get_or_init(|| Arc::new(generate())))
        }));
        match init {
            Ok(trace) => trace,
            Err(panic) => {
                let mut map = self.lock_map();
                // Evict only our own still-uninitialized slot: a racer
                // may have already replaced it (and possibly completed a
                // fresh generation) after an earlier eviction.
                if map
                    .get(&key)
                    .is_some_and(|e| Arc::ptr_eq(&e.slot, &slot) && e.slot.get().is_none())
                {
                    map.remove(&key);
                }
                drop(map);
                resume_unwind(panic)
            }
        }
    }

    /// Whether `(bench, seed, len)` is currently cached (generated or
    /// mid-generation), without touching its recency.
    pub fn contains(&self, bench: Benchmark, seed: u64, len: usize) -> bool {
        self.lock_map().contains_key(&Key::Bench(bench, seed, len))
    }

    /// Whether the custom-source key `(fp, seed, len)` is currently
    /// cached (generated or mid-generation), without touching recency.
    pub fn contains_custom(&self, fp: u64, seed: u64, len: usize) -> bool {
        self.lock_map().contains_key(&Key::Custom(fp, seed, len))
    }

    /// Number of distinct traces currently cached.
    pub fn len(&self) -> usize {
        self.lock_map().len()
    }

    /// Whether the store holds no traces.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits served since construction (or the last [`clear`](Self::clear)).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (trace generations) since construction (or the last
    /// [`clear`](Self::clear)).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted by the LRU bound since construction (or the last
    /// [`clear`](Self::clear)). Always 0 for unbounded stores.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Drops all cached traces and resets the hit/miss/eviction counters.
    pub fn clear(&self) {
        self.lock_map().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn get_memoizes_per_key() {
        let store = TraceStore::new();
        let a = store.get(Benchmark::Vpr, 1, 1_000);
        let b = store.get(Benchmark::Vpr, 1, 1_000);
        assert!(Arc::ptr_eq(&a, &b), "same key shares one trace");
        assert_eq!(store.len(), 1);
        assert_eq!(store.hits(), 1);
        assert_eq!(store.misses(), 1);

        let c = store.get(Benchmark::Vpr, 2, 1_000);
        assert!(!Arc::ptr_eq(&a, &c), "different seed is a different trace");
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn cached_traces_match_direct_generation() {
        let store = TraceStore::new();
        let cached = store.get(Benchmark::Gzip, 7, 500);
        let direct = Benchmark::Gzip.generate(7, 500);
        assert_eq!(cached.len(), direct.len());
        for ((ai, a), (_, b)) in cached.iter().zip(direct.iter()) {
            assert_eq!(a.pc(), b.pc(), "inst {ai}");
            assert_eq!(a.deps, b.deps, "inst {ai}");
        }
    }

    #[test]
    fn unbounded_stores_never_evict() {
        let store = TraceStore::new();
        assert_eq!(store.capacity(), None);
        for seed in 0..6 {
            store.get(Benchmark::Gap, seed, 300);
        }
        assert_eq!(store.len(), 6);
        assert_eq!(store.evictions(), 0);
    }

    #[test]
    fn bounded_store_evicts_least_recently_used() {
        let store = TraceStore::bounded(2);
        assert_eq!(store.capacity(), Some(2));
        let a = store.get(Benchmark::Gap, 1, 300);
        let _b = store.get(Benchmark::Gap, 2, 300);
        // Touch `a` so seed 2 is now the least recently used.
        let a2 = store.get(Benchmark::Gap, 1, 300);
        assert!(Arc::ptr_eq(&a, &a2), "live entries stay pointer-identical");
        // A third key must evict seed 2, not seed 1.
        store.get(Benchmark::Gap, 3, 300);
        assert_eq!(store.len(), 2);
        assert_eq!(store.evictions(), 1);
        assert!(store.contains(Benchmark::Gap, 1, 300));
        assert!(!store.contains(Benchmark::Gap, 2, 300));
        assert!(store.contains(Benchmark::Gap, 3, 300));
        // The survivor is still the same allocation...
        let a3 = store.get(Benchmark::Gap, 1, 300);
        assert!(Arc::ptr_eq(&a, &a3));
        // ...while the evicted key regenerates equal content in a fresh
        // allocation (4 distinct generations total: seeds 1, 2, 3, 2).
        let b2 = store.get(Benchmark::Gap, 2, 300);
        assert_eq!(store.misses(), 4);
        let direct = Benchmark::Gap.generate(2, 300);
        assert_eq!(b2.len(), direct.len());
    }

    #[test]
    fn evicted_handles_remain_usable() {
        let store = TraceStore::bounded(1);
        let a = store.get(Benchmark::Mcf, 1, 400);
        let len_before = a.len();
        store.get(Benchmark::Mcf, 2, 400); // evicts seed 1
        assert_eq!(store.len(), 1);
        assert_eq!(store.evictions(), 1);
        // Our Arc outlives the eviction.
        assert_eq!(a.len(), len_before);
        assert!(a.iter().count() > 0);
    }

    #[test]
    fn concurrent_access_generates_consistently() {
        let store = TraceStore::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|k| {
                    let store = &store;
                    scope.spawn(move || store.get(Benchmark::Mcf, k % 2, 800).len())
                })
                .collect();
            let lens: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert!(lens.iter().all(|&l| l == lens[0]));
        });
        assert_eq!(store.len(), 2);
        assert_eq!(store.hits() + store.misses(), 8);
        assert_eq!(store.misses(), 2, "each distinct key generates exactly once");
    }

    #[test]
    fn racing_threads_on_one_cold_key_share_a_single_generation() {
        // All 16 threads release together against a cold key: exactly one
        // generation (one miss), everyone holding the same allocation.
        let store = TraceStore::new();
        let threads = 16;
        let barrier = Barrier::new(threads);
        let traces: Vec<Arc<Trace>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let (store, barrier) = (&store, &barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        store.get(Benchmark::Twolf, 3, 1_200)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(
            traces.iter().all(|t| Arc::ptr_eq(t, &traces[0])),
            "every thread must see the same allocation"
        );
        assert_eq!(store.len(), 1);
        assert_eq!(store.misses(), 1, "one generation despite {threads} racers");
        assert_eq!(store.hits(), threads as u64 - 1);
        assert_eq!(traces[0].len(), 1_200);
    }

    #[test]
    fn bounded_racers_share_generations_for_live_keys() {
        // A bounded store under contention must still hand racing
        // threads on a live key one pointer-identical allocation.
        let store = TraceStore::bounded(2);
        let threads = 8;
        let barrier = Barrier::new(threads);
        let traces: Vec<Arc<Trace>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let (store, barrier) = (&store, &barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        store.get(Benchmark::Twolf, 5, 600)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(traces.iter().all(|t| Arc::ptr_eq(t, &traces[0])));
        assert_eq!(store.misses(), 1);
    }

    #[test]
    fn panicked_generation_is_evicted_and_a_retry_regenerates() {
        // A zero length fails workload validation, so generation panics
        // inside `get_or_init`. The store must evict the dead slot and
        // re-raise; a retry at a good length must then generate fresh.
        let store = TraceStore::new();
        let attempt = catch_unwind(AssertUnwindSafe(|| store.get(Benchmark::Vpr, 1, 0)));
        assert!(attempt.is_err(), "zero-length generation must panic");
        assert_eq!(store.len(), 0, "failed slot must not stay installed");

        let t = store.get(Benchmark::Vpr, 1, 1_000);
        assert!(t.len() >= 1_000);
        assert_eq!(store.len(), 1);
        // Both calls were cold: the failed one and the successful retry.
        assert_eq!(store.misses(), 2);
        assert_eq!(store.hits(), 0);
    }

    #[test]
    fn store_survives_a_poisoned_table_lock() {
        // Poison the table mutex deliberately (panic while holding the
        // guard on another thread) and check every entry point still
        // works instead of propagating the poison.
        let store = TraceStore::new();
        store.get(Benchmark::Gap, 9, 300);
        let poisoner = std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let _guard = store.map.lock().unwrap();
                    panic!("poison the trace store");
                })
                .join()
        });
        assert!(poisoner.is_err());
        assert!(store.map.lock().is_err(), "lock must actually be poisoned");

        assert_eq!(store.len(), 1);
        let a = store.get(Benchmark::Gap, 9, 300);
        let b = store.get(Benchmark::Gap, 9, 300);
        assert!(Arc::ptr_eq(&a, &b));
        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn custom_keys_memoize_without_colliding_with_benchmarks() {
        let store = TraceStore::new();
        let bench = store.get(Benchmark::Gap, 1, 300);
        // A custom source cached at the same (seed, len) is a distinct
        // entry, even if its fingerprint happens to be small.
        let custom = store.get_custom(0, 1, 300, || Benchmark::Vpr.generate(1, 300));
        assert!(!Arc::ptr_eq(&bench, &custom));
        assert_eq!(store.len(), 2);
        assert_eq!(store.misses(), 2);
        // Memoized: the generator must not run again.
        let again = store.get_custom(0, 1, 300, || panic!("generator re-ran for a warm key"));
        assert!(Arc::ptr_eq(&custom, &again));
        assert!(store.contains_custom(0, 1, 300));
        assert!(!store.contains_custom(1, 1, 300));
    }

    #[test]
    fn clear_resets_everything() {
        let store = TraceStore::bounded(1);
        store.get(Benchmark::Gap, 1, 400);
        store.get(Benchmark::Gap, 2, 400);
        store.clear();
        assert!(store.is_empty());
        assert_eq!(store.hits(), 0);
        assert_eq!(store.misses(), 0);
        assert_eq!(store.evictions(), 0);
    }
}
