//! The twelve SPECint-like benchmark models.
//!
//! Each model composes the emitters in [`patterns`](crate::patterns) to
//! produce a dynamic instruction stream with the dataflow character the
//! paper attributes to the corresponding SPEC 2000 integer benchmark:
//!
//! * `bzip2`, `crafty` — abundant *convergent* dataflow (Figure 3); the
//!   paper's worst cases for the idealized scheduler.
//! * `vpr`, `twolf`, `perl` — *spine and ribs* loops with hard branches on
//!   the ribs (Figure 7) and dataflow hammocks.
//! * `gzip`, `gap` — long serial dependence chains: execute-critical code
//!   that benefits most from stall-over-steer (§5, the 20% gzip speedup).
//! * `mcf` — pointer chasing with a high miss rate; memory-bound.
//! * `gcc`, `parser` — dense irregular control flow and divergent
//!   early-exit scans (Figure 12).
//! * `eon`, `vortex` — high-ILP, predictable code (eon with FP).
//!
//! Models are deterministic given a seed.

use crate::behavior::{AddrStream, BranchBehavior};
use crate::builder::{Trace, TraceBuilder};
use crate::error::TraceError;
use crate::patterns::{
    BranchyBlock, ConvergentHammock, DepChain, DivergentLoop, DivergentLoopConfig, HammockConfig,
    ParallelChains, PointerChase, ReductionTree, RegAlloc, SpineRibs, SpineRibsConfig,
};
use ccs_isa::{BranchInfo, OpClass, Pc, StaticInst};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the twelve SPEC 2000 integer benchmarks the paper evaluates,
/// as a synthetic workload model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Benchmark {
    Bzip2,
    Crafty,
    Eon,
    Gap,
    Gcc,
    Gzip,
    Mcf,
    Parser,
    Perl,
    Twolf,
    Vortex,
    Vpr,
}

impl Benchmark {
    /// All twelve benchmarks in the paper's (alphabetical) order.
    pub const ALL: [Benchmark; 12] = [
        Benchmark::Bzip2,
        Benchmark::Crafty,
        Benchmark::Eon,
        Benchmark::Gap,
        Benchmark::Gcc,
        Benchmark::Gzip,
        Benchmark::Mcf,
        Benchmark::Parser,
        Benchmark::Perl,
        Benchmark::Twolf,
        Benchmark::Vortex,
        Benchmark::Vpr,
    ];

    /// The benchmark's SPEC name.
    pub const fn name(self) -> &'static str {
        match self {
            Benchmark::Bzip2 => "bzip2",
            Benchmark::Crafty => "crafty",
            Benchmark::Eon => "eon",
            Benchmark::Gap => "gap",
            Benchmark::Gcc => "gcc",
            Benchmark::Gzip => "gzip",
            Benchmark::Mcf => "mcf",
            Benchmark::Parser => "parser",
            Benchmark::Perl => "perl",
            Benchmark::Twolf => "twolf",
            Benchmark::Vortex => "vortex",
            Benchmark::Vpr => "vpr",
        }
    }

    /// A one-line description of the model's dataflow character.
    pub const fn description(self) -> &'static str {
        match self {
            Benchmark::Bzip2 => "convergent dyadic hammocks feeding branches (Figure 3)",
            Benchmark::Crafty => "convergent compares under dense, predictable control",
            Benchmark::Eon => "high-ILP floating point, near-perfect prediction",
            Benchmark::Gap => "arithmetic spines with moderate ribs",
            Benchmark::Gcc => "dense irregular control, many mispredicts",
            Benchmark::Gzip => "long serial chains; execute-critical (Figure 9)",
            Benchmark::Mcf => "pointer chasing, memory-latency bound",
            Benchmark::Parser => "divergent early-exit scans (Figure 12)",
            Benchmark::Perl => "interpreter dispatch spine, hard rib branches",
            Benchmark::Twolf => "spine-and-ribs with poor-locality loads",
            Benchmark::Vortex => "high-ILP, store-heavy, predictable",
            Benchmark::Vpr => "spine-and-ribs with criticality ties (Figure 7)",
        }
    }

    /// Generates a dynamic trace of at least `min_len` instructions,
    /// deterministically for a given `seed`.
    ///
    /// The actual length slightly exceeds `min_len` because generation
    /// stops at the end of a pattern iteration.
    ///
    /// # Panics
    ///
    /// Panics on a rejected workload parameter; campaign code that must
    /// survive malformed inputs uses [`try_generate`](Self::try_generate)
    /// instead.
    pub fn generate(self, seed: u64, min_len: usize) -> Trace {
        // Invariant: every in-tree caller passes a hard-coded or
        // env-clamped positive length, so this only fires on a
        // programming error.
        self.try_generate(seed, min_len)
            .expect("workload parameters are validated by try_generate")
    }

    /// Fallible form of [`generate`](Self::generate): validates the
    /// workload parameters and returns a typed error instead of
    /// panicking, so a malformed grid cell degrades into a structured
    /// failure rather than killing the campaign.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::BadWorkloadParam`] if `min_len` is zero or
    /// would overflow the trace's `u32` instruction indices.
    pub fn try_generate(self, seed: u64, min_len: usize) -> Result<Trace, TraceError> {
        validate_min_len(min_len)?;
        let mut b = TraceBuilder::new();
        self.emit_into(&mut b, seed, min_len);
        Ok(b.finish())
    }

    /// Emits this model's instructions into an existing builder until the
    /// builder holds at least `min_len` instructions — the building block
    /// for [`phased`] composite workloads.
    ///
    /// If the builder already holds `min_len` instructions this emits
    /// nothing: the target is a floor on the *builder's* length, not a
    /// count of instructions to append. [`try_phased`] therefore sets
    /// each phase's target relative to the builder's current length, so
    /// every phase contributes at least one pattern iteration.
    pub fn emit_into(self, b: &mut TraceBuilder, seed: u64, min_len: usize) {
        let mut rng = StdRng::seed_from_u64(seed ^ (self as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        match self {
            Benchmark::Bzip2 => bzip2(b, &mut rng, min_len),
            Benchmark::Crafty => crafty(b, &mut rng, min_len),
            Benchmark::Eon => eon(b, &mut rng, min_len),
            Benchmark::Gap => gap(b, &mut rng, min_len),
            Benchmark::Gcc => gcc(b, &mut rng, min_len),
            Benchmark::Gzip => gzip(b, &mut rng, min_len),
            Benchmark::Mcf => mcf(b, &mut rng, min_len),
            Benchmark::Parser => parser(b, &mut rng, min_len),
            Benchmark::Perl => perl(b, &mut rng, min_len),
            Benchmark::Twolf => twolf(b, &mut rng, min_len),
            Benchmark::Vortex => vortex(b, &mut rng, min_len),
            Benchmark::Vpr => vpr(b, &mut rng, min_len),
        }
    }
}

/// Builds a *phased* composite workload: each benchmark model runs for
/// `phase_len` instructions, separated by register barriers (a context
/// change: later phases see earlier values as live-ins). Phase changes
/// exercise predictor retraining — criticality learned in one phase is
/// stale in the next.
///
/// # Examples
///
/// ```
/// use ccs_trace::{phased, Benchmark};
///
/// let t = phased(&[Benchmark::Gzip, Benchmark::Mcf], 7, 1_000);
/// assert!(t.len() >= 2_000);
/// t.validate().unwrap();
/// ```
///
/// # Panics
///
/// Panics on a rejected parameter; see [`try_phased`] for the fallible
/// form.
pub fn phased(phases: &[Benchmark], seed: u64, phase_len: usize) -> Trace {
    // Invariant: in-tree callers pass literal phase lists and positive
    // lengths; only a programming error reaches the expect.
    try_phased(phases, seed, phase_len).expect("phased parameters are validated by try_phased")
}

/// Fallible form of [`phased`]: validates the parameters and returns a
/// typed error instead of panicking.
///
/// # Errors
///
/// Returns [`TraceError::BadWorkloadParam`] if `phases` is empty or
/// `phase_len` is out of range.
pub fn try_phased(phases: &[Benchmark], seed: u64, phase_len: usize) -> Result<Trace, TraceError> {
    if phases.is_empty() {
        return Err(TraceError::BadWorkloadParam {
            param: "phases",
            message: "need at least one phase".into(),
        });
    }
    validate_min_len(phase_len)?;
    if phase_len.checked_mul(phases.len()).is_none_or(|total| total > MAX_TRACE_LEN) {
        return Err(TraceError::BadWorkloadParam {
            param: "phase_len",
            message: format!(
                "{} phases of {phase_len} instructions exceed the {MAX_TRACE_LEN}-instruction cap",
                phases.len()
            ),
        });
    }
    let mut b = TraceBuilder::new();
    for (k, bench) in phases.iter().enumerate() {
        let target = b.len() + phase_len;
        // Wrapping: phase seeds are a per-phase perturbation of the
        // caller's seed, and callers may legitimately pass seeds near
        // `u64::MAX` (fuzzers do). `seed + k` overflowed there, turning
        // a valid parameter set into a debug-build panic.
        bench.emit_into(&mut b, seed.wrapping_add(k as u64), target);
        b.barrier();
    }
    Ok(b.finish())
}

/// Hard cap on requested trace lengths: dynamic indices are `u32`, and
/// generation may overshoot a pattern iteration, so reject anything close
/// to the representable limit up front. Public so other workload layers
/// (the scenario DSL) can validate against the same bound instead of
/// re-deriving it.
pub const MAX_TRACE_LEN: usize = (u32::MAX / 2) as usize;

fn validate_min_len(min_len: usize) -> Result<(), TraceError> {
    if min_len == 0 {
        return Err(TraceError::BadWorkloadParam {
            param: "min_len",
            message: "must be at least 1".into(),
        });
    }
    if min_len > MAX_TRACE_LEN {
        return Err(TraceError::BadWorkloadParam {
            param: "min_len",
            message: format!("{min_len} exceeds the {MAX_TRACE_LEN}-instruction cap"),
        });
    }
    Ok(())
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Emits a loop back-edge branch at a fixed PC. Keeps overall control-flow
/// density realistic in models whose patterns do not emit their own.
struct BackEdge {
    inst: StaticInst,
    state: crate::behavior::BranchState,
}

impl BackEdge {
    fn new(pc: Pc, regs: &mut RegAlloc, trip: u32) -> Self {
        let r = regs.alloc();
        BackEdge {
            inst: StaticInst::new(pc, OpClass::Branch).with_src(r),
            state: BranchBehavior::loop_exit(trip).into_state(),
        }
    }

    fn emit(&mut self, b: &mut TraceBuilder, rng: &mut StdRng) {
        let taken = self.state.next(rng);
        b.push_branch(self.inst, BranchInfo::conditional(taken));
    }
}

/// bzip2: Huffman/BWT inner loops — convergent dyadic dataflow feeding
/// sometimes-mispredicted branches (Figure 3), plus a short work loop.
fn bzip2(b: &mut TraceBuilder, rng: &mut StdRng, min_len: usize) {
    let mut regs = RegAlloc::new();
    let mut h1 = ConvergentHammock::new(
        Pc::new(0x1000),
        &mut regs,
        HammockConfig {
            arm_len: 2,
            branch: BranchBehavior::Bernoulli(0.18),
            region: 1 << 15,
        },
    );
    let mut h2 = ConvergentHammock::new(
        Pc::new(0x1100),
        &mut regs,
        HammockConfig {
            arm_len: 1,
            branch: BranchBehavior::Bernoulli(0.06),
            region: 1 << 13,
        },
    );
    let mut chain = DepChain::new(Pc::new(0x1200), &mut regs, 3);
    let mut back = BackEdge::new(Pc::new(0x1300), &mut regs, 48);
    while b.len() < min_len {
        h1.emit(b, rng);
        h2.emit(b, rng);
        chain.emit(b, 3);
        back.emit(b, rng);
    }
}

/// crafty: chess move generation/evaluation — convergent compares plus
/// dense, mostly-predictable control.
fn crafty(b: &mut TraceBuilder, rng: &mut StdRng, min_len: usize) {
    let mut regs = RegAlloc::new();
    let mut h = ConvergentHammock::new(
        Pc::new(0x2000),
        &mut regs,
        HammockConfig {
            arm_len: 3,
            branch: BranchBehavior::Bernoulli(0.12),
            region: 1 << 14,
        },
    );
    let mut bb = BranchyBlock::new(
        Pc::new(0x2100),
        &mut regs,
        4,
        &[
            BranchBehavior::Bernoulli(0.05),
            BranchBehavior::LoopExit(6),
            BranchBehavior::Bernoulli(0.30),
            BranchBehavior::AlwaysTaken,
        ],
    );
    let mut tree = ReductionTree::new(Pc::new(0x2200), &mut regs, 4);
    while b.len() < min_len {
        h.emit(b, rng);
        bb.emit(b, rng);
        tree.emit(b);
    }
}

/// eon: ray tracing — floating-point heavy, high ILP, very predictable
/// branches.
fn eon(b: &mut TraceBuilder, rng: &mut StdRng, min_len: usize) {
    let mut regs = RegAlloc::new();
    let mut fp = ParallelChains::new(Pc::new(0x3000), &mut regs, 4, OpClass::FpMul);
    let mut int = ParallelChains::new(Pc::new(0x3100), &mut regs, 4, OpClass::IntAlu);
    let mut loads = ParallelChains::new(Pc::new(0x3200), &mut regs, 2, OpClass::Load);
    let mut load_addrs = AddrStream::stream(0x60_0000, 8, 1 << 13).into_state();
    let mut back = BackEdge::new(Pc::new(0x3300), &mut regs, 16);
    while b.len() < min_len {
        loads.emit(b, Some(&mut load_addrs), rng);
        fp.emit(b, None, rng);
        int.emit(b, None, rng);
        back.emit(b, rng);
    }
}

/// gap: group-theory interpreter — arithmetic spines with moderate ribs.
fn gap(b: &mut TraceBuilder, rng: &mut StdRng, min_len: usize) {
    let mut regs = RegAlloc::new();
    let mut sr = SpineRibs::new(
        Pc::new(0x4000),
        &mut regs,
        SpineRibsConfig {
            spine_len: 4,
            rib_len: 2,
            rib_branch: BranchBehavior::Bernoulli(0.10),
            trip: 40,
        },
    );
    let mut chain = DepChain::new(Pc::new(0x4100), &mut regs, 4);
    while b.len() < min_len {
        sr.emit(b, rng);
        chain.emit(b, 4);
    }
}

/// gcc: compilation — very branchy, irregular, short dependence chains,
/// many mispredicts.
fn gcc(b: &mut TraceBuilder, rng: &mut StdRng, min_len: usize) {
    let mut regs = RegAlloc::new();
    let mut bb1 = BranchyBlock::new(
        Pc::new(0x5000),
        &mut regs,
        5,
        &[
            BranchBehavior::Bernoulli(0.40),
            BranchBehavior::Bernoulli(0.10),
            BranchBehavior::LoopExit(3),
            BranchBehavior::Bernoulli(0.25),
            BranchBehavior::Alternating,
        ],
    );
    let mut d = DivergentLoop::new(
        Pc::new(0x5100),
        &mut regs,
        DivergentLoopConfig {
            exit_prob: 0.08,
            trip: 12,
            region: 1 << 16,
        },
    );
    let mut h = ConvergentHammock::new(
        Pc::new(0x5200),
        &mut regs,
        HammockConfig {
            arm_len: 1,
            branch: BranchBehavior::Bernoulli(0.35),
            region: 1 << 16,
        },
    );
    while b.len() < min_len {
        bb1.emit(b, rng);
        d.emit(b, rng);
        h.emit(b, rng);
    }
}

/// gzip: LZ77 match loops — a long serial dependence chain with a little
/// off-chain work; the canonical execute-critical program (§5).
fn gzip(b: &mut TraceBuilder, rng: &mut StdRng, min_len: usize) {
    let mut regs = RegAlloc::new();
    let mut chain = DepChain::new(Pc::new(0x6000), &mut regs, 6);
    let mut side = ParallelChains::new(Pc::new(0x6100), &mut regs, 2, OpClass::IntAlu);
    let mut loads = ParallelChains::new(Pc::new(0x6200), &mut regs, 1, OpClass::Load);
    let mut load_addrs = AddrStream::stream(0x70_0000, 4, 1 << 14).into_state();
    let mut back = BackEdge::new(Pc::new(0x6300), &mut regs, 96);
    while b.len() < min_len {
        chain.emit(b, 12);
        side.emit(b, None, rng);
        loads.emit(b, Some(&mut load_addrs), rng);
        back.emit(b, rng);
    }
}

/// mcf: network simplex — pointer chasing over a structure far larger than
/// the L1; memory-bound with low ILP.
fn mcf(b: &mut TraceBuilder, rng: &mut StdRng, min_len: usize) {
    let mut regs = RegAlloc::new();
    let mut chase = PointerChase::new(Pc::new(0x7000), &mut regs, 16 << 20, 64);
    let mut side = ParallelChains::new(Pc::new(0x7100), &mut regs, 2, OpClass::IntAlu);
    let mut h = ConvergentHammock::new(
        Pc::new(0x7200),
        &mut regs,
        HammockConfig {
            arm_len: 1,
            branch: BranchBehavior::Bernoulli(0.20),
            region: 8 << 20,
        },
    );
    while b.len() < min_len {
        chase.emit(b, rng);
        side.emit(b, None, rng);
        chase.emit(b, rng);
        h.emit(b, rng);
    }
}

/// parser: recursive-descent link grammar — divergent early-exit scans and
/// mixed control.
fn parser(b: &mut TraceBuilder, rng: &mut StdRng, min_len: usize) {
    let mut regs = RegAlloc::new();
    let mut d = DivergentLoop::new(
        Pc::new(0x8000),
        &mut regs,
        DivergentLoopConfig {
            exit_prob: 0.05,
            trip: 24,
            region: 1 << 15,
        },
    );
    let mut bb = BranchyBlock::new(
        Pc::new(0x8100),
        &mut regs,
        3,
        &[
            BranchBehavior::Bernoulli(0.15),
            BranchBehavior::Bernoulli(0.45),
            BranchBehavior::LoopExit(5),
        ],
    );
    let mut chain = DepChain::new(Pc::new(0x8200), &mut regs, 2);
    while b.len() < min_len {
        for _ in 0..3 {
            d.emit(b, rng);
        }
        bb.emit(b, rng);
        chain.emit(b, 2);
    }
}

/// perl: interpreter dispatch loop — a spine through the dispatch state
/// with poorly-predicted indirect-style branches on the ribs.
fn perl(b: &mut TraceBuilder, rng: &mut StdRng, min_len: usize) {
    let mut regs = RegAlloc::new();
    let mut sr = SpineRibs::new(
        Pc::new(0x9000),
        &mut regs,
        SpineRibsConfig {
            spine_len: 3,
            rib_len: 4,
            rib_branch: BranchBehavior::Bernoulli(0.35),
            trip: 32,
        },
    );
    let mut h = ConvergentHammock::new(
        Pc::new(0x9100),
        &mut regs,
        HammockConfig {
            arm_len: 2,
            branch: BranchBehavior::Bernoulli(0.10),
            region: 1 << 14,
        },
    );
    while b.len() < min_len {
        sr.emit(b, rng);
        h.emit(b, rng);
    }
}

/// twolf: placement/routing — spine-and-ribs with poor-locality loads and
/// hammocks on the critical path.
fn twolf(b: &mut TraceBuilder, rng: &mut StdRng, min_len: usize) {
    let mut regs = RegAlloc::new();
    let mut sr = SpineRibs::new(
        Pc::new(0xA000),
        &mut regs,
        SpineRibsConfig {
            spine_len: 2,
            rib_len: 3,
            rib_branch: BranchBehavior::Bernoulli(0.40),
            trip: 20,
        },
    );
    let mut loads = ParallelChains::new(Pc::new(0xA100), &mut regs, 2, OpClass::Load);
    let mut load_addrs = AddrStream::random_in(0x80_0000, 1 << 19).into_state();
    let mut tree = ReductionTree::new(Pc::new(0xA200), &mut regs, 4);
    while b.len() < min_len {
        sr.emit(b, rng);
        loads.emit(b, Some(&mut load_addrs), rng);
        tree.emit(b);
    }
}

/// vortex: object database — high-ILP, store-heavy, very predictable.
fn vortex(b: &mut TraceBuilder, rng: &mut StdRng, min_len: usize) {
    let mut regs = RegAlloc::new();
    let mut int = ParallelChains::new(Pc::new(0xB000), &mut regs, 6, OpClass::IntAlu);
    let mut loads = ParallelChains::new(Pc::new(0xB100), &mut regs, 2, OpClass::Load);
    let mut load_addrs = AddrStream::stream(0x90_0000, 8, 1 << 13).into_state();
    let store_reg = regs.alloc();
    let store = StaticInst::new(Pc::new(0xB200), OpClass::Store).with_src(store_reg);
    let mut store_addrs = AddrStream::stream(0xA0_0000, 8, 1 << 13).into_state();
    let mut bb = BranchyBlock::new(
        Pc::new(0xB300),
        &mut regs,
        2,
        &[BranchBehavior::Bernoulli(0.02), BranchBehavior::LoopExit(10)],
    );
    while b.len() < min_len {
        int.emit(b, None, rng);
        loads.emit(b, Some(&mut load_addrs), rng);
        let a = store_addrs.next(rng);
        b.push_mem(store, a);
        bb.emit(b, rng);
    }
}

/// vpr: place-and-route — the paper's running example: spine-and-ribs with
/// a hard branch on the rib (Figure 7) plus large hammocks that converge
/// (§2.2's contention case).
fn vpr(b: &mut TraceBuilder, rng: &mut StdRng, min_len: usize) {
    let mut regs = RegAlloc::new();
    let mut sr = SpineRibs::new(
        Pc::new(0xC000),
        &mut regs,
        SpineRibsConfig {
            spine_len: 2,
            rib_len: 3,
            rib_branch: BranchBehavior::Bernoulli(0.50),
            trip: 64,
        },
    );
    let mut tree = ReductionTree::new(Pc::new(0xC100), &mut regs, 8);
    while b.len() < min_len {
        for _ in 0..4 {
            sr.emit(b, rng);
        }
        tree.emit(b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_generate_valid_traces() {
        for bench in Benchmark::ALL {
            let t = bench.generate(1, 2_000);
            assert!(t.len() >= 2_000, "{bench} too short: {}", t.len());
            t.validate().unwrap_or_else(|e| panic!("{bench}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for bench in [Benchmark::Vpr, Benchmark::Mcf, Benchmark::Gcc] {
            let a = bench.generate(7, 1_000);
            let b = bench.generate(7, 1_000);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(x, y);
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Benchmark::Gcc.generate(1, 1_000);
        let b = Benchmark::Gcc.generate(2, 1_000);
        // Same static structure but at least some dynamic outcome differs.
        let any_diff = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .any(|(x, y)| x.branch != y.branch || x.mem_addr != y.mem_addr);
        assert!(any_diff);
    }

    #[test]
    fn benchmarks_have_distinct_pcs() {
        // Static footprints must not overlap across benchmarks' base PCs
        // within a trace (each model manages its own PC space).
        for bench in Benchmark::ALL {
            let t = bench.generate(3, 1_000);
            let s = t.stats();
            assert!(s.static_insts >= 8, "{bench} static footprint too small");
            assert!(
                s.static_insts <= 200,
                "{bench} static footprint too large: {}",
                s.static_insts
            );
        }
    }

    #[test]
    fn model_characters_differ() {
        let n = 20_000;
        let gzip = Benchmark::Gzip.generate(1, n).stats();
        let eon = Benchmark::Eon.generate(1, n).stats();
        let mcf = Benchmark::Mcf.generate(1, n).stats();
        let gcc = Benchmark::Gcc.generate(1, n).stats();
        let bzip2 = Benchmark::Bzip2.generate(1, n).stats();

        // gzip is serial: high dependence degree, few branches.
        assert!(gzip.mean_dep_degree() > 0.8);
        // eon uses floating point; others here do not.
        assert!(eon.op_fraction(OpClass::FpMul) > 0.2);
        assert_eq!(gcc.op_fraction(OpClass::FpMul), 0.0);
        // mcf is memory-heavy.
        assert!(mcf.mem_fraction() > 0.2, "mcf mem {}", mcf.mem_fraction());
        // gcc is branch-dense.
        assert!(gcc.branch_fraction() > 0.2, "gcc br {}", gcc.branch_fraction());
        // bzip2 has abundant dyadic convergence.
        assert!(
            bzip2.dyadic_converging as f64 / bzip2.total as f64 > 0.05,
            "bzip2 dyadic {}",
            bzip2.dyadic_converging
        );
    }

    #[test]
    fn phased_workloads_compose_models() {
        let t = phased(&[Benchmark::Gzip, Benchmark::Mcf, Benchmark::Gcc], 1, 2_000);
        assert!(t.len() >= 6_000);
        t.validate().unwrap();
        // Static footprint covers all three models (distinct PC ranges).
        let stats = t.stats();
        assert!(stats.static_insts > 30, "static {}", stats.static_insts);
        // Phase boundary: the first mcf instruction has no dependence on
        // gzip values (the barrier cleared bindings).
        let first_mcf = t
            .iter()
            .find(|(_, inst)| inst.pc().raw() >= 0x7000 && inst.pc().raw() < 0x8000)
            .map(|(i, _)| i)
            .expect("mcf phase present");
        assert_eq!(t[first_mcf].producers().count(), 0);
    }

    #[test]
    #[should_panic]
    fn empty_phases_panic() {
        let _ = phased(&[], 1, 100);
    }

    #[test]
    fn phased_near_max_seed_does_not_overflow() {
        // Regression: phase k used `seed + k`, which overflowed (debug
        // panic) for seeds near u64::MAX. Phase seeds now wrap.
        let t = try_phased(&[Benchmark::Gzip, Benchmark::Mcf], u64::MAX, 200)
            .expect("a maximal seed is a valid parameter");
        assert!(t.len() >= 400);
        t.validate().unwrap();
        // Wrapping is part of the deterministic contract: phase 1 at
        // seed u64::MAX draws the same stream as a phase seeded with 0.
        let mut b = TraceBuilder::new();
        Benchmark::Gzip.emit_into(&mut b, u64::MAX, 200);
        b.barrier();
        let split = b.len();
        Benchmark::Mcf.emit_into(&mut b, 0, split + 200);
        b.barrier();
        let manual = b.finish();
        assert_eq!(t.len(), manual.len());
        for (x, y) in t.as_slice().iter().zip(manual.as_slice()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn zero_and_oversized_lengths_are_typed_errors_not_panics() {
        for (name, result) in [
            ("generate 0", Benchmark::Vpr.try_generate(1, 0)),
            ("generate cap+1", Benchmark::Vpr.try_generate(1, MAX_TRACE_LEN + 1)),
            ("phased 0", try_phased(&[Benchmark::Vpr], 1, 0)),
            (
                "phased cap overflow",
                try_phased(&[Benchmark::Vpr, Benchmark::Gcc], 1, MAX_TRACE_LEN),
            ),
        ] {
            match result {
                Err(TraceError::BadWorkloadParam { .. }) => {}
                other => panic!("{name}: expected BadWorkloadParam, got {other:?}"),
            }
        }
        assert!(matches!(
            try_phased(&[], 1, 100),
            Err(TraceError::BadWorkloadParam { param: "phases", .. })
        ));
    }

    #[test]
    fn tiny_phase_len_still_gives_every_phase_an_iteration() {
        // phase_len far below one pattern iteration must not silently
        // truncate a phase to zero instructions: each phase's target is
        // relative to the builder's running length, so each emits at
        // least one full iteration.
        let phases = [Benchmark::Gzip, Benchmark::Mcf, Benchmark::Gcc];
        let t = try_phased(&phases, 5, 1).expect("phase_len=1 is valid");
        t.validate().unwrap();
        // All three models' PC ranges must appear (gzip 0x6xxx, mcf
        // 0x7xxx, gcc 0x5xxx).
        for range in [0x6000..0x7000u64, 0x7000..0x8000, 0x5000..0x6000] {
            assert!(
                t.iter().any(|(_, inst)| range.contains(&inst.pc().raw())),
                "phase with PCs in {range:x?} emitted nothing"
            );
        }
    }

    #[test]
    fn names_are_unique_and_display() {
        let mut seen = std::collections::HashSet::new();
        for b in Benchmark::ALL {
            assert!(seen.insert(b.name()));
            assert_eq!(b.to_string(), b.name());
            assert!(!b.description().is_empty());
        }
        assert_eq!(Benchmark::ALL.len(), 12);
    }
}
