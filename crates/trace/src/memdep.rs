//! Perfect memory disambiguation support.
//!
//! Consumers resolve load→store dependences exactly from the trace
//! (Table 1's perfect disambiguation): a load depends on the latest
//! older store to the same 8-byte word. The resolution pass is a single
//! sweep with a last-store-per-word map; profiling showed the previous
//! `HashMap<u64, u32>` (SipHash, amortized growth) dominating the
//! per-run setup cost, so [`LastStoreTable`] replaces it with a
//! pre-sized open-addressed table using Fibonacci hashing and linear
//! probing — no hasher state, no growth, cache-friendly probes. The
//! resolution runs at most once per trace: [`Trace::memory_deps`]
//! caches the result, so repeated simulations of a shared trace (grid
//! campaigns, multi-epoch cells) pay for the sweep once.

use crate::builder::Trace;

/// Key slot marker for an empty bucket. Word keys are `addr >> 3`, so
/// the top three bits are always clear and `u64::MAX` cannot collide
/// with a real key.
const EMPTY: u64 = u64::MAX;

/// An open-addressed `word -> last store index` map, sized once for a
/// known maximum number of stores.
#[derive(Debug)]
pub(crate) struct LastStoreTable {
    keys: Vec<u64>,
    vals: Vec<u32>,
    mask: usize,
}

impl LastStoreTable {
    /// A table that holds up to `stores` entries at ≤ 50% load.
    pub(crate) fn with_capacity(stores: usize) -> Self {
        let cap = (stores.max(1) * 2).next_power_of_two();
        LastStoreTable {
            keys: vec![EMPTY; cap],
            vals: vec![0; cap],
            mask: cap - 1,
        }
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        // Fibonacci hashing spreads consecutive word addresses (the
        // common case for the synthetic workloads' streaming accesses).
        (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & self.mask
    }

    /// Records `index` as the latest store to `word`.
    #[inline]
    pub(crate) fn insert(&mut self, word: u64, index: u32) {
        debug_assert_ne!(word, EMPTY);
        let mut slot = self.slot_of(word);
        loop {
            let k = self.keys[slot];
            if k == word || k == EMPTY {
                self.keys[slot] = word;
                self.vals[slot] = index;
                return;
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// The latest store index recorded for `word`, if any.
    #[inline]
    pub(crate) fn get(&self, word: u64) -> Option<u32> {
        let mut slot = self.slot_of(word);
        loop {
            let k = self.keys[slot];
            if k == word {
                return Some(self.vals[slot]);
            }
            if k == EMPTY {
                return None;
            }
            slot = (slot + 1) & self.mask;
        }
    }
}

/// Resolves, for every instruction, the index of the store it truly
/// depends on (loads only; `None` elsewhere).
pub(super) fn resolve_memory_deps(trace: &Trace) -> Vec<Option<u32>> {
    let insts = trace.as_slice();
    let stores = insts
        .iter()
        .filter(|i| i.op() == ccs_isa::OpClass::Store && i.mem_addr.is_some())
        .count();
    let mut last_store = LastStoreTable::with_capacity(stores);
    insts
        .iter()
        .enumerate()
        .map(|(i, inst)| match (inst.op(), inst.mem_addr) {
            (ccs_isa::OpClass::Store, Some(addr)) => {
                last_store.insert(addr >> 3, i as u32);
                None
            }
            (ccs_isa::OpClass::Load, Some(addr)) => last_store.get(addr >> 3),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_isa::{ArchReg, OpClass, Pc, StaticInst};
    use crate::{Benchmark, TraceBuilder};
    use std::collections::HashMap;

    #[test]
    fn table_tracks_latest_store_per_word() {
        let mut t = LastStoreTable::with_capacity(4);
        assert_eq!(t.get(5), None);
        t.insert(5, 1);
        t.insert(9, 2);
        t.insert(5, 7);
        assert_eq!(t.get(5), Some(7));
        assert_eq!(t.get(9), Some(2));
        assert_eq!(t.get(6), None);
    }

    #[test]
    fn table_survives_collisions_beyond_sizing_hint() {
        let mut t = LastStoreTable::with_capacity(8);
        // Only 8 distinct words ever live in a 16-slot table, but hammer
        // them with updates.
        for i in 0..1_000u32 {
            t.insert((i % 8) as u64 * 0x1_0000, i);
        }
        for w in 0..8u64 {
            // Last write for word w is the largest i ≡ w (mod 8) below 1000.
            let want = (0..1_000u32).filter(|i| i % 8 == w as u32).max();
            assert_eq!(t.get(w * 0x1_0000), want);
        }
    }

    #[test]
    fn resolution_matches_reference_hashmap_sweep() {
        let trace = Benchmark::Mcf.generate(3, 4_000);
        let got = resolve_memory_deps(&trace);
        // Reference: the original HashMap implementation.
        let mut last: HashMap<u64, u32> = HashMap::new();
        let want: Vec<Option<u32>> = trace
            .as_slice()
            .iter()
            .enumerate()
            .map(|(i, inst)| match (inst.op(), inst.mem_addr) {
                (OpClass::Store, Some(addr)) => {
                    last.insert(addr >> 3, i as u32);
                    None
                }
                (OpClass::Load, Some(addr)) => last.get(&(addr >> 3)).copied(),
                _ => None,
            })
            .collect();
        assert_eq!(got, want);
    }

    /// Finds `count` distinct word keys that all hash to `target` in `t`.
    /// Scanning is cheap (Fibonacci hashing spreads uniformly, so about
    /// one key in `cap` lands on any given slot).
    fn colliding_words(t: &LastStoreTable, target: usize, count: usize) -> Vec<u64> {
        (1u64..)
            .filter(|&w| t.slot_of(w) == target)
            .take(count)
            .collect()
    }

    #[test]
    fn colliding_keys_stay_distinct_under_linear_probing() {
        // Six distinct words forced onto ONE home slot: every lookup must
        // probe through the whole cluster and still distinguish the keys.
        let mut t = LastStoreTable::with_capacity(8);
        let words = colliding_words(&t, 3, 6);
        assert_eq!(words.len(), 6);
        let mut reference: HashMap<u64, u32> = HashMap::new();
        for (i, &w) in words.iter().enumerate() {
            t.insert(w, i as u32);
            reference.insert(w, i as u32);
        }
        // Overwrite the middle of the probe chain; neighbours must be
        // untouched.
        t.insert(words[3], 99);
        reference.insert(words[3], 99);
        for &w in &words {
            assert_eq!(t.get(w), reference.get(&w).copied(), "word {w:#x}");
        }
        // A seventh colliding word was never inserted: the probe walks the
        // full cluster and must end at EMPTY, not mis-match.
        let absent = colliding_words(&t, 3, 7)[6];
        assert_eq!(t.get(absent), None);
    }

    #[test]
    fn probe_chains_wrap_around_the_table_end() {
        // Fill the tail of the table so a cluster starting at the LAST
        // slot must wrap to slot 0 and beyond.
        let mut t = LastStoreTable::with_capacity(8); // 16 slots, mask 15
        let last_slot = t.mask;
        let words = colliding_words(&t, last_slot, 4);
        let mut reference: HashMap<u64, u32> = HashMap::new();
        for (i, &w) in words.iter().enumerate() {
            t.insert(w, 1000 + i as u32);
            reference.insert(w, 1000 + i as u32);
        }
        // words[1..] necessarily live in wrapped slots 0, 1, 2.
        for (off, &w) in words.iter().enumerate().skip(1) {
            assert_eq!(t.keys[off - 1], w, "wrapped placement of word {w:#x}");
        }
        for &w in &words {
            assert_eq!(t.get(w), reference.get(&w).copied());
        }
        // Updates through the wrapped chain hit the existing entry, not a
        // fresh slot.
        t.insert(words[3], 7);
        reference.insert(words[3], 7);
        assert_eq!(t.get(words[3]), Some(7));
        assert_eq!(
            t.keys.iter().filter(|&&k| k != EMPTY).count(),
            reference.len(),
            "update must not duplicate a wrapped key"
        );
    }

    #[test]
    fn near_full_table_matches_reference_hashmap() {
        // 60 distinct words in a 64-slot table (94% load — far beyond the
        // ≤50% the sizing guarantees) with repeated overwrites in a
        // pseudo-random order: get/insert must still agree with a HashMap.
        let mut t = LastStoreTable::with_capacity(32); // 64 slots
        let mut reference: HashMap<u64, u32> = HashMap::new();
        let mut x: u64 = 0x2545_F491_4F6C_DD1D;
        for i in 0..4_000u32 {
            // xorshift over a fixed pool of 60 words.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let word = 0x40_0000 + (x % 60) * 8;
            t.insert(word, i);
            reference.insert(word, i);
            if i % 7 == 0 {
                let probe = 0x40_0000 + (x % 61) * 8; // sometimes absent
                assert_eq!(t.get(probe), reference.get(&probe).copied());
            }
        }
        assert_eq!(reference.len(), 60);
        for (&w, &v) in &reference {
            assert_eq!(t.get(w), Some(v), "word {w:#x}");
        }
        assert_eq!(t.keys.iter().filter(|&&k| k != EMPTY).count(), 60);
    }

    #[test]
    fn loads_see_only_true_word_conflicts() {
        let mut b = TraceBuilder::new();
        let st = b.push_mem(
            StaticInst::new(Pc::new(0), OpClass::Store).with_src(ArchReg::int(1)),
            0x1000,
        );
        // Same word (0x1000..0x1008): depends on the store.
        b.push_mem(
            StaticInst::new(Pc::new(4), OpClass::Load).with_dst(ArchReg::int(2)),
            0x1004,
        );
        // Different word: no dependence.
        b.push_mem(
            StaticInst::new(Pc::new(8), OpClass::Load).with_dst(ArchReg::int(3)),
            0x1008,
        );
        let t = b.finish();
        let deps = resolve_memory_deps(&t);
        assert_eq!(deps[st.index()], None);
        assert_eq!(deps[st.index() + 1], Some(st.index() as u32));
        assert_eq!(deps[st.index() + 2], None);
    }
}
