//! A declarative control-flow-graph program representation.
//!
//! The built-in [`Benchmark`](crate::Benchmark) models are hand-written
//! emitters; this module is the general, user-facing way to define a
//! synthetic workload: build a small program out of basic blocks with
//! typed instructions, stochastic branch behaviours and address streams,
//! then [`execute`](Program::execute) it into a dynamic [`Trace`].
//!
//! Static PCs are assigned once at build time, so PC-indexed predictors
//! see stable static instructions across loop iterations — the property
//! every criticality mechanism in this workspace relies on.
//!
//! # Example
//!
//! The early-exit search loop of the paper's Figure 12:
//!
//! ```
//! use ccs_trace::program::{ProgramBuilder, Terminator};
//! use ccs_trace::{AddrStream, BranchBehavior};
//! use ccs_isa::{ArchReg, Pc};
//!
//! let mut p = ProgramBuilder::new(Pc::new(0x1000));
//! let body = p.add_block();
//! let exit = p.add_block();
//!
//! let idx = ArchReg::int(1);
//! let ptr = ArchReg::int(2);
//! let val = ArchReg::int(3);
//! p.block(body)
//!     .alu(idx, &[idx])                                  // addl
//!     .load(val, ptr, AddrStream::stream(0x8000, 4, 1 << 12)) // ldl
//!     .alu(ptr, &[ptr])                                  // lda
//!     .alu(val, &[val])                                  // cmpeq
//!     .branch(
//!         BranchBehavior::Bernoulli(0.05),
//!         val,
//!         Terminator::conditional(exit, body),           // bne / loop
//!     );
//! p.block(exit).alu(idx, &[idx]).jump(body);
//!
//! let program = p.finish(body).unwrap();
//! let trace = program.execute(7, 500);
//! assert!(trace.len() >= 500);
//! trace.validate().unwrap();
//! ```

use crate::behavior::{AddrState, AddrStream, BranchBehavior, BranchState};
use crate::builder::{Trace, TraceBuilder};
use ccs_isa::{ArchReg, BranchInfo, OpClass, Pc, StaticInst};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Identifies a basic block within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId(u32);

impl BlockId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Terminator {
    /// Fall through / unconditionally jump to a block.
    Jump(BlockId),
    /// Conditional: `taken` when the behaviour says taken, else
    /// `fallthrough`.
    Conditional {
        /// Successor when the branch is taken.
        taken: BlockId,
        /// Successor when the branch falls through.
        fallthrough: BlockId,
    },
}

impl Terminator {
    /// A conditional terminator.
    pub fn conditional(taken: BlockId, fallthrough: BlockId) -> Self {
        Terminator::Conditional { taken, fallthrough }
    }
}

/// One instruction slot in a block: the static instruction plus its
/// dynamic-behaviour model.
#[derive(Debug, Clone)]
enum Slot {
    Simple(StaticInst),
    Mem(StaticInst, AddrStream),
    Branch(StaticInst, BranchBehavior, BlockId, BlockId),
    Jump(StaticInst, BlockId),
}

/// A basic block under construction / in a finished program.
#[derive(Debug, Clone, Default)]
struct Block {
    slots: Vec<Slot>,
    terminated: bool,
}

/// Errors from [`ProgramBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A block has no terminator.
    Unterminated(u32),
    /// The entry block id is out of range.
    BadEntry,
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::Unterminated(b) => write!(f, "block {b} has no terminator"),
            ProgramError::BadEntry => write!(f, "entry block does not exist"),
        }
    }
}

impl std::error::Error for ProgramError {}

/// Builds a [`Program`] block by block.
#[derive(Debug, Clone)]
pub struct ProgramBuilder {
    base_pc: Pc,
    next_pc: u64,
    blocks: Vec<Block>,
}

impl ProgramBuilder {
    /// Starts a program whose instructions are laid out from `base_pc`.
    pub fn new(base_pc: Pc) -> Self {
        ProgramBuilder {
            base_pc,
            next_pc: 0,
            blocks: Vec::new(),
        }
    }

    /// Allocates an (empty) basic block and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(Block::default());
        BlockId((self.blocks.len() - 1) as u32)
    }

    /// Opens a block for appending instructions.
    ///
    /// # Panics
    ///
    /// Panics if the block id is invalid or the block is already
    /// terminated.
    pub fn block(&mut self, id: BlockId) -> BlockCursor<'_> {
        assert!(id.index() < self.blocks.len(), "invalid block id");
        assert!(
            !self.blocks[id.index()].terminated,
            "block {id:?} is already terminated"
        );
        BlockCursor { builder: self, id }
    }

    fn alloc_pc(&mut self) -> Pc {
        let pc = self.base_pc.offset(self.next_pc);
        self.next_pc += 1;
        pc
    }

    /// Validates and finalizes the program with the given entry block.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError`] if a block lacks a terminator or the
    /// entry id is invalid.
    pub fn finish(self, entry: BlockId) -> Result<Program, ProgramError> {
        if entry.index() >= self.blocks.len() {
            return Err(ProgramError::BadEntry);
        }
        for (k, b) in self.blocks.iter().enumerate() {
            if !b.terminated {
                return Err(ProgramError::Unterminated(k as u32));
            }
        }
        Ok(Program {
            blocks: self.blocks,
            entry,
        })
    }
}

/// Appends instructions to one block.
#[derive(Debug)]
pub struct BlockCursor<'a> {
    builder: &'a mut ProgramBuilder,
    id: BlockId,
}

impl BlockCursor<'_> {
    fn push(&mut self, slot: Slot) -> &mut Self {
        self.builder.blocks[self.id.index()].slots.push(slot);
        self
    }

    /// Appends an operation of the given class with up to two sources.
    ///
    /// # Panics
    ///
    /// Panics if more than two sources are given, or for memory/control
    /// classes (use the dedicated methods).
    pub fn op(&mut self, op: OpClass, dst: ArchReg, srcs: &[ArchReg]) -> &mut Self {
        assert!(srcs.len() <= 2, "at most two source operands");
        assert!(
            !op.is_mem() && !op.is_control(),
            "use load/store/branch/jump for {op}"
        );
        let pc = self.builder.alloc_pc();
        let inst = StaticInst::new(pc, op)
            .with_srcs([srcs.first().copied(), srcs.get(1).copied()])
            .with_dst(dst);
        self.push(Slot::Simple(inst))
    }

    /// Appends a single-cycle integer ALU operation.
    pub fn alu(&mut self, dst: ArchReg, srcs: &[ArchReg]) -> &mut Self {
        self.op(OpClass::IntAlu, dst, srcs)
    }

    /// Appends a load of `dst` through address register `addr_src`, with
    /// addresses drawn from `stream`.
    pub fn load(&mut self, dst: ArchReg, addr_src: ArchReg, stream: AddrStream) -> &mut Self {
        let pc = self.builder.alloc_pc();
        let inst = StaticInst::new(pc, OpClass::Load)
            .with_src(addr_src)
            .with_dst(dst);
        self.push(Slot::Mem(inst, stream))
    }

    /// Appends a store of `value` through `addr_src`.
    pub fn store(&mut self, value: ArchReg, addr_src: ArchReg, stream: AddrStream) -> &mut Self {
        let pc = self.builder.alloc_pc();
        let inst =
            StaticInst::new(pc, OpClass::Store).with_srcs([Some(value), Some(addr_src)]);
        self.push(Slot::Mem(inst, stream))
    }

    /// Terminates the block with a conditional branch on `src`.
    ///
    /// # Panics
    ///
    /// Panics if the terminator is not [`Terminator::Conditional`].
    pub fn branch(&mut self, behavior: BranchBehavior, src: ArchReg, term: Terminator) {
        let Terminator::Conditional { taken, fallthrough } = term else {
            panic!("branch requires a conditional terminator");
        };
        let pc = self.builder.alloc_pc();
        let inst = StaticInst::new(pc, OpClass::Branch).with_src(src);
        self.push(Slot::Branch(inst, behavior, taken, fallthrough));
        self.builder.blocks[self.id.index()].terminated = true;
    }

    /// Terminates the block with an unconditional jump.
    pub fn jump(&mut self, target: BlockId) {
        let pc = self.builder.alloc_pc();
        let inst = StaticInst::new(pc, OpClass::Jump);
        self.push(Slot::Jump(inst, target));
        self.builder.blocks[self.id.index()].terminated = true;
    }
}

/// A finished program: a CFG of basic blocks ready to execute into
/// dynamic traces.
#[derive(Debug, Clone)]
pub struct Program {
    blocks: Vec<Block>,
    entry: BlockId,
}

impl Program {
    /// Number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total static instructions.
    pub fn static_len(&self) -> usize {
        self.blocks.iter().map(|b| b.slots.len()).sum()
    }

    /// Executes the program from its entry block until at least `min_len`
    /// dynamic instructions have been emitted (finishing the current
    /// block), deterministically for a given seed.
    pub fn execute(&self, seed: u64, min_len: usize) -> Trace {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut builder = TraceBuilder::new();
        // Stateful behaviour instances, parallel to the program structure.
        let mut branch_states: Vec<Vec<Option<BranchState>>> = self
            .blocks
            .iter()
            .map(|b| {
                b.slots
                    .iter()
                    .map(|s| match s {
                        Slot::Branch(_, behavior, _, _) => Some(behavior.into_state()),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        let mut addr_states: Vec<Vec<Option<AddrState>>> = self
            .blocks
            .iter()
            .map(|b| {
                b.slots
                    .iter()
                    .map(|s| match s {
                        Slot::Mem(_, stream) => Some(stream.clone().into_state()),
                        _ => None,
                    })
                    .collect()
            })
            .collect();

        let mut current = self.entry;
        while builder.len() < min_len {
            let bi = current.index();
            let mut next = current; // re-assigned by the terminator
            for (k, slot) in self.blocks[bi].slots.iter().enumerate() {
                match slot {
                    Slot::Simple(inst) => {
                        builder.push_simple(*inst);
                    }
                    Slot::Mem(inst, _) => {
                        // Invariant: the state vectors are built from the
                        // same slot list, with a generator at every Mem
                        // slot index.
                        let addr = addr_states[bi][k]
                            .as_mut()
                            .expect("address state present")
                            .next(&mut rng);
                        builder.push_mem(*inst, addr);
                    }
                    Slot::Branch(inst, _, taken_blk, fall_blk) => {
                        // Invariant: as for Mem — every Branch slot index
                        // carries an outcome generator.
                        let taken = branch_states[bi][k]
                            .as_mut()
                            .expect("branch state present")
                            .next(&mut rng);
                        builder.push_branch(*inst, BranchInfo::conditional(taken));
                        next = if taken { *taken_blk } else { *fall_blk };
                    }
                    Slot::Jump(inst, target) => {
                        builder.push_branch(*inst, BranchInfo::unconditional());
                        next = *target;
                    }
                }
            }
            current = next;
        }
        builder.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure12_program() -> Program {
        let mut p = ProgramBuilder::new(Pc::new(0x2000));
        let body = p.add_block();
        let exit = p.add_block();
        let idx = ArchReg::int(1);
        let ptr = ArchReg::int(2);
        let val = ArchReg::int(3);
        p.block(body)
            .alu(idx, &[idx])
            .load(val, ptr, AddrStream::stream(0x9000, 4, 1 << 12))
            .alu(ptr, &[ptr])
            .alu(val, &[val])
            .branch(
                BranchBehavior::Bernoulli(0.1),
                val,
                Terminator::conditional(exit, body),
            );
        p.block(exit).alu(idx, &[idx]).jump(body);
        p.finish(body).unwrap()
    }

    #[test]
    fn program_executes_to_a_valid_trace() {
        let p = figure12_program();
        assert_eq!(p.block_count(), 2);
        assert_eq!(p.static_len(), 7);
        let t = p.execute(3, 1_000);
        assert!(t.len() >= 1_000);
        t.validate().unwrap();
        // Static footprint matches the program.
        assert_eq!(t.stats().static_insts, 7);
    }

    #[test]
    fn loop_carried_dependences_resolve() {
        let p = figure12_program();
        let t = p.execute(1, 100);
        // Find two consecutive instances of the first alu (same PC) and
        // check the second depends on the first.
        let pc0 = Pc::new(0x2000);
        let instances: Vec<_> = t
            .iter()
            .filter(|(_, inst)| inst.pc() == pc0)
            .map(|(i, _)| i)
            .collect();
        assert!(instances.len() >= 2);
        assert_eq!(t[instances[1]].deps[0], Some(instances[0]));
    }

    #[test]
    fn execution_is_deterministic() {
        let p = figure12_program();
        let a = p.execute(9, 500);
        let b = p.execute(9, 500);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn branch_steers_control_flow() {
        // An always-taken branch visits the taken block only.
        let mut p = ProgramBuilder::new(Pc::new(0));
        let a = p.add_block();
        let b = p.add_block();
        let c = p.add_block();
        let r = ArchReg::int(1);
        p.block(a)
            .alu(r, &[])
            .branch(BranchBehavior::AlwaysTaken, r, Terminator::conditional(b, c));
        p.block(b).alu(r, &[r]).jump(a);
        p.block(c).alu(r, &[r]).alu(r, &[r]).jump(a);
        let prog = p.finish(a).unwrap();
        let t = prog.execute(1, 200);
        // Block c's instructions (PCs 4 and 5 in allocation order from
        // block c) never appear.
        let stats = t.stats();
        assert_eq!(stats.static_insts, 4, "only blocks a and b execute");
    }

    #[test]
    fn unterminated_block_is_rejected() {
        let mut p = ProgramBuilder::new(Pc::new(0));
        let a = p.add_block();
        let r = ArchReg::int(1);
        p.block(a).alu(r, &[]);
        assert_eq!(p.finish(a).unwrap_err(), ProgramError::Unterminated(0));
    }

    #[test]
    fn bad_entry_is_rejected() {
        let mut p = ProgramBuilder::new(Pc::new(0));
        let a = p.add_block();
        p.block(a).jump(a);
        let err = p.finish(BlockId(7)).unwrap_err();
        assert_eq!(err, ProgramError::BadEntry);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    #[should_panic]
    fn appending_to_terminated_block_panics() {
        let mut p = ProgramBuilder::new(Pc::new(0));
        let a = p.add_block();
        p.block(a).jump(a);
        p.block(a);
    }

    #[test]
    #[should_panic]
    fn op_rejects_memory_classes() {
        let mut p = ProgramBuilder::new(Pc::new(0));
        let a = p.add_block();
        p.block(a).op(OpClass::Load, ArchReg::int(1), &[]);
    }

    #[test]
    fn stores_and_fp_ops_build() {
        let mut p = ProgramBuilder::new(Pc::new(0x100));
        let a = p.add_block();
        let r = ArchReg::int(1);
        let f = ArchReg::fp(0);
        p.block(a)
            .op(OpClass::FpMul, f, &[f, f])
            .store(r, r, AddrStream::Fixed(0x5000))
            .jump(a);
        let prog = p.finish(a).unwrap();
        let t = prog.execute(1, 50);
        t.validate().unwrap();
        assert!(t.stats().op_fraction(OpClass::Store) > 0.2);
        assert!(t.stats().op_fraction(OpClass::FpMul) > 0.2);
    }
}
