//! CPI-stack report and reconciliation errors.

use std::fmt;

/// A cycles-per-instruction stack: labelled cycle categories that must sum
/// exactly to the measured cycle count.
///
/// The categories mirror the critical-path `Breakdown`; the bridge that
/// builds a stack from a `Breakdown` and reconciles the two lives in
/// `ccs-critpath` (this crate is a leaf and cannot depend on it).
#[derive(Debug, Clone, PartialEq)]
pub struct CpiStack {
    categories: Vec<(String, u64)>,
    /// Measured cycles the stack must account for.
    pub cycles: u64,
    /// Committed instruction count the per-instruction view divides by.
    pub instructions: u64,
}

impl CpiStack {
    /// Empty stack accounting for `cycles` over `instructions`.
    pub fn new(cycles: u64, instructions: u64) -> Self {
        CpiStack { categories: Vec::new(), cycles, instructions }
    }

    /// Append a category with its cycle charge.
    pub fn push(&mut self, label: &str, cycles: u64) {
        self.categories.push((label.to_string(), cycles));
    }

    /// Labelled categories in insertion order.
    pub fn categories(&self) -> &[(String, u64)] {
        &self.categories
    }

    /// Cycle charge for `label`, or `None` if absent.
    pub fn get(&self, label: &str) -> Option<u64> {
        self.categories
            .iter()
            .find(|(l, _)| l == label)
            .map(|&(_, c)| c)
    }

    /// Sum of all category charges.
    pub fn total(&self) -> u64 {
        self.categories.iter().map(|&(_, c)| c).sum()
    }

    /// Overall cycles per instruction (0.0 when no instructions committed —
    /// a degenerate stack must not produce NaN).
    pub fn cpi(&self) -> f64 {
        crate::counter_ratio(self.cycles, self.instructions)
    }

    /// Per-instruction contribution of `label`, 0.0 if absent or degenerate.
    pub fn component_cpi(&self, label: &str) -> f64 {
        crate::counter_ratio(self.get(label).unwrap_or(0), self.instructions)
    }

    /// Verify the accounting identity: categories sum exactly to the
    /// measured cycles.
    pub fn validate(&self) -> Result<(), ObsError> {
        let total = self.total();
        if total != self.cycles {
            return Err(ObsError::CycleMismatch { stack_total: total, measured: self.cycles });
        }
        Ok(())
    }
}

impl fmt::Display for CpiStack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "CPI stack: {} cycles / {} instructions = {:.4} CPI",
            self.cycles,
            self.instructions,
            self.cpi()
        )?;
        let width = self
            .categories
            .iter()
            .map(|(l, _)| l.len())
            .max()
            .unwrap_or(0);
        for (label, cycles) in &self.categories {
            let share = 100.0 * crate::counter_ratio(*cycles, self.cycles);
            writeln!(
                f,
                "  {label:<width$}  {cycles:>12}  {:>8.4}  {share:>5.1}%",
                self.component_cpi(label),
            )?;
        }
        write!(f, "  {:-<width$}  {:>12}", "", self.total())
    }
}

/// Errors from observability cross-checks.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsError {
    /// The stack's category total does not equal the measured cycles.
    CycleMismatch {
        /// Sum of the stack's categories.
        stack_total: u64,
        /// Cycles the run actually took.
        measured: u64,
    },
    /// A category disagrees with the reference breakdown.
    CategoryMismatch {
        /// Category label that failed to reconcile.
        category: String,
        /// Charge in the CPI stack.
        stack: u64,
        /// Charge in the reference breakdown.
        reference: u64,
    },
    /// An observed counter disagrees with its recount from the schedule.
    CounterMismatch {
        /// Which counter failed.
        what: &'static str,
        /// Value the metrics sink observed.
        observed: u64,
        /// Value recomputed from the simulation result.
        expected: u64,
    },
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::CycleMismatch { stack_total, measured } => write!(
                f,
                "CPI stack does not reconcile: categories sum to {stack_total} but the run took {measured} cycles"
            ),
            ObsError::CategoryMismatch { category, stack, reference } => write!(
                f,
                "CPI stack category '{category}' does not reconcile: stack charges {stack}, breakdown charges {reference}"
            ),
            ObsError::CounterMismatch { what, observed, expected } => write!(
                f,
                "metrics counter '{what}' does not reconcile: observed {observed}, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for ObsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_validates_exact_total() {
        let mut s = CpiStack::new(10, 5);
        s.push("execute", 6);
        s.push("window", 4);
        assert_eq!(s.total(), 10);
        assert!(s.validate().is_ok());
        assert!((s.cpi() - 2.0).abs() < 1e-12);
        assert!((s.component_cpi("execute") - 1.2).abs() < 1e-12);
    }

    #[test]
    fn stack_detects_missing_cycles() {
        let mut s = CpiStack::new(10, 5);
        s.push("execute", 6);
        let err = s.validate().unwrap_err();
        assert_eq!(err, ObsError::CycleMismatch { stack_total: 6, measured: 10 });
        assert!(err.to_string().contains("does not reconcile"));
    }

    #[test]
    fn degenerate_stack_has_no_nan() {
        let s = CpiStack::new(0, 0);
        assert_eq!(s.cpi(), 0.0);
        assert_eq!(s.component_cpi("anything"), 0.0);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn display_renders_every_category() {
        let mut s = CpiStack::new(10, 5);
        s.push("execute", 6);
        s.push("window", 4);
        let text = s.to_string();
        assert!(text.contains("execute"));
        assert!(text.contains("window"));
        assert!(text.contains("2.0000 CPI"));
    }
}
