//! The `MetricsSink` trait the simulation engine reports through.

use crate::metrics::SimMetrics;
use crate::ring::CycleTraceRing;

/// Cause attributed to a dispatch-stage stall cycle.
///
/// At most one cause is recorded per cycle: the reason the dispatch loop
/// stopped advancing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchStall {
    /// The fetch queue was empty (front-end starvation).
    FetchEmpty = 0,
    /// The head instruction was still in the front-end pipe.
    FrontEndPipe = 1,
    /// The reorder buffer was full.
    RobFull = 2,
    /// The steering policy stalled the head instruction.
    Steer = 3,
}

/// Receiver for engine observability events.
///
/// Every hook has an empty default body and every call site in the engine is
/// guarded by `if S::ENABLED { .. }`, so a sink with `ENABLED = false`
/// ([`NullSink`]) monomorphizes to literally zero work in the hot loop —
/// metrics-off runs are bit-identical to and as fast as the unobserved
/// engine.
///
/// Hooks must never influence simulation: they receive read-only facts and
/// the engine ignores any state they keep.
pub trait MetricsSink {
    /// Whether this sink wants events at all. Call sites compile away when
    /// this is `false`.
    const ENABLED: bool = true;

    /// Start of a simulated cycle; `occupancy[c]` is the instruction count
    /// resident in cluster `c`'s window.
    fn on_cycle(&mut self, _occupancy: &[u32]) {}

    /// `committed` instructions retired this cycle (may be 0).
    fn on_commit(&mut self, _committed: usize) {}

    /// An instruction issued on `cluster` using port kind `port`
    /// (0 = int, 1 = fp, 2 = mem).
    fn on_issue(&mut self, _cluster: usize, _port: usize) {}

    /// A result on `cluster` waited `wait` extra cycles for a broadcast slot
    /// under limited forward bandwidth.
    fn on_broadcast_wait(&mut self, _cluster: usize, _wait: u64) {}

    /// An operand value crossed from `from_cluster` to `to_cluster` for the
    /// first time (one event per distinct value/consumer-cluster pair,
    /// matching `SimResult::global_values`).
    fn on_bypass(&mut self, _from_cluster: usize, _to_cluster: usize) {}

    /// A steering decision placed an instruction on `cluster`; `cause` is
    /// the `SteerCause` index in `SimResult::steer_cause_counts` order.
    fn on_steer(&mut self, _cluster: usize, _cause: usize) {}

    /// The steering policy stalled dispatch for this cycle.
    fn on_steer_stall(&mut self) {}

    /// Dispatch stopped advancing this cycle for `cause`.
    fn on_dispatch_stall(&mut self, _cause: DispatchStall) {}

    /// The run finished after `cycles` cycles over `instructions`
    /// instructions.
    fn on_run_end(&mut self, _cycles: u64, _instructions: u64) {}
}

/// The metrics-off sink: `ENABLED = false`, so every engine hook guarded by
/// `if S::ENABLED` compiles to nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl MetricsSink for NullSink {
    const ENABLED: bool = false;
}

impl MetricsSink for SimMetrics {
    #[inline]
    fn on_cycle(&mut self, occupancy: &[u32]) {
        self.record_cycle(occupancy);
    }

    #[inline]
    fn on_commit(&mut self, committed: usize) {
        self.record_commit(committed);
    }

    #[inline]
    fn on_issue(&mut self, cluster: usize, port: usize) {
        self.record_issue(cluster, port);
    }

    #[inline]
    fn on_broadcast_wait(&mut self, cluster: usize, wait: u64) {
        self.record_broadcast_wait(cluster, wait);
    }

    #[inline]
    fn on_bypass(&mut self, from_cluster: usize, to_cluster: usize) {
        self.record_bypass(from_cluster, to_cluster);
    }

    #[inline]
    fn on_steer(&mut self, cluster: usize, cause: usize) {
        self.record_steer(cluster, cause);
    }

    #[inline]
    fn on_steer_stall(&mut self) {
        self.steer_stall_cycles += 1;
    }

    #[inline]
    fn on_dispatch_stall(&mut self, cause: DispatchStall) {
        self.dispatch_stalls[cause as usize] += 1;
    }

    #[inline]
    fn on_run_end(&mut self, cycles: u64, instructions: u64) {
        debug_assert_eq!(self.cycles, cycles, "on_cycle count drifted from engine cycles");
        self.instructions = instructions;
    }
}

/// A full-run observer: a [`SimMetrics`] registry plus an optional sampled
/// [`CycleTraceRing`].
#[derive(Debug, Clone)]
pub struct RunObserver {
    /// Accumulated counters for the run.
    pub metrics: SimMetrics,
    /// Optional sampled cycle trace (bounded memory).
    pub ring: Option<CycleTraceRing>,
}

impl RunObserver {
    /// Observer for a machine with `clusters` clusters, with no cycle-trace
    /// sampling.
    pub fn for_machine(clusters: usize) -> Self {
        RunObserver { metrics: SimMetrics::for_machine(clusters), ring: None }
    }

    /// Attach a sampled cycle-trace ring buffer.
    pub fn with_ring(mut self, ring: CycleTraceRing) -> Self {
        self.ring = Some(ring);
        self
    }

    /// Consume the observer, yielding the accumulated metrics.
    pub fn into_metrics(self) -> SimMetrics {
        self.metrics
    }
}

impl MetricsSink for RunObserver {
    #[inline]
    fn on_cycle(&mut self, occupancy: &[u32]) {
        // `cycles` counts this sample after record_cycle, so the sampled
        // cycle index is cycles - 1.
        self.metrics.record_cycle(occupancy);
        if let Some(ring) = &mut self.ring {
            ring.observe_cycle(self.metrics.cycles - 1, occupancy);
        }
    }

    #[inline]
    fn on_commit(&mut self, committed: usize) {
        self.metrics.record_commit(committed);
    }

    #[inline]
    fn on_issue(&mut self, cluster: usize, port: usize) {
        self.metrics.record_issue(cluster, port);
    }

    #[inline]
    fn on_broadcast_wait(&mut self, cluster: usize, wait: u64) {
        self.metrics.record_broadcast_wait(cluster, wait);
    }

    #[inline]
    fn on_bypass(&mut self, from_cluster: usize, to_cluster: usize) {
        self.metrics.record_bypass(from_cluster, to_cluster);
    }

    #[inline]
    fn on_steer(&mut self, cluster: usize, cause: usize) {
        self.metrics.record_steer(cluster, cause);
    }

    #[inline]
    fn on_steer_stall(&mut self) {
        self.metrics.steer_stall_cycles += 1;
    }

    #[inline]
    fn on_dispatch_stall(&mut self, cause: DispatchStall) {
        self.metrics.dispatch_stalls[cause as usize] += 1;
    }

    #[inline]
    fn on_run_end(&mut self, cycles: u64, instructions: u64) {
        self.metrics.on_run_end(cycles, instructions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        const { assert!(!NullSink::ENABLED) };
        const { assert!(<SimMetrics as MetricsSink>::ENABLED) };
        const { assert!(RunObserver::ENABLED) };
    }

    #[test]
    fn sim_metrics_sink_routes_events() {
        let mut m = SimMetrics::for_machine(2);
        m.on_cycle(&[4, 0]);
        m.on_commit(3);
        m.on_issue(1, 2);
        m.on_bypass(0, 1);
        m.on_steer(1, 0);
        m.on_steer_stall();
        m.on_dispatch_stall(DispatchStall::RobFull);
        m.on_run_end(1, 10);
        assert_eq!(m.cycles, 1);
        assert_eq!(m.committed, 3);
        assert_eq!(m.issued_on_cluster(1), 1);
        assert_eq!(m.bypass_total(), 1);
        assert_eq!(m.steer_placements[1], 1);
        assert_eq!(m.steer_stall_cycles, 1);
        assert_eq!(m.dispatch_stalls[DispatchStall::RobFull as usize], 1);
        assert_eq!(m.instructions, 10);
    }
}
