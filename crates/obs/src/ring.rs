//! Sampled cycle-trace ring buffer.

/// One sampled cycle: the cycle index and per-cluster window occupancy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleSample {
    /// Simulated cycle the sample was taken at.
    pub cycle: u64,
    /// Window occupancy per cluster at the start of that cycle.
    pub occupancy: Vec<u32>,
}

/// A bounded ring buffer of sampled per-cycle snapshots.
///
/// Sampling is seeded and deterministic: a xorshift64* stream picks the gap
/// to the next sampled cycle (uniform in `1..=2*mean_interval - 1`, so the
/// mean gap is `mean_interval`). When the buffer is full the oldest sample
/// is evicted, so memory stays bounded by `capacity` regardless of run
/// length, and the buffer ends holding the most recent samples.
#[derive(Debug, Clone)]
pub struct CycleTraceRing {
    capacity: usize,
    mean_interval: u64,
    rng: u64,
    next_sample: u64,
    samples: std::collections::VecDeque<CycleSample>,
    evicted: u64,
}

impl CycleTraceRing {
    /// Ring holding at most `capacity` samples, sampling on average every
    /// `mean_interval` cycles, deterministically from `seed`.
    pub fn new(capacity: usize, mean_interval: u64, seed: u64) -> Self {
        let mut ring = CycleTraceRing {
            capacity: capacity.max(1),
            mean_interval: mean_interval.max(1),
            // xorshift64* cannot hold state 0; fold the seed away from it.
            rng: seed ^ 0x9e37_79b9_7f4a_7c15,
            next_sample: 0,
            samples: std::collections::VecDeque::new(),
            evicted: 0,
        };
        if ring.rng == 0 {
            ring.rng = 0x9e37_79b9_7f4a_7c15;
        }
        ring.next_sample = ring.gap();
        ring
    }

    fn next_rng(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Deterministic gap to the next sampled cycle: uniform in
    /// `1..=2*mean_interval - 1`.
    fn gap(&mut self) -> u64 {
        let span = 2 * self.mean_interval - 1;
        1 + self.next_rng() % span
    }

    /// Offer a cycle to the sampler. Cheap when the cycle is not sampled:
    /// one compare.
    pub fn observe_cycle(&mut self, cycle: u64, occupancy: &[u32]) {
        if cycle < self.next_sample {
            return;
        }
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
            self.evicted += 1;
        }
        self.samples.push_back(CycleSample { cycle, occupancy: occupancy.to_vec() });
        let gap = self.gap();
        self.next_sample = cycle + gap;
    }

    /// Samples currently held, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &CycleSample> {
        self.samples.iter()
    }

    /// Number of samples currently held (at most `capacity`).
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no cycles have been sampled yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of samples evicted to keep memory bounded.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Export held samples as JSON Lines, one object per sampled cycle:
    /// `{"cycle":123,"occupancy":[4,0,2,1]}`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&format!("{{\"cycle\":{}", s.cycle));
            out.push_str(",\"occupancy\":[");
            for (i, occ) in s.occupancy.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&occ.to_string());
            }
            out.push_str("]}\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(ring: &mut CycleTraceRing, cycles: u64) {
        for t in 0..cycles {
            ring.observe_cycle(t, &[(t % 7) as u32, (t % 3) as u32]);
        }
    }

    #[test]
    fn ring_is_bounded_and_keeps_latest() {
        let mut ring = CycleTraceRing::new(8, 10, 42);
        drive(&mut ring, 10_000);
        assert_eq!(ring.len(), 8);
        assert!(ring.evicted() > 0);
        let cycles: Vec<u64> = ring.samples().map(|s| s.cycle).collect();
        // Strictly increasing and all near the end of the run.
        assert!(cycles.windows(2).all(|w| w[0] < w[1]));
        assert!(cycles[0] > 5_000);
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let mut a = CycleTraceRing::new(16, 25, 7);
        let mut b = CycleTraceRing::new(16, 25, 7);
        drive(&mut a, 4_000);
        drive(&mut b, 4_000);
        assert_eq!(a.to_jsonl(), b.to_jsonl());

        let mut c = CycleTraceRing::new(16, 25, 8);
        drive(&mut c, 4_000);
        assert_ne!(a.to_jsonl(), c.to_jsonl());
    }

    #[test]
    fn jsonl_lines_are_well_formed() {
        let mut ring = CycleTraceRing::new(4, 5, 1);
        drive(&mut ring, 200);
        let text = ring.to_jsonl();
        assert_eq!(text.lines().count(), ring.len());
        for line in text.lines() {
            assert!(line.starts_with("{\"cycle\":"));
            assert!(line.ends_with("]}"));
            assert!(line.contains("\"occupancy\":["));
        }
    }

    #[test]
    fn zero_seed_still_samples() {
        let mut ring = CycleTraceRing::new(4, 5, 0);
        drive(&mut ring, 1_000);
        assert!(!ring.is_empty());
    }
}
