//! Server-side counters for the simulation-as-a-service daemon.
//!
//! Unlike [`SimMetrics`](crate::SimMetrics), which one engine thread
//! fills through `&mut` hooks, these counters are shared by every
//! connection handler and worker thread of a live daemon, so they are
//! lock-free atomics (plus one mutex-guarded latency [`Histogram`] per
//! frame kind — latency is recorded once per request, far off any hot
//! path). The daemon snapshots them for `Status`/`Metrics` replies and
//! the load generator derives its report from the same snapshot, so
//! there is exactly one source of truth for queue depth, admission
//! rejects, cache hits, and per-frame latency.

use crate::metrics::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// The request-frame kinds a serve daemon distinguishes, in wire order.
pub const SERVE_FRAME_KINDS: [&str; 6] = [
    "submit_cell",
    "submit_grid",
    "status",
    "metrics",
    "drain",
    "cache_lookup",
];

/// Saturating bound (in milliseconds) of the per-frame latency
/// histograms: latencies at or above 1 s land in the final bucket.
pub const SERVE_LATENCY_BOUND_MS: usize = 1_000;

/// Shared counters of a running serve daemon.
///
/// All methods take `&self`; the struct is meant to live in an `Arc`
/// shared by the acceptor, every connection handler, and every worker.
#[derive(Debug)]
pub struct ServeMetrics {
    /// Request frames successfully decoded, by kind.
    frames: [AtomicU64; SERVE_FRAME_KINDS.len()],
    /// Frames rejected at the protocol layer (bad magic, oversized
    /// length prefix, malformed JSON, unknown type, version mismatch).
    protocol_errors: AtomicU64,
    /// Submissions rejected with a typed busy reply (backpressure).
    admission_rejects: AtomicU64,
    /// Submissions rejected because the daemon was draining.
    drain_rejects: AtomicU64,
    /// Cells admitted into the work queue.
    cells_admitted: AtomicU64,
    /// Cells evaluated by the worker pool (cache misses that ran).
    cells_evaluated: AtomicU64,
    /// Cells answered straight from the result cache.
    cache_hits: AtomicU64,
    /// Cells that missed the result cache.
    cache_misses: AtomicU64,
    /// Approximate (analytic-envelope) answers served without
    /// simulating.
    approx_answered: AtomicU64,
    /// Local cache misses answered by a peer shard's cache.
    peer_hits: AtomicU64,
    /// Peer lookups that found nothing (or no peer was reachable).
    peer_misses: AtomicU64,
    /// Cache entries rebuilt from the journal at startup.
    recovered: AtomicU64,
    /// Current work-queue depth (gauge, maintained by the admission and
    /// worker paths).
    queue_depth: AtomicU64,
    /// High-water mark of the queue depth.
    queue_depth_peak: AtomicU64,
    /// Wall-clock latency from frame decode to final reply, in
    /// milliseconds, one histogram per frame kind.
    latency_ms: [Mutex<Histogram>; SERVE_FRAME_KINDS.len()],
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        ServeMetrics {
            frames: std::array::from_fn(|_| AtomicU64::new(0)),
            protocol_errors: AtomicU64::new(0),
            admission_rejects: AtomicU64::new(0),
            drain_rejects: AtomicU64::new(0),
            cells_admitted: AtomicU64::new(0),
            cells_evaluated: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            approx_answered: AtomicU64::new(0),
            peer_hits: AtomicU64::new(0),
            peer_misses: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            queue_depth_peak: AtomicU64::new(0),
            latency_ms: std::array::from_fn(|_| {
                Mutex::new(Histogram::new(SERVE_LATENCY_BOUND_MS))
            }),
        }
    }

    /// Records a successfully decoded request frame of `kind` (an index
    /// into [`SERVE_FRAME_KINDS`]; out-of-range indices are ignored).
    pub fn record_frame(&self, kind: usize) {
        if let Some(c) = self.frames.get(kind) {
            c.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records the end-to-end latency of a `kind` frame in milliseconds.
    pub fn record_latency_ms(&self, kind: usize, ms: u64) {
        if let Some(h) = self.latency_ms.get(kind) {
            h.lock()
                .unwrap_or_else(PoisonError::into_inner)
                .record(ms as usize);
        }
    }

    /// Records a protocol-layer reject.
    pub fn record_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a backpressure (busy) reject.
    pub fn record_admission_reject(&self) {
        self.admission_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a submission refused because the daemon is draining.
    pub fn record_drain_reject(&self) {
        self.drain_rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `cells` admitted into the work queue and updates the
    /// depth gauge (and its peak).
    pub fn record_admitted(&self, cells: u64) {
        self.cells_admitted.fetch_add(cells, Ordering::Relaxed);
        let depth = self.queue_depth.fetch_add(cells, Ordering::Relaxed) + cells;
        self.queue_depth_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records one cell leaving the queue after evaluation.
    pub fn record_evaluated(&self) {
        self.cells_evaluated.fetch_add(1, Ordering::Relaxed);
        // The gauge saturates at zero rather than wrapping if an
        // accounting bug ever double-counts a departure.
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(1))
            });
    }

    /// Records a result-cache hit.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a result-cache miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records an approximate (envelope-only) answer served without
    /// simulating.
    pub fn record_approx(&self) {
        self.approx_answered.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a local miss answered from a peer shard's cache: the
    /// cell leaves the queue (depth gauge decrements) without counting
    /// as locally evaluated.
    pub fn record_peer_hit(&self) {
        self.peer_hits.fetch_add(1, Ordering::Relaxed);
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(1))
            });
    }

    /// Records a peer lookup that came back empty or unreachable.
    pub fn record_peer_miss(&self) {
        self.peer_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `cells` cache entries rebuilt from the journal during
    /// startup recovery.
    pub fn record_recovered(&self, cells: u64) {
        self.recovered.fetch_add(cells, Ordering::Relaxed);
    }

    /// A consistent-enough copy of every counter for a status or
    /// metrics reply. (Counters are read individually; the snapshot is
    /// not atomic across fields, which status reporting does not need.)
    pub fn snapshot(&self) -> ServeSnapshot {
        ServeSnapshot {
            frames: std::array::from_fn(|i| self.frames[i].load(Ordering::Relaxed)),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            admission_rejects: self.admission_rejects.load(Ordering::Relaxed),
            drain_rejects: self.drain_rejects.load(Ordering::Relaxed),
            cells_admitted: self.cells_admitted.load(Ordering::Relaxed),
            cells_evaluated: self.cells_evaluated.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            approx_answered: self.approx_answered.load(Ordering::Relaxed),
            peer_hits: self.peer_hits.load(Ordering::Relaxed),
            peer_misses: self.peer_misses.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_depth_peak: self.queue_depth_peak.load(Ordering::Relaxed),
            latency_ms: std::array::from_fn(|i| {
                self.latency_ms[i]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone()
            }),
        }
    }
}

/// A point-in-time copy of a daemon's [`ServeMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSnapshot {
    /// Decoded request frames by kind ([`SERVE_FRAME_KINDS`] order).
    pub frames: [u64; SERVE_FRAME_KINDS.len()],
    /// Protocol-layer rejects.
    pub protocol_errors: u64,
    /// Backpressure (busy) rejects.
    pub admission_rejects: u64,
    /// Draining rejects.
    pub drain_rejects: u64,
    /// Cells admitted into the work queue.
    pub cells_admitted: u64,
    /// Cells evaluated by the worker pool.
    pub cells_evaluated: u64,
    /// Cells answered from the result cache.
    pub cache_hits: u64,
    /// Cells that missed the result cache.
    pub cache_misses: u64,
    /// Approximate (envelope-only) answers served without simulating.
    pub approx_answered: u64,
    /// Local cache misses answered by a peer shard's cache.
    pub peer_hits: u64,
    /// Peer lookups that found nothing (or no peer was reachable).
    pub peer_misses: u64,
    /// Cache entries rebuilt from the journal at startup.
    pub recovered: u64,
    /// Work-queue depth at snapshot time.
    pub queue_depth: u64,
    /// High-water mark of the queue depth.
    pub queue_depth_peak: u64,
    /// Per-frame-kind latency histograms (milliseconds, saturating at
    /// [`SERVE_LATENCY_BOUND_MS`]).
    pub latency_ms: [Histogram; SERVE_FRAME_KINDS.len()],
}

impl ServeSnapshot {
    /// Cache hit rate in `[0, 1]`, or 0.0 before any lookup.
    pub fn cache_hit_rate(&self) -> f64 {
        crate::counter_ratio(self.cache_hits, self.cache_hits + self.cache_misses)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the latency histogram for
    /// frame `kind`, in milliseconds; `None` with no samples or an
    /// out-of-range kind.
    pub fn latency_quantile_ms(&self, kind: usize, q: f64) -> Option<u64> {
        let hist = self.latency_ms.get(kind)?;
        let samples = hist.samples();
        if samples == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based; ceil(q * n) like common
        // nearest-rank definitions, clamped into [1, n]. The epsilon
        // guards exact-product ranks against f64 representation error:
        // 0.99 * 100.0 is 99.000000000000014, whose bare ceil (100)
        // would misrank p99 of 100 samples; and at q = 1.0 the
        // unclamped rank could exceed n outright, falling off the end
        // of the histogram and returning None despite having samples.
        let rank = ((q * samples as f64 - 1e-9).ceil() as u64).clamp(1, samples);
        let mut seen = 0u64;
        for (value, count) in hist.iter() {
            seen += count;
            if seen >= rank {
                return Some(value as u64);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = ServeMetrics::new();
        m.record_frame(1);
        m.record_frame(1);
        m.record_frame(4);
        m.record_admitted(3);
        m.record_cache_miss();
        m.record_cache_miss();
        m.record_cache_miss();
        m.record_evaluated();
        m.record_cache_hit();
        m.record_admission_reject();
        m.record_protocol_error();
        m.record_approx();
        m.record_peer_hit();
        m.record_peer_miss();
        m.record_recovered(7);
        let s = m.snapshot();
        assert_eq!(s.frames[1], 2);
        assert_eq!(s.frames[4], 1);
        assert_eq!(s.peer_hits, 1);
        assert_eq!(s.peer_misses, 1);
        assert_eq!(s.recovered, 7);
        assert_eq!(s.cells_admitted, 3);
        assert_eq!(s.cells_evaluated, 1);
        assert_eq!(s.queue_depth, 1, "one evaluated + one peer-answered left the queue");
        assert_eq!(s.queue_depth_peak, 3);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 3);
        assert_eq!(s.admission_rejects, 1);
        assert_eq!(s.protocol_errors, 1);
        assert_eq!(s.approx_answered, 1);
        assert!((s.cache_hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn queue_gauge_saturates_at_zero() {
        let m = ServeMetrics::new();
        m.record_evaluated();
        assert_eq!(m.snapshot().queue_depth, 0);
    }

    #[test]
    fn latency_quantiles_use_nearest_rank() {
        let m = ServeMetrics::new();
        for ms in [1u64, 2, 3, 4, 100] {
            m.record_latency_ms(1, ms);
        }
        let s = m.snapshot();
        assert_eq!(s.latency_quantile_ms(1, 0.5), Some(3));
        assert_eq!(s.latency_quantile_ms(1, 0.99), Some(100));
        assert_eq!(s.latency_quantile_ms(1, 0.0), Some(1));
        assert_eq!(s.latency_quantile_ms(0, 0.5), None, "no samples");
        assert_eq!(s.latency_quantile_ms(99, 0.5), None, "bad kind");
    }

    #[test]
    fn quantile_ranks_match_a_hand_computed_histogram() {
        // One sample at each of 1..=100 ms: the q-quantile under
        // nearest-rank is exactly ceil(q * 100), so every expectation
        // below is computable by hand. The naive rank formula fails
        // two of these: 0.99 * 100.0 rounds up to 99.000000000000014
        // in f64, whose ceil (100) misreports p99 as 100; 0.7 * 100.0
        // similarly lands on 70.000000000000014 and misreports p70.
        let m = ServeMetrics::new();
        for ms in 1u64..=100 {
            m.record_latency_ms(3, ms);
        }
        let s = m.snapshot();
        assert_eq!(s.latency_quantile_ms(3, 0.0), Some(1));
        assert_eq!(s.latency_quantile_ms(3, 0.01), Some(1));
        assert_eq!(s.latency_quantile_ms(3, 0.5), Some(50));
        assert_eq!(s.latency_quantile_ms(3, 0.7), Some(70));
        assert_eq!(s.latency_quantile_ms(3, 0.90), Some(90));
        assert_eq!(s.latency_quantile_ms(3, 0.99), Some(99));
        assert_eq!(s.latency_quantile_ms(3, 1.0), Some(100));
        // Between-rank quantiles round up to the next sample.
        assert_eq!(s.latency_quantile_ms(3, 0.505), Some(51));
        // Small sample counts hit the same representation hazard:
        // 0.7 * 10 is 7.000000000000001, which must rank 7, not 8.
        let m = ServeMetrics::new();
        for ms in 1u64..=10 {
            m.record_latency_ms(4, ms);
        }
        let s = m.snapshot();
        assert_eq!(s.latency_quantile_ms(4, 0.7), Some(7));
        assert_eq!(s.latency_quantile_ms(4, 1.0), Some(10));
    }

    #[test]
    fn oversized_latencies_saturate_into_the_bound_bucket() {
        let m = ServeMetrics::new();
        m.record_latency_ms(2, 10_000_000);
        let s = m.snapshot();
        assert_eq!(
            s.latency_quantile_ms(2, 1.0),
            Some(SERVE_LATENCY_BOUND_MS as u64)
        );
    }
}
