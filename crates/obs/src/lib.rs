//! Cycle-accounting observability for the clustercrit workspace.
//!
//! This crate is a *leaf*: it depends on nothing else in the workspace so
//! that every layer (sim engine, grid executor, harness binaries) can share
//! one vocabulary of counters without dependency cycles.
//!
//! The pieces:
//!
//! - [`MetricsSink`] — the trait the simulation engine reports through. Its
//!   associated `ENABLED` const lets the no-op [`NullSink`] compile to zero
//!   work: every hook in the engine hot loop is guarded by
//!   `if S::ENABLED { .. }`, which monomorphizes away entirely.
//! - [`SimMetrics`] — the typed registry of counters and bounded
//!   [`Histogram`]s a metrics-on run accumulates: per-cluster occupancy,
//!   issue-port utilization, steering-decision reasons, cross-cluster
//!   bypass/broadcast traffic, and dispatch stall-cause attribution.
//! - [`CycleTraceRing`] — a bounded, seeded-sampling ring buffer of per-cycle
//!   occupancy snapshots, exportable as JSONL for pipeline visualization.
//! - [`CpiStack`] — a cycles-per-instruction breakdown report that must
//!   reconcile exactly, category by category, with the critical-path
//!   `Breakdown` (the bridge lives in `ccs-critpath` to keep this crate a
//!   leaf).
//! - [`StageTimers`] — named wall-clock accumulators for harness stages
//!   (trace-gen vs simulate vs analysis).
//! - [`ServeMetrics`] — shared atomic counters for the `ccs-serve`
//!   daemon: queue depth, admission rejects, cache hits, and per-frame
//!   latency histograms, snapshotted for status/metrics replies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cpistack;
mod metrics;
mod ratio;
mod ring;
mod servemetrics;
mod sink;
mod timer;

pub use cpistack::{CpiStack, ObsError};
pub use metrics::{Histogram, SimMetrics, DISPATCH_STALL_KINDS, PORT_KINDS, STEER_CAUSE_KINDS};
pub use ratio::counter_ratio;
pub use ring::{CycleSample, CycleTraceRing};
pub use servemetrics::{ServeMetrics, ServeSnapshot, SERVE_FRAME_KINDS, SERVE_LATENCY_BOUND_MS};
pub use sink::{DispatchStall, MetricsSink, NullSink, RunObserver};
pub use timer::StageTimers;
