//! Typed metrics registry: plain structs, no global state.

/// Number of distinct issue-port kinds (int / fp / mem).
pub const PORT_KINDS: usize = 3;

/// Number of distinct steering causes, in the same order as
/// `SimResult::steer_cause_counts`: Only, Dependence, LoadBalance, NoDeps,
/// Proactive.
pub const STEER_CAUSE_KINDS: usize = 5;

/// Number of distinct dispatch stall causes (see `DispatchStall`).
pub const DISPATCH_STALL_KINDS: usize = 4;

/// A bounded histogram over small non-negative integer values.
///
/// Values at or above the bound saturate into the final bucket, so memory is
/// bounded regardless of input. Buckets are allocated lazily up to the bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bound: usize,
    buckets: Vec<u64>,
}

impl Histogram {
    /// New histogram with buckets for `0..=bound`; larger values saturate
    /// into the `bound` bucket.
    ///
    /// Buckets are allocated eagerly so [`Histogram::record`] is a single
    /// saturating index on the hot path, never a resize.
    pub fn new(bound: usize) -> Self {
        Histogram { bound, buckets: vec![0; bound + 1] }
    }

    /// Saturating bound of this histogram.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Record one observation of `value`.
    #[inline]
    pub fn record(&mut self, value: usize) {
        // `new` sizes buckets to `bound + 1`, so the saturated index is
        // always in range.
        self.buckets[value.min(self.bound)] += 1;
    }

    /// Count recorded in bucket `value` (saturated values land in the last
    /// bucket).
    pub fn count(&self, value: usize) -> u64 {
        let idx = value.min(self.bound);
        self.buckets.get(idx).copied().unwrap_or(0)
    }

    /// Total number of observations.
    pub fn samples(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of all observed values, weighting each bucket by its index.
    /// Saturated observations contribute the bound, not their true value.
    pub fn weighted_sum(&self) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .map(|(v, &n)| (v as u64) * n)
            .sum()
    }

    /// Mean observed value, or 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        crate::counter_ratio(self.weighted_sum(), self.samples())
    }

    /// Iterate `(value, count)` over non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(v, &n)| (v, n))
    }

    /// Elementwise merge of another histogram into this one. The bound
    /// widens to the larger of the two so no counts are lost.
    pub fn merge(&mut self, other: &Histogram) {
        self.bound = self.bound.max(other.bound);
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, &src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
    }
}

/// The full set of counters a metrics-on simulation run accumulates.
///
/// Plain data: construct with [`SimMetrics::for_machine`], fold across runs
/// with [`SimMetrics::merge`], and fingerprint with [`SimMetrics::digest`].
/// All per-cluster vectors are indexed by cluster id; the bypass matrix is
/// row-major `from_cluster * clusters + to_cluster`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimMetrics {
    /// Number of clusters the per-cluster vectors are sized for.
    pub clusters: usize,
    /// Simulated cycles observed (one `on_cycle` call each).
    pub cycles: u64,
    /// Instructions committed (sum of per-cycle commit counts).
    pub committed: u64,
    /// Instruction count reported by the engine at end of run.
    pub instructions: u64,
    /// Per-cluster window-occupancy histogram, sampled every cycle.
    pub occupancy: Vec<Histogram>,
    /// Per-cluster issue counts by port kind `[int, fp, mem]`.
    pub issued_ports: Vec<[u64; PORT_KINDS]>,
    /// Steering decisions by cause, ordered as
    /// `SimResult::steer_cause_counts`.
    pub steer_causes: [u64; STEER_CAUSE_KINDS],
    /// Steering decisions by destination cluster.
    pub steer_placements: Vec<u64>,
    /// Cycles in which dispatch stalled waiting on a steering decision.
    pub steer_stall_cycles: u64,
    /// Dispatch-stage stall cycles attributed by cause, indexed by
    /// `DispatchStall as usize`.
    pub dispatch_stalls: [u64; DISPATCH_STALL_KINDS],
    /// Cross-cluster operand deliveries, row-major `from * clusters + to`.
    pub bypass: Vec<u64>,
    /// Histogram of extra cycles results waited for a broadcast slot under
    /// limited forward bandwidth.
    pub broadcast_waits: Histogram,
    /// Histogram of instructions committed per cycle.
    pub commit_per_cycle: Histogram,
}

/// Saturating bound for the occupancy histograms: window partitions in this
/// workspace are far below this, and the bound keeps memory fixed even for
/// pathological configs.
const OCCUPANCY_BOUND: usize = 512;

/// Saturating bound for the broadcast-wait histogram.
const BROADCAST_WAIT_BOUND: usize = 64;

/// Saturating bound for the commit-width histogram.
const COMMIT_BOUND: usize = 64;

impl SimMetrics {
    /// Metrics registry sized for a machine with `clusters` clusters.
    pub fn for_machine(clusters: usize) -> Self {
        SimMetrics {
            clusters,
            cycles: 0,
            committed: 0,
            instructions: 0,
            occupancy: vec![Histogram::new(OCCUPANCY_BOUND); clusters],
            issued_ports: vec![[0; PORT_KINDS]; clusters],
            steer_causes: [0; STEER_CAUSE_KINDS],
            steer_placements: vec![0; clusters],
            steer_stall_cycles: 0,
            dispatch_stalls: [0; DISPATCH_STALL_KINDS],
            bypass: vec![0; clusters * clusters],
            broadcast_waits: Histogram::new(BROADCAST_WAIT_BOUND),
            commit_per_cycle: Histogram::new(COMMIT_BOUND),
        }
    }

    /// Grow the per-cluster vectors to hold at least `clusters` clusters.
    /// The bypass matrix is re-laid-out to preserve `(from, to)` cells.
    fn grow_clusters(&mut self, clusters: usize) {
        if clusters <= self.clusters {
            return;
        }
        self.occupancy
            .resize(clusters, Histogram::new(OCCUPANCY_BOUND));
        self.issued_ports.resize(clusters, [0; PORT_KINDS]);
        self.steer_placements.resize(clusters, 0);
        let mut bypass = vec![0u64; clusters * clusters];
        for from in 0..self.clusters {
            for to in 0..self.clusters {
                bypass[from * clusters + to] = self.bypass[from * self.clusters + to];
            }
        }
        self.bypass = bypass;
        self.clusters = clusters;
    }

    /// Record a per-cycle occupancy sample (one entry per cluster).
    #[inline]
    pub fn record_cycle(&mut self, occupancy: &[u32]) {
        if occupancy.len() > self.clusters {
            self.grow_clusters(occupancy.len());
        }
        self.cycles += 1;
        for (hist, &occ) in self.occupancy.iter_mut().zip(occupancy) {
            hist.record(occ as usize);
        }
    }

    /// Record `committed` instructions retiring this cycle.
    #[inline]
    pub fn record_commit(&mut self, committed: usize) {
        self.committed += committed as u64;
        self.commit_per_cycle.record(committed);
    }

    /// Record an issue grant on `cluster` for port kind `port`
    /// (0 = int, 1 = fp, 2 = mem).
    #[inline]
    pub fn record_issue(&mut self, cluster: usize, port: usize) {
        self.grow_clusters(cluster + 1);
        self.issued_ports[cluster][port.min(PORT_KINDS - 1)] += 1;
    }

    /// Record a cross-cluster operand delivery.
    #[inline]
    pub fn record_bypass(&mut self, from: usize, to: usize) {
        self.grow_clusters(from.max(to) + 1);
        self.bypass[from * self.clusters + to] += 1;
    }

    /// Record a broadcast-slot wait of `wait` cycles on `cluster`.
    #[inline]
    pub fn record_broadcast_wait(&mut self, cluster: usize, wait: u64) {
        self.grow_clusters(cluster + 1);
        self.broadcast_waits.record(wait as usize);
    }

    /// Record a steering decision placing an instruction on `cluster` for
    /// cause index `cause` (ordered as `SimResult::steer_cause_counts`).
    #[inline]
    pub fn record_steer(&mut self, cluster: usize, cause: usize) {
        self.grow_clusters(cluster + 1);
        self.steer_causes[cause.min(STEER_CAUSE_KINDS - 1)] += 1;
        self.steer_placements[cluster] += 1;
    }

    /// Total cross-cluster deliveries (sum of the bypass matrix).
    pub fn bypass_total(&self) -> u64 {
        self.bypass.iter().sum()
    }

    /// Total issue grants on `cluster` across all port kinds.
    pub fn issued_on_cluster(&self, cluster: usize) -> u64 {
        self.issued_ports
            .get(cluster)
            .map(|p| p.iter().sum())
            .unwrap_or(0)
    }

    /// Elementwise merge of another run's metrics into this accumulator.
    ///
    /// Merging is commutative on the counter values but is always performed
    /// in deterministic input order by the grid aggregator, so the merged
    /// struct is bit-identical regardless of worker thread count.
    pub fn merge(&mut self, other: &SimMetrics) {
        self.grow_clusters(other.clusters);
        self.cycles += other.cycles;
        self.committed += other.committed;
        self.instructions += other.instructions;
        for (c, h) in other.occupancy.iter().enumerate() {
            self.occupancy[c].merge(h);
        }
        for (c, ports) in other.issued_ports.iter().enumerate() {
            for (k, &n) in ports.iter().enumerate() {
                self.issued_ports[c][k] += n;
            }
        }
        for (k, &n) in other.steer_causes.iter().enumerate() {
            self.steer_causes[k] += n;
        }
        for (c, &n) in other.steer_placements.iter().enumerate() {
            self.steer_placements[c] += n;
        }
        self.steer_stall_cycles += other.steer_stall_cycles;
        for (k, &n) in other.dispatch_stalls.iter().enumerate() {
            self.dispatch_stalls[k] += n;
        }
        for from in 0..other.clusters {
            for to in 0..other.clusters {
                self.bypass[from * self.clusters + to] +=
                    other.bypass[from * other.clusters + to];
            }
        }
        self.broadcast_waits.merge(&other.broadcast_waits);
        self.commit_per_cycle.merge(&other.commit_per_cycle);
    }

    /// Stable FNV-1a digest over every counter, for checkpoint manifests.
    ///
    /// The digest hashes explicitly serialized fields in a fixed order (never
    /// `Debug` output), so it only changes when the counters themselves do.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.push_u64(self.clusters as u64);
        h.push_u64(self.cycles);
        h.push_u64(self.committed);
        h.push_u64(self.instructions);
        for hist in &self.occupancy {
            digest_histogram(&mut h, hist);
        }
        for ports in &self.issued_ports {
            for &n in ports {
                h.push_u64(n);
            }
        }
        for &n in &self.steer_causes {
            h.push_u64(n);
        }
        for &n in &self.steer_placements {
            h.push_u64(n);
        }
        h.push_u64(self.steer_stall_cycles);
        for &n in &self.dispatch_stalls {
            h.push_u64(n);
        }
        for &n in &self.bypass {
            h.push_u64(n);
        }
        digest_histogram(&mut h, &self.broadcast_waits);
        digest_histogram(&mut h, &self.commit_per_cycle);
        h.finish()
    }
}

fn digest_histogram(h: &mut Fnv, hist: &Histogram) {
    h.push_u64(hist.bound() as u64);
    h.push_u64(hist.samples());
    for (value, count) in hist.iter() {
        h.push_u64(value as u64);
        h.push_u64(count);
    }
}

/// Minimal FNV-1a accumulator (same constants as `ccs-core`'s manifest
/// hashing; duplicated here because `ccs-obs` is a leaf crate).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn push_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_saturates_at_bound() {
        let mut h = Histogram::new(4);
        h.record(2);
        h.record(4);
        h.record(100);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.count(4), 2); // the 100 saturated into bucket 4
        assert_eq!(h.samples(), 3);
        assert_eq!(h.weighted_sum(), 2 + 4 + 4);
    }

    #[test]
    fn histogram_merge_widens_and_sums() {
        let mut a = Histogram::new(2);
        a.record(1);
        let mut b = Histogram::new(8);
        b.record(1);
        b.record(7);
        a.merge(&b);
        assert_eq!(a.bound(), 8);
        assert_eq!(a.count(1), 2);
        assert_eq!(a.count(7), 1);
    }

    #[test]
    fn merge_is_elementwise_and_digest_is_order_sensitive_only_on_values() {
        let mut a = SimMetrics::for_machine(2);
        a.record_cycle(&[3, 1]);
        a.record_issue(0, 0);
        a.record_bypass(0, 1);
        let mut b = SimMetrics::for_machine(2);
        b.record_cycle(&[2, 2]);
        b.record_issue(1, 2);
        b.record_bypass(1, 0);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        // Counter merging is commutative.
        assert_eq!(ab, ba);
        assert_eq!(ab.digest(), ba.digest());
        assert_eq!(ab.cycles, 2);
        assert_eq!(ab.bypass_total(), 2);
    }

    #[test]
    fn digest_distinguishes_counters() {
        let mut a = SimMetrics::for_machine(2);
        a.record_cycle(&[1, 1]);
        let mut b = a.clone();
        assert_eq!(a.digest(), b.digest());
        b.record_steer(0, 1);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn grow_preserves_bypass_cells() {
        let mut m = SimMetrics::for_machine(2);
        m.record_bypass(0, 1);
        m.record_bypass(1, 0);
        m.record_bypass(3, 2); // forces growth to 4 clusters
        assert_eq!(m.clusters, 4);
        assert_eq!(m.bypass[1], 1); // (0,1)
        assert_eq!(m.bypass[4], 1); // (1,0)
        assert_eq!(m.bypass[3 * 4 + 2], 1);
        assert_eq!(m.bypass_total(), 3);
    }
}
