//! Named wall-clock accumulators for harness stages.

use std::fmt;
use std::time::{Duration, Instant};

/// Accumulates wall-clock time per named stage (trace-gen, simulate,
/// analysis, ...). Stages keep first-use order; timing the same name again
/// accumulates into the existing entry.
#[derive(Debug, Default, Clone)]
pub struct StageTimers {
    stages: Vec<(String, Duration)>,
}

impl StageTimers {
    /// Empty timer set.
    pub fn new() -> Self {
        StageTimers::default()
    }

    /// Run `f`, charging its wall-clock time to `stage`.
    pub fn time<R>(&mut self, stage: &str, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.add(stage, start.elapsed());
        out
    }

    /// Charge `elapsed` to `stage` directly.
    pub fn add(&mut self, stage: &str, elapsed: Duration) {
        if let Some((_, d)) = self.stages.iter_mut().find(|(s, _)| s == stage) {
            *d += elapsed;
        } else {
            self.stages.push((stage.to_string(), elapsed));
        }
    }

    /// Accumulated time for `stage` (zero if never timed).
    pub fn get(&self, stage: &str) -> Duration {
        self.stages
            .iter()
            .find(|(s, _)| s == stage)
            .map(|&(_, d)| d)
            .unwrap_or(Duration::ZERO)
    }

    /// Total across all stages.
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|&(_, d)| d).sum()
    }

    /// `(stage, duration)` pairs in first-use order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Duration)> {
        self.stages.iter().map(|(s, d)| (s.as_str(), *d))
    }
}

impl fmt::Display for StageTimers {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total().as_secs_f64();
        let width = self.stages.iter().map(|(s, _)| s.len()).max().unwrap_or(0);
        for (i, (stage, d)) in self.stages.iter().enumerate() {
            let secs = d.as_secs_f64();
            let share = if total > 0.0 { 100.0 * secs / total } else { 0.0 };
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "  {stage:<width$}  {secs:>8.2}s  {share:>5.1}%")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_accumulate_by_name() {
        let mut t = StageTimers::new();
        t.add("simulate", Duration::from_millis(30));
        t.add("trace-gen", Duration::from_millis(10));
        t.add("simulate", Duration::from_millis(20));
        assert_eq!(t.get("simulate"), Duration::from_millis(50));
        assert_eq!(t.get("trace-gen"), Duration::from_millis(10));
        assert_eq!(t.get("missing"), Duration::ZERO);
        assert_eq!(t.total(), Duration::from_millis(60));
        // First-use order is preserved.
        let order: Vec<&str> = t.iter().map(|(s, _)| s).collect();
        assert_eq!(order, ["simulate", "trace-gen"]);
    }

    #[test]
    fn time_returns_the_closure_result() {
        let mut t = StageTimers::new();
        let v = t.time("work", || 41 + 1);
        assert_eq!(v, 42);
        assert!(t.get("work") >= Duration::ZERO);
    }

    #[test]
    fn display_lists_stages() {
        let mut t = StageTimers::new();
        t.add("a", Duration::from_millis(750));
        t.add("b", Duration::from_millis(250));
        let text = t.to_string();
        assert!(text.contains('a'));
        assert!(text.contains("75.0%"));
    }
}
