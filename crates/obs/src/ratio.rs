//! The one division every exported counter ratio goes through.
//!
//! Observability counters are `u64`s, and most derived quantities are
//! ratios of two of them (hit rates, CPI, shares, means). Each call
//! site used to guard its own zero denominator inline; a site that
//! forgot the guard exported `NaN` straight into JSON, where it either
//! poisons downstream aggregation or fails to parse (JSON has no NaN).
//! Routing every ratio through [`counter_ratio`] makes the degenerate
//! case uniform — an explicit `0.0`, never NaN or infinity — and gives
//! debug builds a single place to assert the result is finite.

/// `num / den` as `f64`, with an explicit `0.0` when `den` is zero.
///
/// The result is always finite: `u64` inputs cannot produce NaN or
/// infinity once the zero denominator is handled, and a debug assert
/// pins that invariant where all exported ratios funnel through.
#[inline]
pub fn counter_ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        return 0.0;
    }
    let r = num as f64 / den as f64;
    debug_assert!(r.is_finite(), "counter ratio {num}/{den} not finite");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_denominator_is_zero_not_nan() {
        assert_eq!(counter_ratio(0, 0), 0.0);
        assert_eq!(counter_ratio(17, 0), 0.0);
    }

    #[test]
    fn ordinary_ratios_divide() {
        assert_eq!(counter_ratio(1, 2), 0.5);
        assert_eq!(counter_ratio(3, 3), 1.0);
        assert_eq!(counter_ratio(0, 5), 0.0);
    }

    #[test]
    fn extreme_counters_stay_finite() {
        assert!(counter_ratio(u64::MAX, 1).is_finite());
        assert!(counter_ratio(u64::MAX, u64::MAX).is_finite());
        assert!(counter_ratio(1, u64::MAX).is_finite());
    }
}
