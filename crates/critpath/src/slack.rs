//! Global slack analysis (§4's discussion of slack vs. LoC).
//!
//! The slack of an instruction's execute node is how many cycles its
//! completion could be delayed without lengthening total runtime (Fields,
//! Bodík & Hill, ISCA 2002). The paper argues slack is a poor *static*
//! metric for clustered steering: it is a property of each dynamic
//! instance, and instances of one static instruction vary wildly — a
//! branch has no slack when mispredicted and window-bounded slack when
//! predicted correctly — so a static instruction's slack is a histogram,
//! not a number. This module computes per-instance slack so that claim
//! can be demonstrated quantitatively (see the `slack_distribution`
//! harness binary).
//!
//! Slack is computed by a backward *required-time* pass over the same
//! dependence graph the critical-path walk uses: `req(u) = min over edges
//! u→v of (req(v) − w)`, anchored at the last commit. The observed times
//! are one feasible schedule, so `slack = req − observed ≥ 0`, and
//! instructions on the critical path have zero slack.

use ccs_sim::{DispatchBound, SimResult};
use ccs_trace::Trace;
use serde::{Deserialize, Serialize};

/// Per-instance execute-node slack, plus per-static-instruction
/// aggregation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlackAnalysis {
    /// Slack (cycles) of each dynamic instruction's execute node.
    pub slack: Vec<u64>,
}

impl SlackAnalysis {
    /// Number of instructions with zero slack (at least the critical path).
    pub fn zero_slack_count(&self) -> usize {
        self.slack.iter().filter(|&&s| s == 0).count()
    }

    /// Number of instructions with slack at most `tau` — the
    /// "near-critical" set behind the paper's observation that fixing one
    /// critical path may only expose a parallel near-critical one (§3).
    pub fn near_critical_count(&self, tau: u64) -> usize {
        self.slack.iter().filter(|&&s| s <= tau).count()
    }

    /// Mean slack in cycles.
    pub fn mean(&self) -> f64 {
        if self.slack.is_empty() {
            return 0.0;
        }
        self.slack.iter().sum::<u64>() as f64 / self.slack.len() as f64
    }

    /// A histogram of slack values over the given bucket boundaries:
    /// bucket `k` counts instances with `bounds[k-1] <= slack < bounds[k]`
    /// (first bucket starts at 0; a final bucket catches the rest).
    pub fn histogram(&self, bounds: &[u64]) -> Vec<u64> {
        let mut hist = vec![0u64; bounds.len() + 1];
        for &s in &self.slack {
            let k = bounds.iter().position(|&b| s < b).unwrap_or(bounds.len());
            hist[k] += 1;
        }
        hist
    }

    /// For one static instruction (all dynamic indices in `instances`),
    /// the coefficient-of-range statistic `(max − min)` of its slack —
    /// large values demonstrate §4's point that per-static slack is not a
    /// single number.
    pub fn instance_range(&self, instances: &[usize]) -> u64 {
        let mut min = u64::MAX;
        let mut max = 0u64;
        for &i in instances {
            min = min.min(self.slack[i]);
            max = max.max(self.slack[i]);
        }
        if min == u64::MAX {
            0
        } else {
            max - min
        }
    }
}

/// Computes per-instance execute-node slack for one simulated execution.
///
/// # Examples
///
/// ```
/// use ccs_isa::MachineConfig;
/// use ccs_sim::{policies::LeastLoaded, simulate};
/// use ccs_trace::Benchmark;
///
/// let trace = Benchmark::Vpr.generate(1, 1_000);
/// let result = simulate(&MachineConfig::micro05_baseline(), &trace,
///     &mut LeastLoaded).unwrap();
/// let slack = ccs_critpath::analyze_slack(&trace, &result);
/// // Something is always critical; most instructions have some slack.
/// assert!(slack.zero_slack_count() >= 1);
/// assert!(slack.near_critical_count(8) >= slack.zero_slack_count());
/// ```
///
/// # Panics
///
/// Panics if `result` does not correspond to `trace`.
pub fn analyze_slack(trace: &Trace, result: &SimResult) -> SlackAnalysis {
    assert_eq!(trace.len(), result.records.len());
    let n = trace.len();
    if n == 0 {
        return SlackAnalysis { slack: Vec::new() };
    }
    let recs = &result.records;
    let cfg = &result.config;
    let depth = cfg.front_end.depth_to_dispatch as u64;
    let cw = cfg.commit_width;
    let fw = cfg.front_end.fetch_width;

    const INF: u64 = u64::MAX / 4;
    let mut req_d = vec![INF; n];
    let mut req_e = vec![INF; n];
    let mut req_c = vec![INF; n];
    req_c[n - 1] = recs[n - 1].commit;

    // Dataflow consumers are needed to relax E→E edges from the consumer
    // side; iterate nodes in decreasing index, relaxing incoming edges.
    for i in (0..n).rev() {
        let r = &recs[i];
        // --- node C(i): incoming E(i) (w=1), C(i-1) (w=0), C(i-cw) (w=1).
        let rc = req_c[i];
        if rc < INF {
            req_e[i] = req_e[i].min(rc - 1);
            if i > 0 {
                req_c[i - 1] = req_c[i - 1].min(rc);
            }
            if i >= cw {
                req_c[i - cw] = req_c[i - cw].min(rc - 1);
            }
        }
        // --- node E(i): incoming D(i) (w = 1 + observed latency) and
        // E(p) (w = fwd + observed latency) per operand.
        let re = req_e[i];
        if re < INF {
            let lat = r.exec_latency();
            req_d[i] = req_d[i].min(re.saturating_sub(1 + lat));
            for p in trace.as_slice()[i].producers() {
                let pr = &recs[p.index()];
                let fwd =
                    cfg.forwarding_between(pr.cluster as usize, r.cluster as usize) as u64;
                let w = fwd + lat;
                req_e[p.index()] = req_e[p.index()].min(re.saturating_sub(w));
            }
        }
        // --- node D(i): incoming D(i-1) (w=0), D(i-fw) (w=1), plus the
        // observed redirect / ROB binding edges.
        let rd = req_d[i];
        if rd < INF {
            if i > 0 {
                req_d[i - 1] = req_d[i - 1].min(rd);
            }
            if i >= fw {
                req_d[i - fw] = req_d[i - fw].min(rd - 1);
            }
            match r.dispatch_bound {
                DispatchBound::Redirect(b) => {
                    req_e[b.index()] = req_e[b.index()].min(rd.saturating_sub(1 + depth));
                }
                DispatchBound::RobFull(j) => {
                    req_c[j.index()] = req_c[j.index()].min(rd);
                }
                _ => {}
            }
        }
    }

    let slack = (0..n)
        .map(|i| {
            if req_e[i] >= INF {
                // No path to the end constrains this node (e.g. a value
                // never consumed); its slack is bounded only by its own
                // commit requirement, already relaxed via C(i).
                0
            } else {
                req_e[i].saturating_sub(recs[i].complete)
            }
        })
        .collect();
    SlackAnalysis { slack }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::walk::analyze;
    use ccs_isa::{ArchReg, ClusterLayout, MachineConfig, OpClass, Pc, StaticInst};
    use ccs_sim::{policies::LeastLoaded, simulate};
    use ccs_trace::{Benchmark, TraceBuilder};

    #[test]
    fn critical_instructions_have_zero_slack() {
        let trace = Benchmark::Gzip.generate(1, 3_000);
        let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let cp = analyze(&trace, &result);
        let slack = analyze_slack(&trace, &result);
        for (i, &critical) in cp.e_critical.iter().enumerate() {
            if critical {
                assert_eq!(slack.slack[i], 0, "critical inst {i} must have zero slack");
            }
        }
        // And the critical set is a subset of the zero-slack set.
        assert!(slack.zero_slack_count() >= cp.critical_count());
    }

    #[test]
    fn independent_side_work_has_large_slack() {
        // A long serial chain plus one independent instruction early on:
        // the chain has no slack, the independent one has plenty.
        let mut b = TraceBuilder::new();
        let r = ArchReg::int(1);
        let side = ArchReg::int(2);
        b.push_simple(StaticInst::new(Pc::new(0), OpClass::IntAlu).with_dst(side));
        for i in 0..500u64 {
            b.push_simple(
                StaticInst::new(Pc::new(4 + 4 * (i % 8)), OpClass::IntAlu)
                    .with_src(r)
                    .with_dst(r),
            );
        }
        let trace = b.finish();
        let cfg = MachineConfig::micro05_baseline();
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let slack = analyze_slack(&trace, &result);
        assert!(
            slack.slack[0] > 100,
            "independent inst slack {}",
            slack.slack[0]
        );
        // Chain middle: zero slack.
        assert_eq!(slack.slack[250], 0);
    }

    #[test]
    fn slack_is_nonnegative_and_bounded() {
        let trace = Benchmark::Vpr.generate(2, 3_000);
        let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C8x1w);
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let slack = analyze_slack(&trace, &result);
        assert_eq!(slack.slack.len(), trace.len());
        for &s in &slack.slack {
            assert!(s <= result.cycles, "slack {s} exceeds runtime");
        }
        assert!(slack.mean() >= 0.0);
    }

    #[test]
    fn near_critical_grows_with_tau() {
        let trace = Benchmark::Vpr.generate(5, 3_000);
        let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let slack = analyze_slack(&trace, &result);
        let z = slack.near_critical_count(0);
        let t2 = slack.near_critical_count(2);
        let t16 = slack.near_critical_count(16);
        assert_eq!(z, slack.zero_slack_count());
        assert!(z <= t2 && t2 <= t16);
        // §3: near-critical mass exceeds the strictly-critical set.
        assert!(t16 > z, "near-critical {t16} vs critical {z}");
    }

    #[test]
    fn histogram_partitions_instances() {
        let trace = Benchmark::Gap.generate(3, 2_000);
        let cfg = MachineConfig::micro05_baseline();
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let slack = analyze_slack(&trace, &result);
        let hist = slack.histogram(&[1, 8, 32, 128]);
        assert_eq!(hist.len(), 5);
        assert_eq!(hist.iter().sum::<u64>() as usize, trace.len());
    }

    #[test]
    fn branch_slack_is_bimodal_per_instance() {
        // §4: mispredicted instances have no slack; correctly predicted
        // ones have large slack — per-static slack is a histogram.
        let trace = Benchmark::Vpr.generate(4, 8_000);
        let cfg = MachineConfig::micro05_baseline();
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let slack = analyze_slack(&trace, &result);
        // Gather instances of the hard rib branch (mispredicted often).
        let mut mispredicted = Vec::new();
        let mut correct = Vec::new();
        for (i, rec) in result.records.iter().enumerate() {
            if trace.as_slice()[i].is_conditional_branch() {
                if rec.mispredicted {
                    mispredicted.push(slack.slack[i]);
                } else {
                    correct.push(slack.slack[i]);
                }
            }
        }
        assert!(!mispredicted.is_empty() && !correct.is_empty());
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!(
            mean(&mispredicted) < mean(&correct),
            "mispredicted {} vs correct {}",
            mean(&mispredicted),
            mean(&correct)
        );
    }

    #[test]
    fn empty_trace_slack() {
        let trace = TraceBuilder::new().finish();
        let cfg = MachineConfig::micro05_baseline();
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let s = analyze_slack(&trace, &result);
        assert!(s.slack.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.zero_slack_count(), 0);
        assert_eq!(s.instance_range(&[]), 0);
    }
}
