//! Critical-path analysis of simulated executions.
//!
//! Implements the dependence-graph model of Fields, Rubin & Bodík
//! (*Focusing Processor Policies via Critical-Path Prediction*, ISCA 2001)
//! that the paper uses for all of its lost-cycle attribution (§3).
//!
//! Every dynamic instruction contributes three nodes — **D** (dispatch),
//! **E** (execute/complete), **C** (commit) — connected by the constraint
//! edges the machine actually imposed: in-order fetch/dispatch bandwidth,
//! branch-misprediction redirects, ROB and window space, dataflow (with
//! inter-cluster forwarding), execution latency, issue contention and
//! in-order commit. Because the simulator records the *binding constraint*
//! for every event time, the graph's last-arriving edges are known
//! exactly, and the critical path is recovered by a single backward walk
//! from the last commit — no weights need to be re-derived.
//!
//! The walk produces:
//!
//! * a [`Breakdown`] of total runtime into the paper's cost categories
//!   (Figure 5: `fwd. delay`, `contention`, `execute`, `window`, `fetch`,
//!   `mem. latency`, `br. mispr.`),
//! * the set of **E-critical** instructions (what the Fields token-passing
//!   detector samples, used to train the criticality predictors),
//! * the classified contention and forwarding *events* of Figure 6, and
//! * the producer/consumer criticality statistics of §6.
//!
//! # Example
//!
//! ```
//! use ccs_isa::{ClusterLayout, MachineConfig};
//! use ccs_sim::{policies::LeastLoaded, simulate};
//! use ccs_trace::Benchmark;
//!
//! let trace = Benchmark::Vpr.generate(1, 3_000);
//! let config = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
//! let result = simulate(&config, &trace, &mut LeastLoaded).unwrap();
//! let analysis = ccs_critpath::analyze(&trace, &result);
//! // Attribution is exact: the breakdown sums to total runtime.
//! assert_eq!(analysis.breakdown.total(), result.cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod category;
mod consumers;
mod cpistack;
mod events;
mod slack;
mod walk;

pub use category::{Breakdown, CostCategory};
pub use cpistack::{cpi_stack, observed_cpi_stack, reconcile_cpi_stack};
pub use consumers::{analyze_consumers, ConsumerAnalysis};
pub use events::{ContentionEvent, EventTotals, ForwardingCause, ForwardingEvent};
pub use slack::{analyze_slack, SlackAnalysis};
pub use walk::{analyze, CritPathAnalysis};
