//! Cost categories and the runtime breakdown.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign};

/// The cost categories of the paper's Figure 5, plus an explicit commit
/// component (the paper folds in-order commit constraints into its model;
/// their contribution is negligible but we keep the attribution exact and
/// visible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CostCategory {
    /// Front-end delivery: fetch/dispatch bandwidth and pipeline depth.
    Fetch,
    /// Branch-misprediction redirect and refill.
    BrMispredict,
    /// Waiting for ROB or scheduling-window space.
    Window,
    /// Functional-unit latency (and structural dispatch→issue minimum).
    Execute,
    /// Additional memory latency from L1 misses.
    MemLatency,
    /// Inter-cluster forwarding delay on the last-arriving operand.
    FwdDelay,
    /// Ready-but-not-issued waits (issue-port contention).
    Contention,
    /// In-order commit and commit bandwidth.
    Commit,
}

impl CostCategory {
    /// All categories in display order (Figure 5's legend order, commit
    /// last).
    pub const ALL: [CostCategory; 8] = [
        CostCategory::FwdDelay,
        CostCategory::Contention,
        CostCategory::Execute,
        CostCategory::Window,
        CostCategory::Fetch,
        CostCategory::MemLatency,
        CostCategory::BrMispredict,
        CostCategory::Commit,
    ];

    /// The category's label as it appears in the paper's figures.
    pub const fn label(self) -> &'static str {
        match self {
            CostCategory::Fetch => "fetch",
            CostCategory::BrMispredict => "br. mispr.",
            CostCategory::Window => "window",
            CostCategory::Execute => "execute",
            CostCategory::MemLatency => "mem. latency",
            CostCategory::FwdDelay => "fwd. delay",
            CostCategory::Contention => "contention",
            CostCategory::Commit => "commit",
        }
    }

    const fn index(self) -> usize {
        match self {
            CostCategory::Fetch => 0,
            CostCategory::BrMispredict => 1,
            CostCategory::Window => 2,
            CostCategory::Execute => 3,
            CostCategory::MemLatency => 4,
            CostCategory::FwdDelay => 5,
            CostCategory::Contention => 6,
            CostCategory::Commit => 7,
        }
    }
}

impl fmt::Display for CostCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Total runtime cycles attributed to each [`CostCategory`].
///
/// Produced by [`analyze`](crate::analyze); the categories always sum to
/// the execution's total cycle count (exact attribution).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Breakdown {
    cycles: [u64; 8],
}

impl Breakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attributes `cycles` to `category`.
    #[inline]
    pub fn charge(&mut self, category: CostCategory, cycles: u64) {
        self.cycles[category.index()] += cycles;
    }

    /// Cycles attributed to `category`.
    #[inline]
    pub fn get(&self, category: CostCategory) -> u64 {
        self.cycles[category.index()]
    }

    /// Total cycles across all categories.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// The per-instruction CPI contribution of `category`.
    pub fn cpi_component(&self, category: CostCategory, instructions: usize) -> f64 {
        if instructions == 0 {
            return 0.0;
        }
        self.get(category) as f64 / instructions as f64
    }

    /// Iterates `(category, cycles)` over non-zero categories in display
    /// order.
    pub fn iter(&self) -> impl Iterator<Item = (CostCategory, u64)> + '_ {
        CostCategory::ALL
            .into_iter()
            .map(|c| (c, self.get(c)))
            .filter(|&(_, v)| v > 0)
    }

    /// Fraction of total runtime attributed to clustering penalties
    /// (forwarding delay + contention), the paper's headline quantity.
    pub fn clustering_fraction(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        (self.get(CostCategory::FwdDelay) + self.get(CostCategory::Contention)) as f64
            / total as f64
    }
}

impl Add for Breakdown {
    type Output = Breakdown;

    fn add(mut self, rhs: Breakdown) -> Breakdown {
        self += rhs;
        self
    }
}

impl AddAssign for Breakdown {
    fn add_assign(&mut self, rhs: Breakdown) {
        for (dst, src) in self.cycles.iter_mut().zip(rhs.cycles) {
            *dst += src;
        }
    }
}

impl fmt::Display for Breakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total().max(1);
        let mut first = true;
        for (cat, cycles) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{cat}: {cycles} ({:.1}%)", 100.0 * cycles as f64 / total as f64)?;
            first = false;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_get() {
        let mut b = Breakdown::new();
        b.charge(CostCategory::Fetch, 10);
        b.charge(CostCategory::Fetch, 5);
        b.charge(CostCategory::FwdDelay, 2);
        assert_eq!(b.get(CostCategory::Fetch), 15);
        assert_eq!(b.get(CostCategory::FwdDelay), 2);
        assert_eq!(b.get(CostCategory::Commit), 0);
        assert_eq!(b.total(), 17);
    }

    #[test]
    fn cpi_components() {
        let mut b = Breakdown::new();
        b.charge(CostCategory::Execute, 100);
        assert!((b.cpi_component(CostCategory::Execute, 200) - 0.5).abs() < 1e-12);
        assert_eq!(b.cpi_component(CostCategory::Execute, 0), 0.0);
    }

    #[test]
    fn clustering_fraction() {
        let mut b = Breakdown::new();
        b.charge(CostCategory::Execute, 60);
        b.charge(CostCategory::FwdDelay, 30);
        b.charge(CostCategory::Contention, 10);
        assert!((b.clustering_fraction() - 0.4).abs() < 1e-12);
        assert_eq!(Breakdown::new().clustering_fraction(), 0.0);
    }

    #[test]
    fn iter_skips_zeros_in_display_order() {
        let mut b = Breakdown::new();
        b.charge(CostCategory::Commit, 1);
        b.charge(CostCategory::FwdDelay, 1);
        let cats: Vec<_> = b.iter().map(|(c, _)| c).collect();
        assert_eq!(cats, vec![CostCategory::FwdDelay, CostCategory::Commit]);
    }

    #[test]
    fn addition_merges() {
        let mut a = Breakdown::new();
        a.charge(CostCategory::Fetch, 1);
        let mut b = Breakdown::new();
        b.charge(CostCategory::Fetch, 2);
        b.charge(CostCategory::Window, 3);
        let c = a + b;
        assert_eq!(c.get(CostCategory::Fetch), 3);
        assert_eq!(c.get(CostCategory::Window), 3);
    }

    #[test]
    fn labels_unique_and_display_nonempty() {
        let mut seen = std::collections::HashSet::new();
        for c in CostCategory::ALL {
            assert!(seen.insert(c.label()));
            assert_eq!(c.to_string(), c.label());
        }
        assert_eq!(Breakdown::new().to_string(), "(empty)");
        let mut b = Breakdown::new();
        b.charge(CostCategory::Fetch, 3);
        assert!(b.to_string().contains("fetch"));
    }
}
