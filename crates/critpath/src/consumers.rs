//! Producer/consumer criticality statistics (§6 of the paper).
//!
//! The proactive load-balancing policy depends on two empirical dataflow
//! properties the paper reports:
//!
//! 1. ~80% of produced values have a *statically unique* most-critical
//!    consumer (the same consumer PC is the most critical one across
//!    dynamic instances of the producer).
//! 2. A given static consumer either almost always or almost never is the
//!    most critical consumer of its operand — the distribution is bimodal.
//!
//! Additionally, of critical producers with multiple consumers, more than
//! half do *not* have their most critical consumer first in fetch order —
//! which is why first-consumer-stays steering (prior work) hurts.
//!
//! The *most critical consumer* of a dynamic value is the consumer on the
//! execution's critical path when there is one (matching the paper's
//! criticality-based definition); otherwise the consumer with the least
//! slack on that dataflow edge (the one that issued soonest after the
//! value could reach it).

use ccs_sim::SimResult;
use ccs_trace::{DynIdx, Trace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Aggregated producer/consumer criticality statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConsumerAnalysis {
    /// Dynamic values with at least one consumer.
    pub values: u64,
    /// Dynamic values with two or more consumers.
    pub multi_consumer_values: u64,
    /// Fraction of values whose producer PC has a statically unique
    /// most-critical consumer (one consumer PC is most critical in ≥ 80%
    /// of that producer's instances).
    pub unique_mcc_fraction: f64,
    /// Among values produced by *critical* instructions with two or more
    /// consumers, the fraction where the most critical consumer was *not*
    /// the first consumer in fetch order (the paper reports > 50%).
    pub mcc_not_first_fraction: f64,
    /// Critical multi-consumer values considered for
    /// [`mcc_not_first_fraction`](Self::mcc_not_first_fraction).
    pub critical_multi_consumer_values: u64,
    /// Histogram (10 buckets over `[0, 1]`) of each static consumer's rate
    /// of being the most critical consumer — bimodality shows up as mass
    /// in the first and last buckets.
    pub mcc_rate_histogram: [u64; 10],
}

impl ConsumerAnalysis {
    /// Fraction of static consumers in the extreme histogram buckets
    /// (rate < 0.1 or ≥ 0.9) — the bimodality measure.
    pub fn bimodality(&self) -> f64 {
        let total: u64 = self.mcc_rate_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        (self.mcc_rate_histogram[0] + self.mcc_rate_histogram[9]) as f64 / total as f64
    }
}

/// Computes the §6 consumer statistics for one simulated execution.
///
/// # Examples
///
/// ```
/// use ccs_isa::MachineConfig;
/// use ccs_sim::{policies::LeastLoaded, simulate};
/// use ccs_trace::Benchmark;
///
/// let trace = Benchmark::Vpr.generate(1, 2_000);
/// let result = simulate(&MachineConfig::micro05_baseline(), &trace,
///     &mut LeastLoaded).unwrap();
/// let cp = ccs_critpath::analyze(&trace, &result);
/// let c = ccs_critpath::analyze_consumers(&trace, &result, &cp.e_critical);
/// assert!(c.values > 0);
/// assert!(c.unique_mcc_fraction > 0.0);
/// ```
///
/// `e_critical` is the critical-instruction set from
/// [`analyze`](crate::analyze) over the same execution.
///
/// # Panics
///
/// Panics if `result` or `e_critical` does not correspond to `trace`.
pub fn analyze_consumers(
    trace: &Trace,
    result: &SimResult,
    e_critical: &[bool],
) -> ConsumerAnalysis {
    assert_eq!(trace.len(), result.records.len());
    assert_eq!(trace.len(), e_critical.len());
    let consumers = trace.consumer_lists();
    let recs = &result.records;
    let cfg = &result.config;

    let mut values = 0u64;
    let mut multi = 0u64;
    let mut critical_multi = 0u64;
    let mut mcc_not_first = 0u64;

    // producer PC -> (instances, per-consumer-PC mcc counts)
    let mut per_producer: HashMap<u64, (u64, HashMap<u64, u64>)> = HashMap::new();
    // consumer PC -> (times considered, times most critical)
    let mut per_consumer: HashMap<u64, (u64, u64)> = HashMap::new();

    for (p, cons) in consumers.iter().enumerate() {
        if cons.is_empty() {
            continue;
        }
        values += 1;
        let p_rec = &recs[p];
        // Least slack: the consumer that issued soonest after the value
        // could have reached it.
        let slack_of = |c: &DynIdx| {
            let c_rec = &recs[c.index()];
            let fwd = cfg.forwarding_between(p_rec.cluster as usize, c_rec.cluster as usize);
            c_rec.issue.saturating_sub(p_rec.complete + fwd as u64)
        };
        // Critical consumers take precedence; slack breaks ties and covers
        // values with no critical consumer at all.
        let mcc = *cons
            .iter()
            .min_by_key(|c| (!e_critical[c.index()], slack_of(c), c.raw()))
            // Invariant: producers with no consumers were skipped above.
            .expect("non-empty consumer list");
        if cons.len() >= 2 {
            multi += 1;
            if e_critical[p] {
                critical_multi += 1;
                if mcc != cons[0] {
                    mcc_not_first += 1;
                }
            }
        }
        let ppc = trace.as_slice()[p].pc().raw();
        let mcc_pc = trace.as_slice()[mcc.index()].pc().raw();
        let entry = per_producer.entry(ppc).or_default();
        entry.0 += 1;
        *entry.1.entry(mcc_pc).or_insert(0) += 1;
        for c in cons {
            let e = per_consumer.entry(trace.as_slice()[c.index()].pc().raw()).or_default();
            e.0 += 1;
            if *c == mcc {
                e.1 += 1;
            }
        }
    }

    // Weight producer-PC uniqueness by dynamic instance count, as the
    // paper reports a fraction of *values produced*.
    let mut unique_weighted = 0u64;
    for (instances, mcc_counts) in per_producer.values() {
        let top = mcc_counts.values().copied().max().unwrap_or(0);
        if top as f64 >= 0.8 * *instances as f64 {
            unique_weighted += instances;
        }
    }

    let mut hist = [0u64; 10];
    for &(seen, was_mcc) in per_consumer.values() {
        if seen == 0 {
            continue;
        }
        let rate = was_mcc as f64 / seen as f64;
        let bucket = ((rate * 10.0) as usize).min(9);
        hist[bucket] += 1;
    }

    ConsumerAnalysis {
        values,
        multi_consumer_values: multi,
        unique_mcc_fraction: if values == 0 {
            0.0
        } else {
            unique_weighted as f64 / values as f64
        },
        mcc_not_first_fraction: if critical_multi == 0 {
            0.0
        } else {
            mcc_not_first as f64 / critical_multi as f64
        },
        critical_multi_consumer_values: critical_multi,
        mcc_rate_histogram: hist,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_isa::{ClusterLayout, MachineConfig};
    use ccs_sim::{policies::LeastLoaded, simulate};
    use ccs_trace::{Benchmark, TraceBuilder};

    fn analyze_bench(bench: Benchmark, layout: ClusterLayout, len: usize) -> ConsumerAnalysis {
        let trace = bench.generate(1, len);
        let cfg = MachineConfig::micro05_baseline().with_layout(layout);
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let cp = crate::analyze(&trace, &result);
        analyze_consumers(&trace, &result, &cp.e_critical)
    }

    #[test]
    fn empty_trace_yields_zeroes() {
        let trace = TraceBuilder::new().finish();
        let cfg = MachineConfig::micro05_baseline();
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let a = analyze_consumers(&trace, &result, &[]);
        assert_eq!(a.values, 0);
        assert_eq!(a.unique_mcc_fraction, 0.0);
        assert_eq!(a.bimodality(), 0.0);
        assert_eq!(a.mcc_not_first_fraction, 0.0);
    }

    #[test]
    fn loop_workloads_have_static_mcc_structure() {
        // In loop-dominated code the most-critical consumer of each static
        // producer should be highly repeatable across iterations.
        let a = analyze_bench(Benchmark::Vpr, ClusterLayout::C4x2w, 8_000);
        assert!(a.values > 1_000);
        assert!(a.multi_consumer_values > 100);
        assert!(
            a.unique_mcc_fraction > 0.5,
            "unique mcc fraction {}",
            a.unique_mcc_fraction
        );
        // Consumers are bimodal: most either always or never are the MCC.
        assert!(a.bimodality() > 0.5, "bimodality {}", a.bimodality());
    }

    #[test]
    fn divergent_loop_mcc_is_often_not_first() {
        // Figure 12/13: the loop-carried update is the most critical
        // consumer but the *last* in fetch order within the iteration.
        let a = analyze_bench(Benchmark::Parser, ClusterLayout::C8x1w, 8_000);
        assert!(a.critical_multi_consumer_values > 50);
        assert!(
            a.mcc_not_first_fraction > 0.2,
            "mcc-not-first {}",
            a.mcc_not_first_fraction
        );
    }

    #[test]
    fn histogram_counts_static_consumers() {
        let a = analyze_bench(Benchmark::Gap, ClusterLayout::C1x8w, 4_000);
        let total: u64 = a.mcc_rate_histogram.iter().sum();
        assert!(total > 0);
    }
}
