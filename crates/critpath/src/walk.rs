//! The backward last-arriving-edge walk.

use crate::category::{Breakdown, CostCategory};
use crate::events::{ContentionEvent, EventTotals, ForwardingCause, ForwardingEvent};
use ccs_sim::{CommitBound, DispatchBound, ReadyBound, SimResult, SteerCause};
use ccs_trace::{DynIdx, Trace};
use serde::{Deserialize, Serialize};

/// The result of a critical-path analysis over one simulated execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CritPathAnalysis {
    /// Total runtime attributed per cost category; sums exactly to the
    /// execution's cycle count.
    pub breakdown: Breakdown,
    /// `e_critical[i]` — instruction `i`'s execute node lies on the
    /// critical path. This is the signal the Fields token-passing detector
    /// samples, and what trains the criticality predictors.
    pub e_critical: Vec<bool>,
    /// Contention stalls encountered on the path (Figure 6a).
    pub contention_events: Vec<ContentionEvent>,
    /// Inter-cluster forwarding delays on the path (Figure 6b).
    pub forwarding_events: Vec<ForwardingEvent>,
    /// Length of the critical path in graph nodes.
    pub path_nodes: usize,
}

impl CritPathAnalysis {
    /// Number of E-critical instructions.
    pub fn critical_count(&self) -> usize {
        self.e_critical.iter().filter(|&&c| c).count()
    }

    /// Aggregated Figure 6 event totals.
    pub fn event_totals(&self) -> EventTotals {
        EventTotals::from_events(&self.contention_events, &self.forwarding_events)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Node {
    Dispatch(u32),
    Execute(u32),
    Commit(u32),
    Root,
}

/// Walks the critical path of `result` and attributes every cycle of
/// runtime to a cost category.
///
/// The walk starts at the commit node of the last instruction and follows
/// each node's recorded binding constraint backwards until it reaches the
/// dispatch of the first instruction. Because node times are monotone
/// along binding edges, the per-edge attributions sum exactly to the total
/// cycle count.
///
/// # Panics
///
/// Panics if `result` does not correspond to `trace` (differing lengths).
pub fn analyze(trace: &Trace, result: &SimResult) -> CritPathAnalysis {
    assert_eq!(
        trace.len(),
        result.records.len(),
        "trace and simulation result must match"
    );
    let n = trace.len();
    let mut breakdown = Breakdown::new();
    let mut e_critical = vec![false; n];
    let mut contention_events = Vec::new();
    let mut forwarding_events = Vec::new();
    let mut path_nodes = 0usize;

    if n == 0 {
        return CritPathAnalysis {
            breakdown,
            e_critical,
            contention_events,
            forwarding_events,
            path_nodes,
        };
    }

    let recs = &result.records;
    let commit_width = result.config.commit_width;

    let mut node = Node::Commit((n - 1) as u32);
    // The walk strictly decreases node time or instruction index, so it
    // terminates; the budget is a defensive bound.
    let mut budget = 8 * n as u64 + result.cycles + 16;

    loop {
        path_nodes += 1;
        budget -= 1;
        assert!(budget > 0, "critical-path walk failed to terminate");
        match node {
            Node::Root => break,
            Node::Commit(i) => {
                let r = &recs[i as usize];
                match r.commit_bound {
                    CommitBound::Complete => {
                        breakdown.charge(CostCategory::Commit, r.commit - r.complete);
                        node = Node::Execute(i);
                    }
                    CommitBound::InOrder => {
                        let prev = i - 1;
                        breakdown.charge(CostCategory::Commit, r.commit - recs[prev as usize].commit);
                        node = Node::Commit(prev);
                    }
                    CommitBound::Bandwidth => {
                        let prev = i.saturating_sub(commit_width as u32);
                        if prev == i {
                            // Degenerate tiny-machine case; treat as complete-bound.
                            breakdown.charge(CostCategory::Commit, r.commit - r.complete);
                            node = Node::Execute(i);
                        } else {
                            breakdown
                                .charge(CostCategory::Commit, r.commit - recs[prev as usize].commit);
                            node = Node::Commit(prev);
                        }
                    }
                }
            }
            Node::Execute(i) => {
                let r = &recs[i as usize];
                e_critical[i as usize] = true;
                // complete = issue + base latency + memory extra.
                let exec = r.exec_latency();
                let mem_extra = r.mem_extra as u64;
                breakdown.charge(CostCategory::Execute, exec - mem_extra);
                breakdown.charge(CostCategory::MemLatency, mem_extra);

                let contention = r.contention_wait();
                if contention > 0 {
                    breakdown.charge(CostCategory::Contention, contention);
                    contention_events.push(ContentionEvent {
                        idx: DynIdx::new(i),
                        cycles: contention,
                        predicted_critical: r.predicted_critical,
                    });
                }

                match r.ready_bound {
                    ReadyBound::Operand {
                        producer, fwd, ..
                    } => {
                        if fwd > 0 {
                            breakdown.charge(CostCategory::FwdDelay, fwd as u64);
                            forwarding_events.push(ForwardingEvent {
                                consumer: DynIdx::new(i),
                                producer,
                                cycles: fwd as u64,
                                cause: classify_forwarding(trace, result, i as usize),
                            });
                        }
                        node = Node::Execute(producer.raw());
                    }
                    ReadyBound::Dispatch => {
                        // The structural dispatch→ready minimum cycle.
                        breakdown.charge(CostCategory::Execute, r.ready - r.dispatch);
                        node = Node::Dispatch(i);
                    }
                }
            }
            Node::Dispatch(i) => {
                let r = &recs[i as usize];
                match r.dispatch_bound {
                    DispatchBound::FrontEnd | DispatchBound::InOrder => {
                        if i == 0 {
                            breakdown.charge(CostCategory::Fetch, r.dispatch);
                            node = Node::Root;
                        } else {
                            let prev = i - 1;
                            breakdown
                                .charge(CostCategory::Fetch, r.dispatch - recs[prev as usize].dispatch);
                            node = Node::Dispatch(prev);
                        }
                    }
                    DispatchBound::Redirect(b) => {
                        breakdown.charge(
                            CostCategory::BrMispredict,
                            r.dispatch - recs[b.index()].complete,
                        );
                        node = Node::Execute(b.raw());
                    }
                    DispatchBound::RobFull(j) => {
                        breakdown.charge(CostCategory::Window, r.dispatch - recs[j.index()].commit);
                        node = Node::Commit(j.raw());
                    }
                    DispatchBound::SteerStall { freed_by } => {
                        // The slot was freed by instruction `j` issuing out
                        // of the target window. `j`'s issue was itself
                        // bound by its last-arriving operand — the window
                        // drained at that dataflow's pace — so the path
                        // continues through that producer's execute node
                        // (the Fields-style E-chain), with the drain wait
                        // charged to the window category.
                        match freed_by {
                            Some(j) if j.raw() < i => match recs[j.index()].ready_bound {
                                ReadyBound::Operand { producer, .. }
                                    if recs[producer.index()].complete <= r.dispatch =>
                                {
                                    breakdown.charge(
                                        CostCategory::Window,
                                        r.dispatch - recs[producer.index()].complete,
                                    );
                                    node = Node::Execute(producer.raw());
                                }
                                _ => {
                                    breakdown.charge(
                                        CostCategory::Window,
                                        r.dispatch - recs[j.index()].dispatch,
                                    );
                                    node = Node::Dispatch(j.raw());
                                }
                            },
                            _ => {
                                if i == 0 {
                                    breakdown.charge(CostCategory::Window, r.dispatch);
                                    node = Node::Root;
                                } else {
                                    let prev = i - 1;
                                    breakdown.charge(
                                        CostCategory::Window,
                                        r.dispatch - recs[prev as usize].dispatch,
                                    );
                                    node = Node::Dispatch(prev);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    // The walk ends at the dispatch chain's root; the cycles between the
    // last commit and the total cycle count (the +1 loop exit) land in
    // commit.
    let attributed = breakdown.total();
    debug_assert!(attributed <= result.cycles);
    breakdown.charge(CostCategory::Commit, result.cycles - attributed);

    CritPathAnalysis {
        breakdown,
        e_critical,
        contention_events,
        forwarding_events,
        path_nodes,
    }
}

/// Classifies why consumer `i`'s critical operand crossed clusters.
fn classify_forwarding(trace: &Trace, result: &SimResult, i: usize) -> ForwardingCause {
    let r = &result.records[i];
    if r.steer_cause == SteerCause::LoadBalance {
        return ForwardingCause::LoadBalance;
    }
    let inst = &trace.as_slice()[i];
    let producers: Vec<_> = inst.producers().collect();
    if producers.len() == 2 {
        let c0 = result.records[producers[0].index()].cluster;
        let c1 = result.records[producers[1].index()].cluster;
        if c0 != c1 {
            return ForwardingCause::Dyadic;
        }
    }
    ForwardingCause::Other
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_isa::{ArchReg, ClusterLayout, MachineConfig, OpClass, Pc, StaticInst};
    use ccs_sim::policies::{LeastLoaded, RoundRobin};
    use ccs_sim::simulate;
    use ccs_trace::{Benchmark, TraceBuilder};

    fn run(
        bench: Benchmark,
        layout: ClusterLayout,
        len: usize,
    ) -> (Trace, SimResult) {
        let trace = bench.generate(1, len);
        let cfg = MachineConfig::micro05_baseline().with_layout(layout);
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        (trace, result)
    }

    #[test]
    fn attribution_is_exact_for_all_benchmarks_and_layouts() {
        for bench in [Benchmark::Vpr, Benchmark::Mcf, Benchmark::Gcc, Benchmark::Gzip] {
            for layout in ClusterLayout::ALL {
                let (trace, result) = run(bench, layout, 3_000);
                let a = analyze(&trace, &result);
                assert_eq!(
                    a.breakdown.total(),
                    result.cycles,
                    "{bench} {layout}: attribution must sum to runtime"
                );
                assert!(a.path_nodes > 0);
            }
        }
    }

    #[test]
    fn serial_chain_is_execute_bound() {
        let mut b = TraceBuilder::new();
        let r = ArchReg::int(1);
        for i in 0..2_000u64 {
            b.push_simple(
                StaticInst::new(Pc::new(4 * (i % 8)), OpClass::IntAlu)
                    .with_src(r)
                    .with_dst(r),
            );
        }
        let trace = b.finish();
        let cfg = MachineConfig::micro05_baseline();
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let a = analyze(&trace, &result);
        let exec_frac =
            a.breakdown.get(CostCategory::Execute) as f64 / a.breakdown.total() as f64;
        assert!(exec_frac > 0.9, "execute fraction {exec_frac}");
        // Nearly every instruction is E-critical.
        assert!(a.critical_count() > 1_900, "critical {}", a.critical_count());
    }

    #[test]
    fn independent_insts_are_fetch_bound() {
        let mut b = TraceBuilder::new();
        for i in 0..4_000u64 {
            b.push_simple(
                StaticInst::new(Pc::new(4 * (i % 16)), OpClass::IntAlu)
                    .with_dst(ArchReg::int(1 + (i % 30) as u16)),
            );
        }
        let trace = b.finish();
        let cfg = MachineConfig::micro05_baseline();
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let a = analyze(&trace, &result);
        let fetch_frac = a.breakdown.get(CostCategory::Fetch) as f64 / a.breakdown.total() as f64;
        assert!(fetch_frac > 0.8, "fetch fraction {fetch_frac}");
    }

    #[test]
    fn round_robin_serial_chain_shows_forwarding_delay() {
        let mut b = TraceBuilder::new();
        let r = ArchReg::int(1);
        for i in 0..1_500u64 {
            b.push_simple(
                StaticInst::new(Pc::new(4 * (i % 8)), OpClass::IntAlu)
                    .with_src(r)
                    .with_dst(r),
            );
        }
        let trace = b.finish();
        let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C8x1w);
        let result = simulate(&cfg, &trace, &mut RoundRobin::default()).unwrap();
        let a = analyze(&trace, &result);
        let fwd_frac = a.breakdown.get(CostCategory::FwdDelay) as f64 / a.breakdown.total() as f64;
        assert!(fwd_frac > 0.5, "fwd fraction {fwd_frac}");
        assert!(!a.forwarding_events.is_empty());
    }

    #[test]
    fn pointer_chase_is_memory_bound() {
        let (trace, result) = run(Benchmark::Mcf, ClusterLayout::C1x8w, 4_000);
        let a = analyze(&trace, &result);
        let mem_frac =
            a.breakdown.get(CostCategory::MemLatency) as f64 / a.breakdown.total() as f64;
        assert!(mem_frac > 0.3, "mem fraction {mem_frac}");
    }

    #[test]
    fn mispredict_heavy_workload_shows_br_cost() {
        let (trace, result) = run(Benchmark::Vpr, ClusterLayout::C1x8w, 6_000);
        assert!(result.mispredict_rate() > 0.05);
        let a = analyze(&trace, &result);
        assert!(
            a.breakdown.get(CostCategory::BrMispredict) > 0,
            "expected branch misprediction cost on the critical path"
        );
    }

    #[test]
    fn empty_execution_analyzes_cleanly() {
        let trace = TraceBuilder::new().finish();
        let cfg = MachineConfig::micro05_baseline();
        let result = simulate(&cfg, &trace, &mut LeastLoaded).unwrap();
        let a = analyze(&trace, &result);
        assert_eq!(a.breakdown.total(), 0);
        assert_eq!(a.critical_count(), 0);
        assert_eq!(a.event_totals().contention_total(), 0);
    }

    #[test]
    fn critical_set_is_sparse_on_wide_machine() {
        // On the monolithic machine running parallel-friendly code, only a
        // minority of instructions should be E-critical.
        let (trace, result) = run(Benchmark::Vortex, ClusterLayout::C1x8w, 6_000);
        let a = analyze(&trace, &result);
        let frac = a.critical_count() as f64 / trace.len() as f64;
        assert!(frac < 0.5, "critical fraction {frac}");
    }

    #[test]
    fn clustered_runs_shift_cost_toward_clustering_categories() {
        let (trace_m, result_m) = run(Benchmark::Gzip, ClusterLayout::C1x8w, 5_000);
        let (trace_c, result_c) = run(Benchmark::Gzip, ClusterLayout::C8x1w, 5_000);
        let am = analyze(&trace_m, &result_m);
        let ac = analyze(&trace_c, &result_c);
        assert!(
            ac.breakdown.clustering_fraction() > am.breakdown.clustering_fraction(),
            "clustering categories should grow: {} vs {}",
            ac.breakdown.clustering_fraction(),
            am.breakdown.clustering_fraction()
        );
    }
}
