//! Bridge between the observability layer's [`CpiStack`] and the
//! critical-path [`Breakdown`].
//!
//! `ccs-obs` is a leaf crate and cannot see [`CostCategory`], so the code
//! that derives a CPI stack from a breakdown — and the reconciliation check
//! that the two accountings agree *category by category* — lives here.

use crate::category::{Breakdown, CostCategory};
use ccs_obs::{CpiStack, ObsError, SimMetrics};

/// Builds a [`CpiStack`] from a critical-path [`Breakdown`], one category
/// per [`CostCategory`] in display order.
///
/// The stack's cycle total is the breakdown's total, so a stack built this
/// way always satisfies `CpiStack::validate` (the breakdown's exact
/// attribution carries over).
pub fn cpi_stack(breakdown: &Breakdown, instructions: u64) -> CpiStack {
    let mut stack = CpiStack::new(breakdown.total(), instructions);
    for cat in CostCategory::ALL {
        stack.push(cat.label(), breakdown.get(cat));
    }
    stack
}

/// Reconciles `stack` against `breakdown` and the engine's measured cycle
/// count: every category must match exactly, the stack's categories must
/// sum exactly to `measured_cycles`, and the breakdown must account for
/// the same total.
///
/// # Errors
///
/// The first [`ObsError`] describing which category or total failed.
pub fn reconcile_cpi_stack(
    stack: &CpiStack,
    breakdown: &Breakdown,
    measured_cycles: u64,
) -> Result<(), ObsError> {
    for cat in CostCategory::ALL {
        let in_stack = stack.get(cat.label()).unwrap_or(0);
        let in_breakdown = breakdown.get(cat);
        if in_stack != in_breakdown {
            return Err(ObsError::CategoryMismatch {
                category: cat.label().to_string(),
                stack: in_stack,
                reference: in_breakdown,
            });
        }
    }
    stack.validate()?;
    if stack.cycles != measured_cycles {
        return Err(ObsError::CycleMismatch {
            stack_total: stack.cycles,
            measured: measured_cycles,
        });
    }
    if breakdown.total() != measured_cycles {
        return Err(ObsError::CycleMismatch {
            stack_total: breakdown.total(),
            measured: measured_cycles,
        });
    }
    Ok(())
}

/// Builds the CPI stack for a metrics-on run and cross-checks it against
/// the critical-path breakdown: the sink's cycle counter, the breakdown
/// total, and the stack must all agree, and the sink's commit counter must
/// cover every instruction.
///
/// This is the observability layer's end-to-end accounting identity — the
/// counters gathered live in the engine hot loop and the post-hoc
/// graph walk describe the same execution.
///
/// # Errors
///
/// An [`ObsError`] naming the first counter or category that failed to
/// reconcile.
pub fn observed_cpi_stack(
    metrics: &SimMetrics,
    breakdown: &Breakdown,
) -> Result<CpiStack, ObsError> {
    if metrics.cycles != breakdown.total() {
        return Err(ObsError::CounterMismatch {
            what: "cycles",
            observed: metrics.cycles,
            expected: breakdown.total(),
        });
    }
    if metrics.committed != metrics.instructions {
        return Err(ObsError::CounterMismatch {
            what: "committed instructions",
            observed: metrics.committed,
            expected: metrics.instructions,
        });
    }
    let stack = cpi_stack(breakdown, metrics.committed);
    reconcile_cpi_stack(&stack, breakdown, metrics.cycles)?;
    Ok(stack)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_breakdown() -> Breakdown {
        let mut b = Breakdown::new();
        b.charge(CostCategory::Execute, 60);
        b.charge(CostCategory::Window, 25);
        b.charge(CostCategory::FwdDelay, 10);
        b.charge(CostCategory::Commit, 5);
        b
    }

    #[test]
    fn stack_mirrors_breakdown_exactly() {
        let b = sample_breakdown();
        let stack = cpi_stack(&b, 50);
        assert_eq!(stack.total(), b.total());
        assert_eq!(stack.get("execute"), Some(60));
        assert_eq!(stack.get("fwd. delay"), Some(10));
        assert_eq!(stack.get("contention"), Some(0));
        assert!(stack.validate().is_ok());
        assert!(reconcile_cpi_stack(&stack, &b, 100).is_ok());
        assert!((stack.cpi() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reconcile_catches_category_drift() {
        let b = sample_breakdown();
        // Build the stack from a perturbed breakdown to force a category
        // mismatch against the original.
        let mut b2 = b;
        b2.charge(CostCategory::Execute, 1);
        let stack = cpi_stack(&b2, 50);
        let err = reconcile_cpi_stack(&stack, &b, 100).unwrap_err();
        assert!(matches!(err, ObsError::CategoryMismatch { ref category, .. } if category == "execute"));
    }

    #[test]
    fn reconcile_catches_cycle_drift() {
        let b = sample_breakdown();
        let stack = cpi_stack(&b, 50);
        let err = reconcile_cpi_stack(&stack, &b, 99).unwrap_err();
        assert!(matches!(err, ObsError::CycleMismatch { .. }));
    }

    #[test]
    fn observed_stack_requires_matching_counters() {
        let b = sample_breakdown();
        let mut m = SimMetrics::for_machine(2);
        m.cycles = b.total();
        m.committed = 50;
        m.instructions = 50;
        let stack = observed_cpi_stack(&m, &b).unwrap();
        assert_eq!(stack.cycles, b.total());

        m.cycles += 1;
        let err = observed_cpi_stack(&m, &b).unwrap_err();
        assert!(matches!(err, ObsError::CounterMismatch { what: "cycles", .. }));

        m.cycles = b.total();
        m.committed = 49;
        let err = observed_cpi_stack(&m, &b).unwrap_err();
        assert!(
            matches!(err, ObsError::CounterMismatch { what: "committed instructions", .. })
        );
    }
}
