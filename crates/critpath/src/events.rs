//! Classified lost-cycle events on the critical path (Figure 6).

use ccs_trace::DynIdx;
use serde::{Deserialize, Serialize};

/// A contention stall on the critical path: an instruction that was ready
/// but could not issue (Figure 6a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContentionEvent {
    /// The stalled instruction.
    pub idx: DynIdx,
    /// Cycles spent ready but not issued.
    pub cycles: u64,
    /// Whether the steering policy had predicted the instruction critical
    /// — the paper finds up to two-thirds of critical contention hits
    /// *predicted-critical* instructions (criticality ties, §4).
    pub predicted_critical: bool,
}

/// Why a critical dataflow edge crossed clusters (Figure 6b's legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ForwardingCause {
    /// The consumer was load-balance steered away from its producer
    /// because the desired cluster was full — the dominant cause (§3).
    LoadBalance,
    /// The consumer is dyadic with producers on different clusters, so
    /// one operand had to cross regardless (convergent dataflow, §2.2).
    Dyadic,
    /// Any other placement decision.
    Other,
}

/// An inter-cluster forwarding delay on the critical path (Figure 6b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ForwardingEvent {
    /// The consumer whose last-arriving operand crossed clusters.
    pub consumer: DynIdx,
    /// The producing instruction.
    pub producer: DynIdx,
    /// Forwarding cycles paid.
    pub cycles: u64,
    /// The classified cause.
    pub cause: ForwardingCause,
}

/// Aggregate counts over classified events, for Figure 6's stacked bars.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventTotals {
    /// Contention events hitting predicted-critical instructions.
    pub contention_predicted_critical: u64,
    /// Contention events hitting other instructions.
    pub contention_other: u64,
    /// Forwarding events caused by load-balance steering.
    pub forwarding_load_balance: u64,
    /// Forwarding events at dyadic convergence points.
    pub forwarding_dyadic: u64,
    /// Other forwarding events.
    pub forwarding_other: u64,
}

impl EventTotals {
    /// Tallies the totals from event lists.
    pub fn from_events(contention: &[ContentionEvent], forwarding: &[ForwardingEvent]) -> Self {
        let mut t = EventTotals::default();
        for e in contention {
            if e.predicted_critical {
                t.contention_predicted_critical += 1;
            } else {
                t.contention_other += 1;
            }
        }
        for e in forwarding {
            match e.cause {
                ForwardingCause::LoadBalance => t.forwarding_load_balance += 1,
                ForwardingCause::Dyadic => t.forwarding_dyadic += 1,
                ForwardingCause::Other => t.forwarding_other += 1,
            }
        }
        t
    }

    /// All contention events.
    pub fn contention_total(&self) -> u64 {
        self.contention_predicted_critical + self.contention_other
    }

    /// All forwarding events.
    pub fn forwarding_total(&self) -> u64 {
        self.forwarding_load_balance + self.forwarding_dyadic + self.forwarding_other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_classify_events() {
        let contention = vec![
            ContentionEvent {
                idx: DynIdx::new(0),
                cycles: 2,
                predicted_critical: true,
            },
            ContentionEvent {
                idx: DynIdx::new(1),
                cycles: 1,
                predicted_critical: false,
            },
            ContentionEvent {
                idx: DynIdx::new(2),
                cycles: 3,
                predicted_critical: true,
            },
        ];
        let forwarding = vec![
            ForwardingEvent {
                consumer: DynIdx::new(3),
                producer: DynIdx::new(0),
                cycles: 2,
                cause: ForwardingCause::LoadBalance,
            },
            ForwardingEvent {
                consumer: DynIdx::new(4),
                producer: DynIdx::new(1),
                cycles: 2,
                cause: ForwardingCause::Dyadic,
            },
        ];
        let t = EventTotals::from_events(&contention, &forwarding);
        assert_eq!(t.contention_predicted_critical, 2);
        assert_eq!(t.contention_other, 1);
        assert_eq!(t.contention_total(), 3);
        assert_eq!(t.forwarding_load_balance, 1);
        assert_eq!(t.forwarding_dyadic, 1);
        assert_eq!(t.forwarding_other, 0);
        assert_eq!(t.forwarding_total(), 2);
    }

    #[test]
    fn empty_events_give_zero_totals() {
        let t = EventTotals::from_events(&[], &[]);
        assert_eq!(t.contention_total(), 0);
        assert_eq!(t.forwarding_total(), 0);
    }
}
