//! Prior-art steering baselines the paper argues against.
//!
//! * [`FirstConsumer`] — "steer only the first dependent instruction to a
//!   given producer; all others are load-balanced" (Palacharla et al.;
//!   Kim & Smith — the paper's references [15, 19]). §6 shows why this
//!   hurts: when the most critical consumer is not the first one — true
//!   for more than half of critical multi-consumer values — the critical
//!   consumer is the one exiled, and recurrences like Figure 13(a) pay
//!   the forwarding latency every iteration.
//! * [`ModN`] — static PC-modulo cluster assignment: trivial hardware,
//!   no locality, the weakest reasonable baseline.

use ccs_sim::{InstRecord, SteerCause, SteerOutcome, SteerView, SteeringPolicy};
use ccs_trace::{DynIdx, DynInst};
use std::collections::HashSet;

/// First-consumer-stays dependence steering.
///
/// The first consumer of a pending producer is collocated with it; the
/// producer is then tagged, and subsequent consumers are sent to the
/// least-loaded cluster.
#[derive(Debug, Clone, Default)]
pub struct FirstConsumer {
    followed: HashSet<u32>,
}

impl FirstConsumer {
    /// Creates the policy.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SteeringPolicy for FirstConsumer {
    fn steer(&mut self, view: &SteerView<'_>) -> SteerOutcome {
        if view.clusters() == 1 {
            return if view.has_space(0) {
                SteerOutcome::to(0, SteerCause::Only)
            } else {
                SteerOutcome::stall()
            };
        }
        // The first pending producer that has not yet been followed wins.
        let unfollowed = view
            .pending_producers()
            .find(|p| !self.followed.contains(&p.idx.raw()));
        match unfollowed {
            Some(p) if view.has_space(p.cluster) => {
                self.followed.insert(p.idx.raw());
                SteerOutcome::to(p.cluster, SteerCause::Dependence)
            }
            Some(_) => match view.least_loaded_with_space() {
                Some(c) => SteerOutcome::to(c, SteerCause::LoadBalance),
                None => SteerOutcome::stall(),
            },
            None => {
                let cause = if view.pending_producers().next().is_some() {
                    // All producers already followed: load-balance away.
                    SteerCause::Proactive
                } else {
                    SteerCause::NoDeps
                };
                match view.least_loaded_with_space() {
                    Some(c) => SteerOutcome::to(c, cause),
                    None => SteerOutcome::stall(),
                }
            }
        }
    }

    fn on_commit(&mut self, idx: DynIdx, _inst: &DynInst, _record: &InstRecord) {
        self.followed.remove(&idx.raw());
    }

    fn name(&self) -> &str {
        "first-consumer"
    }
}

/// Static PC-modulo steering: cluster = (pc / 4) mod N, skipping to the
/// least-loaded cluster when the target is full.
#[derive(Debug, Clone, Copy, Default)]
pub struct ModN;

impl SteeringPolicy for ModN {
    fn steer(&mut self, view: &SteerView<'_>) -> SteerOutcome {
        let n = view.clusters();
        if n == 1 {
            return if view.has_space(0) {
                SteerOutcome::to(0, SteerCause::Only)
            } else {
                SteerOutcome::stall()
            };
        }
        let target = ((view.inst.pc().raw() >> 2) % n as u64) as usize;
        if view.has_space(target) {
            SteerOutcome::to(target, SteerCause::NoDeps)
        } else {
            match view.least_loaded_with_space() {
                Some(c) => SteerOutcome::to(c, SteerCause::LoadBalance),
                None => SteerOutcome::stall(),
            }
        }
    }

    fn name(&self) -> &str {
        "mod-n"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_cell, PolicyKind, RunOptions};
    use ccs_isa::{ClusterLayout, MachineConfig};
    use ccs_sim::simulate;
    use ccs_trace::patterns::{DivergentLoop, DivergentLoopConfig, RegAlloc};
    use ccs_trace::{Benchmark, Trace, TraceBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn divergent_trace(len: usize) -> Trace {
        let mut regs = RegAlloc::new();
        let mut lp = DivergentLoop::new(
            ccs_isa::Pc::new(0x100),
            &mut regs,
            DivergentLoopConfig {
                exit_prob: 0.02,
                trip: 64,
                region: 1 << 13,
            },
        );
        let mut b = TraceBuilder::new();
        let mut rng = StdRng::seed_from_u64(5);
        while b.len() < len {
            lp.emit(&mut b, &mut rng);
        }
        b.finish()
    }

    #[test]
    fn both_baselines_run_everywhere() {
        let trace = Benchmark::Gcc.generate(1, 2_000);
        for layout in ClusterLayout::ALL {
            let cfg = MachineConfig::micro05_baseline().with_layout(layout);
            let a = simulate(&cfg, &trace, &mut FirstConsumer::new()).unwrap();
            let b = simulate(&cfg, &trace, &mut ModN).unwrap();
            assert!(a.cpi() > 0.1, "{layout} first-consumer");
            assert!(b.cpi() > 0.1, "{layout} mod-n");
        }
    }

    #[test]
    fn first_consumer_exiles_the_recurrence() {
        // Figure 13(a): on the divergent loop, the loop-carried update is
        // the LAST consumer of its own value, so first-consumer steering
        // sends it away from its producer, paying forwarding on the
        // recurrence. The paper's criticality-aware ladder avoids this.
        let trace = divergent_trace(8_000);
        let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C8x1w);
        let fc = simulate(&cfg, &trace, &mut FirstConsumer::new()).unwrap();
        let ladder = run_cell(
            &cfg,
            &trace,
            PolicyKind::Proactive,
            &RunOptions::default().with_epochs(3),
        )
        .unwrap();
        assert!(
            ladder.result.cycles < fc.cycles,
            "ladder {} vs first-consumer {}",
            ladder.result.cycles,
            fc.cycles
        );
        // The recurrence forwarding shows up on the critical path.
        let fc_analysis = ccs_critpath::analyze(&trace, &fc);
        let fwd_fc = fc_analysis
            .breakdown
            .get(ccs_critpath::CostCategory::FwdDelay);
        let fwd_ladder = ladder
            .analysis
            .breakdown
            .get(ccs_critpath::CostCategory::FwdDelay);
        assert!(
            fwd_ladder < fwd_fc,
            "ladder fwd {fwd_ladder} vs first-consumer fwd {fwd_fc}"
        );
    }

    #[test]
    fn mod_n_ignores_locality_and_pays_for_it() {
        // On a serial chain, mod-N scatter costs forwarding on every hop
        // whose PCs map to different clusters.
        let mut b = TraceBuilder::new();
        let r = ccs_isa::ArchReg::int(1);
        for i in 0..2_000u64 {
            b.push_simple(
                ccs_isa::StaticInst::new(ccs_isa::Pc::new(4 * (i % 8)), ccs_isa::OpClass::IntAlu)
                    .with_src(r)
                    .with_dst(r),
            );
        }
        let trace = b.finish();
        let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C8x1w);
        let modn = simulate(&cfg, &trace, &mut ModN).unwrap();
        let dep = run_cell(&cfg, &trace, PolicyKind::StallOverSteer, &RunOptions::default())
            .unwrap();
        assert!(
            modn.cpi() > dep.cpi() * 1.5,
            "mod-n {} vs stall-over-steer {}",
            modn.cpi(),
            dep.cpi()
        );
    }

    #[test]
    fn first_consumer_collocates_exactly_one_consumer() {
        // Two consumers of one producer on an empty machine: the first
        // collocates, the second is load-balanced away.
        use ccs_isa::{ArchReg, OpClass, Pc, StaticInst};
        let mut b = TraceBuilder::new();
        let p = ArchReg::int(1);
        b.push_simple(StaticInst::new(Pc::new(0), OpClass::IntAlu).with_dst(p));
        b.push_simple(
            StaticInst::new(Pc::new(4), OpClass::IntAlu)
                .with_src(p)
                .with_dst(ArchReg::int(2)),
        );
        b.push_simple(
            StaticInst::new(Pc::new(8), OpClass::IntAlu)
                .with_src(p)
                .with_dst(ArchReg::int(3)),
        );
        let trace = b.finish();
        let cfg = MachineConfig::micro05_baseline().with_layout(ClusterLayout::C4x2w);
        let r = simulate(&cfg, &trace, &mut FirstConsumer::new()).unwrap();
        let producer_cluster = r.records[0].cluster;
        assert_eq!(r.records[1].cluster, producer_cluster, "first consumer stays");
        assert_ne!(r.records[2].cluster, producer_cluster, "second consumer leaves");
    }
}
