//! Consistent-hash shard map for the multi-daemon service layer.
//!
//! A campaign sharded across N `ccs-serve` daemons needs a *stable*
//! assignment from cell to shard: every client must route the same cell
//! to the same daemon (so the result cache and journal of exactly one
//! shard own that cell), and the assignment must survive one shard
//! dying without reshuffling the whole keyspace. A [`ShardMap`] is the
//! classic consistent-hash ring over the existing
//! [`cell_key`](crate::cell_key) fingerprint:
//!
//! * Each shard address contributes `vnodes` points on a 64-bit ring
//!   (FNV-1a of `"{addr}#{v}"`), smoothing the per-shard keyspace share.
//! * A cell hashes to the ring (FNV-1a of its `cell_key` string) and is
//!   owned by the first point clockwise — [`ShardMap::shard_for`].
//! * When that shard is unreachable the client fails over along
//!   [`ShardMap::successors`]: the remaining shards in ring order, each
//!   appearing once. Every client computes the same failover order, so
//!   re-placement under failure is deterministic too.
//! * [`ShardMap::version`] fingerprints the topology (member list +
//!   vnode count); clients embed it in logs and records so a response
//!   computed under a different topology is detectable.
//!
//! The map is pure data — no sockets, no locks — so it lives here in
//! `ccs-core` next to the key it hashes, below both the client and the
//! daemon.

use crate::error::CcsError;

/// 64-bit FNV-1a — the same mixing the checkpoint fingerprint uses.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A ring point: FNV-1a plus a splitmix64-style finalizer. Bare FNV-1a
/// has poor avalanche on near-identical short strings (the vnode labels
/// `"addr#0"…"addr#63"` differ only in trailing bytes), which clusters
/// points and skews the keyspace split badly; the finalizer restores an
/// even spread while staying a pure function of the input bytes.
fn ring_point(bytes: &[u8]) -> u64 {
    let mut z = fnv1a(bytes);
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Default virtual nodes per shard: enough to keep the keyspace split
/// within a few percent of even for small clusters.
pub const DEFAULT_VNODES: usize = 64;

/// A versioned consistent-hash ring mapping cell keys to shard
/// addresses.
#[derive(Debug, Clone)]
pub struct ShardMap {
    shards: Vec<String>,
    /// `(ring_point, shard_index)` sorted by point.
    ring: Vec<(u64, usize)>,
    vnodes: usize,
    version: u64,
}

impl ShardMap {
    /// Builds a ring over `shards` (daemon addresses, e.g.
    /// `"127.0.0.1:7405"`) with [`DEFAULT_VNODES`] points each.
    ///
    /// # Errors
    ///
    /// [`CcsError::Config`] is not used here (it wraps machine config);
    /// an empty or duplicated member list yields [`CcsError::Protocol`]
    /// since it would make routing ill-defined.
    pub fn new(shards: &[String]) -> Result<Self, CcsError> {
        Self::with_vnodes(shards, DEFAULT_VNODES)
    }

    /// Builds a ring with an explicit virtual-node count (≥ 1).
    pub fn with_vnodes(shards: &[String], vnodes: usize) -> Result<Self, CcsError> {
        if shards.is_empty() {
            return Err(CcsError::Protocol {
                message: "shard map needs at least one shard".into(),
            });
        }
        let vnodes = vnodes.max(1);
        let mut seen = std::collections::HashSet::new();
        for s in shards {
            if s.trim().is_empty() {
                return Err(CcsError::Protocol {
                    message: "shard map member address is empty".into(),
                });
            }
            if !seen.insert(s.as_str()) {
                return Err(CcsError::Protocol {
                    message: format!("duplicate shard address {s}"),
                });
            }
        }
        let shards: Vec<String> = shards.to_vec();
        let mut ring = Vec::with_capacity(shards.len() * vnodes);
        for (i, addr) in shards.iter().enumerate() {
            for v in 0..vnodes {
                ring.push((ring_point(format!("{addr}#{v}").as_bytes()), i));
            }
        }
        // Points are 64-bit hashes of distinct strings; ties are
        // astronomically unlikely but break them by shard index so the
        // ring is still a deterministic function of the member list.
        ring.sort_unstable();
        let mut version: u64 = fnv1a(b"ccs-shard-map");
        version ^= fnv1a(&(vnodes as u64).to_le_bytes());
        for addr in &shards {
            version = version
                .rotate_left(7)
                .wrapping_add(fnv1a(addr.as_bytes()));
        }
        Ok(ShardMap {
            shards,
            ring,
            vnodes,
            version,
        })
    }

    /// The member addresses, in the order given at construction.
    pub fn shards(&self) -> &[String] {
        &self.shards
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the map has no members (never true for a constructed map).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Topology fingerprint: changes whenever the member list (content
    /// or order) or vnode count changes.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Index into [`shards`](Self::shards) of the ring successor of
    /// `key`'s hash point.
    fn owner_index(&self, key: &str) -> usize {
        let h = ring_point(key.as_bytes());
        let at = self.ring.partition_point(|&(p, _)| p < h);
        let (_, idx) = self.ring[at % self.ring.len()];
        idx
    }

    /// The shard that owns `key` (a [`cell_key`](crate::cell_key)
    /// string).
    pub fn shard_for(&self, key: &str) -> &str {
        &self.shards[self.owner_index(key)]
    }

    /// Every shard in `key`'s failover order: the owner first, then the
    /// remaining shards as they first appear walking the ring clockwise
    /// from the key's point. Each shard appears exactly once.
    pub fn successors(&self, key: &str) -> Vec<&str> {
        let h = ring_point(key.as_bytes());
        let start = self.ring.partition_point(|&(p, _)| p < h);
        let mut order = Vec::with_capacity(self.shards.len());
        let mut seen = vec![false; self.shards.len()];
        for step in 0..self.ring.len() {
            let (_, idx) = self.ring[(start + step) % self.ring.len()];
            if !seen[idx] {
                seen[idx] = true;
                order.push(self.shards[idx].as_str());
                if order.len() == self.shards.len() {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 7400 + i)).collect()
    }

    fn keys(n: usize) -> Vec<String> {
        (0..n)
            .map(|i| format!("gzip/s{i}/n2000/C4x2w/Focused/{:016x}", i as u64 * 0x9e37))
            .collect()
    }

    #[test]
    fn empty_and_duplicate_members_are_rejected() {
        assert!(ShardMap::new(&[]).is_err());
        let dup = vec!["a:1".to_string(), "a:1".to_string()];
        assert!(ShardMap::new(&dup).is_err());
        let blank = vec!["a:1".to_string(), "  ".to_string()];
        assert!(ShardMap::new(&blank).is_err());
    }

    #[test]
    fn routing_is_deterministic_and_member_order_independent() {
        let m = members(3);
        let map = ShardMap::new(&m).unwrap();
        let mut rev = m.clone();
        rev.reverse();
        let map_rev = ShardMap::new(&rev).unwrap();
        for k in keys(200) {
            assert_eq!(map.shard_for(&k), map.shard_for(&k));
            // Ring placement depends only on address strings, not the
            // order members were listed in.
            assert_eq!(map.shard_for(&k), map_rev.shard_for(&k));
        }
    }

    #[test]
    fn successors_start_at_the_owner_and_cover_every_shard_once() {
        let map = ShardMap::new(&members(4)).unwrap();
        for k in keys(50) {
            let order = map.successors(&k);
            assert_eq!(order.len(), 4);
            assert_eq!(order[0], map.shard_for(&k));
            let mut sorted: Vec<&str> = order.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 4, "each shard exactly once");
        }
    }

    #[test]
    fn keyspace_split_is_roughly_even() {
        let m = members(4);
        let map = ShardMap::new(&m).unwrap();
        let mut counts = vec![0usize; m.len()];
        let sample = keys(4000);
        for k in &sample {
            let owner = map.shard_for(k);
            let idx = m.iter().position(|s| s == owner).unwrap();
            counts[idx] += 1;
        }
        let expected = sample.len() / m.len();
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 2 && c < expected * 2,
                "shard {i} owns {c} of {} keys (expected ~{expected})",
                sample.len()
            );
        }
    }

    #[test]
    fn removing_a_shard_only_moves_its_own_keys() {
        let m = members(3);
        let full = ShardMap::new(&m).unwrap();
        let reduced = ShardMap::new(&m[..2]).unwrap();
        for k in keys(500) {
            let owner = full.shard_for(&k);
            if owner != m[2] {
                assert_eq!(
                    reduced.shard_for(&k),
                    owner,
                    "keys on surviving shards must not move"
                );
            } else {
                // Dead shard's keys land on its ring successor — the
                // second entry of the full map's failover order.
                assert_eq!(reduced.shard_for(&k), full.successors(&k)[1]);
            }
        }
    }

    #[test]
    fn version_tracks_topology() {
        let a = ShardMap::new(&members(2)).unwrap();
        let b = ShardMap::new(&members(3)).unwrap();
        let c = ShardMap::with_vnodes(&members(2), 8).unwrap();
        assert_ne!(a.version(), b.version());
        assert_ne!(a.version(), c.version(), "vnode count is part of the topology");
        let mut rev = members(2);
        rev.reverse();
        let d = ShardMap::new(&rev).unwrap();
        assert_ne!(a.version(), d.version(), "member order is part of the version");
        assert_eq!(
            a.version(),
            ShardMap::new(&members(2)).unwrap().version(),
            "same topology, same version"
        );
    }
}
