//! The workspace-wide error taxonomy.
//!
//! Every way a grid cell can fail maps onto one [`CcsError`] variant, so
//! campaign infrastructure (the resilient executor in [`grid`](crate::grid),
//! the checkpoint layer, the figure harness) can classify failures
//! without string matching:
//!
//! * [`CcsError::Trace`] — malformed trace or bad workload parameter
//!   (wraps [`ccs_trace::TraceError`]).
//! * [`CcsError::Config`] — invalid machine configuration (wraps
//!   [`ccs_isa::ConfigError`]).
//! * [`CcsError::Sim`] — the engine failed: deadlock, exhausted cycle
//!   budget, cooperative cancellation, or a structural invariant
//!   violation in checked mode (wraps [`ccs_sim::SimError`]).
//! * [`CcsError::OracleDivergence`] — the differential oracle disagreed
//!   with the engine (constructed by `ccs-verify`).
//! * [`CcsError::CellPanicked`] — a cell panicked and was isolated by
//!   the executor's `catch_unwind` barrier.
//! * [`CcsError::EmptyInput`] — an aggregation was asked to summarize
//!   nothing.
//! * [`CcsError::DegenerateBaseline`] — a normalization's denominator
//!   was zero or non-finite; dividing by it would print NaN or ±inf
//!   into a figure.
//! * [`CcsError::Checkpoint`] — the checkpoint manifest could not be
//!   read, parsed, or appended.
//! * [`CcsError::Protocol`] — a service-layer frame was malformed,
//!   oversized, or truncated (constructed by `ccs-serve`/`ccs-client`).
//! * [`CcsError::Rejected`] — a service submission was refused by
//!   admission control (bounded-queue backpressure or a draining
//!   daemon) rather than failing.
//! * [`CcsError::Timeout`] — a service-layer I/O deadline expired
//!   (reply never arrived, connect hung, peer stalled mid-frame).
//! * [`CcsError::RetriesExhausted`] — a retry loop ran out of attempts
//!   or total deadline without a successful attempt.
//!
//! Lower-layer crates keep their own error types (`ccs-trace` and
//! `ccs-isa` sit below this crate in the dependency graph); `From`
//! impls lift them into the taxonomy at the `ccs-core` boundary.

use ccs_isa::ConfigError;
use ccs_sim::SimError;
use ccs_trace::TraceError;
use std::fmt;

/// Any failure the experiment stack can produce, classified by layer.
#[derive(Debug, Clone, PartialEq)]
pub enum CcsError {
    /// Trace validation or workload-parameter failure.
    Trace(TraceError),
    /// Machine-configuration validation failure.
    Config(ConfigError),
    /// Simulation failure: deadlock, budget, cancellation, or invariant
    /// violation.
    Sim(SimError),
    /// The reference oracle computed a different schedule than the
    /// engine.
    OracleDivergence {
        /// How many fields/records disagreed.
        mismatches: usize,
        /// A short, human-readable account of the first disagreements.
        summary: String,
    },
    /// A cell panicked; the panic was caught at the executor's
    /// isolation barrier.
    CellPanicked {
        /// The panic payload, if it was a string (the common case).
        message: String,
    },
    /// An aggregation (mean, normalization) received no data.
    EmptyInput {
        /// What was being aggregated.
        what: &'static str,
    },
    /// A normalization's baseline denominator was zero or non-finite.
    /// Dividing by it would propagate NaN or ±inf into a rendered
    /// figure; the typed error keeps the defect at its source.
    DegenerateBaseline {
        /// What ratio was being formed.
        what: &'static str,
        /// The offending denominator.
        value: f64,
    },
    /// The checkpoint manifest could not be read, parsed, or written.
    Checkpoint {
        /// The manifest path involved.
        path: String,
        /// What went wrong.
        message: String,
    },
    /// A service-layer protocol violation: malformed, truncated, or
    /// oversized frame, unknown frame type, or a version mismatch.
    Protocol {
        /// What was wrong with the frame.
        message: String,
    },
    /// A service submission was refused without being attempted —
    /// bounded-queue backpressure or a draining daemon. Not a defect:
    /// the caller may retry after the hint.
    Rejected {
        /// Why admission refused the submission.
        reason: String,
        /// Advisory backoff in milliseconds before retrying, when the
        /// server provided one.
        retry_after_ms: Option<u64>,
    },
    /// A service-layer I/O deadline expired: a peer stopped sending
    /// mid-frame, a reply never arrived, or a connect hung. Transient
    /// by construction — the work may have happened; only the answer
    /// is missing.
    Timeout {
        /// What was being waited for when the deadline expired.
        what: String,
    },
    /// A retry loop gave up: every attempt was refused or timed out and
    /// the attempt budget or total deadline ran out.
    RetriesExhausted {
        /// Attempts made before giving up.
        attempts: u32,
        /// Wall-clock spent across all attempts, in milliseconds.
        elapsed_ms: u64,
        /// The last per-attempt failure, rendered.
        last: String,
    },
}

impl CcsError {
    /// Whether this failure is a watchdog timeout (cycle budget
    /// exhausted or cooperative cancellation) rather than a defect.
    pub fn is_timeout(&self) -> bool {
        matches!(self, CcsError::Sim(e) if e.is_timeout())
            || matches!(self, CcsError::Timeout { .. })
    }

    /// Builds [`CcsError::CellPanicked`] from a `catch_unwind` payload,
    /// extracting the message when the panic carried one.
    pub fn from_panic(payload: &(dyn std::any::Any + Send)) -> CcsError {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        };
        CcsError::CellPanicked { message }
    }
}

impl fmt::Display for CcsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcsError::Trace(e) => write!(f, "trace: {e}"),
            CcsError::Config(e) => write!(f, "config: {e}"),
            CcsError::Sim(e) => write!(f, "sim: {e}"),
            CcsError::OracleDivergence { mismatches, summary } => {
                write!(f, "oracle divergence ({mismatches} mismatches): {summary}")
            }
            CcsError::CellPanicked { message } => write!(f, "cell panicked: {message}"),
            CcsError::EmptyInput { what } => write!(f, "empty input: no {what}"),
            CcsError::DegenerateBaseline { what, value } => {
                write!(f, "degenerate baseline for {what}: {value}")
            }
            CcsError::Checkpoint { path, message } => {
                write!(f, "checkpoint {path}: {message}")
            }
            CcsError::Protocol { message } => write!(f, "protocol: {message}"),
            CcsError::Rejected {
                reason,
                retry_after_ms,
            } => match retry_after_ms {
                Some(ms) => write!(f, "rejected: {reason} (retry after {ms} ms)"),
                None => write!(f, "rejected: {reason}"),
            },
            CcsError::Timeout { what } => write!(f, "timeout: {what}"),
            CcsError::RetriesExhausted {
                attempts,
                elapsed_ms,
                last,
            } => write!(
                f,
                "retries exhausted after {attempts} attempts ({elapsed_ms} ms): {last}"
            ),
        }
    }
}

impl std::error::Error for CcsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CcsError::Trace(e) => Some(e),
            CcsError::Config(e) => Some(e),
            CcsError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TraceError> for CcsError {
    fn from(e: TraceError) -> Self {
        CcsError::Trace(e)
    }
}

impl From<ConfigError> for CcsError {
    fn from(e: ConfigError) -> Self {
        CcsError::Config(e)
    }
}

impl From<SimError> for CcsError {
    fn from(e: SimError) -> Self {
        CcsError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layers_lift_into_the_taxonomy() {
        let t: CcsError = TraceError::BadWorkloadParam {
            param: "min_len",
            message: "must be at least 1".into(),
        }
        .into();
        assert!(matches!(t, CcsError::Trace(_)));
        assert!(t.to_string().starts_with("trace: "));

        let s: CcsError = SimError::BudgetExhausted {
            budget: 10,
            committed: 0,
            total: 5,
        }
        .into();
        assert!(s.is_timeout());
        assert!(!t.is_timeout());
    }

    #[test]
    fn panic_payloads_extract_their_message() {
        let from_str = std::panic::catch_unwind(|| panic!("boom")).unwrap_err();
        let e = CcsError::from_panic(from_str.as_ref());
        assert_eq!(
            e,
            CcsError::CellPanicked {
                message: "boom".into()
            }
        );

        let from_string =
            std::panic::catch_unwind(|| panic!("cell {} failed", 7)).unwrap_err();
        let e = CcsError::from_panic(from_string.as_ref());
        assert_eq!(
            e,
            CcsError::CellPanicked {
                message: "cell 7 failed".into()
            }
        );

        let from_other = std::panic::catch_unwind(|| std::panic::panic_any(42_i32)).unwrap_err();
        let e = CcsError::from_panic(from_other.as_ref());
        assert!(matches!(e, CcsError::CellPanicked { message } if message.contains("non-string")));
    }

    #[test]
    fn service_errors_render_their_context() {
        let e = CcsError::Protocol {
            message: "frame length 9000000 exceeds limit 1048576".into(),
        };
        assert!(e.to_string().starts_with("protocol: "));
        assert!(!e.is_timeout());
        let e = CcsError::Rejected {
            reason: "queue full".into(),
            retry_after_ms: Some(40),
        };
        assert_eq!(e.to_string(), "rejected: queue full (retry after 40 ms)");
        let e = CcsError::Rejected {
            reason: "draining".into(),
            retry_after_ms: None,
        };
        assert_eq!(e.to_string(), "rejected: draining");
        let e = CcsError::Timeout {
            what: "reply from 127.0.0.1:7405".into(),
        };
        assert!(e.is_timeout(), "I/O deadlines classify as timeouts");
        assert_eq!(e.to_string(), "timeout: reply from 127.0.0.1:7405");
        let e = CcsError::RetriesExhausted {
            attempts: 5,
            elapsed_ms: 1200,
            last: "rejected: queue full".into(),
        };
        assert!(!e.is_timeout());
        assert_eq!(
            e.to_string(),
            "retries exhausted after 5 attempts (1200 ms): rejected: queue full"
        );
    }

    #[test]
    fn errors_render_with_layer_prefixes() {
        let e = CcsError::EmptyInput { what: "series" };
        assert_eq!(e.to_string(), "empty input: no series");
        let e = CcsError::Checkpoint {
            path: "results/checkpoints/x.jsonl".into(),
            message: "truncated record".into(),
        };
        assert!(e.to_string().contains("results/checkpoints/x.jsonl"));
        let e = CcsError::OracleDivergence {
            mismatches: 3,
            summary: "cycles 10 vs 11".into(),
        };
        assert!(e.to_string().contains("3 mismatches"));
    }
}
